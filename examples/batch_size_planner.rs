//! Batch-size planner: find the largest batch size that trains safely on a
//! given GPU, using xMem estimates only (no GPU time consumed), then
//! validate the frontier with ground-truth runs.
//!
//! Planning goes through the **async** front end: all four models'
//! admission questions are submitted as futures and answered through the
//! shared service concurrently. Per question, a coarse sweep brackets the
//! fit/OOM frontier, bisection pins it down, and every probe lands in the
//! stage cache — so re-planning the same model (or planning it for
//! another device) re-profiles nothing.
//!
//! ```text
//! cargo run --release --example batch_size_planner
//! ```

use xmem::prelude::*;

fn main() {
    let device = GpuDevice::rtx3060();
    let service = AsyncEstimationService::new(AsyncServiceConfig::for_device(device));
    println!(
        "Largest safe batch size on {} (xMem-planned, then validated):\n",
        device.name
    );
    let questions = [
        (ModelId::Gpt2, OptimizerKind::AdamW, (1, 128)),
        (ModelId::DistilGpt2, OptimizerKind::Adam, (1, 192)),
        (ModelId::ResNet101, OptimizerKind::Adam, (32, 2048)),
        (ModelId::ConvNextTiny, OptimizerKind::AdamW, (32, 2048)),
    ];
    // Submit every planning question up front; each resolves to the
    // largest batch that fits the device.
    let futures: Vec<_> = questions
        .iter()
        .map(|&(model, optimizer, (lo, hi))| {
            let base = TrainJobSpec::new(model, optimizer, lo);
            service
                .max_batch_for_device_async(&base, device, lo, hi)
                .expect("queue sized for the workload")
        })
        .collect();
    let answers = block_on(join_all(futures));

    for (&(model, optimizer, _), planned) in questions.iter().zip(answers) {
        let planned = planned.expect("estimation succeeds");
        match planned {
            Some(batch) => {
                // Validate the frontier: the planned batch must run; the
                // next probe step may OOM.
                let ok = run_on_gpu(
                    &TrainJobSpec::new(model, optimizer, batch),
                    &device,
                    None,
                    false,
                );
                println!(
                    "  {:<14} + {:<8} -> batch {:>5}  (validated: {})",
                    model.info().name,
                    optimizer.name(),
                    batch,
                    if ok.oom { "OOM!" } else { "fits" }
                );
            }
            None => println!(
                "  {:<14} + {:<8} -> does not fit at any probed batch",
                model.info().name,
                optimizer.name()
            ),
        }
    }
    let stats = service.service().cache_stats();
    println!(
        "\nService cache: {} hits / {} misses ({} profiled stages reused across probes)",
        stats.hits, stats.misses, stats.hits
    );
}
