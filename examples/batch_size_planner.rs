//! Batch-size planner: find the largest batch size that trains safely on a
//! given GPU, using xMem estimates only (no GPU time consumed), then
//! validate the frontier with ground-truth runs.
//!
//! ```text
//! cargo run --release --example batch_size_planner
//! ```

use xmem::prelude::*;

/// Largest batch (within the probe range) whose estimate fits the device.
fn max_safe_batch(
    model: ModelId,
    optimizer: OptimizerKind,
    device: GpuDevice,
    range: (usize, usize),
) -> Option<usize> {
    let estimator = Estimator::new(EstimatorConfig::for_device(device));
    let fits = |batch: usize| -> bool {
        let spec = TrainJobSpec::new(model, optimizer, batch);
        estimator
            .estimate_job(&spec)
            .map(|e| !e.oom_predicted)
            .unwrap_or(false)
    };
    let (mut lo, mut hi) = range;
    if !fits(lo) {
        return None;
    }
    // Binary search the fit/OOM frontier.
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(lo)
}

fn main() {
    let device = GpuDevice::rtx3060();
    println!(
        "Largest safe batch size on {} (xMem-planned, then validated):\n",
        device.name
    );
    for (model, optimizer, range) in [
        (ModelId::Gpt2, OptimizerKind::AdamW, (1, 128)),
        (ModelId::DistilGpt2, OptimizerKind::Adam, (1, 192)),
        (ModelId::ResNet101, OptimizerKind::Adam, (32, 2048)),
        (ModelId::ConvNextTiny, OptimizerKind::AdamW, (32, 2048)),
    ] {
        match max_safe_batch(model, optimizer, device, range) {
            Some(batch) => {
                // Validate the frontier: the planned batch must run; the
                // next probe step may OOM.
                let ok = run_on_gpu(
                    &TrainJobSpec::new(model, optimizer, batch),
                    &device,
                    None,
                    false,
                );
                println!(
                    "  {:<14} + {:<8} -> batch {:>5}  (validated: {})",
                    model.info().name,
                    optimizer.name(),
                    batch,
                    if ok.oom { "OOM!" } else { "fits" }
                );
            }
            None => println!(
                "  {:<14} + {:<8} -> does not fit at any probed batch",
                model.info().name,
                optimizer.name()
            ),
        }
    }
}
