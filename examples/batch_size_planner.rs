//! Batch-size planner across a device fleet: for every model, find the
//! largest batch size that trains safely on **each** registered device,
//! using xMem estimates only (no GPU time consumed), then validate one
//! column of the frontier with ground-truth runs.
//!
//! Planning goes through the **async** front end: one admission question
//! per (model, device) pair, all submitted as futures and answered
//! through the shared service concurrently. Per question, a coarse sweep
//! brackets the fit/OOM frontier and bisection pins it down. The pay-off
//! of the multi-device layer shows in the counters: probe batches shared
//! between devices are profiled **once** — the second and third device
//! columns reuse the first column's analyses and pay only for their own
//! allocator simulations.
//!
//! ```text
//! cargo run --release --example batch_size_planner
//! ```

use xmem::prelude::*;

fn main() {
    let devices = [
        ("rtx3060", GpuDevice::rtx3060()),
        ("rtx4060", GpuDevice::rtx4060()),
        ("a100", GpuDevice::a100_40g()),
    ];
    let service = AsyncEstimationService::new(AsyncServiceConfig::for_device(devices[0].1));
    println!("Largest safe batch size per device (xMem-planned, then validated):\n");
    let questions = [
        (ModelId::Gpt2, OptimizerKind::AdamW, (1, 128)),
        (ModelId::DistilGpt2, OptimizerKind::Adam, (1, 192)),
        (ModelId::ResNet101, OptimizerKind::Adam, (32, 2048)),
        (ModelId::ConvNextTiny, OptimizerKind::AdamW, (32, 2048)),
    ];
    // Submit every (model, device) planning question up front; each
    // resolves to the largest batch that fits that device.
    let futures: Vec<Vec<_>> = questions
        .iter()
        .map(|&(model, optimizer, (lo, hi))| {
            let base = TrainJobSpec::new(model, optimizer, lo);
            devices
                .iter()
                .map(|&(_, device)| {
                    service
                        .max_batch_for_device_async(&base, device, lo, hi)
                        .expect("queue sized for the workload")
                })
                .collect()
        })
        .collect();

    print!("{:<16} {:<10}", "model", "optimizer");
    for (name, _) in &devices {
        print!(" {name:>9}");
    }
    println!("  (validated on {})", devices[0].0);
    for (&(model, optimizer, _), row) in questions.iter().zip(futures) {
        print!("{:<16} {:<10}", model.info().name, optimizer.name());
        let answers = block_on(join_all(row));
        let mut planned_first: Option<usize> = None;
        for (i, planned) in answers.into_iter().enumerate() {
            match planned.expect("estimation succeeds") {
                Some(batch) => {
                    if i == 0 {
                        planned_first = Some(batch);
                    }
                    print!(" {batch:>9}");
                }
                None => print!(" {:>9}", "-"),
            }
        }
        // Validate the first column's frontier: the planned batch must
        // run on the real (simulated-GPU) device without OOM.
        match planned_first {
            Some(batch) => {
                let ok = run_on_gpu(
                    &TrainJobSpec::new(model, optimizer, batch),
                    &devices[0].1,
                    None,
                    false,
                );
                println!("  ({})", if ok.oom { "OOM!" } else { "fits" });
                assert!(!ok.oom, "planned batch must fit its device");
            }
            None => println!("  (no fit)"),
        }
    }
    let inner = service.service();
    let stats = inner.cache_stats();
    let sims = inner.sim_stats();
    println!(
        "\nService counters: {} profile runs for {} simulations across {} devices —\n\
         analysis cache {} hits / {} misses; probe batches shared between device\n\
         columns were profiled once and only re-simulated.",
        inner.profile_runs(),
        sims.sim_runs,
        sims.device_shards,
        stats.hits,
        stats.misses,
    );
}
