//! Batch-size planner: find the largest batch size that trains safely on a
//! given GPU, using xMem estimates only (no GPU time consumed), then
//! validate the frontier with ground-truth runs.
//!
//! Planning goes through the [`EstimationService`]: a coarse parallel
//! sweep brackets the fit/OOM frontier, bisection pins it down, and every
//! probe lands in the service's stage cache — so re-planning the same
//! model (or planning it for another device) re-profiles nothing.
//!
//! ```text
//! cargo run --release --example batch_size_planner
//! ```

use xmem::prelude::*;

fn main() {
    let device = GpuDevice::rtx3060();
    let service = EstimationService::new(ServiceConfig::for_device(device));
    println!(
        "Largest safe batch size on {} (xMem-planned, then validated):\n",
        device.name
    );
    for (model, optimizer, (lo, hi)) in [
        (ModelId::Gpt2, OptimizerKind::AdamW, (1, 128)),
        (ModelId::DistilGpt2, OptimizerKind::Adam, (1, 192)),
        (ModelId::ResNet101, OptimizerKind::Adam, (32, 2048)),
        (ModelId::ConvNextTiny, OptimizerKind::AdamW, (32, 2048)),
    ] {
        let base = TrainJobSpec::new(model, optimizer, lo);
        let planned = service
            .max_batch_for_device(&base, device, lo, hi)
            .expect("estimation succeeds");
        match planned {
            Some(batch) => {
                // Validate the frontier: the planned batch must run; the
                // next probe step may OOM.
                let ok = run_on_gpu(
                    &TrainJobSpec::new(model, optimizer, batch),
                    &device,
                    None,
                    false,
                );
                println!(
                    "  {:<14} + {:<8} -> batch {:>5}  (validated: {})",
                    model.info().name,
                    optimizer.name(),
                    batch,
                    if ok.oom { "OOM!" } else { "fits" }
                );
            }
            None => println!(
                "  {:<14} + {:<8} -> does not fit at any probed batch",
                model.info().name,
                optimizer.name()
            ),
        }
    }
    let stats = service.cache_stats();
    println!(
        "\nService cache: {} hits / {} misses ({} profiled stages reused across probes)",
        stats.hits, stats.misses, stats.hits
    );
}
