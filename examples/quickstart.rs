//! Quickstart: estimate a training job's peak GPU memory without touching
//! the GPU, then verify against a (simulated) ground-truth run.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use xmem::core::render_report;
use xmem::prelude::*;

fn main() {
    // The job a user wants to submit: GPT-2, AdamW, batch 16.
    let job = TrainJobSpec::new(ModelId::Gpt2, OptimizerKind::AdamW, 16);
    let device = GpuDevice::rtx3060();

    // 1. Profile the first three iterations on the CPU (what the PyTorch
    //    profiler would produce) — this is the only execution xMem needs.
    let trace = profile_on_cpu(&job);
    println!(
        "profiled {} events ({} memory instants) on the CPU backend",
        trace.events().len(),
        trace.memory_instants().count()
    );

    // 2. Run the Analyzer -> Orchestrator -> Simulator pipeline.
    let estimator = Estimator::new(EstimatorConfig::for_device(device));
    let estimate = estimator
        .estimate_trace(&trace)
        .expect("trace is well-formed");
    println!("{}", render_report(&job.label(), &estimate));

    // 3. Compare with ground truth (normally unknown before running!).
    let truth = run_on_gpu(&job, &device, None, false);
    let err = (estimate.peak_bytes as f64 - truth.peak_nvml as f64).abs() / truth.peak_nvml as f64;
    println!(
        "ground truth: {:.3} GiB (OOM: {}) -> relative error {:.2}%",
        truth.peak_nvml as f64 / (1u64 << 30) as f64,
        truth.oom,
        err * 100.0
    );
}
