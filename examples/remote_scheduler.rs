//! A scheduler talking to the estimator **over the network**: the
//! deployment the paper motivates — an estimation service in front of a
//! GPU cluster, answering admission and placement questions over HTTP
//! before a job ever touches a device.
//!
//! The example starts an in-process server on an ephemeral loopback port
//! (exactly what `xmem-cli listen` runs), then drives a scheduling pass
//! through the blocking HTTP client: placement (`POST /v1/best-device`)
//! for a queue of jobs, then admission planning (`POST /v1/plan`) on the
//! chosen device — and proves the wire adds **nothing but transport**:
//! every HTTP response body is byte-identical to rendering the equivalent
//! direct `EstimationService` call's result.
//!
//! ```text
//! cargo run --release --example remote_scheduler
//! ```

use serde::Value;
use std::sync::Arc;
use xmem::prelude::*;
use xmem::server::{api, HttpClient, ServerConfig, ServerHandle};
use xmem::service::jobspec::job_to_value;
use xmem::service::AsyncServiceConfig;

fn main() {
    // The per-cluster service: built-in fleet (rtx3060 / rtx4060 / a100),
    // served over HTTP on an ephemeral port.
    let service = Arc::new(AsyncEstimationService::new(AsyncServiceConfig::for_device(
        GpuDevice::rtx3060(),
    )));
    let server = ServerHandle::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default())
        .expect("bind loopback server");
    let addr = server.local_addr();
    println!("remote scheduler talking to http://{addr}\n");

    let queue = [
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8).with_iterations(2),
        TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 4).with_iterations(2),
        TrainJobSpec::new(ModelId::MobileNetV3Large, OptimizerKind::Adam, 64).with_iterations(2),
    ];

    let mut client = HttpClient::connect(addr).expect("connect");
    let direct = service.service();

    println!("{:<44} {:>10} {:>12}", "job", "placement", "max batch");
    for job in &queue {
        // Placement over the wire...
        let body = serde_json::to_string(&job_to_value(job)).expect("job renders");
        let response = client
            .post_json("/v1/best-device", &body)
            .expect("placement request");
        assert_eq!(
            response.status,
            200,
            "placement failed: {}",
            response.text()
        );

        // ...is byte-identical to rendering the direct call's result.
        let direct_placement = direct
            .best_device_for_job(job)
            .expect("direct placement succeeds");
        assert_eq!(
            response.text(),
            api::placement_body(direct_placement.as_ref()),
            "the wire must add transport, not interpretation"
        );

        let parsed: Value = serde_json::from_str(&response.text()).expect("placement JSON");
        let device = parsed
            .as_object()
            .and_then(|o| serde::obj_get(o, "placement"))
            .and_then(Value::as_object)
            .and_then(|o| serde::obj_get(o, "device"))
            .and_then(|v| match v {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .expect("a fitting device");

        // Admission planning on the placed device, over the wire.
        let plan_request = format!(
            "{{\"job\":{},\"device\":{},\"min\":1,\"max\":64}}",
            serde_json::to_string(&job_to_value(job)).expect("job renders"),
            serde_json::to_string(&device).expect("name renders"),
        );
        let plan = client
            .post_json("/v1/plan", &plan_request)
            .expect("plan request");
        assert_eq!(plan.status, 200, "plan failed: {}", plan.text());
        let direct_plan = direct
            .max_batch_for_device(
                job,
                direct.registry().get(&device).expect("device registered"),
                1,
                64,
            )
            .expect("direct plan succeeds");
        assert_eq!(
            plan.text(),
            api::plan_body(direct_plan),
            "plan responses must be byte-identical to the direct path"
        );
        let max_batch = direct_plan.map_or("-".to_string(), |b| b.to_string());
        println!("{:<44} {:>10} {:>12}", job.label(), device, max_batch);
    }

    // The wire layer's own accounting.
    let health = client.get("/healthz").expect("health probe");
    assert_eq!(health.status, 200);
    let metrics = client.get("/metrics").expect("metrics scrape");
    assert!(metrics
        .text()
        .contains("xmem_http_requests_total{route=\"best_device\"} 3"));
    println!(
        "\nserver answered {} requests | stage cache: {} hits, {} misses | profile runs: {}",
        server.metrics().requests_total(),
        direct.cache_stats().hits,
        direct.cache_stats().misses,
        direct.profile_runs(),
    );

    let report = server.shutdown();
    assert!(report.clean, "drain must complete cleanly");
    println!(
        "server drained cleanly after {} requests",
        report.requests_served
    );
}
