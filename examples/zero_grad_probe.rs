//! Probe the memory cost of `optimizer.zero_grad()` placement (paper
//! Fig. 1): POS0 (before backward) keeps last iteration's gradients alive
//! through the forward pass; POS1 (iteration start) frees them early.
//! xMem sees the difference from the CPU trace alone.
//!
//! ```text
//! cargo run --release --example zero_grad_probe
//! ```

use xmem::prelude::*;

fn main() {
    let device = GpuDevice::rtx3060();
    println!("zero_grad placement probe on {}:\n", device.name);
    for (model, batch) in [
        (ModelId::DistilGpt2, 16),
        (ModelId::GptNeo125M, 8),
        (ModelId::ConvNextTiny, 200),
    ] {
        let estimator = Estimator::new(EstimatorConfig::for_device(device));
        let mut row = format!("  {:<14}", model.info().name);
        for pos in [ZeroGradPos::BeforeBackward, ZeroGradPos::IterStart] {
            let spec = TrainJobSpec::new(model, OptimizerKind::AdamW, batch).with_zero_grad(pos);
            let est = estimator.estimate_job(&spec).expect("estimation succeeds");
            let truth = run_on_gpu(&spec, &device, None, false);
            row.push_str(&format!(
                "  {}: est {:>5.2} GiB / true {:>5.2} GiB",
                pos.label(),
                est.peak_bytes as f64 / (1u64 << 30) as f64,
                truth.peak_nvml as f64 / (1u64 << 30) as f64,
            ));
        }
        println!("{row}");
    }
    println!(
        "\nMoving zero_grad from POS0 to POS1 frees gradients before the\n\
         forward pass — a one-line change static analyzers cannot see."
    );
}
