//! Scheduler admission control over a **heterogeneous** GPU pool: pack a
//! queue of training jobs onto mixed device types using one xMem device
//! matrix, and compare against the naive policy (one job per GPU).
//!
//! This is the downstream use the paper motivates (§1), scaled to the
//! per-cluster deployment: the scheduler needs every pending job's demand
//! on *every* device type it operates, so it submits the whole queue as a
//! single batched-replay matrix through the async front end. The service
//! profiles and analyzes each distinct job **once** and fans the cached
//! analyses out to per-device allocator simulations — the stats line at
//! the end proves "1 analysis, N simulations" straight from the service
//! counters.
//!
//! ```text
//! cargo run --release --example scheduler_admission
//! ```

use xmem::prelude::*;

/// Registry names of the pool's device types, in the service's registry.
const DEVICE_TYPES: [&str; 2] = ["rtx3060", "rtx4060"];

struct Gpu {
    /// Which registry device type this physical GPU is.
    kind: &'static str,
    device: GpuDevice,
    committed: u64,
    jobs: Vec<usize>,
}

fn main() {
    let queue = [
        TrainJobSpec::new(ModelId::MobileNetV3Large, OptimizerKind::Adam, 300),
        TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 10),
        TrainJobSpec::new(
            ModelId::ResNet101,
            OptimizerKind::Sgd { momentum: true },
            300,
        ),
        TrainJobSpec::new(ModelId::T5Small, OptimizerKind::Adafactor, 15),
        TrainJobSpec::new(ModelId::MnasNet, OptimizerKind::RMSprop, 400),
        TrainJobSpec::new(ModelId::Opt125M, OptimizerKind::Sgd { momentum: false }, 20),
        // Re-submissions of earlier shapes — the common scheduler pattern;
        // their matrix rows are answered from the shared caches.
        TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 10),
        TrainJobSpec::new(ModelId::MobileNetV3Large, OptimizerKind::Adam, 300),
    ];
    // A mixed pool: one 12 GiB and two 8 GiB cards.
    let mut pool = [
        Gpu {
            kind: "rtx3060",
            device: GpuDevice::rtx3060(),
            committed: 0,
            jobs: Vec::new(),
        },
        Gpu {
            kind: "rtx4060",
            device: GpuDevice::rtx4060(),
            committed: 0,
            jobs: Vec::new(),
        },
        Gpu {
            kind: "rtx4060",
            device: GpuDevice::rtx4060(),
            committed: 0,
            jobs: Vec::new(),
        },
    ];
    let service = AsyncEstimationService::new(AsyncServiceConfig::for_device(pool[0].device));

    println!(
        "Admitting {} jobs onto a heterogeneous pool of {} GPUs ({} device types):\n",
        queue.len(),
        pool.len(),
        DEVICE_TYPES.len()
    );
    // The scheduler event loop: one matrix query answers every pending
    // job's demand on every device type it operates.
    let matrix_future = service
        .submit_matrix(&queue, &DEVICE_TYPES)
        .expect("queue sized for the workload");
    let matrix = block_on(matrix_future).expect("device types are registered");

    let mut rejected = 0usize;
    for (index, row) in matrix.rows.iter().enumerate() {
        // Best fit: try the pool's GPUs smallest-capacity-first, using
        // this job's demand *on that GPU's device type*.
        let mut order: Vec<usize> = (0..pool.len()).collect();
        order.sort_by_key(|&g| pool[g].device.capacity);
        let slot = order.into_iter().find(|&g| {
            row.cell(pool[g].kind)
                .is_some_and(|cell| match &cell.estimate {
                    Ok(e) => {
                        !e.oom_predicted
                            && pool[g].device.framework_bytes + pool[g].committed + e.job_peak_bytes
                                <= pool[g].device.capacity
                    }
                    Err(_) => false,
                })
        });
        match slot {
            Some(g) => {
                let demand = row
                    .cell(pool[g].kind)
                    .and_then(|c| c.estimate.as_ref().ok())
                    .expect("fitting cell has an estimate")
                    .job_peak_bytes;
                pool[g].committed += demand;
                pool[g].jobs.push(index);
                println!(
                    "  ADMIT {:<40} -> GPU {g} ({}) demand {:>6.2} GiB",
                    row.spec.label(),
                    pool[g].kind,
                    demand as f64 / (1u64 << 30) as f64
                );
            }
            None => {
                rejected += 1;
                println!(
                    "  QUEUE {:<40} (no capacity on any device)",
                    row.spec.label()
                );
            }
        }
    }

    let inner = service.service();
    let sims = inner.sim_stats();
    println!(
        "\nService after admission: {} analyses for {} jobs x {} device types \
         ({} simulations, {} sim-cache hits) — duplicate shapes were packed \
         without re-profiling.",
        inner.profile_runs(),
        queue.len(),
        DEVICE_TYPES.len(),
        sims.sim_runs,
        sims.cache.hits,
    );
    println!();
    for (i, gpu) in pool.iter().enumerate() {
        println!(
            "GPU {i} ({}): {} jobs, {:.2}/{:.2} GiB committed -> {:?}",
            gpu.kind,
            gpu.jobs.len(),
            (gpu.device.framework_bytes + gpu.committed) as f64 / (1u64 << 30) as f64,
            gpu.device.capacity as f64 / (1u64 << 30) as f64,
            gpu.jobs
                .iter()
                .map(|&j| queue[j].label())
                .collect::<Vec<_>>()
        );
    }
    let placed = pool.iter().map(|g| g.jobs.len()).sum::<usize>();
    println!(
        "\nxMem-guided packing placed {placed}/{} jobs on {} GPUs ({rejected} deferred);\n\
         the naive whole-GPU policy would have placed {}. Verifying co-located\n\
         demand stays under capacity with real runs:",
        queue.len(),
        pool.len(),
        pool.len()
    );
    // Verify: per GPU, the sum of true peaks (minus shared framework) fits.
    // Duplicates are counted deliberately — a re-submitted job was admitted
    // twice, and each admission reserved its own demand slice.
    for (i, gpu) in pool.iter().enumerate() {
        let mut true_total = gpu.device.framework_bytes;
        for &index in &gpu.jobs {
            let gt = run_on_gpu(&queue[index], &gpu.device, None, false);
            assert!(!gt.oom, "an admitted job must fit its own GPU");
            true_total += gt.peak_nvml - gpu.device.framework_bytes;
        }
        println!(
            "  GPU {i} ({}): true co-located demand {:.2} GiB <= {:.2} GiB capacity: {}",
            gpu.kind,
            true_total as f64 / (1u64 << 30) as f64,
            gpu.device.capacity as f64 / (1u64 << 30) as f64,
            true_total <= gpu.device.capacity
        );
        assert!(true_total <= gpu.device.capacity);
    }
}
