//! Scheduler admission control: pack a queue of training jobs onto a small
//! GPU pool using xMem estimates, and compare against the naive policy
//! (one job per GPU).
//!
//! This is the downstream use the paper motivates (§1): accurate a-priori
//! estimates let a scheduler co-locate jobs safely instead of reserving
//! whole devices. Estimation goes through the **async** front end the way
//! a scheduler event loop would: every queued job's admission check is
//! submitted up front as a future — a thundering herd — and the service
//! answers them all while single-flighting duplicate shapes onto one
//! profile run.
//!
//! ```text
//! cargo run --release --example scheduler_admission
//! ```

use xmem::prelude::*;

struct Gpu {
    device: GpuDevice,
    committed: u64,
    jobs: Vec<String>,
}

fn main() {
    let queue = [
        TrainJobSpec::new(ModelId::MobileNetV3Large, OptimizerKind::Adam, 300),
        TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 10),
        TrainJobSpec::new(
            ModelId::ResNet101,
            OptimizerKind::Sgd { momentum: true },
            300,
        ),
        TrainJobSpec::new(ModelId::T5Small, OptimizerKind::Adafactor, 15),
        TrainJobSpec::new(ModelId::MnasNet, OptimizerKind::RMSprop, 400),
        TrainJobSpec::new(ModelId::Opt125M, OptimizerKind::Sgd { momentum: false }, 20),
        // Re-submissions of earlier shapes — the common scheduler pattern;
        // these are answered from the service cache.
        TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 10),
        TrainJobSpec::new(ModelId::MobileNetV3Large, OptimizerKind::Adam, 300),
    ];
    let mut pool = [
        Gpu {
            device: GpuDevice::rtx3060(),
            committed: 0,
            jobs: Vec::new(),
        },
        Gpu {
            device: GpuDevice::rtx3060(),
            committed: 0,
            jobs: Vec::new(),
        },
    ];
    let service = AsyncEstimationService::new(AsyncServiceConfig::for_device(pool[0].device));

    println!(
        "Admitting {} jobs onto {} GPUs using xMem estimates:\n",
        queue.len(),
        pool.len()
    );
    // The scheduler event loop: submit every pending job's admission
    // check at once, then drive all the futures from this one thread.
    let futures: Vec<_> = queue
        .iter()
        .map(|job| service.submit(job).expect("queue sized for the workload"))
        .collect();
    let estimates = block_on(join_all(futures));

    let mut rejected = Vec::new();
    for (job, estimate) in queue.iter().zip(estimates) {
        let estimate = estimate.expect("estimation succeeds");
        // Job memory demand beyond the per-device framework overhead (paid
        // once per device, not per job).
        let demand = estimate.job_peak_bytes;
        let slot = pool
            .iter_mut()
            .find(|g| g.device.framework_bytes + g.committed + demand <= g.device.capacity);
        match slot {
            Some(gpu) => {
                gpu.committed += demand;
                gpu.jobs.push(job.label());
                println!(
                    "  ADMIT {:<40} demand {:>6.2} GiB",
                    job.label(),
                    demand as f64 / (1u64 << 30) as f64
                );
            }
            None => {
                rejected.push(job.label());
                println!("  QUEUE {:<40} (no capacity)", job.label());
            }
        }
    }
    let inner = service.service();
    let stats = inner.cache_stats();
    let flights = inner.flight_stats();
    println!(
        "\nService after admission: {} cache hits, {} misses; single-flight \
         coalesced {} duplicate checks; {} profile runs for {} submissions — \
         re-submitted jobs were admitted without re-profiling.",
        stats.hits,
        stats.misses,
        flights.coalesced,
        inner.profile_runs(),
        queue.len()
    );
    println!();
    for (i, gpu) in pool.iter().enumerate() {
        println!(
            "GPU {i}: {} jobs, {:.2}/{:.2} GiB committed -> {:?}",
            gpu.jobs.len(),
            (gpu.device.framework_bytes + gpu.committed) as f64 / (1u64 << 30) as f64,
            gpu.device.capacity as f64 / (1u64 << 30) as f64,
            gpu.jobs
        );
    }
    let placed = pool.iter().map(|g| g.jobs.len()).sum::<usize>();
    println!(
        "\nxMem-guided packing placed {placed}/{} jobs on 2 GPUs; the naive\n\
         whole-GPU policy would have placed 2. Verifying co-located demand\n\
         stays under capacity with real runs:",
        queue.len()
    );
    // Verify: per GPU, the sum of true peaks (minus shared framework) fits.
    // Duplicates are counted deliberately — a re-submitted job was admitted
    // twice, and each admission reserved its own demand slice.
    for (i, gpu) in pool.iter().enumerate() {
        let mut true_total = gpu.device.framework_bytes;
        for label in &gpu.jobs {
            let job = queue
                .iter()
                .find(|j| &j.label() == label)
                .expect("admitted job came from the queue");
            let gt = run_on_gpu(job, &gpu.device, None, false);
            assert!(!gt.oom);
            true_total += gt.peak_nvml - gpu.device.framework_bytes;
        }
        println!(
            "  GPU {i}: true co-located demand {:.2} GiB <= {:.2} GiB capacity: {}",
            true_total as f64 / (1u64 << 30) as f64,
            gpu.device.capacity as f64 / (1u64 << 30) as f64,
            true_total <= gpu.device.capacity
        );
    }
}
