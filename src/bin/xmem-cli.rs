//! `xmem-cli` — the command-line front end of the estimator, mirroring how
//! the paper's released tool is used: profile a job on the CPU, estimate
//! its peak GPU memory, inspect per-layer demand.
//!
//! ```text
//! xmem-cli estimate --model gpt2 --optimizer AdamW --batch 16 --device rtx3060
//! xmem-cli sweep    --model gpt2 --optimizer AdamW --batches 1,2,4,8,16,32
//! xmem-cli plan     --model gpt2 --optimizer AdamW --min 1 --max 128 --device rtx3060
//! xmem-cli matrix   --models gpt2,resnet101 --optimizer AdamW --batch 16 \
//!                   --devices rtx3060,rtx4060,a100
//! xmem-cli serve    --jobs queue.jobs --device rtx3060
//! xmem-cli profile  --model distilgpt2 --optimizer Adam --batch 8 --out trace.json
//! xmem-cli estimate-trace --trace trace.json --device rtx4060
//! xmem-cli layers   --model t5-base --optimizer Adafactor --batch 8 --top 12
//! xmem-cli models
//! ```
//!
//! `sweep` and `plan` run through the concurrent [`EstimationService`]:
//! the batch grid fans out across worker threads and the profiled stages
//! are cached, so overlapping probes are answered without re-profiling.
//! `matrix` is the multi-device batched replay: every listed job is
//! profiled and analyzed **once**, and the cached analysis fans out to a
//! concurrent allocator simulation per device — the per-cluster question
//! "which of my device types fits each pending job?" answered in one
//! call. `serve` is the scheduler-shaped batch mode: it reads one job per
//! line, submits them all through the [`AsyncEstimationService`] (with
//! `Busy` backpressure handling and optional per-query deadlines), and
//! drives the resulting futures from a single thread.
//!
//! Every device-addressing command accepts `--registry <file.json>`: a
//! fleet description merged over the built-in devices, so a cluster
//! operator can estimate against custom capacities by name (see
//! [`DeviceRegistry::extend_from_json_str`] for the format).

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xmem::core::{layer_report, render_layer_report, render_report, Analyzer, Orchestrator};
use xmem::prelude::*;
use xmem::server::{ClusterConfig, ServerConfig, ServerHandle};
use xmem::service::jobspec::{parse_jobs_text, JobDraft};
use xmem::service::{AsyncServiceConfig, LogLevel, Telemetry, TelemetryConfig};
use xmem::trace::Trace;

fn usage() -> &'static str {
    "usage: xmem-cli <command> [options]\n\
     commands:\n\
       estimate        --model <name> --optimizer <name> --batch <n>\n\
                       [--seq <n>] [--iterations <n>]\n\
                       [--device <name>] [--registry <file.json>] [--pos1] [--fp16]\n\
       sweep           (same job options) --batches <n,n,...> [--threads <n>]\n\
       plan            (same job options, no --batch) --min <n> --max <n>\n\
                       [--threads <n>]  find the largest batch that fits\n\
       matrix          --models <m1,m2,...> --optimizer <name> --batch <n>\n\
                       [--devices <d1,d2,...>] [--registry <file.json>]\n\
                       [--threads <n>] (same job options otherwise)\n\
                       one analysis per model, replayed against every device;\n\
                       prints the fit grid and the best-fit device per job\n\
       serve           --jobs <file|-> [--device ...] [--registry <file.json>]\n\
                       [--workers <n>] [--queue <n>] [--deadline-ms <n>]\n\
                       batch mode: one job per line\n\
                       (`<model> <optimizer> <batch> [seq=N] [iters=N] [pos1] [fp16]`,\n\
                       `#` comments), answered through the async service\n\
       listen          --addr <host:port> [--device ...] [--registry <file.json>]\n\
                       [--workers <n>] [--queue <n>] [--conns <n>] [--drain-ms <n>]\n\
                       [--state-dir <dir>] [--snapshot-ms <n>]\n\
                       [--log-level off|error|warn|info] [--slow-ms <n>]\n\
                       [--trace-capacity <n>]\n\
                       [--peers <a1,a2,...> --auth-token <secret>\n\
                       [--advertise <host:port>]]\n\
                       HTTP/1.1 server: POST /v1/estimate|matrix|sweep|plan|best-device\n\
                       (JSON jobs, same grammar), GET /healthz, GET /metrics\n\
                       (Prometheus), GET /v1/debug/traces (recent request\n\
                       traces; ?n= last-N, ?slow_ms= filter);\n\
                       POST /v1/shutdown drains and exits;\n\
                       --log-level sets the per-request JSON log on stderr\n\
                       (default info), --slow-ms marks+warns slow requests;\n\
                       --state-dir persists cache state (snapshot + journal)\n\
                       across restarts: a warm boot re-serves prior jobs\n\
                       without re-profiling;\n\
                       --peers joins a consistent-hash cluster: requests\n\
                       route to the key's owner (forwarded over HTTP with\n\
                       an x-xmem-forwarded hop guard), and every /v1/*\n\
                       request must carry the shared x-xmem-auth secret;\n\
                       --advertise overrides the ring identity when the\n\
                       bind address is not peer-reachable\n\
       profile         (same job options) --out <trace.json>\n\
       estimate-trace  --trace <trace.json> [--device ...]\n\
       layers          (same job options) [--top <n>]\n\
       models          list the model zoo\n\
     devices default to the built-in registry (rtx3060, rtx4060, a100);\n\
     --registry merges a JSON fleet file over it;\n\
     docs/JOBSPEC.md specifies the shared job grammar (flags, job lines,\n\
     HTTP JSON) with every field, default, and error message\n"
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{flag}`"))?;
        match key {
            "pos1" | "fp16" => {
                flags.insert(key.to_string(), "true".to_string());
            }
            _ => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("missing value for --{key}"))?;
                flags.insert(key.to_string(), value.clone());
            }
        }
    }
    Ok(flags)
}

/// The device fleet a command runs against: the built-in registry, with
/// an optional `--registry <file.json>` merged over it.
fn registry_of(flags: &HashMap<String, String>) -> Result<DeviceRegistry, String> {
    let registry = DeviceRegistry::builtin();
    if let Some(path) = flags.get("registry") {
        let json = std::fs::read_to_string(path).map_err(|e| format!("read {path} failed: {e}"))?;
        registry
            .extend_from_json_str(&json)
            .map_err(|e| format!("registry {path}: {e}"))?;
    }
    Ok(registry)
}

fn device_of(
    flags: &HashMap<String, String>,
    registry: &DeviceRegistry,
) -> Result<GpuDevice, String> {
    let name = flags.get("device").map(String::as_str).unwrap_or("rtx3060");
    registry.get(name).ok_or_else(|| {
        format!(
            "unknown device `{name}` (known: {})",
            registry.names().join("|")
        )
    })
}

fn job_of(flags: &HashMap<String, String>) -> Result<TrainJobSpec, String> {
    job_with_batch(flags, None)
}

/// Builds a job spec through the shared grammar
/// ([`xmem::service::jobspec`]); `default_batch` backs commands
/// (`sweep`, `plan`) where the batch size comes from the grid, not
/// `--batch`.
fn job_with_batch(
    flags: &HashMap<String, String>,
    default_batch: Option<usize>,
) -> Result<TrainJobSpec, String> {
    let mut draft = JobDraft::new();
    for field in ["model", "optimizer", "batch", "seq", "iterations"] {
        if let Some(value) = flags.get(field) {
            draft.set(field, value)?;
        }
    }
    for flag in ["pos1", "fp16"] {
        if flags.contains_key(flag) {
            draft.set(flag, "true")?;
        }
    }
    draft.build(default_batch)
}

fn threads_of(flags: &HashMap<String, String>) -> Result<usize, String> {
    flags
        .get("threads")
        .map(|t| {
            t.parse()
                .map_err(|_| "--threads must be a number".to_string())
        })
        .unwrap_or(Ok(0))
}

/// The `matrix` command: profile + analyze each listed model **once**,
/// then replay the cached analyses against every named device — the
/// per-cluster "which device type fits which job?" grid in one call.
fn matrix(flags: &HashMap<String, String>) -> Result<(), String> {
    let registry = registry_of(flags)?;
    let model_list = flags
        .get("models")
        .ok_or("--models is required (e.g. --models gpt2,resnet101)")?;
    let mut specs = Vec::new();
    for name in model_list.split(',') {
        let mut per_model = flags.clone();
        per_model.insert("model".to_string(), name.trim().to_string());
        specs.push(job_of(&per_model)?);
    }
    if specs.is_empty() {
        return Err("--models must name at least one model".to_string());
    }
    let devices: Vec<String> = match flags.get("devices") {
        Some(list) => list.split(',').map(|d| d.trim().to_string()).collect(),
        None => registry.names(),
    };
    if devices.is_empty() {
        return Err("no devices to simulate against".to_string());
    }

    let service = EstimationService::new(
        ServiceConfig::for_device(device_of(flags, &registry)?)
            .with_threads(threads_of(flags)?)
            .with_registry(registry.clone()),
    );
    let names: Vec<&str> = devices.iter().map(String::as_str).collect();
    let matrix = service
        .estimate_matrix(&specs, &names)
        .map_err(|e| format!("matrix failed: {e}"))?;

    const MIB: f64 = (1u64 << 20) as f64;
    print!("{:<44}", "job \\ peak (MiB) on");
    for device in &matrix.devices {
        print!(" {device:>14}");
    }
    println!(" {:>14}", "best fit");
    let mut failed = 0usize;
    for row in &matrix.rows {
        print!("{:<44}", row.spec.label());
        for cell in &row.cells {
            match &cell.estimate {
                Ok(e) if e.oom_predicted => print!(" {:>14}", "OOM"),
                Ok(e) => print!(" {:>14.1}", e.peak_bytes as f64 / MIB),
                Err(_) => {
                    failed += 1;
                    print!(" {:>14}", "error");
                }
            }
        }
        // Best fit over the *requested* columns: the smallest-capacity
        // device predicted to hold the job.
        let best = row
            .fitting_devices()
            .into_iter()
            .filter_map(|name| registry.get(name).map(|d| (d.capacity, name)))
            .min_by_key(|&(capacity, name)| (capacity, name.to_string()));
        match best {
            Some((_, name)) => println!(" {name:>14}"),
            None => println!(" {:>14}", "-"),
        }
    }
    let sims = service.sim_stats();
    println!(
        "analysis runs: {} (one per job) | simulations: {} ({} jobs x {} devices) | \
         sim cache: {} hits, {} misses",
        service.profile_runs(),
        sims.sim_runs,
        matrix.rows.len(),
        matrix.devices.len(),
        sims.cache.hits,
        sims.cache.misses,
    );
    println!(
        "replay strategy: {} fast-path derivations, {} full replays, {} unbounded seed replays",
        sims.fast_path_hits, sims.full_replays, sims.unbounded_replays,
    );
    if failed > 0 {
        return Err(format!("{failed} matrix cells failed estimation"));
    }
    Ok(())
}

/// The `serve` command: answer a whole queue of jobs through the async
/// front end — submit everything (draining in-flight futures when the
/// bounded queue pushes back), then drive all futures from this thread.
fn serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let source = flags
        .get("jobs")
        .ok_or("--jobs is required (a file, or - for stdin)")?;
    let text = if source == "-" {
        use std::io::Read;
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| format!("read stdin failed: {e}"))?;
        buffer
    } else {
        std::fs::read_to_string(source).map_err(|e| format!("read {source} failed: {e}"))?
    };
    let specs = parse_jobs_text(&text)?;
    if specs.is_empty() {
        return Err("no jobs found".to_string());
    }

    let registry = registry_of(flags)?;
    let device = device_of(flags, &registry)?;
    let parse_usize = |key: &str, default: usize| -> Result<usize, String> {
        flags
            .get(key)
            .map(|v| v.parse().map_err(|_| format!("--{key} must be a number")))
            .unwrap_or(Ok(default))
    };
    let workers = parse_usize("workers", 0)?;
    let queue_depth = parse_usize("queue", 1024)?;
    let deadline = flags
        .get("deadline-ms")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| "--deadline-ms must be a number".to_string())
        })
        .transpose()?
        .map(|ms| Instant::now() + Duration::from_millis(ms));

    let service = AsyncEstimationService::new(
        AsyncServiceConfig::for_device(device)
            .with_workers(workers)
            .with_queue_depth(queue_depth)
            .with_registry(registry),
    );
    eprintln!(
        "serving {} jobs on {} workers (queue depth {queue_depth})",
        specs.len(),
        service.workers()
    );

    let mut futures: Vec<EstimateFuture> = Vec::with_capacity(specs.len());
    // Monotonic cursor over the submission order: everything before it is
    // settled, so Busy-retries never rescan resolved futures.
    let mut first_pending = 0;
    for spec in &specs {
        loop {
            let submitted = match deadline {
                Some(deadline) => service.submit_with_deadline(spec, deadline),
                None => service.submit(spec),
            };
            match submitted {
                Ok(future) => {
                    futures.push(future);
                    break;
                }
                Err(SubmitError::Busy) => {
                    // Backpressure: resolve the oldest unresolved future
                    // to free queue room, then retry this submission.
                    while first_pending < futures.len() && futures[first_pending].is_settled() {
                        first_pending += 1;
                    }
                    match futures.get(first_pending) {
                        Some(pending) => {
                            let _ = pending.wait();
                        }
                        None => std::thread::yield_now(),
                    }
                }
            }
        }
    }

    let outputs = block_on(join_all(futures));
    println!(
        "{:<44} {:>14} {:>14} {:>6}",
        "job", "peak (MiB)", "job peak (MiB)", "fits"
    );
    let mut failed = 0usize;
    for (spec, output) in specs.iter().zip(&outputs) {
        match output {
            Ok(e) => println!(
                "{:<44} {:>14.1} {:>14.1} {:>6}",
                spec.label(),
                e.peak_bytes as f64 / (1 << 20) as f64,
                e.job_peak_bytes as f64 / (1 << 20) as f64,
                if e.oom_predicted { "OOM" } else { "yes" }
            ),
            Err(e) => {
                failed += 1;
                println!("{:<44} {e}", spec.label());
            }
        }
    }
    let inner = service.service();
    let cache = inner.cache_stats();
    let flights = inner.flight_stats();
    let negative = inner.negative_stats();
    println!(
        "cache: {} hits, {} misses | single-flight: {} executions, {} coalesced | \
         negative: {} hits, {} insertions | profile runs: {}",
        cache.hits,
        cache.misses,
        flights.executions,
        flights.coalesced,
        negative.hits,
        negative.insertions,
        inner.profile_runs()
    );
    // Per-job failures are reported in the table above, but the process
    // must still signal them (like every other subcommand) so CI and
    // scripts notice estimation regressions.
    if failed > 0 {
        return Err(format!("{failed}/{} jobs failed estimation", specs.len()));
    }
    Ok(())
}

/// The `listen` command: serve the estimation service over HTTP/1.1
/// until a graceful drain is requested (`POST /v1/shutdown` on the wire,
/// or process termination).
fn listen(flags: &HashMap<String, String>) -> Result<(), String> {
    let registry = registry_of(flags)?;
    let device = device_of(flags, &registry)?;
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let parse_usize = |key: &str, default: usize| -> Result<usize, String> {
        flags
            .get(key)
            .map(|v| v.parse().map_err(|_| format!("--{key} must be a number")))
            .unwrap_or(Ok(default))
    };
    let workers = parse_usize("workers", 0)?;
    let queue_depth = parse_usize("queue", 1024)?;
    let conns = parse_usize("conns", 64)?;
    let drain_ms = parse_usize("drain-ms", 5000)?;
    let snapshot_ms = parse_usize("snapshot-ms", 2000)?;
    let slow_ms = parse_usize("slow-ms", 0)?;
    let trace_capacity = parse_usize("trace-capacity", 256)?;
    let log_level = LogLevel::parse(flags.get("log-level").map_or("info", String::as_str))?;

    let mut service_config = ServiceConfig::for_device(device).with_registry(registry);
    if let Some(dir) = flags.get("state-dir") {
        service_config = service_config.with_state_dir(dir);
    }
    let inner = Arc::new(EstimationService::new(service_config));
    let persist = inner.persist_stats();
    if flags.contains_key("state-dir") && !persist.enabled {
        return Err(
            "--state-dir is unusable (see the message above); refusing to \
                    listen without the durability that was asked for"
                .to_string(),
        );
    }
    if persist.enabled {
        println!(
            "state recovered: {} entries ({} skipped, {} torn tails)",
            persist.recovered_entries, persist.recovery_skipped, persist.recovery_truncated
        );
    }
    let snapshotter = persist.enabled.then(|| {
        xmem::service::Snapshotter::spawn(
            Arc::clone(&inner),
            Duration::from_millis(snapshot_ms as u64),
        )
    });
    let service = Arc::new(AsyncEstimationService::from_service(
        Arc::clone(&inner),
        workers,
        queue_depth,
    ));
    let telemetry = Telemetry::new(
        TelemetryConfig::default()
            .with_capacity(trace_capacity)
            .with_log_level(log_level)
            .with_slow_ms(slow_ms as u64),
    );
    let config = ServerConfig::default()
        .with_workers(conns)
        .with_drain_timeout(Duration::from_millis(drain_ms as u64))
        .with_telemetry(telemetry);
    let mut server = ServerHandle::bind(addr.as_str(), Arc::clone(&service), config)
        .map_err(|e| format!("bind {addr} failed: {e}"))?;
    if let Some(peer_list) = flags.get("peers") {
        let auth_token = flags
            .get("auth-token")
            .cloned()
            .ok_or("--peers requires --auth-token (the shared x-xmem-auth secret)")?;
        let peers: Vec<String> = peer_list
            .split(',')
            .map(|p| p.trim().to_string())
            .filter(|p| !p.is_empty())
            .collect();
        let self_addr = flags
            .get("advertise")
            .cloned()
            .unwrap_or_else(|| server.local_addr().to_string());
        let cluster = ClusterConfig {
            self_addr,
            peers,
            auth_token,
        };
        server.install_cluster(&cluster)?;
        let ring_len = server.cluster().map(|c| c.ring().len()).unwrap_or(0);
        println!(
            "cluster: {} in a {ring_len}-node ring (x-xmem-auth required on /v1/*)",
            cluster.self_addr,
        );
    } else if flags.contains_key("auth-token") {
        return Err("--auth-token requires --peers (cluster mode)".to_string());
    }
    println!("listening on http://{}", server.local_addr());
    println!(
        "routes: POST /v1/estimate /v1/matrix /v1/sweep /v1/plan /v1/best-device | \
         GET /healthz /metrics /v1/debug/traces | POST /v1/shutdown drains"
    );
    let report = server.wait();
    if let Some(snapshotter) = snapshotter {
        snapshotter.stop();
        // The drain already stopped the ingress, so this snapshot is the
        // complete final state: a restart with the same --state-dir warm-
        // boots every cached entry.
        match inner.snapshot_now() {
            Ok(_) => {
                let stats = inner.persist_stats();
                println!(
                    "final snapshot written: {} bytes, {} snapshot writes this run",
                    stats.snapshot_bytes, stats.snapshot_writes
                );
            }
            Err(e) => eprintln!("final snapshot failed: {e}"),
        }
    }
    println!(
        "drained ({}): {} requests served | cache: {} hits, {} misses | profile runs: {}",
        if report.clean { "clean" } else { "stragglers" },
        report.requests_served,
        inner.cache_stats().hits,
        inner.cache_stats().misses,
        inner.profile_runs()
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return Err(usage().to_string());
    };
    let flags = parse_flags(rest)?;
    match command.as_str() {
        "estimate" => {
            let spec = job_of(&flags)?;
            let device = device_of(&flags, &registry_of(&flags)?)?;
            let estimator = Estimator::new(EstimatorConfig::for_device(device));
            let estimate = estimator
                .estimate_job(&spec)
                .map_err(|e| format!("estimation failed: {e}"))?;
            print!("{}", render_report(&spec.label(), &estimate));
            Ok(())
        }
        "sweep" => {
            let spec = job_with_batch(&flags, Some(1))?;
            let device = device_of(&flags, &registry_of(&flags)?)?;
            let mut batches: Vec<usize> = Vec::new();
            for raw in flags
                .get("batches")
                .ok_or("--batches is required (e.g. --batches 1,2,4,8)")?
                .split(',')
            {
                let batch: usize = raw
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad batch `{raw}`"))?;
                if batch == 0 {
                    return Err("`batch` must be >= 1".to_string());
                }
                if !batches.contains(&batch) {
                    batches.push(batch);
                }
            }
            if batches.is_empty() {
                return Err("--batches must name at least one batch size".to_string());
            }
            let service = EstimationService::new(
                ServiceConfig::for_device(device).with_threads(threads_of(&flags)?),
            );
            println!(
                "{:<8} {:>14} {:>14} {:>6}",
                "batch", "peak (MiB)", "job peak (MiB)", "fits"
            );
            for (batch, estimate) in service.sweep(&spec, &batches) {
                match estimate {
                    Ok(e) => println!(
                        "{:<8} {:>14.1} {:>14.1} {:>6}",
                        batch,
                        e.peak_bytes as f64 / (1 << 20) as f64,
                        e.job_peak_bytes as f64 / (1 << 20) as f64,
                        if e.oom_predicted { "OOM" } else { "yes" }
                    ),
                    Err(e) => println!("{batch:<8} estimation failed: {e}"),
                }
            }
            let stats = service.cache_stats();
            println!("cache: {} hits, {} misses", stats.hits, stats.misses);
            Ok(())
        }
        "plan" => {
            let spec = job_with_batch(&flags, Some(1))?;
            let device = device_of(&flags, &registry_of(&flags)?)?;
            let parse_bound = |key: &str, default: usize| -> Result<usize, String> {
                flags
                    .get(key)
                    .map(|v| v.parse().map_err(|_| format!("--{key} must be a number")))
                    .unwrap_or(Ok(default))
            };
            let lo = parse_bound("min", 1)?;
            let hi = parse_bound("max", 1024)?;
            if lo < 1 || lo > hi {
                return Err(format!("invalid batch range [{lo}, {hi}]"));
            }
            let service = EstimationService::new(
                ServiceConfig::for_device(device).with_threads(threads_of(&flags)?),
            );
            match service.max_batch_for_device(&spec, device, lo, hi) {
                Ok(Some(batch)) => println!(
                    "largest batch for {} on {}: {batch}",
                    spec.label(),
                    device.name
                ),
                Ok(None) => println!(
                    "{} does not fit {} at any batch in [{lo}, {hi}]",
                    spec.label(),
                    device.name
                ),
                Err(e) => return Err(format!("estimation failed: {e}")),
            }
            let stats = service.cache_stats();
            println!("cache: {} hits, {} misses", stats.hits, stats.misses);
            Ok(())
        }
        "matrix" => matrix(&flags),
        "serve" => serve(&flags),
        "listen" => listen(&flags),
        "profile" => {
            let spec = job_of(&flags)?;
            let out = flags.get("out").ok_or("--out is required")?;
            let trace = profile_on_cpu(&spec);
            let json = trace
                .to_json_string()
                .map_err(|e| format!("serialize failed: {e}"))?;
            std::fs::write(out, json).map_err(|e| format!("write failed: {e}"))?;
            println!(
                "wrote {} events ({} memory instants) to {out}",
                trace.events().len(),
                trace.memory_instants().count()
            );
            Ok(())
        }
        "estimate-trace" => {
            let path = flags.get("trace").ok_or("--trace is required")?;
            let device = device_of(&flags, &registry_of(&flags)?)?;
            let json = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
            let trace = Trace::from_json_str(&json).map_err(|e| format!("parse failed: {e}"))?;
            let estimator = Estimator::new(EstimatorConfig::for_device(device));
            let estimate = estimator
                .estimate_trace(&trace)
                .map_err(|e| format!("estimation failed: {e}"))?;
            print!("{}", render_report(trace.name(), &estimate));
            Ok(())
        }
        "layers" => {
            let spec = job_of(&flags)?;
            let top: usize = flags
                .get("top")
                .map(|t| t.parse().map_err(|_| "--top must be a number".to_string()))
                .transpose()?
                .unwrap_or(15);
            let trace = profile_on_cpu(&spec);
            let analyzed = Analyzer::new()
                .analyze(&trace)
                .map_err(|e| format!("analysis failed: {e}"))?;
            let report = layer_report(&analyzed, &Orchestrator::default());
            print!("{}", render_layer_report(&report, top));
            Ok(())
        }
        "models" => {
            println!(
                "{:<32} {:<12} {:>14} {:<14}",
                "name", "class", "params", "batch grid"
            );
            for model in ModelId::all() {
                let info = model.info();
                println!(
                    "{:<32} {:<12} {:>14} {:<14}",
                    info.name,
                    info.arch.label(),
                    info.published_params,
                    format!(
                        "{}..{}/{}",
                        info.batch_grid.min, info.batch_grid.max, info.batch_grid.step
                    )
                );
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
