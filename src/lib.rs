//! # xMem — CPU-based a-priori estimation of peak GPU memory
//!
//! A full Rust reproduction of *"xMem: A CPU-Based Approach for Accurate
//! Estimation of GPU Memory in Deep Learning Training Workloads"*
//! (Middleware '25). This facade crate re-exports the workspace:
//!
//! * [`core`] — the xMem pipeline: Analyzer → Orchestrator → Simulator;
//! * [`runtime`] — the memory-level training runtime (CPU profiling
//!   backend and simulated-GPU ground truth);
//! * [`models`] — the 25-model zoo of the evaluation;
//! * [`alloc`] — the two-level caching-allocator simulation;
//! * [`trace`] — the profiler trace format;
//! * [`graph`], [`optim`] — model IR and optimizer memory models;
//! * [`baselines`] — DNNMem, SchedTune and LLMem reproductions;
//! * [`eval`] — metrics, two-round validation, ANOVA/Monte Carlo
//!   campaigns;
//! * [`service`] — the concurrent, cache-backed estimation service for
//!   scheduler-scale traffic (parallel sweeps, admission control);
//! * [`server`] — the dependency-free HTTP/1.1 serving front end
//!   (`xmem-cli listen`) plus the matching blocking client.
//!
//! # Quick start
//!
//! ```
//! use xmem::prelude::*;
//!
//! // Describe the job a user wants to submit.
//! let job = TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 16);
//!
//! // Estimate its peak GPU memory without touching the GPU.
//! let estimator = Estimator::new(EstimatorConfig::for_device(GpuDevice::rtx3060()));
//! let estimate = estimator.estimate_job(&job).unwrap();
//!
//! assert!(estimate.peak_bytes > 1 << 30);
//! assert!(!estimate.oom_predicted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use xmem_alloc as alloc;
pub use xmem_baselines as baselines;
pub use xmem_core as core;
pub use xmem_eval as eval;
pub use xmem_graph as graph;
pub use xmem_models as models;
pub use xmem_optim as optim;
pub use xmem_runtime as runtime;
pub use xmem_server as server;
pub use xmem_service as service;
pub use xmem_trace as trace;

/// The names needed for everyday use of the estimator.
pub mod prelude {
    pub use xmem_baselines::{EstimateOutcome, MemoryEstimator};
    pub use xmem_core::{
        DeviceMatrix, DevicePlacement, Estimate, Estimator, EstimatorConfig, MatrixCell, MatrixRow,
    };
    pub use xmem_models::ModelId;
    pub use xmem_optim::OptimizerKind;
    pub use xmem_runtime::{profile_on_cpu, run_on_gpu, GpuDevice, TrainJobSpec, ZeroGradPos};
    pub use xmem_service::{
        block_on, join_all, AsyncEstimationService, AsyncServiceConfig, CacheStats, DeviceRegistry,
        EstimateFuture, EstimationService, Executor, MatrixFuture, ServiceConfig, SubmitError,
    };
}
