//! Statistical helpers: quantiles, box statistics and a one-way ANOVA F
//! test (the paper's §4.1.4 "ANOVA" setting analyzes error distributions
//! across estimators).

use serde::{Deserialize, Serialize};

/// Five-number summary of a sample (rendered as a box plot in the paper's
/// Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Sample size.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Linear-interpolated quantile (type-7, the numpy default).
#[must_use]
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

impl BoxStats {
    /// Computes the summary; returns `None` for empty samples.
    #[must_use]
    pub fn of(values: &[f64]) -> Option<BoxStats> {
        if values.is_empty() {
            return None;
        }
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Some(BoxStats {
            n: v.len(),
            min: v[0],
            q1: quantile(&v, 0.25),
            median: quantile(&v, 0.5),
            q3: quantile(&v, 0.75),
            max: *v.last().expect("non-empty"),
        })
    }
}

/// One-way ANOVA result over k groups.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnovaResult {
    /// F statistic (between-group MS / within-group MS).
    pub f_statistic: f64,
    /// Between-group degrees of freedom (k − 1).
    pub df_between: usize,
    /// Within-group degrees of freedom (N − k).
    pub df_within: usize,
}

/// One-way ANOVA over groups of observations. Returns `None` when fewer
/// than two non-empty groups or no within-group variance freedom exists.
#[must_use]
pub fn one_way_anova(groups: &[Vec<f64>]) -> Option<AnovaResult> {
    let groups: Vec<&Vec<f64>> = groups.iter().filter(|g| !g.is_empty()).collect();
    let k = groups.len();
    let n: usize = groups.iter().map(|g| g.len()).sum();
    if k < 2 || n <= k {
        return None;
    }
    let grand_mean = groups.iter().flat_map(|g| g.iter()).sum::<f64>() / n as f64;
    let ss_between: f64 = groups
        .iter()
        .map(|g| {
            let mean = g.iter().sum::<f64>() / g.len() as f64;
            g.len() as f64 * (mean - grand_mean).powi(2)
        })
        .sum();
    let ss_within: f64 = groups
        .iter()
        .map(|g| {
            let mean = g.iter().sum::<f64>() / g.len() as f64;
            g.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
        })
        .sum();
    let df_between = k - 1;
    let df_within = n - k;
    let ms_between = ss_between / df_between as f64;
    let ms_within = ss_within / df_within as f64;
    if ms_within == 0.0 {
        return None;
    }
    Some(AnovaResult {
        f_statistic: ms_between / ms_within,
        df_between,
        df_within,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_stats_of_known_sample() {
        let b = BoxStats::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(b.n, 5);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.max, 5.0);
        assert!(BoxStats::of(&[]).is_none());
    }

    #[test]
    fn quantile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(quantile(&v, 0.5), 5.0);
        assert_eq!(quantile(&v, 0.0), 0.0);
        assert_eq!(quantile(&v, 1.0), 10.0);
    }

    #[test]
    fn anova_detects_separated_groups() {
        let a = vec![1.0, 1.1, 0.9, 1.05];
        let b = vec![5.0, 5.2, 4.9, 5.05];
        let r = one_way_anova(&[a, b]).unwrap();
        assert!(
            r.f_statistic > 100.0,
            "clearly separated means: F = {}",
            r.f_statistic
        );
        assert_eq!(r.df_between, 1);
        assert_eq!(r.df_within, 6);
    }

    #[test]
    fn anova_near_one_for_identical_distributions() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let r = one_way_anova(&[a, b]).unwrap();
        assert!(
            r.f_statistic < 1e-9,
            "identical means: F = {}",
            r.f_statistic
        );
    }

    #[test]
    fn anova_degenerate_cases() {
        assert!(one_way_anova(&[vec![1.0, 2.0]]).is_none());
        assert!(one_way_anova(&[vec![1.0], vec![2.0]]).is_none());
        assert!(one_way_anova(&[vec![], vec![1.0, 2.0]]).is_none());
    }
}
