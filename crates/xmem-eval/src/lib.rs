//! Evaluation harness: reproduces the paper's experimental design (§4.1).
//!
//! * [`metrics`] — the error/MRE/PEF/MCP definitions of Eqs. 2–8;
//! * [`protocol`] — the two-round validation of §4.1.4 (full-memory run,
//!   then a run capped at `M^init + M^fm + M̂^peak`);
//! * [`anova`] — the full-factorial campaign on the RTX 3060 (§4.1.4
//!   setting 1) plus a one-way ANOVA F statistic;
//! * [`montecarlo`] — randomized configurations across both commodity GPUs
//!   and `zero_grad` placements (§4.1.4 setting 2);
//! * [`summary`] — per-model aggregation, box statistics, four-quadrant
//!   classification (Fig. 8) and table rendering;
//! * [`XMemEstimator`] — the adapter exposing xMem through the common
//!   [`MemoryEstimator`](xmem_baselines::MemoryEstimator) interface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anova;
pub mod metrics;
pub mod montecarlo;
pub mod protocol;
pub mod runner;
pub mod stats;
pub mod summary;

mod adapter;

pub use adapter::XMemEstimator;
pub use protocol::{ConfigKey, GroundTruthSummary, RunRecord};
pub use runner::{run_campaign, CampaignOptions, EstimatorSet};
