//! The paper's metrics, Eqs. 2–8 (§4.1.5).

/// Relative error of an estimate vs a measured peak (Eq. 2). Defined only
/// when the reference run did not OOM.
#[must_use]
pub fn relative_error(estimated: u64, measured: u64) -> f64 {
    debug_assert!(measured > 0);
    (estimated as f64 - measured as f64).abs() / measured as f64
}

/// Median of a sample (for MRE, Eq. 3). Returns `None` on empty input.
#[must_use]
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    })
}

/// First-round correctness `C_{jde1}` (Eq. 4): the OOM prediction matched
/// the full-memory run.
#[must_use]
pub fn c1(oom_predicted: bool, oom_actual_round1: bool) -> bool {
    oom_predicted == oom_actual_round1
}

/// Second-round correctness `C_{jde2}` (Eq. 5): round 1 was correct and
/// either the capped run succeeded or the job never fit anyway.
#[must_use]
pub fn c2(c1: bool, oom_round2: Option<bool>, oom_round1: bool) -> bool {
    c1 && (oom_round2 == Some(false) || oom_round1)
}

/// Probability of estimation failure (Eq. 6): fraction of runs whose
/// correctness flag is false.
#[must_use]
pub fn pef(correctness: &[bool]) -> f64 {
    if correctness.is_empty() {
        return 0.0;
    }
    let passed = correctness.iter().filter(|&&c| c).count();
    (correctness.len() - passed) as f64 / correctness.len() as f64
}

/// Memory conserved by one run (Eq. 7), in bytes (negative = net loss).
///
/// * estimate usable as a cap and the capped run fit: `M^max − M̂`;
/// * job never fit and the estimator said so: the whole device is saved;
/// * otherwise the (wasted) reservation is penalized: `−M^max`.
#[must_use]
pub fn m_save(
    device_capacity: u64,
    estimated_peak: u64,
    c1: bool,
    oom_round1: bool,
    oom_round2: Option<bool>,
) -> f64 {
    let cap = device_capacity as f64;
    if c1 && oom_round2 == Some(false) {
        cap - estimated_peak as f64
    } else if c1 && oom_round1 {
        cap
    } else {
        -cap
    }
}

/// Memory-conservation potential (Eq. 8): mean of per-run savings.
#[must_use]
pub fn mcp(savings: &[f64]) -> f64 {
    if savings.is_empty() {
        return 0.0;
    }
    savings.iter().sum::<f64>() / savings.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    #[test]
    fn relative_error_is_symmetric_in_sign() {
        assert!((relative_error(110, 100) - 0.1).abs() < 1e-12);
        assert!((relative_error(90, 100) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(100, 100), 0.0);
    }

    #[test]
    fn median_handles_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn correctness_flags_follow_the_paper() {
        // Eq. 4.
        assert!(c1(true, true));
        assert!(c1(false, false));
        assert!(!c1(true, false));
        // Eq. 5: capped run succeeded.
        assert!(c2(true, Some(false), false));
        // Eq. 5: job never fit, correctly predicted.
        assert!(c2(true, None, true));
        // Capped run OOMed: failure.
        assert!(!c2(true, Some(true), false));
        // Round 1 wrong: always failure.
        assert!(!c2(false, Some(false), false));
    }

    #[test]
    fn pef_counts_failures() {
        assert_eq!(pef(&[true, true, false, false]), 0.5);
        assert_eq!(pef(&[true, true]), 0.0);
        assert_eq!(pef(&[]), 0.0);
    }

    #[test]
    fn m_save_cases() {
        // Tight, correct estimate: saves capacity minus reservation.
        let s = m_save(12 * GIB, 4 * GIB, true, false, Some(false));
        assert_eq!(s, (8 * GIB) as f64);
        // Correctly predicted impossible job: whole device saved.
        let s = m_save(12 * GIB, 20 * GIB, true, true, None);
        assert_eq!(s, (12 * GIB) as f64);
        // Capped run OOMed: reservation wasted.
        let s = m_save(12 * GIB, 4 * GIB, true, false, Some(true));
        assert_eq!(s, -((12 * GIB) as f64));
        // Wrong OOM call: penalized.
        let s = m_save(12 * GIB, 4 * GIB, false, false, None);
        assert_eq!(s, -((12 * GIB) as f64));
    }

    #[test]
    fn mcp_is_mean() {
        assert_eq!(mcp(&[1.0, 3.0]), 2.0);
        assert_eq!(mcp(&[]), 0.0);
    }
}
