//! The ANOVA campaign (§4.1.4 setting 1): full factorial over models ×
//! applicable optimizers × batch grids, five seeded repeats, on the
//! GeForce RTX 3060, `zero_grad` fixed at POS0.

use crate::runner::{job, JobConfig};
use crate::stats::{one_way_anova, AnovaResult};
use crate::RunRecord;
use std::collections::HashMap;
use xmem_graph::ArchClass;
use xmem_models::ModelId;
use xmem_optim::OptimizerKind;
use xmem_runtime::{GpuDevice, TrainJobSpec};

/// Optimizers applicable to an architecture class (paper §4.1.2: CNNs use
/// SGD/Adam/AdamW/RMSprop/Adagrad; transformers use SGD/Adafactor/Adam/
/// AdamW — momentum-free SGD, as the large models only fit that way).
#[must_use]
pub fn optimizers_for(arch: ArchClass) -> Vec<OptimizerKind> {
    match arch {
        ArchClass::Cnn => vec![
            OptimizerKind::Sgd { momentum: true },
            OptimizerKind::Adam,
            OptimizerKind::AdamW,
            OptimizerKind::RMSprop,
            OptimizerKind::Adagrad,
        ],
        ArchClass::Transformer => vec![
            OptimizerKind::Sgd { momentum: false },
            OptimizerKind::Adafactor,
            OptimizerKind::Adam,
            OptimizerKind::AdamW,
        ],
    }
}

/// Scale knobs: the full paper campaign is ~3900 runs; benches default to
/// a same-shape subsample.
#[derive(Debug, Clone)]
pub struct AnovaScale {
    /// Take every `batch_stride`-th point of each model's batch grid.
    pub batch_stride: usize,
    /// Repeats per configuration (paper: 5).
    pub repeats: u32,
    /// Restrict to these models (`None` = the 22-model evaluation set).
    pub models: Option<Vec<ModelId>>,
    /// Take every `optimizer_stride`-th applicable optimizer.
    pub optimizer_stride: usize,
}

impl AnovaScale {
    /// The paper's full factorial.
    #[must_use]
    pub fn full() -> Self {
        AnovaScale {
            batch_stride: 1,
            repeats: 5,
            models: None,
            optimizer_stride: 1,
        }
    }

    /// A fast smoke-scale campaign preserving the design's shape.
    #[must_use]
    pub fn smoke() -> Self {
        AnovaScale {
            batch_stride: 3,
            repeats: 2,
            models: None,
            optimizer_stride: 2,
        }
    }
}

/// Generates the ANOVA configuration matrix.
#[must_use]
pub fn anova_configs(campaign_seed: u64, scale: &AnovaScale) -> Vec<JobConfig> {
    let device = GpuDevice::rtx3060();
    let models = scale.models.clone().unwrap_or_else(ModelId::evaluation_set);
    let mut configs = Vec::new();
    for model in models {
        let info = model.info();
        let optimizers: Vec<OptimizerKind> = optimizers_for(info.arch)
            .into_iter()
            .step_by(scale.optimizer_stride.max(1))
            .collect();
        let batches: Vec<usize> = info
            .batch_grid
            .values()
            .into_iter()
            .step_by(scale.batch_stride.max(1))
            .collect();
        for optimizer in &optimizers {
            for &batch in &batches {
                for repeat in 1..=scale.repeats {
                    let spec = TrainJobSpec::new(model, *optimizer, batch).with_iterations(3);
                    configs.push(job(campaign_seed, spec, device, repeat));
                }
            }
        }
    }
    configs
}

/// One-way ANOVA of relative errors across estimators, per model: are the
/// estimator error distributions distinguishable?
#[must_use]
pub fn anova_f_by_model(records: &[RunRecord]) -> HashMap<ModelId, AnovaResult> {
    let mut by_model: HashMap<ModelId, HashMap<String, Vec<f64>>> = HashMap::new();
    for r in records {
        if let Some(e) = r.error {
            by_model
                .entry(r.config.model)
                .or_default()
                .entry(r.estimator.clone())
                .or_default()
                .push(e);
        }
    }
    by_model
        .into_iter()
        .filter_map(|(model, groups)| {
            let groups: Vec<Vec<f64>> = groups.into_values().collect();
            one_way_anova(&groups).map(|r| (model, r))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_paper_design() {
        let configs = anova_configs(1, &AnovaScale::full());
        // CNNs: 12 models x 5 optimizers x 6 batches x 5 repeats = 1800.
        // Transformers: 8 models x 4 x 11 x 5 = 1760; big (pythia, qwen):
        // 2 x 4 x 8 x 5 = 320. Total 3880 — the paper reports 3903 runs
        // including re-runs.
        assert_eq!(configs.len(), 1800 + 1760 + 320);
    }

    #[test]
    fn smoke_scale_is_much_smaller_but_covers_all_models() {
        let configs = anova_configs(1, &AnovaScale::smoke());
        assert!(configs.len() < 600);
        let models: std::collections::HashSet<_> = configs.iter().map(|c| c.spec.model).collect();
        assert_eq!(models.len(), 22);
    }

    #[test]
    fn optimizer_assignment_follows_table_2() {
        let cnn = optimizers_for(ArchClass::Cnn);
        assert_eq!(cnn.len(), 5);
        assert!(cnn.contains(&OptimizerKind::RMSprop));
        assert!(cnn.contains(&OptimizerKind::Adagrad));
        let xf = optimizers_for(ArchClass::Transformer);
        assert_eq!(xf.len(), 4);
        assert!(xf.contains(&OptimizerKind::Adafactor));
        assert!(!xf.contains(&OptimizerKind::RMSprop));
    }

    #[test]
    fn repeats_get_distinct_seeds() {
        let configs = anova_configs(
            1,
            &AnovaScale {
                batch_stride: 6,
                repeats: 3,
                models: Some(vec![ModelId::MobileNetV2]),
                optimizer_stride: 5,
            },
        );
        assert_eq!(configs.len(), 3);
        let seeds: std::collections::HashSet<_> = configs.iter().map(|c| c.spec.seed).collect();
        assert_eq!(seeds.len(), 3);
    }
}
