//! Aggregation and rendering: per-model MRE/PEF, four-quadrant analysis
//! (Fig. 8), MCP (Table 3), runtime (Table 4) and the headline
//! improvements, plus CSV export for the figure data.

use crate::metrics;
use crate::stats::BoxStats;
use crate::RunRecord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use xmem_graph::ArchClass;
use xmem_models::ModelId;

const GIB: f64 = (1u64 << 30) as f64;

/// Quadrants of the PEF × MRE plane (Fig. 8), 20 % thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Quadrant {
    /// Low PEF, low MRE.
    Optimal,
    /// Low PEF, high MRE.
    Overestimation,
    /// High PEF, low MRE.
    Underestimation,
    /// High PEF, high MRE.
    Worst,
}

/// Classifies a `(PEF, MRE)` point.
#[must_use]
pub fn quadrant(pef: f64, mre: f64) -> Quadrant {
    match (pef <= 0.20, mre <= 0.20) {
        (true, true) => Quadrant::Optimal,
        (true, false) => Quadrant::Overestimation,
        (false, true) => Quadrant::Underestimation,
        (false, false) => Quadrant::Worst,
    }
}

/// Aggregate of one `(model, estimator)` cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelEstimatorSummary {
    /// Model.
    pub model: ModelId,
    /// Estimator name.
    pub estimator: String,
    /// Median relative error (Eq. 3); `None` when no error samples exist.
    pub mre: Option<f64>,
    /// Error box statistics (the paper's Fig. 7 boxes).
    pub error_box: Option<BoxStats>,
    /// Probability of estimation failure (Eq. 6, second validation).
    pub pef: f64,
    /// Number of records.
    pub records: usize,
    /// Number of MRE samples.
    pub error_samples: usize,
}

impl ModelEstimatorSummary {
    /// Fig. 8 quadrant of this cell (requires an MRE).
    #[must_use]
    pub fn quadrant(&self) -> Option<Quadrant> {
        self.mre.map(|m| quadrant(self.pef, m))
    }
}

/// Groups records into per-`(model, estimator)` summaries.
#[must_use]
pub fn summarize(records: &[RunRecord]) -> Vec<ModelEstimatorSummary> {
    let mut groups: BTreeMap<(ModelId, String), Vec<&RunRecord>> = BTreeMap::new();
    for r in records {
        groups
            .entry((r.config.model, r.estimator.to_string()))
            .or_default()
            .push(r);
    }
    groups
        .into_iter()
        .map(|((model, estimator), recs)| {
            let errors: Vec<f64> = recs.iter().filter_map(|r| r.error).collect();
            let correctness: Vec<bool> = recs.iter().map(|r| r.c2).collect();
            ModelEstimatorSummary {
                model,
                estimator,
                mre: metrics::median(&errors),
                error_box: BoxStats::of(&errors),
                pef: metrics::pef(&correctness),
                records: recs.len(),
                error_samples: errors.len(),
            }
        })
        .collect()
}

/// One row of the MCP table (Table 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct McpRow {
    /// Estimator name.
    pub estimator: String,
    /// Mean saving over CNN configurations, GiB (`None` = not applicable).
    pub cnn_gib: Option<f64>,
    /// Mean saving over transformer configurations, GiB.
    pub transformer_gib: Option<f64>,
    /// Mean saving over everything, GiB.
    pub overall_gib: Option<f64>,
}

/// Computes Table 3 from (Monte Carlo) records.
#[must_use]
pub fn mcp_table(records: &[RunRecord]) -> Vec<McpRow> {
    let mut by_est: BTreeMap<String, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for r in records {
        let entry = by_est.entry(r.estimator.to_string()).or_default();
        match r.config.model.info().arch {
            ArchClass::Cnn => entry.0.push(r.m_save),
            ArchClass::Transformer => entry.1.push(r.m_save),
        }
    }
    by_est
        .into_iter()
        .map(|(estimator, (cnn, xf))| {
            let all: Vec<f64> = cnn.iter().chain(xf.iter()).copied().collect();
            let mean_gib = |v: &[f64]| (!v.is_empty()).then(|| metrics::mcp(v) / GIB);
            McpRow {
                estimator,
                cnn_gib: mean_gib(&cnn),
                transformer_gib: mean_gib(&xf),
                overall_gib: mean_gib(&all),
            }
        })
        .collect()
}

/// Mean estimator runtime in seconds (Table 4).
#[must_use]
pub fn runtime_table(records: &[RunRecord]) -> BTreeMap<String, f64> {
    let mut by_est: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for r in records {
        by_est
            .entry(r.estimator.to_string())
            .or_default()
            .push(r.estimator_runtime_us);
    }
    by_est
        .into_iter()
        .map(|(e, v)| {
            let mean_us = v.iter().sum::<u64>() as f64 / v.len() as f64;
            (e, mean_us / 1e6)
        })
        .collect()
}

/// The paper's headline aggregate (§1): xMem's improvement over the
/// *best-performing baseline* for each metric.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Headline {
    /// xMem overall MRE.
    pub xmem_mre: f64,
    /// Best (lowest) baseline overall MRE.
    pub best_baseline_mre: f64,
    /// MRE reduction, e.g. 0.91 = −91 %.
    pub mre_reduction: f64,
    /// xMem overall PEF.
    pub xmem_pef: f64,
    /// Best (lowest) baseline overall PEF.
    pub best_baseline_pef: f64,
    /// PEF reduction.
    pub pef_reduction: f64,
    /// xMem overall MCP (GiB).
    pub xmem_mcp_gib: f64,
    /// Best (highest) baseline MCP (GiB).
    pub best_baseline_mcp_gib: f64,
    /// MCP increase, e.g. 3.68 = +368 %.
    pub mcp_increase: f64,
}

/// Computes the headline numbers over a record set.
#[must_use]
pub fn headline(records: &[RunRecord]) -> Option<Headline> {
    let estimators: Vec<String> = {
        let mut v: Vec<String> = records
            .iter()
            .map(|r| r.estimator.to_string())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        v.sort();
        v
    };
    let overall = |est: &str| -> (Option<f64>, f64, f64) {
        let recs: Vec<&RunRecord> = records.iter().filter(|r| r.estimator == est).collect();
        let errors: Vec<f64> = recs.iter().filter_map(|r| r.error).collect();
        let correctness: Vec<bool> = recs.iter().map(|r| r.c2).collect();
        let savings: Vec<f64> = recs.iter().map(|r| r.m_save).collect();
        (
            metrics::median(&errors),
            metrics::pef(&correctness),
            metrics::mcp(&savings) / GIB,
        )
    };
    let (xmem_mre, xmem_pef, xmem_mcp) = overall("xMem");
    let xmem_mre = xmem_mre?;
    let baselines: Vec<(Option<f64>, f64, f64)> = estimators
        .iter()
        .filter(|e| e.as_str() != "xMem")
        .map(|e| overall(e))
        .collect();
    if baselines.is_empty() {
        return None;
    }
    let best_mre = baselines
        .iter()
        .filter_map(|b| b.0)
        .fold(f64::INFINITY, f64::min);
    let best_pef = baselines.iter().map(|b| b.1).fold(f64::INFINITY, f64::min);
    let best_mcp = baselines
        .iter()
        .map(|b| b.2)
        .fold(f64::NEG_INFINITY, f64::max);
    Some(Headline {
        xmem_mre,
        best_baseline_mre: best_mre,
        mre_reduction: 1.0 - xmem_mre / best_mre,
        xmem_pef,
        best_baseline_pef: best_pef,
        pef_reduction: if best_pef > 0.0 {
            1.0 - xmem_pef / best_pef
        } else {
            0.0
        },
        xmem_mcp_gib: xmem_mcp,
        best_baseline_mcp_gib: best_mcp,
        // Ratio improvements only make sense against a positive baseline;
        // a best baseline that *loses* memory on average makes the
        // improvement unbounded.
        mcp_increase: if best_mcp > 1e-9 {
            xmem_mcp / best_mcp - 1.0
        } else {
            f64::INFINITY
        },
    })
}

/// Renders per-model summaries as an aligned text table.
#[must_use]
pub fn render_summary_table(summaries: &[ModelEstimatorSummary]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<30} {:<10} {:>8} {:>8} {:>8} {:>9}",
        "model", "estimator", "MRE%", "PEF%", "samples", "quadrant"
    );
    for s in summaries {
        let _ = writeln!(
            out,
            "{:<30} {:<10} {:>8} {:>8.1} {:>8} {:>9}",
            s.model.info().name,
            s.estimator,
            s.mre
                .map_or_else(|| "-".to_string(), |m| format!("{:.1}", m * 100.0)),
            s.pef * 100.0,
            s.error_samples,
            s.quadrant()
                .map_or_else(|| "-".to_string(), |q| format!("{q:?}")),
        );
    }
    out
}

/// Writes per-model summaries as CSV (the figures' data files).
#[must_use]
pub fn summaries_to_csv(summaries: &[ModelEstimatorSummary]) -> String {
    use std::fmt::Write as _;
    let mut out =
        String::from("model,arch,estimator,mre,pef,n,err_min,err_q1,err_median,err_q3,err_max\n");
    for s in summaries {
        let info = s.model.info();
        let b = s.error_box;
        let fmt = |v: Option<f64>| v.map_or_else(String::new, |x| format!("{x:.6}"));
        let _ = writeln!(
            out,
            "{},{},{},{},{:.6},{},{},{},{},{},{}",
            info.name,
            info.arch.label(),
            s.estimator,
            fmt(s.mre),
            s.pef,
            s.error_samples,
            fmt(b.map(|b| b.min)),
            fmt(b.map(|b| b.q1)),
            fmt(b.map(|b| b.median)),
            fmt(b.map(|b| b.q3)),
            fmt(b.map(|b| b.max)),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ConfigKey, GroundTruthSummary};
    use xmem_baselines::EstimateOutcome;
    use xmem_optim::OptimizerKind;
    use xmem_runtime::ZeroGradPos;

    fn record(
        model: ModelId,
        estimator: &'static str,
        error: Option<f64>,
        c2: bool,
        m_save: f64,
    ) -> RunRecord {
        RunRecord {
            config: ConfigKey {
                model,
                optimizer: OptimizerKind::Adam,
                batch: 8,
                zero_grad: ZeroGradPos::BeforeBackward,
                device: "test".to_string(),
                repeat: 1,
            },
            estimator: estimator.to_string(),
            estimate: Some(EstimateOutcome {
                peak_bytes: 1 << 30,
                oom_predicted: false,
            }),
            round1: GroundTruthSummary {
                peak: 1 << 30,
                oom: false,
            },
            round2: None,
            c1: c2,
            c2,
            error,
            m_save,
            estimator_runtime_us: 1000,
        }
    }

    #[test]
    fn quadrants_follow_thresholds() {
        assert_eq!(quadrant(0.1, 0.1), Quadrant::Optimal);
        assert_eq!(quadrant(0.1, 0.5), Quadrant::Overestimation);
        assert_eq!(quadrant(0.5, 0.1), Quadrant::Underestimation);
        assert_eq!(quadrant(0.5, 0.5), Quadrant::Worst);
    }

    #[test]
    fn summaries_aggregate_mre_and_pef() {
        let records = vec![
            record(ModelId::Gpt2, "xMem", Some(0.02), true, 1e9),
            record(ModelId::Gpt2, "xMem", Some(0.04), true, 1e9),
            record(ModelId::Gpt2, "DNNMem", Some(0.2), false, -1e9),
            record(ModelId::Gpt2, "DNNMem", Some(0.4), true, 1e9),
        ];
        let s = summarize(&records);
        let xmem = s.iter().find(|x| x.estimator == "xMem").unwrap();
        assert_eq!(xmem.mre, Some(0.03));
        assert_eq!(xmem.pef, 0.0);
        assert_eq!(xmem.quadrant(), Some(Quadrant::Optimal));
        let dnn = s.iter().find(|x| x.estimator == "DNNMem").unwrap();
        assert_eq!(dnn.pef, 0.5);
        assert_eq!(dnn.quadrant(), Some(Quadrant::Worst));
    }

    #[test]
    fn mcp_table_splits_by_arch() {
        let records = vec![
            record(ModelId::ResNet101, "xMem", None, true, 4.0 * GIB),
            record(ModelId::Gpt2, "xMem", None, true, 2.0 * GIB),
        ];
        let t = mcp_table(&records);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].cnn_gib, Some(4.0));
        assert_eq!(t[0].transformer_gib, Some(2.0));
        assert_eq!(t[0].overall_gib, Some(3.0));
    }

    #[test]
    fn headline_compares_to_best_baseline() {
        let mut records = Vec::new();
        for _ in 0..4 {
            records.push(record(ModelId::Gpt2, "xMem", Some(0.02), true, 8.0 * GIB));
            records.push(record(
                ModelId::Gpt2,
                "DNNMem",
                Some(0.25),
                false,
                2.0 * GIB,
            ));
            records.push(record(
                ModelId::Gpt2,
                "SchedTune",
                Some(0.4),
                false,
                1.0 * GIB,
            ));
        }
        let h = headline(&records).unwrap();
        assert!((h.mre_reduction - (1.0 - 0.02 / 0.25)).abs() < 1e-9);
        assert!(h.pef_reduction > 0.9);
        assert!((h.mcp_increase - 3.0).abs() < 1e-9); // 8 vs 2 GiB
    }

    #[test]
    fn csv_has_a_row_per_summary() {
        let records = vec![record(ModelId::Gpt2, "xMem", Some(0.02), true, 1e9)];
        let csv = summaries_to_csv(&summarize(&records));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("model,arch,estimator"));
        assert!(csv.contains("gpt2,Transformer,xMem"));
    }
}
