//! The Monte Carlo campaign (§4.1.4 setting 2): randomly sampled
//! configurations — model, applicable optimizer, batch size from the
//! model's grid, `zero_grad` placement, and one of the two commodity GPUs —
//! simulating the diversity and unpredictability of real cluster intake.

use crate::anova::optimizers_for;
use crate::runner::{job, JobConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use xmem_models::ModelId;
use xmem_runtime::{GpuDevice, TrainJobSpec, ZeroGradPos};

/// Draws `n` random configurations (deterministic in `seed`).
#[must_use]
pub fn monte_carlo_configs(n: usize, seed: u64) -> Vec<JobConfig> {
    let mut rng = StdRng::seed_from_u64(seed);
    let models = ModelId::evaluation_set();
    let devices = [GpuDevice::rtx3060(), GpuDevice::rtx4060()];
    let mut configs = Vec::with_capacity(n);
    for i in 0..n {
        let model = *models.choose(&mut rng).expect("non-empty");
        let info = model.info();
        let optimizer = *optimizers_for(info.arch)
            .choose(&mut rng)
            .expect("non-empty");
        let batch = *info
            .batch_grid
            .values()
            .choose(&mut rng)
            .expect("non-empty");
        let zero_grad = if rng.gen_bool(0.5) {
            ZeroGradPos::BeforeBackward
        } else {
            ZeroGradPos::IterStart
        };
        let device = devices[rng.gen_range(0..devices.len())];
        let spec = TrainJobSpec::new(model, optimizer, batch)
            .with_iterations(3)
            .with_zero_grad(zero_grad);
        configs.push(job(seed, spec, device, i as u32 + 1));
    }
    configs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_in_seed() {
        let a = monte_carlo_configs(20, 9);
        let b = monte_carlo_configs(20, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.device.name, y.device.name);
        }
        let c = monte_carlo_configs(20, 10);
        assert!(a.iter().zip(&c).any(|(x, y)| x.spec != y.spec));
    }

    #[test]
    fn draws_cover_both_devices_and_placements() {
        let configs = monte_carlo_configs(200, 3);
        assert!(configs.iter().any(|c| c.device.name.contains("3060")));
        assert!(configs.iter().any(|c| c.device.name.contains("4060")));
        assert!(configs
            .iter()
            .any(|c| c.spec.zero_grad_pos == ZeroGradPos::IterStart));
        assert!(configs
            .iter()
            .any(|c| c.spec.zero_grad_pos == ZeroGradPos::BeforeBackward));
    }

    #[test]
    fn batches_come_from_the_models_grid() {
        for c in monte_carlo_configs(100, 5) {
            let grid = c.spec.model.info().batch_grid.values();
            assert!(grid.contains(&c.spec.batch));
        }
    }
}
