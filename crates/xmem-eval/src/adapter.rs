//! xMem behind the common estimator interface.

use std::sync::Arc;
use xmem_baselines::{EstimateOutcome, MemoryEstimator};
use xmem_core::{Estimator, EstimatorConfig};
use xmem_models::ModelId;
use xmem_runtime::{GpuDevice, TrainJobSpec};
use xmem_service::EstimationService;

/// Adapter running the xMem pipeline (CPU profile → analyze → orchestrate
/// → simulate) behind the common [`MemoryEstimator`] interface.
///
/// Two modes, bit-identical in output:
/// * **standalone** ([`XMemEstimator::new`]) — the full pipeline runs per
///   request, exactly as the paper times it;
/// * **service-backed** ([`XMemEstimator::with_service`]) — requests go
///   through a shared [`EstimationService`], so campaign workloads collapse
///   onto one profile/analyze per distinct job and one replay per
///   `(job, device)` cell (the counters on the service prove it).
#[derive(Debug, Clone, Default)]
pub struct XMemEstimator {
    service: Option<Arc<EstimationService>>,
}

impl XMemEstimator {
    /// Creates the standalone adapter (full pipeline per request).
    #[must_use]
    pub fn new() -> Self {
        XMemEstimator::default()
    }

    /// Creates a service-backed adapter: estimates route through
    /// `service`'s shared cache layers (analysis, unbounded replay,
    /// per-device simulation shards).
    #[must_use]
    pub fn with_service(service: Arc<EstimationService>) -> Self {
        XMemEstimator {
            service: Some(service),
        }
    }

    /// The backing service, when this adapter is service-backed.
    #[must_use]
    pub fn service(&self) -> Option<&Arc<EstimationService>> {
        self.service.as_ref()
    }
}

impl MemoryEstimator for XMemEstimator {
    fn name(&self) -> &'static str {
        "xMem"
    }

    fn supports(&self, _model: ModelId) -> bool {
        true
    }

    fn estimate(&self, spec: &TrainJobSpec, device: &GpuDevice) -> Option<EstimateOutcome> {
        let est = match &self.service {
            Some(service) => service.estimate_for_device(spec, *device).ok()?,
            None => {
                let estimator = Estimator::new(EstimatorConfig::for_device(*device));
                estimator.estimate_job(spec).ok()?
            }
        };
        Some(EstimateOutcome {
            peak_bytes: est.peak_bytes,
            oom_predicted: est.oom_predicted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_optim::OptimizerKind;
    use xmem_service::ServiceConfig;

    #[test]
    fn adapter_estimates_like_the_pipeline() {
        let spec =
            TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8).with_iterations(2);
        let device = GpuDevice::rtx3060();
        let adapter = XMemEstimator::new();
        let via_adapter = adapter.estimate(&spec, &device).unwrap();
        let direct = Estimator::new(EstimatorConfig::for_device(device))
            .estimate_job(&spec)
            .unwrap();
        assert_eq!(via_adapter.peak_bytes, direct.peak_bytes);
        assert!(!adapter.consumes_gpu());
        assert_eq!(adapter.name(), "xMem");
    }

    #[test]
    fn service_backed_adapter_is_bit_identical_and_collapses_repeats() {
        let spec =
            TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8).with_iterations(2);
        let device = GpuDevice::rtx3060();
        let service = Arc::new(EstimationService::new(ServiceConfig::for_device(device)));
        let backed = XMemEstimator::with_service(Arc::clone(&service));
        let standalone = XMemEstimator::new().estimate(&spec, &device).unwrap();

        for _ in 0..3 {
            // Seeds differ per repeat but do not shape the profile.
            let repeat = spec.clone().with_seed(42);
            assert_eq!(backed.estimate(&repeat, &device), Some(standalone));
        }
        assert_eq!(service.profile_runs(), 1, "repeats collapse onto one run");
        assert_eq!(service.sim_runs(), 1);
        assert!(backed.service().is_some());
    }
}
