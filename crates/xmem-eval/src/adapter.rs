//! xMem behind the common estimator interface.

use xmem_baselines::{EstimateOutcome, MemoryEstimator};
use xmem_core::{Estimator, EstimatorConfig};
use xmem_models::ModelId;
use xmem_runtime::{GpuDevice, TrainJobSpec};

/// Adapter running the full xMem pipeline (CPU profile → analyze →
/// orchestrate → simulate) per estimate request.
#[derive(Debug, Clone, Default)]
pub struct XMemEstimator {
    _private: (),
}

impl XMemEstimator {
    /// Creates the adapter.
    #[must_use]
    pub fn new() -> Self {
        XMemEstimator::default()
    }
}

impl MemoryEstimator for XMemEstimator {
    fn name(&self) -> &'static str {
        "xMem"
    }

    fn supports(&self, _model: ModelId) -> bool {
        true
    }

    fn estimate(&self, spec: &TrainJobSpec, device: &GpuDevice) -> Option<EstimateOutcome> {
        let estimator = Estimator::new(EstimatorConfig::for_device(*device));
        let est = estimator.estimate_job(spec).ok()?;
        Some(EstimateOutcome {
            peak_bytes: est.peak_bytes,
            oom_predicted: est.oom_predicted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_optim::OptimizerKind;

    #[test]
    fn adapter_estimates_like_the_pipeline() {
        let spec =
            TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8).with_iterations(2);
        let device = GpuDevice::rtx3060();
        let adapter = XMemEstimator::new();
        let via_adapter = adapter.estimate(&spec, &device).unwrap();
        let direct = Estimator::new(EstimatorConfig::for_device(device))
            .estimate_job(&spec)
            .unwrap();
        assert_eq!(via_adapter.peak_bytes, direct.peak_bytes);
        assert!(!adapter.consumes_gpu());
        assert_eq!(adapter.name(), "xMem");
    }
}
