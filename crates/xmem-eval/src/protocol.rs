//! The two-round validation protocol (§4.1.4).
//!
//! For each `(configuration, estimator, device)`:
//!
//! 1. **Initial validation** — the job runs with full device memory,
//!    recording `OOM_{jd1}` and `M^peak_{jd1}`; the estimator's OOM
//!    prediction (Eq. 1) is compared against reality (`C_{jde1}`, Eq. 4).
//! 2. **Subsequent validation** — only when round 1 was correct and the
//!    job fit: the job re-runs with memory capped at
//!    `M^init + M^fm + M̂^peak`. Success here (`C_{jde2}`, Eq. 5) is what
//!    PEF and MCP score: can the estimate be *used* as a safe limit?

use crate::metrics;
use serde::{Deserialize, Serialize};
use xmem_baselines::{EstimateOutcome, MemoryEstimator};
use xmem_models::ModelId;
use xmem_optim::OptimizerKind;
use xmem_runtime::{run_on_gpu, GpuDevice, TrainJobSpec, ZeroGradPos};

/// Identity of one test configuration `j` (paper Table 1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConfigKey {
    /// Model.
    pub model: ModelId,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Batch size.
    pub batch: usize,
    /// `zero_grad` placement.
    pub zero_grad: ZeroGradPos,
    /// Device name.
    pub device: String,
    /// Repeat index (1-based).
    pub repeat: u32,
}

/// Compact ground-truth record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruthSummary {
    /// NVML-sampled peak (bytes).
    pub peak: u64,
    /// Whether the run hit OOM.
    pub oom: bool,
}

/// Everything measured for one `(configuration, estimator)` pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Configuration identity.
    pub config: ConfigKey,
    /// Estimator name.
    pub estimator: String,
    /// The estimate (`None` = the estimator failed on this job).
    pub estimate: Option<EstimateOutcome>,
    /// Round-1 ground truth (full memory).
    pub round1: GroundTruthSummary,
    /// Round-2 ground truth (capped at the estimate), when executed.
    pub round2: Option<GroundTruthSummary>,
    /// `C_{jde1}` (Eq. 4).
    pub c1: bool,
    /// `C_{jde2}` (Eq. 5).
    pub c2: bool,
    /// Relative error chosen per Eq. 3 (round-2 error when the capped run
    /// succeeded, else round-1 error); `None` when round 1 OOMed.
    pub error: Option<f64>,
    /// Per-run memory saving (Eq. 7), bytes (signed).
    pub m_save: f64,
    /// Estimator wall-clock runtime, microseconds.
    pub estimator_runtime_us: u64,
}

impl RunRecord {
    /// Whether this record contributes an MRE sample.
    #[must_use]
    pub fn has_error(&self) -> bool {
        self.error.is_some()
    }
}

/// Executes the full protocol for one configuration and one estimator,
/// given the (shared) round-1 ground truth.
pub fn validate(
    spec: &TrainJobSpec,
    key: &ConfigKey,
    device: &GpuDevice,
    estimator: &dyn MemoryEstimator,
    round1: GroundTruthSummary,
) -> RunRecord {
    let started = std::time::Instant::now();
    let estimate = estimator.estimate(spec, device);
    let estimator_runtime_us = started.elapsed().as_micros() as u64;

    let (c1, round2) = match estimate {
        Some(out) => {
            let c1 = metrics::c1(out.oom_predicted, round1.oom);
            // Second round only when round 1 was correct and the job fit.
            let round2 = if c1 && !round1.oom {
                let capped = run_on_gpu(
                    spec,
                    device,
                    Some(out.peak_bytes + device.init_bytes),
                    false,
                );
                Some(GroundTruthSummary {
                    peak: capped.peak_nvml,
                    oom: capped.oom,
                })
            } else {
                None
            };
            (c1, round2)
        }
        None => (false, None),
    };
    let c2 = metrics::c2(c1, round2.map(|r| r.oom), round1.oom);

    let error = match (estimate, round1.oom) {
        (Some(out), false) => {
            // Eq. 3: round-2 error when the capped run succeeded.
            let reference = match round2 {
                Some(r2) if !r2.oom => r2.peak,
                _ => round1.peak,
            };
            Some(metrics::relative_error(out.peak_bytes, reference))
        }
        _ => None,
    };
    let m_save = match estimate {
        Some(out) => metrics::m_save(
            device.capacity,
            out.peak_bytes,
            c1,
            round1.oom,
            round2.map(|r| r.oom),
        ),
        None => -(device.capacity as f64),
    };

    RunRecord {
        config: key.clone(),
        estimator: estimator.name().to_string(),
        estimate,
        round1,
        round2,
        c1,
        c2,
        error,
        m_save,
        estimator_runtime_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_baselines::MemoryEstimator;

    /// A stub estimator returning a fixed peak.
    struct Fixed(u64);
    impl MemoryEstimator for Fixed {
        fn name(&self) -> &'static str {
            "Fixed"
        }
        fn supports(&self, _m: ModelId) -> bool {
            true
        }
        fn estimate(&self, _s: &TrainJobSpec, d: &GpuDevice) -> Option<EstimateOutcome> {
            Some(EstimateOutcome::from_peak(self.0, d))
        }
    }

    fn key(device: &GpuDevice) -> ConfigKey {
        ConfigKey {
            model: ModelId::MobileNetV3Small,
            optimizer: OptimizerKind::Adam,
            batch: 8,
            zero_grad: ZeroGradPos::BeforeBackward,
            device: device.name.to_string(),
            repeat: 1,
        }
    }

    #[test]
    fn accurate_estimate_passes_both_rounds() {
        let device = GpuDevice::rtx3060();
        let spec =
            TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8).with_iterations(2);
        let gt = run_on_gpu(&spec, &device, None, false);
        let round1 = GroundTruthSummary {
            peak: gt.peak_nvml,
            oom: gt.oom,
        };
        // A generous but sub-capacity estimate must validate.
        let est = Fixed(gt.peak_nvml + (200 << 20));
        let rec = validate(&spec, &key(&device), &device, &est, round1);
        assert!(rec.c1 && rec.c2);
        assert!(rec.has_error());
        assert!(rec.m_save > 0.0);
        assert!(rec.round2.is_some());
    }

    #[test]
    fn underestimate_fails_round_two() {
        let device = GpuDevice::rtx3060();
        let spec =
            TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8).with_iterations(2);
        let gt = run_on_gpu(&spec, &device, None, false);
        let round1 = GroundTruthSummary {
            peak: gt.peak_nvml,
            oom: gt.oom,
        };
        // 60% of the true peak cannot work as a cap.
        let est = Fixed(gt.peak_nvml * 6 / 10);
        let rec = validate(&spec, &key(&device), &device, &est, round1);
        assert!(rec.c1, "OOM prediction itself was correct");
        assert!(!rec.c2, "capped run OOMs");
        assert_eq!(rec.m_save, -(device.capacity as f64));
        assert!(rec.has_error(), "error falls back to round 1 (Eq. 3)");
    }

    #[test]
    fn failed_estimator_is_penalized() {
        struct Failing;
        impl MemoryEstimator for Failing {
            fn name(&self) -> &'static str {
                "Failing"
            }
            fn supports(&self, _m: ModelId) -> bool {
                true
            }
            fn estimate(&self, _s: &TrainJobSpec, _d: &GpuDevice) -> Option<EstimateOutcome> {
                None
            }
        }
        let device = GpuDevice::rtx3060();
        let spec =
            TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8).with_iterations(2);
        let round1 = GroundTruthSummary {
            peak: 1 << 30,
            oom: false,
        };
        let rec = validate(&spec, &key(&device), &device, &Failing, round1);
        assert!(!rec.c1 && !rec.c2);
        assert!(!rec.has_error());
        assert_eq!(rec.m_save, -(device.capacity as f64));
    }
}
