//! Campaign execution: drives the two-round protocol for a set of
//! configurations × estimators, in parallel.

use crate::protocol::{validate, ConfigKey, GroundTruthSummary, RunRecord};
use crate::XMemEstimator;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use xmem_baselines::{DnnMem, LlMem, MemoryEstimator, SchedTune};
use xmem_runtime::{run_on_gpu, GpuDevice, TrainJobSpec};

/// One schedulable unit: a job spec bound to a device and repeat identity.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// The training job.
    pub spec: TrainJobSpec,
    /// Configuration identity for aggregation.
    pub key: ConfigKey,
    /// Target device.
    pub device: GpuDevice,
}

/// The four estimators of the evaluation.
pub struct EstimatorSet {
    /// This paper.
    pub xmem: XMemEstimator,
    /// Static analysis baseline.
    pub dnnmem: DnnMem,
    /// Data-driven baseline (pre-trained).
    pub schedtune: SchedTune,
    /// Direct-GPU baseline.
    pub llmem: LlMem,
}

impl EstimatorSet {
    /// Builds the standard set; SchedTune is trained on its historical
    /// corpus (deterministic in `seed`).
    #[must_use]
    pub fn standard(seed: u64) -> Self {
        EstimatorSet {
            xmem: XMemEstimator::new(),
            dnnmem: DnnMem::new(),
            schedtune: SchedTune::train(seed),
            llmem: LlMem::new(),
        }
    }

    /// The estimators as trait objects, paper plotting order.
    #[must_use]
    pub fn all(&self) -> Vec<&dyn MemoryEstimator> {
        vec![&self.xmem, &self.dnnmem, &self.schedtune, &self.llmem]
    }
}

/// Campaign knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CampaignOptions {
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}

/// Runs the protocol for every `(config, estimator)` pair. The round-1
/// ground truth is executed once per configuration and shared across
/// estimators (as in the paper, where one real training run serves all
/// comparisons).
#[must_use]
pub fn run_campaign(
    configs: &[JobConfig],
    estimators: &EstimatorSet,
    options: CampaignOptions,
) -> Vec<RunRecord> {
    let threads = if options.threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    } else {
        options.threads
    };
    let next = AtomicUsize::new(0);
    let records: Mutex<Vec<RunRecord>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..threads.min(configs.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let cfg = &configs[i];
                let gt = run_on_gpu(&cfg.spec, &cfg.device, None, false);
                let round1 = GroundTruthSummary {
                    peak: gt.peak_nvml,
                    oom: gt.oom,
                };
                let mut local = Vec::with_capacity(4);
                for est in estimators.all() {
                    if !est.supports(cfg.spec.model) {
                        continue;
                    }
                    local.push(validate(&cfg.spec, &cfg.key, &cfg.device, est, round1));
                }
                records.lock().expect("poisoned").extend(local);
            });
        }
    });

    records.into_inner().expect("poisoned")
}

/// Deterministic per-config seed derived from identity fields (FNV-1a).
#[must_use]
pub fn config_seed(campaign_seed: u64, label: &str, repeat: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ campaign_seed;
    for b in label.bytes().chain(repeat.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Convenience constructor for a [`JobConfig`].
#[must_use]
pub fn job(campaign_seed: u64, spec: TrainJobSpec, device: GpuDevice, repeat: u32) -> JobConfig {
    let seed = config_seed(campaign_seed, &spec.label(), repeat);
    let spec = spec.with_seed(seed);
    let key = ConfigKey {
        model: spec.model,
        optimizer: spec.optimizer,
        batch: spec.batch,
        zero_grad: spec.zero_grad_pos,
        device: device.name.to_string(),
        repeat,
    };
    JobConfig { spec, key, device }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_models::ModelId;
    use xmem_optim::OptimizerKind;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = config_seed(1, "m+Adam+b8+POS0", 1);
        let b = config_seed(1, "m+Adam+b8+POS0", 2);
        let c = config_seed(2, "m+Adam+b8+POS0", 1);
        assert_eq!(a, config_seed(1, "m+Adam+b8+POS0", 1));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn small_campaign_produces_records_for_all_estimators() {
        let estimators = EstimatorSet {
            xmem: XMemEstimator::new(),
            dnnmem: DnnMem::new(),
            // Avoid the training cost in unit tests: a tiny corpus.
            schedtune: SchedTune::train(7),
            llmem: LlMem::new(),
        };
        let configs = vec![
            job(
                1,
                TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8)
                    .with_iterations(2),
                GpuDevice::rtx3060(),
                1,
            ),
            job(
                1,
                TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 5).with_iterations(2),
                GpuDevice::rtx3060(),
                1,
            ),
        ];
        let records = run_campaign(&configs, &estimators, CampaignOptions { threads: 2 });
        // CNN: 3 estimators (LLMem unsupported); transformer: 4.
        assert_eq!(records.len(), 3 + 4);
        let xmem_records: Vec<_> = records.iter().filter(|r| r.estimator == "xMem").collect();
        assert_eq!(xmem_records.len(), 2);
        assert!(xmem_records.iter().all(|r| r.c1 && r.c2));
    }
}
