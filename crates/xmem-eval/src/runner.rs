//! Campaign execution: drives the two-round protocol for a set of
//! configurations × estimators, in parallel.

use crate::protocol::{validate, ConfigKey, GroundTruthSummary, RunRecord};
use crate::XMemEstimator;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use xmem_baselines::{DnnMem, LlMem, MemoryEstimator, SchedTune};
use xmem_runtime::{run_on_gpu, GpuDevice, TrainJobSpec};
use xmem_service::{EstimationService, JobKey};

/// One schedulable unit: a job spec bound to a device and repeat identity.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// The training job.
    pub spec: TrainJobSpec,
    /// Configuration identity for aggregation.
    pub key: ConfigKey,
    /// Target device.
    pub device: GpuDevice,
}

/// The four estimators of the evaluation.
pub struct EstimatorSet {
    /// This paper.
    pub xmem: XMemEstimator,
    /// Static analysis baseline.
    pub dnnmem: DnnMem,
    /// Data-driven baseline (pre-trained).
    pub schedtune: SchedTune,
    /// Direct-GPU baseline.
    pub llmem: LlMem,
}

impl EstimatorSet {
    /// Builds the standard set; SchedTune is trained on its historical
    /// corpus (deterministic in `seed`).
    #[must_use]
    pub fn standard(seed: u64) -> Self {
        EstimatorSet {
            xmem: XMemEstimator::new(),
            dnnmem: DnnMem::new(),
            schedtune: SchedTune::train(seed),
            llmem: LlMem::new(),
        }
    }

    /// Like [`standard`](Self::standard), but xMem routes through a
    /// shared [`EstimationService`]: combined with
    /// [`prewarm_matrix`], a whole campaign's estimation cost collapses
    /// to one profile/analyze per distinct job and one replay per
    /// `(job, device)` cell — bit-identical to the standalone adapter.
    #[must_use]
    pub fn service_backed(seed: u64, service: Arc<EstimationService>) -> Self {
        EstimatorSet {
            xmem: XMemEstimator::with_service(service),
            dnnmem: DnnMem::new(),
            schedtune: SchedTune::train(seed),
            llmem: LlMem::new(),
        }
    }

    /// The estimators as trait objects, paper plotting order.
    #[must_use]
    pub fn all(&self) -> Vec<&dyn MemoryEstimator> {
        vec![&self.xmem, &self.dnnmem, &self.schedtune, &self.llmem]
    }
}

/// Campaign knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CampaignOptions {
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}

/// Runs the protocol for every `(config, estimator)` pair. The round-1
/// ground truth is executed once per configuration and shared across
/// estimators (as in the paper, where one real training run serves all
/// comparisons).
#[must_use]
pub fn run_campaign(
    configs: &[JobConfig],
    estimators: &EstimatorSet,
    options: CampaignOptions,
) -> Vec<RunRecord> {
    let threads = if options.threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    } else {
        options.threads
    };
    let next = AtomicUsize::new(0);
    let records: Mutex<Vec<RunRecord>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..threads.min(configs.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let cfg = &configs[i];
                let gt = run_on_gpu(&cfg.spec, &cfg.device, None, false);
                let round1 = GroundTruthSummary {
                    peak: gt.peak_nvml,
                    oom: gt.oom,
                };
                let mut local = Vec::with_capacity(4);
                for est in estimators.all() {
                    if !est.supports(cfg.spec.model) {
                        continue;
                    }
                    local.push(validate(&cfg.spec, &cfg.key, &cfg.device, est, round1));
                }
                records.lock().expect("poisoned").extend(local);
            });
        }
    });

    records.into_inner().expect("poisoned")
}

/// Routes a campaign's whole estimation workload through
/// [`EstimationService::estimate_matrix`]: distinct jobs (seeds and
/// repeats collapse into one [`JobKey`]) × distinct devices, batched so
/// each job profiles **once** and each `(job, device)` cell simulates
/// once — the same collapse the scheduler paths enjoy. Devices are
/// registered under their marketing names; the per-run estimator calls
/// that follow ([`run_campaign`] with a
/// [`service_backed`](EstimatorSet::service_backed) set) are then pure
/// cache hits.
///
/// Returns `(distinct_jobs, distinct_devices)` — with the service's
/// `profile_runs()`/`sim_runs()` counters, that is the whole
/// analysis-collapse proof: `profile_runs == distinct_jobs` and
/// `sim_runs == distinct_jobs × distinct_devices` after a prewarm from
/// cold, however many `(config, repeat)` pairs the campaign holds.
pub fn prewarm_matrix(service: &EstimationService, configs: &[JobConfig]) -> (usize, usize) {
    let mut jobs: Vec<TrainJobSpec> = Vec::new();
    let mut seen_jobs: HashSet<JobKey> = HashSet::new();
    let mut devices: Vec<&'static str> = Vec::new();
    for config in configs {
        if seen_jobs.insert(JobKey::of(&config.spec)) {
            jobs.push(config.spec.clone());
        }
        if !devices.contains(&config.device.name) {
            devices.push(config.device.name);
            service.register_device(config.device.name, config.device);
        }
    }
    if jobs.is_empty() || devices.is_empty() {
        return (jobs.len(), devices.len());
    }
    service
        .estimate_matrix(&jobs, &devices)
        .expect("prewarm devices were just registered");
    (jobs.len(), devices.len())
}

/// Deterministic per-config seed derived from identity fields (FNV-1a).
#[must_use]
pub fn config_seed(campaign_seed: u64, label: &str, repeat: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ campaign_seed;
    for b in label.bytes().chain(repeat.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Convenience constructor for a [`JobConfig`].
#[must_use]
pub fn job(campaign_seed: u64, spec: TrainJobSpec, device: GpuDevice, repeat: u32) -> JobConfig {
    let seed = config_seed(campaign_seed, &spec.label(), repeat);
    let spec = spec.with_seed(seed);
    let key = ConfigKey {
        model: spec.model,
        optimizer: spec.optimizer,
        batch: spec.batch,
        zero_grad: spec.zero_grad_pos,
        device: device.name.to_string(),
        repeat,
    };
    JobConfig { spec, key, device }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_models::ModelId;
    use xmem_optim::OptimizerKind;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = config_seed(1, "m+Adam+b8+POS0", 1);
        let b = config_seed(1, "m+Adam+b8+POS0", 2);
        let c = config_seed(2, "m+Adam+b8+POS0", 1);
        assert_eq!(a, config_seed(1, "m+Adam+b8+POS0", 1));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn matrix_prewarmed_campaign_collapses_analyses() {
        use xmem_service::{DeviceRegistry, ServiceConfig};

        // 2 distinct jobs × 3 seeded repeats each, one job also probed on
        // a second device: 7 configs, but only 2 analyses and 3 cells.
        let spec_a =
            TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 4).with_iterations(2);
        let spec_b =
            TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8).with_iterations(2);
        let mut configs = Vec::new();
        for repeat in 1..=3 {
            configs.push(job(1, spec_a.clone(), GpuDevice::rtx3060(), repeat));
            configs.push(job(1, spec_b.clone(), GpuDevice::rtx3060(), repeat));
        }
        configs.push(job(1, spec_a.clone(), GpuDevice::rtx4060(), 1));

        let service = Arc::new(EstimationService::new(
            ServiceConfig::for_device(GpuDevice::rtx3060()).with_registry(DeviceRegistry::empty()),
        ));
        let (distinct_jobs, distinct_devices) = prewarm_matrix(&service, &configs);
        assert_eq!((distinct_jobs, distinct_devices), (2, 2));
        assert_eq!(
            service.profile_runs(),
            distinct_jobs as u64,
            "7 configs collapse onto 2 analyses"
        );
        assert_eq!(
            service.sim_runs(),
            (distinct_jobs * distinct_devices) as u64
        );

        // The campaign itself adds zero estimation work on the xMem side…
        let estimators = EstimatorSet::service_backed(7, Arc::clone(&service));
        let records = run_campaign(&configs, &estimators, CampaignOptions { threads: 2 });
        assert_eq!(service.profile_runs(), distinct_jobs as u64);
        assert_eq!(
            service.sim_runs(),
            (distinct_jobs * distinct_devices) as u64
        );

        // …and its xMem estimates are bit-identical to the standalone
        // adapter's.
        let standalone = XMemEstimator::new();
        for record in records.iter().filter(|r| r.estimator == "xMem") {
            let config = configs
                .iter()
                .find(|c| c.key == record.config)
                .expect("record maps to a config");
            assert_eq!(
                record.estimate,
                standalone.estimate(&config.spec, &config.device),
                "service-routed estimate diverged for {}",
                config.spec.label()
            );
        }
    }

    #[test]
    fn small_campaign_produces_records_for_all_estimators() {
        let estimators = EstimatorSet {
            xmem: XMemEstimator::new(),
            dnnmem: DnnMem::new(),
            // Avoid the training cost in unit tests: a tiny corpus.
            schedtune: SchedTune::train(7),
            llmem: LlMem::new(),
        };
        let configs = vec![
            job(
                1,
                TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8)
                    .with_iterations(2),
                GpuDevice::rtx3060(),
                1,
            ),
            job(
                1,
                TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 5).with_iterations(2),
                GpuDevice::rtx3060(),
                1,
            ),
        ];
        let records = run_campaign(&configs, &estimators, CampaignOptions { threads: 2 });
        // CNN: 3 estimators (LLMem unsupported); transformer: 4.
        assert_eq!(records.len(), 3 + 4);
        let xmem_records: Vec<_> = records.iter().filter(|r| r.estimator == "xMem").collect();
        assert_eq!(xmem_records.len(), 2);
        assert!(xmem_records.iter().all(|r| r.c1 && r.c2));
    }
}
