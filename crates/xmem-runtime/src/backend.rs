//! Backend models: workspace sizes and kernel durations.
//!
//! Core tensor sizes are identical across backends (the paper's observation
//! i/ii — the training script fixes the set of core tensors). What differs
//! is *transient* behaviour: CPU convolutions run through im2col/oneDNN
//! scratch buffers, GPU convolutions through cuDNN workspaces; GEMM packing
//! differs; kernels are ~100× faster on the GPU. These differences are the
//! irreducible error source of CPU-based estimation.

use serde::{Deserialize, Serialize};
use xmem_graph::{OpKind, TensorSpec};

const KIB: usize = 1024;
const MIB: usize = 1024 * 1024;

/// Which implementation family executes the kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// Host execution (MKL/oneDNN-style kernels) — the profiling backend.
    Cpu,
    /// Device execution (cuDNN/cuBLAS-style kernels) — the ground-truth
    /// backend.
    Gpu,
}

/// Forward or backward execution of an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Forward pass.
    Forward,
    /// Backward pass.
    Backward,
}

impl BackendKind {
    /// Device id recorded in memory instants (-1 = CPU, 0 = GPU ordinal 0).
    #[must_use]
    pub fn device_id(self) -> i32 {
        match self {
            BackendKind::Cpu => -1,
            BackendKind::Gpu => 0,
        }
    }

    /// Sustained MAC throughput used by the duration model (MACs per
    /// virtual microsecond).
    #[must_use]
    pub fn macs_per_us(self) -> u64 {
        match self {
            BackendKind::Cpu => 25_000,    // ~25 GMAC/s host
            BackendKind::Gpu => 2_500_000, // ~2.5 TMAC/s accelerator
        }
    }

    /// Fixed per-kernel dispatch overhead in microseconds.
    #[must_use]
    pub fn dispatch_overhead_us(self) -> u64 {
        match self {
            BackendKind::Cpu => 6,
            BackendKind::Gpu => 4,
        }
    }

    /// Virtual duration of one operator execution.
    #[must_use]
    pub fn op_duration_us(self, op: &OpKind, inputs: &[&TensorSpec], output: &TensorSpec) -> u64 {
        let macs = op.macs(inputs, output);
        (macs / self.macs_per_us()).max(2) + self.dispatch_overhead_us()
    }

    /// Transient workspace allocated for one operator execution and freed
    /// before the operator returns.
    ///
    /// The formulas are deterministic functions of the shapes, calibrated to
    /// plausible magnitudes; what matters for the reproduction is that CPU
    /// and GPU workspaces *differ*, creating the estimation gap the
    /// Orchestrator cannot fully close.
    #[must_use]
    pub fn workspace_bytes(
        self,
        op: &OpKind,
        inputs: &[&TensorSpec],
        output: &TensorSpec,
        phase: Phase,
    ) -> usize {
        let out_bytes = output.size_bytes();
        match (op, self) {
            (OpKind::Conv2d(c), BackendKind::Cpu) => {
                // im2col scratch (one column buffer per worker thread) plus
                // blocked accumulation buffers proportional to the output.
                let od = output.shape.dims();
                let (oh, ow) = (od[2], od[3]);
                let per_image = (c.in_ch / c.groups) * c.kernel.0 * c.kernel.1 * oh * ow * 4;
                let threads = 8;
                let (im2col_scale, acc_divisor) = match phase {
                    Phase::Forward => (1, 2),
                    Phase::Backward => (2, 2), // col2im + weight-grad buffers
                };
                (per_image * threads * im2col_scale + out_bytes / acc_divisor).min(256 * MIB)
            }
            (OpKind::Conv2d(_), BackendKind::Gpu) => {
                // cuDNN picks an algorithm with a bounded workspace.
                let base = (out_bytes / 4).clamp(MIB, 64 * MIB);
                match phase {
                    Phase::Forward => base,
                    Phase::Backward => (out_bytes / 3).clamp(MIB, 96 * MIB),
                }
            }
            (
                OpKind::Linear {
                    in_features,
                    out_features,
                    ..
                },
                BackendKind::Cpu,
            ) => {
                // GEMM packing + blocked output buffers: oneDNN-style CPU
                // GEMM uses noticeably more scratch than cuBLAS.
                let packing = 64 * KIB + (in_features + out_features) * 1024;
                (packing + out_bytes / 4).clamp(256 * KIB, 24 * MIB)
            }
            (OpKind::Linear { .. }, BackendKind::Gpu) => {
                // cuBLAS workspace tier by problem size.
                if out_bytes > MIB {
                    4 * MIB
                } else {
                    MIB
                }
            }
            (OpKind::Attention(a), _) => {
                // Flash-style SDPA on both backends: O(rows) accumulators,
                // no S^2 materialization. CPU blocks over more rows.
                let q = inputs[0].shape.dims();
                let rows = q[0] * q[1] * a.heads;
                let per_row = match self {
                    BackendKind::Cpu => 32,
                    BackendKind::Gpu => 8,
                };
                (rows * per_row).min(64 * MIB)
            }
            (OpKind::BatchNorm2d { .. } | OpKind::LayerNorm { .. } | OpKind::RmsNorm { .. }, _) => {
                let divisor = match self {
                    BackendKind::Cpu => 32,
                    BackendKind::Gpu => 64,
                };
                match phase {
                    Phase::Forward => 0,
                    // Per-row reduction buffers in backward.
                    Phase::Backward => (out_bytes / divisor).min(8 * MIB),
                }
            }
            (OpKind::CrossEntropyLoss, BackendKind::Cpu) => {
                // The CPU kernel materializes wide per-class temporaries.
                inputs[0].size_bytes() / 4
            }
            (OpKind::CrossEntropyLoss, BackendKind::Gpu) => {
                (inputs[0].size_bytes() / 16).min(8 * MIB)
            }
            // Elementwise and data-movement kernels: CUDA launches them
            // scratch-free, while oneDNN-style CPU kernels reserve a
            // per-op scratchpad for vectorized blocking.
            (_, BackendKind::Cpu) => (out_bytes / 8).min(16 * MIB),
            (_, BackendKind::Gpu) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_graph::Conv2dSpec;

    fn conv() -> OpKind {
        OpKind::Conv2d(Conv2dSpec {
            in_ch: 64,
            out_ch: 64,
            kernel: (3, 3),
            padding: (1, 1),
            ..Conv2dSpec::default()
        })
    }

    #[test]
    fn cpu_and_gpu_conv_workspaces_differ() {
        let op = conv();
        let x = TensorSpec::f32([8, 64, 56, 56]);
        let y = op.infer("c", &[&x]).unwrap();
        let cpu = BackendKind::Cpu.workspace_bytes(&op, &[&x], &y, Phase::Forward);
        let gpu = BackendKind::Gpu.workspace_bytes(&op, &[&x], &y, Phase::Forward);
        assert_ne!(cpu, gpu);
        assert!(cpu > 0 && gpu > 0);
    }

    #[test]
    fn gpu_is_faster_than_cpu() {
        let op = conv();
        let x = TensorSpec::f32([8, 64, 56, 56]);
        let y = op.infer("c", &[&x]).unwrap();
        assert!(
            BackendKind::Cpu.op_duration_us(&op, &[&x], &y)
                > BackendKind::Gpu.op_duration_us(&op, &[&x], &y)
        );
    }

    #[test]
    fn workspaces_are_bounded() {
        let op = conv();
        let x = TensorSpec::f32([512, 64, 224, 224]);
        let y = op.infer("c", &[&x]).unwrap();
        for backend in [BackendKind::Cpu, BackendKind::Gpu] {
            for phase in [Phase::Forward, Phase::Backward] {
                assert!(backend.workspace_bytes(&op, &[&x], &y, phase) <= 256 * MIB);
            }
        }
    }

    #[test]
    fn elementwise_ops_scratch_only_on_cpu() {
        // CUDA launches elementwise kernels scratch-free; oneDNN-style CPU
        // kernels reserve a small blocking scratchpad.
        let op = OpKind::Add;
        let x = TensorSpec::f32([8, 128]);
        assert_eq!(
            BackendKind::Gpu.workspace_bytes(&op, &[&x, &x], &x, Phase::Forward),
            0
        );
        let cpu = BackendKind::Cpu.workspace_bytes(&op, &[&x, &x], &x, Phase::Forward);
        assert_eq!(cpu, x.size_bytes() / 8);
    }

    #[test]
    fn durations_have_floor() {
        let op = OpKind::Add;
        let x = TensorSpec::f32([1]);
        assert!(BackendKind::Gpu.op_duration_us(&op, &[&x, &x], &x) >= 2);
    }
}
