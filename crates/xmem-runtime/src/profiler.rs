//! Event sinks: where the engine reports execution structure.
//!
//! The CPU backend attaches a [`Profiler`] that builds a
//! [`xmem_trace::Trace`] with the four event categories xMem consumes; the
//! GPU backend attaches a [`NullSink`] (ground truth needs only the arena's
//! sampler).

use xmem_trace::{EventCategory, Trace, TraceEvent};

/// Receives execution structure from the engine.
pub trait Sink {
    /// A completed span (module call, annotation or kernel).
    fn span(&mut self, category: EventCategory, name: &str, ts_us: u64, dur_us: u64);

    /// A completed kernel span carrying a forward/backward sequence number.
    fn span_seq(&mut self, name: &str, ts_us: u64, dur_us: u64, seq: u64);

    /// A memory allocation instant.
    fn mem_alloc(&mut self, ts_us: u64, addr: u64, bytes: usize, device: i32);

    /// A memory free instant.
    fn mem_free(&mut self, ts_us: u64, addr: u64, bytes: usize, device: i32);
}

/// Discards everything (GPU ground-truth runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn span(&mut self, _: EventCategory, _: &str, _: u64, _: u64) {}
    fn span_seq(&mut self, _: &str, _: u64, _: u64, _: u64) {}
    fn mem_alloc(&mut self, _: u64, _: u64, _: usize, _: i32) {}
    fn mem_free(&mut self, _: u64, _: u64, _: usize, _: i32) {}
}

/// Builds a profiler trace, PyTorch-style.
#[derive(Debug)]
pub struct Profiler {
    trace: Trace,
}

impl Profiler {
    /// Creates a profiler for a job called `name`.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Profiler {
            trace: Trace::new(name),
        }
    }

    /// Finishes profiling, returning the time-sorted trace.
    #[must_use]
    pub fn into_trace(mut self) -> Trace {
        self.trace.sort_by_time();
        self.trace
    }
}

impl Sink for Profiler {
    fn span(&mut self, category: EventCategory, name: &str, ts_us: u64, dur_us: u64) {
        self.trace
            .push(TraceEvent::span(category, name, ts_us, dur_us));
    }

    fn span_seq(&mut self, name: &str, ts_us: u64, dur_us: u64, seq: u64) {
        self.trace.push(TraceEvent::span_with_seq(
            EventCategory::CpuOp,
            name,
            ts_us,
            dur_us,
            seq,
        ));
    }

    fn mem_alloc(&mut self, ts_us: u64, addr: u64, bytes: usize, device: i32) {
        self.trace
            .push(TraceEvent::mem_alloc(ts_us, addr, bytes as u64, device));
    }

    fn mem_free(&mut self, ts_us: u64, addr: u64, bytes: usize, device: i32) {
        self.trace
            .push(TraceEvent::mem_free(ts_us, addr, bytes as u64, device));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_collects_and_sorts() {
        let mut p = Profiler::new("job");
        p.span(EventCategory::UserAnnotation, "ProfilerStep#1", 50, 100);
        p.mem_alloc(10, 0xa, 512, -1);
        p.span_seq("aten::linear", 20, 5, 3);
        let t = p.into_trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[0].ts_us, 10);
        assert_eq!(t.events()[1].args.seq, Some(3));
        assert_eq!(t.name(), "job");
    }

    #[test]
    fn null_sink_is_inert() {
        let mut s = NullSink;
        s.mem_alloc(0, 1, 2, -1);
        s.span(EventCategory::CpuOp, "x", 0, 1);
    }
}
