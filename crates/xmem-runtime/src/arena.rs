//! Memory arenas: where the engine's allocations land.
//!
//! * [`CpuHeap`] — a malloc-like host heap with address reuse. PyTorch's CPU
//!   allocator hands back recently freed blocks, which is exactly what makes
//!   raw trace pairing non-trivial (the Analyzer must handle address reuse,
//!   paper §3.2).
//! * [`GpuArena`] — the two-level caching allocator over a capacity-limited
//!   device, plus an [`NvmlSampler`] that polls total used memory on a 1 ms
//!   virtual-time grid, reproducing the paper's ground-truth methodology
//!   (§4.1.1).

use std::collections::BTreeMap;
use xmem_alloc::{AllocatorSnapshot, CachingAllocator, MemoryCounters, OomError, TimelinePoint};

/// A place the engine can allocate from, stamped with a virtual clock.
pub trait MemoryArena {
    /// Allocates `bytes`, returning the block address.
    ///
    /// # Errors
    /// Returns [`OomError`] when the backing device is exhausted (never for
    /// the CPU heap).
    fn alloc(&mut self, ts_us: u64, bytes: usize) -> Result<u64, OomError>;

    /// Frees the block at `addr`.
    fn free(&mut self, ts_us: u64, addr: u64);

    /// Advances the arena's notion of time (drives NVML sampling).
    fn advance_clock(&mut self, ts_us: u64);

    /// Device id recorded in profiler instants (-1 CPU, 0 GPU).
    fn device_id(&self) -> i32;
}

/// Malloc-like host heap: first-fit reuse of freed blocks by size class,
/// monotonically growing otherwise. Never OOMs (the paper's premise: a CPU
/// server has RAM to spare).
#[derive(Debug, Default)]
pub struct CpuHeap {
    next_addr: u64,
    /// Freed blocks by size: realistic allocators hand back a recently
    /// freed block of the same size class, so addresses are reused.
    free_by_size: BTreeMap<usize, Vec<u64>>,
    live: BTreeMap<u64, usize>,
    peak_live_bytes: u64,
    live_bytes: u64,
}

impl CpuHeap {
    /// Creates an empty heap.
    #[must_use]
    pub fn new() -> Self {
        CpuHeap {
            next_addr: 0x5600_0000_0000,
            ..CpuHeap::default()
        }
    }

    /// High-water mark of live bytes (diagnostics).
    #[must_use]
    pub fn peak_live_bytes(&self) -> u64 {
        self.peak_live_bytes
    }

    /// Bytes currently live.
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }
}

impl MemoryArena for CpuHeap {
    fn alloc(&mut self, _ts_us: u64, bytes: usize) -> Result<u64, OomError> {
        let bytes = bytes.max(1);
        let addr = match self.free_by_size.get_mut(&bytes).and_then(Vec::pop) {
            Some(addr) => addr,
            None => {
                let addr = self.next_addr;
                // 64-byte alignment like posix_memalign.
                self.next_addr += ((bytes as u64).div_ceil(64)) * 64;
                addr
            }
        };
        self.live.insert(addr, bytes);
        self.live_bytes += bytes as u64;
        self.peak_live_bytes = self.peak_live_bytes.max(self.live_bytes);
        Ok(addr)
    }

    fn free(&mut self, _ts_us: u64, addr: u64) {
        let bytes = self
            .live
            .remove(&addr)
            .expect("cpu heap free of unknown address");
        self.live_bytes -= bytes as u64;
        self.free_by_size.entry(bytes).or_default().push(addr);
    }

    fn advance_clock(&mut self, _ts_us: u64) {}

    fn device_id(&self) -> i32 {
        -1
    }
}

/// NVML-style sampler: records total used device memory at every 1 ms
/// boundary of virtual time (the paper samples NVML at 1 ms, §4.1.1).
/// Short-lived spikes *between* samples are invisible — faithfully so.
#[derive(Debug, Clone)]
pub struct NvmlSampler {
    interval_us: u64,
    next_sample_us: u64,
    peak_sampled: u64,
    samples: Vec<(u64, u64)>,
    record_series: bool,
}

impl NvmlSampler {
    /// Creates a sampler on a 1 ms grid with a phase offset.
    #[must_use]
    pub fn new(offset_us: u64, record_series: bool) -> Self {
        NvmlSampler {
            interval_us: 1000,
            next_sample_us: offset_us,
            peak_sampled: 0,
            samples: Vec::new(),
            record_series,
        }
    }

    /// Advances to `now_us`, sampling `current_used` at every grid point
    /// passed. `current_used` is the value since the previous event, which
    /// is exact because usage only changes at events.
    pub fn advance(&mut self, now_us: u64, current_used: u64) {
        while self.next_sample_us <= now_us {
            self.peak_sampled = self.peak_sampled.max(current_used);
            if self.record_series {
                self.samples.push((self.next_sample_us, current_used));
            }
            self.next_sample_us += self.interval_us;
        }
    }

    /// Highest sampled value.
    #[must_use]
    pub fn peak_sampled(&self) -> u64 {
        self.peak_sampled
    }

    /// The sampled series (empty unless recording was requested).
    #[must_use]
    pub fn samples(&self) -> &[(u64, u64)] {
        &self.samples
    }
}

/// Ground truth produced by a GPU run (paper notation: `M^peak` and `OOM`).
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Peak NVML-sampled total used memory (framework + segments), bytes.
    pub peak_nvml: u64,
    /// Exact peak of reserved segments + framework overhead (no sampling
    /// loss) — diagnostics only; estimators are scored against `peak_nvml`.
    pub peak_exact: u64,
    /// Whether the run died with an out-of-memory error.
    pub oom: bool,
    /// The OOM details when `oom` is true.
    pub oom_detail: Option<OomError>,
    /// Allocator counters at end (or at failure).
    pub counters: MemoryCounters,
    /// Segment/tensor usage curve, when recording was enabled.
    pub timeline: Vec<TimelinePoint>,
    /// Allocator snapshot at the end of the run, when recording was enabled.
    pub snapshot: Option<AllocatorSnapshot>,
    /// Virtual duration of the run in microseconds.
    pub duration_us: u64,
}

/// The GPU arena: two-level caching allocator + NVML sampler.
#[derive(Debug)]
pub struct GpuArena {
    allocator: CachingAllocator,
    sampler: NvmlSampler,
    now_us: u64,
}

impl GpuArena {
    /// Wraps a configured allocator. `sampler_offset_us` jitters the NVML
    /// grid phase; `record` enables curve/snapshot capture.
    #[must_use]
    pub fn new(allocator: CachingAllocator, sampler_offset_us: u64, record: bool) -> Self {
        let mut allocator = allocator;
        allocator.record_timeline(record);
        GpuArena {
            allocator,
            sampler: NvmlSampler::new(sampler_offset_us, record),
            now_us: 0,
        }
    }

    /// Total used device memory right now (what NVML reports).
    #[must_use]
    pub fn total_used(&self) -> u64 {
        self.allocator.device().total_used()
    }

    /// The wrapped allocator.
    #[must_use]
    pub fn allocator(&self) -> &CachingAllocator {
        &self.allocator
    }

    /// Finalizes the run into a [`GroundTruth`].
    #[must_use]
    pub fn into_ground_truth(mut self, oom: Option<OomError>, record: bool) -> GroundTruth {
        // Flush sampling to the end of the run.
        let used = self.total_used();
        self.sampler.advance(self.now_us + 1000, used);
        let counters = *self.allocator.counters();
        let framework = self.allocator.device().reserved_external();
        GroundTruth {
            peak_nvml: self.sampler.peak_sampled(),
            peak_exact: counters.peak_reserved + framework,
            oom: oom.is_some(),
            oom_detail: oom,
            counters,
            timeline: self.allocator.timeline().to_vec(),
            snapshot: record.then(|| self.allocator.snapshot()),
            duration_us: self.now_us,
        }
    }
}

impl MemoryArena for GpuArena {
    fn alloc(&mut self, ts_us: u64, bytes: usize) -> Result<u64, OomError> {
        self.advance_clock(ts_us);
        self.allocator.advance_clock(ts_us);
        self.allocator.alloc(bytes)
    }

    fn free(&mut self, ts_us: u64, addr: u64) {
        self.advance_clock(ts_us);
        self.allocator.advance_clock(ts_us);
        self.allocator.free(addr);
    }

    fn advance_clock(&mut self, ts_us: u64) {
        if ts_us > self.now_us {
            // Sample the *previous* usage level at grid points up to now.
            let used = self.total_used();
            self.sampler.advance(ts_us, used);
            self.now_us = ts_us;
        }
    }

    fn device_id(&self) -> i32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_alloc::{AllocatorConfig, DeviceAllocator};

    #[test]
    fn cpu_heap_reuses_addresses() {
        let mut h = CpuHeap::new();
        let a = h.alloc(0, 4096).unwrap();
        h.free(1, a);
        let b = h.alloc(2, 4096).unwrap();
        assert_eq!(a, b, "same size class reuses the freed address");
        let c = h.alloc(3, 4096).unwrap();
        assert_ne!(b, c);
    }

    #[test]
    fn cpu_heap_tracks_peak() {
        let mut h = CpuHeap::new();
        let a = h.alloc(0, 100).unwrap();
        let _b = h.alloc(1, 200).unwrap();
        h.free(2, a);
        assert_eq!(h.peak_live_bytes(), 300);
        assert_eq!(h.live_bytes(), 200);
    }

    #[test]
    fn sampler_misses_short_spikes() {
        let mut s = NvmlSampler::new(0, true);
        // Spike to 100 between ms boundaries, back to 10 before the next.
        s.advance(500, 10);
        s.advance(999, 100);
        s.advance(2000, 10);
        // Samples at 0 and 1000/2000 never see the 100 spike value because
        // it decayed before the 1000us boundary... except the boundary at
        // 1000 samples what was current *at* 1000, which is 10 again only
        // if the spike ended; here advance(2000, 10) covers t=1000.
        assert!(s.peak_sampled() <= 100);
    }

    #[test]
    fn sampler_sees_sustained_levels() {
        let mut s = NvmlSampler::new(0, false);
        s.advance(100, 0);
        s.advance(5000, 4096); // level 4096 held from 100us to 5000us
        assert_eq!(s.peak_sampled(), 4096);
    }

    #[test]
    fn gpu_arena_produces_ground_truth() {
        let alloc = CachingAllocator::new(
            AllocatorConfig::pytorch_defaults(),
            DeviceAllocator::new(1 << 30, 2 << 20, 100 << 20),
        );
        let mut arena = GpuArena::new(alloc, 0, true);
        let a = arena.alloc(10, 4 << 20).unwrap();
        arena.advance_clock(3000);
        arena.free(3500, a);
        arena.advance_clock(5000);
        let gt = arena.into_ground_truth(None, true);
        assert!(!gt.oom);
        // 20 MiB segment + 100 MiB framework, held across ms boundaries.
        assert_eq!(gt.peak_nvml, (100 << 20) + (20 << 20));
        assert_eq!(gt.peak_exact, (100 << 20) + (20 << 20));
        assert!(gt.snapshot.is_some());
        assert!(!gt.timeline.is_empty());
    }

    #[test]
    fn gpu_arena_oom_surfaces() {
        let alloc = CachingAllocator::new(
            AllocatorConfig::pytorch_defaults(),
            DeviceAllocator::new(32 << 20, 2 << 20, 0),
        );
        let mut arena = GpuArena::new(alloc, 0, false);
        let err = arena.alloc(0, 64 << 20).unwrap_err();
        let gt = arena.into_ground_truth(Some(err), false);
        assert!(gt.oom);
        assert!(gt.oom_detail.is_some());
    }
}
