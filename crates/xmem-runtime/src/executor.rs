//! The training-loop engine.
//!
//! Executes a graph through `iterations` of the standard PyTorch loop
//! (paper's reference loop [34]): dataloader fetch → (`zero_grad` at POS1)
//! → forward → (`zero_grad` at POS0) → backward → `optimizer.step()`.
//! Every tensor materialization goes through a [`MemoryArena`] and is
//! reported to a [`Sink`], on a virtual microsecond clock.
//!
//! Lifetime rules implemented here (and exploited by xMem's Orchestrator):
//!
//! * parameters and buffers live from `model.to(device)` onwards;
//! * activations are freed when their last forward consumer has run *and*
//!   no autograd node keeps them saved; saved tensors are released by the
//!   owning node's backward;
//! * gradients are allocated on first contribution during backward;
//!   activation gradients die with their producer's backward, parameter
//!   gradients persist until `zero_grad(set_to_none=True)` frees them;
//! * optimizer state appears on the first `step()` (or eagerly for
//!   Adagrad) and never dies;
//! * batch tensors are replaced at the next dataloader fetch.

use crate::arena::MemoryArena;
use crate::backend::{BackendKind, Phase};
use crate::jobs::{Precision, ZeroGradPos};
use crate::memmodel::{is_differentiable, is_inplace, saved_plan};
use crate::profiler::Sink;
use std::error::Error;
use std::fmt;
use xmem_alloc::OomError;
use xmem_graph::{DType, Graph, TensorSpec};
use xmem_optim::OptimizerKind;
use xmem_trace::names;
use xmem_trace::EventCategory;

/// A failed run.
#[derive(Debug)]
pub enum RunError {
    /// The device ran out of memory (GPU backend only).
    Oom(OomError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Oom(e) => write!(f, "training run failed: {e}"),
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Oom(e) => Some(e),
        }
    }
}

#[derive(Debug, Clone)]
struct Handle {
    bytes: usize,
    addr: Option<u64>,
    fwd_uses: usize,
    saved_refs: usize,
    /// Gradients flow into this tensor (float activation on the autograd
    /// tape). Batch inputs and integer tensors carry no gradient.
    wants_grad: bool,
    grad_addr: Option<u64>,
    /// Node whose execution materializes this handle (views and in-place
    /// ops share their input's handle).
    alloc_node: usize,
    /// Batch-lifetime tensor (replaced at the next dataloader fetch).
    is_batch: bool,
}

/// The engine. Generic over arena (CPU heap / GPU allocator) and sink
/// (profiler / null).
pub struct Engine<'g, A, S> {
    graph: &'g Graph,
    backend: BackendKind,
    optimizer: OptimizerKind,
    zero_grad_pos: ZeroGradPos,
    iterations: u32,
    precision: Precision,
    /// Parameter specs after precision mapping.
    param_specs: Vec<TensorSpec>,
    batch: usize,
    seq: usize,
    arena: A,
    sink: S,
    clock: u64,

    shapes: Vec<TensorSpec>,
    /// Node index → handle index.
    node_handle: Vec<usize>,
    handles: Vec<Handle>,
    fwd_uses_template: Vec<usize>,
    param_addrs: Vec<Option<u64>>,
    param_grads: Vec<Option<u64>>,
    state_addrs: Vec<Vec<u64>>,
    /// Extra saved buffers per node: (bytes, addr).
    saved_extra: Vec<Vec<(usize, u64)>>,
    batch_tensors: Vec<(u64, usize)>,
    states_initialized: bool,
    loss_node: usize,
    ops_executed: u64,
}

impl<'g, A: MemoryArena, S: Sink> Engine<'g, A, S> {
    /// Prepares a run. `seq == 0` selects the model's default sequence
    /// length.
    ///
    /// # Panics
    /// Panics if the graph fails shape inference for this configuration (a
    /// builder bug, not a workload condition).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        graph: &'g Graph,
        backend: BackendKind,
        optimizer: OptimizerKind,
        zero_grad_pos: ZeroGradPos,
        precision: Precision,
        iterations: u32,
        batch: usize,
        seq: usize,
        arena: A,
        sink: S,
    ) -> Self {
        // Precision mapping: float tensors change element width, integer
        // tensors (token ids, indices) are untouched.
        let apply_precision = |spec: TensorSpec| -> TensorSpec {
            match precision {
                Precision::F32 => spec,
                Precision::F16 if spec.dtype == DType::F32 => spec.with_dtype(DType::F16),
                Precision::F16 => spec,
            }
        };
        let inputs = graph.input_specs(batch, seq);
        let shapes: Vec<TensorSpec> = graph
            .infer_shapes(&inputs)
            .expect("graph must shape-infer for the run configuration")
            .into_iter()
            .map(apply_precision)
            .collect();
        let param_specs: Vec<TensorSpec> = graph
            .params()
            .iter()
            .map(|p| apply_precision(p.spec.clone()))
            .collect();

        // Resolve handles: views and in-place activations alias inputs.
        let mut node_handle = Vec::with_capacity(graph.nodes().len());
        let mut handles: Vec<Handle> = Vec::new();
        for (i, node) in graph.nodes().iter().enumerate() {
            let h = if node.op.is_view() || is_inplace(&node.op) {
                node_handle[node.inputs[0].index()]
            } else {
                handles.push(Handle {
                    bytes: shapes[i].size_bytes(),
                    addr: None,
                    fwd_uses: 0,
                    saved_refs: 0,
                    wants_grad: shapes[i].dtype.is_float() && !node.is_input(),
                    grad_addr: None,
                    alloc_node: i,
                    is_batch: node.is_input(),
                });
                handles.len() - 1
            };
            node_handle.push(h);
        }
        // Forward-use counts: one per consumer edge.
        let mut fwd_uses_template = vec![0usize; handles.len()];
        for node in graph.nodes() {
            for input in &node.inputs {
                fwd_uses_template[node_handle[input.index()]] += 1;
            }
        }
        let loss_node = graph.nodes().len() - 1;
        let saved_extra = vec![Vec::new(); graph.nodes().len()];
        Engine {
            graph,
            backend,
            optimizer,
            zero_grad_pos,
            iterations,
            precision,
            param_specs,
            batch,
            seq,
            arena,
            sink,
            clock: 0,
            shapes,
            node_handle,
            handles,
            fwd_uses_template,
            param_addrs: vec![None; graph.params().len()],
            param_grads: vec![None; graph.params().len()],
            state_addrs: vec![Vec::new(); graph.params().len()],
            saved_extra,
            batch_tensors: Vec::new(),
            states_initialized: false,
            loss_node,
            ops_executed: 0,
        }
    }

    /// Virtual time elapsed so far.
    #[must_use]
    pub fn clock_us(&self) -> u64 {
        self.clock
    }

    /// Consumes the engine, returning arena and sink for inspection.
    #[must_use]
    pub fn into_parts(self) -> (A, S) {
        (self.arena, self.sink)
    }

    fn apply_precision(&self, spec: TensorSpec) -> TensorSpec {
        match self.precision {
            Precision::F32 => spec,
            Precision::F16 if spec.dtype == DType::F32 => spec.with_dtype(DType::F16),
            Precision::F16 => spec,
        }
    }

    fn tick(&mut self, us: u64) {
        self.clock += us;
        self.arena.advance_clock(self.clock);
    }

    fn alloc(&mut self, bytes: usize) -> Result<u64, RunError> {
        let addr = self.arena.alloc(self.clock, bytes).map_err(RunError::Oom)?;
        self.sink
            .mem_alloc(self.clock, addr, bytes, self.arena.device_id());
        Ok(addr)
    }

    fn free(&mut self, addr: u64, bytes: usize) {
        self.arena.free(self.clock, addr);
        self.sink
            .mem_free(self.clock, addr, bytes, self.arena.device_id());
    }

    /// Frees a handle's data if nothing references it any more.
    fn try_free_data(&mut self, h: usize) {
        let handle = &self.handles[h];
        if handle.fwd_uses == 0
            && handle.saved_refs == 0
            && !handle.is_batch
            && handle.addr.is_some()
            && handle.alloc_node != self.loss_node
        {
            let addr = self.handles[h].addr.take().expect("checked above");
            let bytes = self.handles[h].bytes;
            self.free(addr, bytes);
        }
    }

    /// Runs the whole job.
    ///
    /// # Errors
    /// Returns [`RunError::Oom`] when the arena's device is exhausted; the
    /// engine state is then mid-iteration, exactly like a crashed job.
    pub fn run(&mut self) -> Result<(), RunError> {
        self.load_model()?;
        for k in 1..=self.iterations {
            self.iteration(k)?;
        }
        Ok(())
    }

    /// `model.to(device)` + optimizer construction: materializes parameters
    /// and buffers; Adagrad also materializes its accumulators here.
    fn load_model(&mut self) -> Result<(), RunError> {
        let t0 = self.clock;
        for i in 0..self.graph.params().len() {
            let bytes = self.param_specs[i].size_bytes();
            let addr = self.alloc(bytes)?;
            self.param_addrs[i] = Some(addr);
            self.tick(1 + bytes as u64 / 20_000);
        }
        if self.optimizer.eager_init() {
            self.init_optimizer_states()?;
        }
        let dur = self.clock - t0;
        self.sink.span(
            EventCategory::UserAnnotation,
            names::MODEL_TO_DEVICE,
            t0,
            dur.max(1),
        );
        Ok(())
    }

    fn init_optimizer_states(&mut self) -> Result<(), RunError> {
        for i in 0..self.graph.params().len() {
            let p = &self.graph.params()[i];
            if !p.trainable {
                continue;
            }
            let specs = self.optimizer.state_specs(&self.param_specs[i].clone());
            for spec in specs {
                let addr = self.alloc(spec.size_bytes())?;
                self.state_addrs[i].push(addr);
                self.tick(1);
            }
        }
        self.states_initialized = true;
        Ok(())
    }

    fn iteration(&mut self, k: u32) -> Result<(), RunError> {
        let iter_start = self.clock;
        self.dataload()?;
        if self.zero_grad_pos == ZeroGradPos::IterStart {
            self.zero_grad();
        }
        self.forward()?;
        if self.zero_grad_pos == ZeroGradPos::BeforeBackward {
            self.zero_grad();
        }
        self.backward()?;
        self.optimizer_step(k)?;
        self.script_side_work()?;
        let dur = self.clock - iter_start;
        self.sink.span(
            EventCategory::UserAnnotation,
            &names::profiler_step(k),
            iter_start,
            dur.max(1),
        );
        self.assert_iteration_clean();
        Ok(())
    }

    /// The profiler's own host-side ring buffers: `torch.profiler` grows
    /// its event buffers *during* the profiled run, producing CPU memory
    /// events between operator windows that have no GPU counterpart.
    /// These persistent script-level blocks are live at the peak — exactly
    /// what the Analyzer's operator-centric filter must drop.
    fn profiler_bookkeeping(&mut self) -> Result<(), RunError> {
        self.ops_executed += 1;
        if self.backend == BackendKind::Cpu && self.ops_executed % 32 == 1 {
            // One ring-buffer chunk; the profiler never frees them.
            let _ = self.alloc(1 << 20)?;
            self.tick(1);
        }
        Ok(())
    }

    /// Host-side script work after the step: metric extraction
    /// (`logits.argmax(...).cpu()`) and logging buffers. These
    /// allocations happen in Python, outside any operator window, and only
    /// on the profiling (CPU) backend — the GPU run sees none of them.
    /// They are exactly the script-level blocks the Analyzer's
    /// operator-centric filter must drop (paper §3.2).
    fn script_side_work(&mut self) -> Result<(), RunError> {
        if self.backend != BackendKind::Cpu {
            return Ok(());
        }
        // Prediction indices the size of the target tensor.
        let preds = self
            .graph
            .input_template()
            .target_spec(self.batch, self.seq)
            .size_bytes();
        let preds_addr = self.alloc(preds)?;
        self.tick(3);
        // A log/metrics formatting buffer.
        let log_bytes = 256 * 1024;
        let log_addr = self.alloc(log_bytes)?;
        self.tick(5);
        self.free(preds_addr, preds);
        self.free(log_addr, log_bytes);
        self.tick(2);
        Ok(())
    }

    fn dataload(&mut self) -> Result<(), RunError> {
        let t0 = self.clock;
        let mut new_batch = Vec::new();
        let mut specs: Vec<TensorSpec> = self
            .graph
            .input_specs(self.batch, self.seq)
            .into_iter()
            .map(|s| self.apply_precision(s))
            .collect();
        specs.push(
            self.graph
                .input_template()
                .target_spec(self.batch, self.seq),
        );
        for spec in &specs {
            let addr = self.alloc(spec.size_bytes())?;
            new_batch.push((addr, spec.size_bytes()));
            self.tick(1 + spec.size_bytes() as u64 / 50_000);
        }
        // The previous batch dies once the loop variable is rebound.
        let old = std::mem::take(&mut self.batch_tensors);
        for (addr, bytes) in old {
            self.free(addr, bytes);
        }
        // Bind input handles to the fresh batch tensors.
        let mut slot = 0;
        for (i, node) in self.graph.nodes().iter().enumerate() {
            if node.is_input() {
                let h = self.node_handle[i];
                self.handles[h].addr = Some(new_batch[slot].0);
                slot += 1;
            }
        }
        self.batch_tensors = new_batch;
        self.tick(20);
        let dur = self.clock - t0;
        self.sink.span(
            EventCategory::UserAnnotation,
            names::DATALOADER_NEXT,
            t0,
            dur.max(1),
        );
        Ok(())
    }

    fn zero_grad(&mut self) {
        let t0 = self.clock;
        self.tick(2);
        for i in 0..self.param_grads.len() {
            if let Some(addr) = self.param_grads[i].take() {
                let bytes = self.param_specs[i].size_bytes();
                self.free(addr, bytes);
                self.tick(1);
            }
        }
        self.tick(2);
        let dur = self.clock - t0;
        self.sink.span(
            EventCategory::UserAnnotation,
            &names::optimizer_zero_grad(self.optimizer.name()),
            t0,
            dur.max(1),
        );
    }

    fn forward(&mut self) -> Result<(), RunError> {
        let fwd_start = self.clock;
        // Reset per-iteration forward-use counters.
        for (h, uses) in self.fwd_uses_template.iter().enumerate() {
            self.handles[h].fwd_uses = *uses;
        }
        let mut component_open: Option<(String, u64)> = None;
        for i in 0..self.graph.nodes().len() {
            let node = &self.graph.nodes()[i];
            // Component (python_function) span bookkeeping.
            let comp = node.component.clone();
            let is_input = node.is_input();
            match &mut component_open {
                Some((open, start)) if *open != comp => {
                    let (name, start) = (open.clone(), *start);
                    self.close_component(&name, start);
                    component_open =
                        (!comp.is_empty() && !is_input).then(|| (comp.clone(), self.clock));
                }
                None if !comp.is_empty() && !is_input => {
                    component_open = Some((comp.clone(), self.clock));
                }
                _ => {}
            }
            if is_input {
                continue;
            }
            self.execute_forward_node(i)?;
        }
        if let Some((name, start)) = component_open {
            self.close_component(&name, start);
        }
        let dur = self.clock - fwd_start;
        self.sink.span(
            EventCategory::PythonFunction,
            &names::nn_module(self.graph.name()),
            fwd_start,
            dur.max(1),
        );
        Ok(())
    }

    fn close_component(&mut self, name: &str, start: u64) {
        let dur = self.clock - start;
        self.sink.span(
            EventCategory::PythonFunction,
            &names::nn_module(name),
            start,
            dur.max(1),
        );
    }

    fn execute_forward_node(&mut self, i: usize) -> Result<(), RunError> {
        self.profiler_bookkeeping()?;
        let node = &self.graph.nodes()[i];
        let op = node.op.clone();
        let t0 = self.clock;
        let input_specs: Vec<TensorSpec> = node
            .inputs
            .iter()
            .map(|id| self.shapes[id.index()].clone())
            .collect();
        let input_handles: Vec<usize> = node
            .inputs
            .iter()
            .map(|id| self.node_handle[id.index()])
            .collect();
        let out_spec = self.shapes[i].clone();
        let in_refs: Vec<&TensorSpec> = input_specs.iter().collect();
        let dur = self.backend.op_duration_us(&op, &in_refs, &out_spec);

        // Output materialization.
        let h = self.node_handle[i];
        if !op.is_view() && !is_inplace(&op) {
            let bytes = self.handles[h].bytes;
            let addr = self.alloc(bytes)?;
            self.handles[h].addr = Some(addr);
        }
        // Transient workspace.
        let ws = self
            .backend
            .workspace_bytes(&op, &in_refs, &out_spec, Phase::Forward);
        let ws_addr = if ws > 0 { Some(self.alloc(ws)?) } else { None };
        // Saved-for-backward bookkeeping.
        let plan = saved_plan(&op, &in_refs, &out_spec);
        for &idx in &plan.save_inputs {
            let ih = input_handles[idx];
            self.handles[ih].saved_refs += 1;
        }
        if plan.save_output {
            self.handles[h].saved_refs += 1;
        }
        let mut extras = Vec::new();
        for (_label, bytes) in &plan.extra {
            let addr = self.alloc(*bytes)?;
            extras.push((*bytes, addr));
            self.tick(1);
        }
        self.saved_extra[i] = extras;

        // Compute.
        let elapsed = self.clock - t0;
        if dur > elapsed + 1 {
            self.tick(dur - elapsed - 1);
        }
        if let Some(addr) = ws_addr {
            self.free(addr, ws);
        }
        self.tick(1);
        let total = self.clock - t0;
        self.sink.span_seq(op.aten_name(), t0, total, i as u64);

        // Release inputs whose last use this was.
        for &ih in &input_handles {
            self.handles[ih].fwd_uses = self.handles[ih].fwd_uses.saturating_sub(1);
        }
        for &ih in &input_handles {
            self.try_free_data(ih);
        }
        Ok(())
    }

    fn backward(&mut self) -> Result<(), RunError> {
        let t0b = self.clock;
        // Seed gradient on the loss scalar.
        let loss_h = self.node_handle[self.loss_node];
        let seed = self.alloc(self.handles[loss_h].bytes.max(4))?;
        self.handles[loss_h].grad_addr = Some(seed);
        self.tick(2);

        for i in (0..self.graph.nodes().len()).rev() {
            let node = &self.graph.nodes()[i];
            let op = node.op.clone();
            if node.is_input() || op.is_view() {
                continue;
            }
            self.execute_backward_node(i)?;
        }
        // The loss tensor itself dies after backward.
        let loss_h = self.node_handle[self.loss_node];
        if let Some(addr) = self.handles[loss_h].addr.take() {
            let bytes = self.handles[loss_h].bytes;
            self.free(addr, bytes);
        }
        let dur = self.clock - t0b;
        self.sink.span(
            EventCategory::UserAnnotation,
            names::BACKWARD_CALL,
            t0b,
            dur.max(1),
        );
        Ok(())
    }

    fn execute_backward_node(&mut self, i: usize) -> Result<(), RunError> {
        self.profiler_bookkeeping()?;
        let node = &self.graph.nodes()[i];
        let op = node.op.clone();
        let t0 = self.clock;
        let input_specs: Vec<TensorSpec> = node
            .inputs
            .iter()
            .map(|id| self.shapes[id.index()].clone())
            .collect();
        let input_handles: Vec<usize> = node
            .inputs
            .iter()
            .map(|id| self.node_handle[id.index()])
            .collect();
        let out_spec = self.shapes[i].clone();
        let in_refs: Vec<&TensorSpec> = input_specs.iter().collect();
        // Backward kernels cost roughly 2x forward.
        let dur = 2 * self.backend.op_duration_us(&op, &in_refs, &out_spec);
        let inplace = is_inplace(&op);

        // Allocate gradient buffers for differentiable inputs (first
        // contribution allocates; later consumers accumulate in place).
        if !inplace && is_differentiable(&op) {
            for &ih in &input_handles {
                let handle = &self.handles[ih];
                if handle.wants_grad && handle.grad_addr.is_none() {
                    let bytes = handle.bytes;
                    let addr = self.alloc(bytes)?;
                    self.handles[ih].grad_addr = Some(addr);
                    self.tick(1);
                }
            }
        }
        // Transient backward workspace.
        let ws = self
            .backend
            .workspace_bytes(&op, &in_refs, &out_spec, Phase::Backward);
        let ws_addr = if ws > 0 { Some(self.alloc(ws)?) } else { None };

        let elapsed = self.clock - t0;
        if dur > elapsed + 1 {
            self.tick(dur - elapsed - 1);
        }
        if let Some(addr) = ws_addr {
            self.free(addr, ws);
        }

        // Release saved tensors and extra buffers.
        let plan = saved_plan(&op, &in_refs, &out_spec);
        for &idx in &plan.save_inputs {
            let ih = input_handles[idx];
            self.handles[ih].saved_refs -= 1;
            self.try_free_data(ih);
        }
        let h = self.node_handle[i];
        if plan.save_output {
            self.handles[h].saved_refs -= 1;
            self.try_free_data(h);
        }
        let extras = std::mem::take(&mut self.saved_extra[i]);
        for (bytes, addr) in extras {
            self.free(addr, bytes);
        }
        self.tick(1);
        let total = self.clock - t0;
        let bwd_name = names::autograd_node(&names::backward_node_for(op.aten_name()));
        self.sink.span_seq(&bwd_name, t0, total, i as u64);

        // The output gradient is consumed by this node's backward: free it
        // if this node materialized the handle (views/in-place share).
        if self.handles[h].alloc_node == i {
            if let Some(addr) = self.handles[h].grad_addr.take() {
                let bytes = self.handles[h].bytes;
                self.free(addr, bytes);
            }
        }

        // AccumulateGrad: parameter gradients materialize on first touch.
        let trainable: Vec<usize> = node
            .params
            .iter()
            .map(|p| p.index())
            .filter(|&p| self.graph.params()[p].trainable)
            .collect();
        if !trainable.is_empty() {
            let ta = self.clock;
            for p in trainable {
                if self.param_grads[p].is_none() {
                    let bytes = self.param_specs[p].size_bytes();
                    let addr = self.alloc(bytes)?;
                    self.param_grads[p] = Some(addr);
                }
                self.tick(1);
            }
            self.tick(1);
            let dur = self.clock - ta;
            self.sink
                .span(EventCategory::CpuOp, names::ACCUMULATE_GRAD, ta, dur.max(1));
        }
        Ok(())
    }

    fn optimizer_step(&mut self, _k: u32) -> Result<(), RunError> {
        let t0 = self.clock;
        if !self.states_initialized && self.optimizer.is_stateful() {
            self.init_optimizer_states()?;
        }
        self.states_initialized = true;
        for i in 0..self.graph.params().len() {
            if !self.graph.params()[i].trainable {
                continue;
            }
            let spec = self.param_specs[i].clone();
            let scratch = self.optimizer.step_scratch_bytes(&spec);
            if scratch > 0 {
                let addr = self.alloc(scratch)?;
                self.tick(1 + spec.numel() as u64 / 100_000);
                self.free(addr, scratch);
            }
            self.tick(1);
        }
        let dur = self.clock - t0;
        self.sink.span(
            EventCategory::UserAnnotation,
            &names::optimizer_step(self.optimizer.name()),
            t0,
            dur.max(1),
        );
        Ok(())
    }

    /// Structural check at iteration end: every activation and activation
    /// gradient must be gone; only parameters, optimizer state, parameter
    /// gradients and the live batch may remain.
    fn assert_iteration_clean(&self) {
        for (idx, h) in self.handles.iter().enumerate() {
            if h.is_batch {
                continue;
            }
            debug_assert!(
                h.addr.is_none(),
                "activation handle {idx} (node {}) leaked data",
                h.alloc_node
            );
            debug_assert!(
                h.grad_addr.is_none(),
                "activation handle {idx} (node {}) leaked gradient",
                h.alloc_node
            );
            debug_assert_eq!(h.saved_refs, 0, "handle {idx} leaked saved refs");
        }
        for (i, extras) in self.saved_extra.iter().enumerate() {
            debug_assert!(extras.is_empty(), "node {i} leaked saved buffers");
        }
    }
}
