//! Per-operator memory behaviour: in-place execution, saved-for-backward
//! tensors and auxiliary buffers.
//!
//! This encodes what PyTorch's autograd keeps alive between forward and
//! backward — the dominant driver of training peak memory.

use xmem_graph::{ActKind, DType, OpKind, TensorSpec};

/// What one operator's forward execution pins for its backward.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SavedPlan {
    /// Indices (into the node's inputs) of input tensors kept alive.
    pub save_inputs: Vec<usize>,
    /// Whether the output tensor is kept alive (e.g. softmax, in-place
    /// ReLU derivatives are computed from the output).
    pub save_output: bool,
    /// Extra buffers materialized in forward and released by this node's
    /// backward: `(label, bytes)` — dropout masks, max-pool indices,
    /// normalization statistics, log-probabilities.
    pub extra: Vec<(&'static str, usize)>,
}

/// Whether the operator executes in place on CNN-style pipelines (its
/// output aliases its input, allocating nothing) — torchvision uses
/// `inplace=True` activations throughout.
#[must_use]
pub fn is_inplace(op: &OpKind) -> bool {
    matches!(
        op,
        OpKind::Activation(
            ActKind::Relu | ActKind::Relu6 | ActKind::Hardswish | ActKind::Hardsigmoid
        )
    )
}

/// Whether gradients flow through this operator to its data inputs.
#[must_use]
pub fn is_differentiable(op: &OpKind) -> bool {
    !matches!(op, OpKind::Input { .. } | OpKind::Embedding { .. })
}

/// Builds the [`SavedPlan`] for one operator execution.
///
/// `inputs`/`output` are the resolved tensor specs of this node.
#[must_use]
pub fn saved_plan(op: &OpKind, inputs: &[&TensorSpec], output: &TensorSpec) -> SavedPlan {
    let mut plan = SavedPlan::default();
    match op {
        OpKind::Conv2d(_) | OpKind::Linear { .. } => {
            // Needs the input for the weight gradient.
            plan.save_inputs = vec![0];
        }
        OpKind::Embedding { .. } => {
            // Needs the indices to scatter gradients into the weight.
            plan.save_inputs = vec![0];
        }
        OpKind::BatchNorm2d { features } => {
            plan.save_inputs = vec![0];
            // save_mean + save_invstd.
            plan.extra = vec![("bn_stats", 2 * features * 4)];
        }
        OpKind::LayerNorm { dim } | OpKind::RmsNorm { dim } => {
            plan.save_inputs = vec![0];
            let rows = output.numel() / dim.max(&1);
            let per_row = if matches!(op, OpKind::LayerNorm { .. }) {
                2 // mean + rstd
            } else {
                1 // rstd
            };
            plan.extra = vec![("norm_stats", rows * per_row * 4)];
        }
        OpKind::Activation(kind) => {
            if is_inplace(op) {
                // Derivative computed from the (aliased) output.
                plan.save_output = true;
            } else {
                match kind {
                    ActKind::Sigmoid | ActKind::Tanh => plan.save_output = true,
                    _ => plan.save_inputs = vec![0],
                }
            }
        }
        OpKind::MaxPool2d(_) => {
            // Index tensor the shape of the output.
            plan.extra = vec![("pool_indices", output.numel() * DType::I64.size_bytes())];
        }
        OpKind::AvgPool2d(_) | OpKind::AdaptiveAvgPool2d { .. } => {
            // Backward needs only shapes.
        }
        OpKind::Dropout { p_permille } => {
            if *p_permille > 0 {
                plan.extra = vec![("dropout_mask", output.numel())]; // u8 mask
            }
        }
        OpKind::Attention(a) => {
            // Flash-style SDPA saves q, k, v, the output and the per-row
            // log-sum-exp statistics.
            plan.save_inputs = vec![0, 1, 2];
            plan.save_output = true;
            let q = inputs[0].shape.dims();
            let rows = q[0] * q[1] * a.heads;
            plan.extra = vec![("sdpa_logsumexp", rows * 4)];
        }
        OpKind::Softmax { .. } => {
            plan.save_output = true;
        }
        OpKind::Mul => {
            // Product rule needs both factors.
            plan.save_inputs = vec![0, 1];
        }
        OpKind::Scale { .. } => {
            // Gamma gradient needs the input.
            plan.save_inputs = vec![0];
        }
        OpKind::CrossEntropyLoss => {
            // log_softmax materialized the size of the logits, plus the
            // target indices stay referenced.
            plan.extra = vec![("log_probs", inputs[0].size_bytes())];
        }
        OpKind::Add
        | OpKind::Concat { .. }
        | OpKind::Flatten { .. }
        | OpKind::Reshape { .. }
        | OpKind::Permute { .. }
        | OpKind::Input { .. } => {}
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_graph::AttentionSpec;

    #[test]
    fn linear_saves_input_only() {
        let op = OpKind::Linear {
            in_features: 8,
            out_features: 8,
            bias: true,
        };
        let x = TensorSpec::f32([2, 8]);
        let plan = saved_plan(&op, &[&x], &x);
        assert_eq!(plan.save_inputs, vec![0]);
        assert!(!plan.save_output);
        assert!(plan.extra.is_empty());
    }

    #[test]
    fn relu_is_inplace_and_saves_output() {
        let op = OpKind::Activation(ActKind::Relu);
        assert!(is_inplace(&op));
        let x = TensorSpec::f32([2, 8]);
        assert!(saved_plan(&op, &[&x], &x).save_output);
    }

    #[test]
    fn gelu_saves_input_not_inplace() {
        let op = OpKind::Activation(ActKind::Gelu);
        assert!(!is_inplace(&op));
        let x = TensorSpec::f32([2, 8]);
        assert_eq!(saved_plan(&op, &[&x], &x).save_inputs, vec![0]);
    }

    #[test]
    fn maxpool_indices_are_i64_output_sized() {
        let op = OpKind::MaxPool2d(xmem_graph::PoolSpec::square(2));
        let x = TensorSpec::f32([1, 4, 8, 8]);
        let y = op.infer("p", &[&x]).unwrap();
        let plan = saved_plan(&op, &[&x], &y);
        assert_eq!(plan.extra[0].1, 4 * 4 * 4 * 8);
    }

    #[test]
    fn attention_saves_qkv_output_and_stats() {
        let op = OpKind::Attention(AttentionSpec {
            heads: 4,
            kv_heads: 4,
            head_dim: 16,
            causal: true,
        });
        let q = TensorSpec::f32([2, 10, 64]);
        let plan = saved_plan(&op, &[&q, &q, &q], &q);
        assert_eq!(plan.save_inputs, vec![0, 1, 2]);
        assert!(plan.save_output);
        assert_eq!(plan.extra[0].1, 2 * 10 * 4 * 4);
    }

    #[test]
    fn cross_entropy_materializes_log_probs() {
        let op = OpKind::CrossEntropyLoss;
        let logits = TensorSpec::f32([4, 100]);
        let scalar = TensorSpec::f32(xmem_graph::Shape::scalar());
        let plan = saved_plan(&op, &[&logits], &scalar);
        assert_eq!(plan.extra[0].1, logits.size_bytes());
    }

    #[test]
    fn dropout_mask_only_when_active() {
        let x = TensorSpec::f32([2, 8]);
        let active = saved_plan(&OpKind::Dropout { p_permille: 100 }, &[&x], &x);
        assert_eq!(active.extra[0].1, 16);
        let inert = saved_plan(&OpKind::Dropout { p_permille: 0 }, &[&x], &x);
        assert!(inert.extra.is_empty());
    }

    #[test]
    fn embeddings_do_not_propagate_gradients() {
        assert!(!is_differentiable(&OpKind::Embedding { vocab: 10, dim: 4 }));
        assert!(is_differentiable(&OpKind::Add));
    }
}
