//! Memory-level training-loop executor.
//!
//! This crate is the stand-in for "running the job under PyTorch" (see
//! DESIGN.md §1). It executes a [`xmem_graph::Graph`] through a standard
//! training loop — dataloader fetch, forward, backward, `optimizer.step()`,
//! `optimizer.zero_grad()` — at the granularity of *memory events*: every
//! tensor materialization, every workspace, every gradient and optimizer
//! state is allocated and freed with PyTorch-loop lifetimes on a virtual
//! microsecond clock.
//!
//! Two backends share the engine:
//!
//! * **CPU** ([`profile_on_cpu`]) — allocations go to a malloc-like
//!   [`heap`](arena::CpuHeap) with address reuse, and a PyTorch-profiler-
//!   style [`Trace`](xmem_trace::Trace) is emitted (the four event
//!   categories of paper §3.2). This is the input to xMem.
//! * **GPU** ([`run_on_gpu`]) — allocations go through the two-level
//!   [`CachingAllocator`](xmem_alloc::CachingAllocator) on a
//!   capacity-limited device, an NVML-style sampler polls total used
//!   memory every millisecond of virtual time, and the run aborts with an
//!   OOM outcome exactly like a real job. This produces ground truth.
//!
//! Backend-specific workspace sizes and kernel durations (MKL-style im2col
//! scratch on CPU vs cuDNN-style workspaces on GPU) are the deliberate
//! CPU↔GPU divergence the paper identifies as the residual error source of
//! CPU-based estimation (§3.4, footnote 3).
//!
//! # Example
//!
//! ```
//! use xmem_runtime::{TrainJobSpec, ZeroGradPos, profile_on_cpu};
//! use xmem_models::ModelId;
//! use xmem_optim::OptimizerKind;
//!
//! let spec = TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8)
//!     .with_iterations(2);
//! let trace = profile_on_cpu(&spec);
//! assert!(trace.memory_instants().count() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod backend;
mod executor;
mod jobs;
mod memmodel;
mod profiler;

pub use arena::{CpuHeap, GpuArena, GroundTruth, MemoryArena, NvmlSampler};
pub use backend::{BackendKind, Phase};
pub use executor::{Engine, RunError};
pub use jobs::{profile_on_cpu, run_on_gpu, GpuDevice, Precision, TrainJobSpec, ZeroGradPos};
pub use profiler::{NullSink, Profiler, Sink};
