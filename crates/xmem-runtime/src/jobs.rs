//! Job specifications and run entry points.

use crate::arena::{CpuHeap, GpuArena, GroundTruth};
use crate::backend::BackendKind;
use crate::executor::{Engine, RunError};
use crate::profiler::{NullSink, Profiler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use xmem_alloc::{AllocatorConfig, CachingAllocator, DeviceAllocator};
use xmem_models::ModelId;
use xmem_optim::OptimizerKind;
use xmem_trace::Trace;

/// Placement of the `optimizer.zero_grad()` call in the training loop —
/// the code-structure variation of paper Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ZeroGradPos {
    /// POS0: immediately before `loss.backward()` — gradients from the
    /// previous iteration stay alive through dataload and forward.
    #[default]
    BeforeBackward,
    /// POS1: at the start of the iteration — gradients die early.
    IterStart,
}

impl ZeroGradPos {
    /// Paper label ("POS0"/"POS1").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ZeroGradPos::BeforeBackward => "POS0",
            ZeroGradPos::IterStart => "POS1",
        }
    }
}

/// A GPU model with its memory capacity and framework overhead — the
/// evaluation devices of paper §4.1.3.
///
/// Serialize-only: the `&'static str` marketing name has no owned
/// deserialized form; records that need to round-trip store the name as a
/// `String` (see `xmem_eval::ConfigKey`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct GpuDevice {
    /// Marketing name.
    pub name: &'static str,
    /// Total memory capacity in bytes (`M^max` in the paper's notation).
    pub capacity: u64,
    /// Mean framework + CUDA-context overhead in bytes (`M^fm`).
    pub framework_bytes: u64,
    /// Memory used by other tenants (`M^init`); 0 for dedicated GPUs.
    pub init_bytes: u64,
}

const GIB: u64 = 1 << 30;
const MIB64: u64 = 1 << 20;

impl GpuDevice {
    /// GeForce RTX 3060 (12 GiB) — the ANOVA device.
    #[must_use]
    pub fn rtx3060() -> Self {
        GpuDevice {
            name: "GeForce RTX 3060",
            capacity: 12 * GIB,
            framework_bytes: 529 * MIB64,
            init_bytes: 0,
        }
    }

    /// GeForce RTX 4060 (8 GiB) — the second Monte Carlo device.
    #[must_use]
    pub fn rtx4060() -> Self {
        GpuDevice {
            name: "GeForce RTX 4060",
            capacity: 8 * GIB,
            framework_bytes: 521 * MIB64,
            init_bytes: 0,
        }
    }

    /// NVIDIA A100 40 GB — the RQ5 device.
    #[must_use]
    pub fn a100_40g() -> Self {
        GpuDevice {
            name: "NVIDIA A100-SXM4-40GB",
            capacity: 40 * GIB,
            framework_bytes: 571 * MIB64,
            init_bytes: 0,
        }
    }

    /// Capacity available to the job after framework and tenant overheads.
    #[must_use]
    pub fn job_capacity(&self) -> u64 {
        self.capacity - self.framework_bytes - self.init_bytes
    }
}

/// Training numeric precision (paper §6.3): xMem estimates FP16 jobs the
/// same way — the tensor set is identical, only element widths change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Precision {
    /// 32-bit floats (the evaluation default).
    #[default]
    F32,
    /// Pure 16-bit float training (parameters, activations, gradients and
    /// optimizer state in half precision).
    F16,
}

impl Precision {
    /// Short label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "fp32",
            Precision::F16 => "fp16",
        }
    }
}

/// A training-job configuration — the paper's test configuration `j`
/// (model, optimizer, batch size, `zero_grad` placement) plus run knobs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainJobSpec {
    /// Model under training.
    pub model: ModelId,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Batch size.
    pub batch: usize,
    /// Sequence length for token models (0 = model default).
    pub seq: usize,
    /// `zero_grad` placement.
    pub zero_grad_pos: ZeroGradPos,
    /// Numeric precision.
    #[serde(default)]
    pub precision: Precision,
    /// Training iterations to execute (profiling default: 3).
    pub iterations: u32,
    /// Seed for run-to-run jitter (framework overhead, sampler phase).
    pub seed: u64,
}

impl TrainJobSpec {
    /// A spec with paper defaults: 3 iterations, default sequence length,
    /// `zero_grad` before backward.
    #[must_use]
    pub fn new(model: ModelId, optimizer: OptimizerKind, batch: usize) -> Self {
        TrainJobSpec {
            model,
            optimizer,
            batch,
            seq: 0,
            zero_grad_pos: ZeroGradPos::BeforeBackward,
            precision: Precision::default(),
            iterations: 3,
            seed: 0,
        }
    }

    /// Sets the iteration count.
    #[must_use]
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the `zero_grad` placement.
    #[must_use]
    pub fn with_zero_grad(mut self, pos: ZeroGradPos) -> Self {
        self.zero_grad_pos = pos;
        self
    }

    /// Sets the jitter seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the numeric precision.
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// A human-readable configuration label.
    #[must_use]
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}+{}+b{}+{}",
            self.model.info().name,
            self.optimizer.name(),
            self.batch,
            self.zero_grad_pos.label()
        );
        if self.precision != Precision::F32 {
            label.push('+');
            label.push_str(self.precision.label());
        }
        label
    }
}

/// Profiles the first iterations of the job on the CPU backend, producing
/// the PyTorch-profiler-style trace xMem consumes (paper §3.1: the job
/// "does not need to proceed further" than these iterations).
///
/// # Panics
/// Panics only on internal engine invariants; CPU runs cannot OOM.
#[must_use]
pub fn profile_on_cpu(spec: &TrainJobSpec) -> Trace {
    let graph = spec.model.build();
    let profiler = Profiler::new(&spec.label());
    let mut engine = Engine::new(
        &graph,
        BackendKind::Cpu,
        spec.optimizer,
        spec.zero_grad_pos,
        spec.precision,
        spec.iterations,
        spec.batch,
        spec.seq,
        CpuHeap::new(),
        profiler,
    );
    engine.run().expect("cpu profiling cannot oom");
    let (_, profiler) = engine.into_parts();
    profiler.into_trace()
}

/// Runs the job on the simulated GPU, producing ground truth the way the
/// paper measures it (NVML sampling at 1 ms, §4.1.1). Per-run jitter
/// (framework-overhead variance, sampler phase) is derived from
/// `spec.seed`, so repeated runs of one configuration differ slightly —
/// like real hardware.
///
/// `memory_cap` overrides the usable capacity (the second validation round
/// caps the job at `M_init + M_fm + estimate`); `record` enables
/// curve/snapshot capture for the figure benches.
#[must_use]
pub fn run_on_gpu(
    spec: &TrainJobSpec,
    device: &GpuDevice,
    memory_cap: Option<u64>,
    record: bool,
) -> GroundTruth {
    let graph = spec.model.build();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x9e37_79b9_7f4a_7c15);
    // CUDA context size varies a little run to run (kernel modules,
    // fragmentation of the context heap).
    let fm_jitter: i64 = rng.gen_range(-2 * MIB64 as i64..=2 * MIB64 as i64);
    let framework = (device.framework_bytes as i64 + fm_jitter) as u64;
    let capacity = memory_cap.unwrap_or(device.capacity);
    let sampler_offset = rng.gen_range(0..1000);

    let device_alloc = DeviceAllocator::new(
        capacity,
        DeviceAllocator::DEFAULT_PAGE,
        framework + device.init_bytes,
    );
    let caching = CachingAllocator::new(AllocatorConfig::pytorch_defaults(), device_alloc);
    let arena = GpuArena::new(caching, sampler_offset, record);

    let mut engine = Engine::new(
        &graph,
        BackendKind::Gpu,
        spec.optimizer,
        spec.zero_grad_pos,
        spec.precision,
        spec.iterations,
        spec.batch,
        spec.seq,
        arena,
        NullSink,
    );
    let outcome = engine.run();
    let (arena, _) = engine.into_parts();
    match outcome {
        Ok(()) => arena.into_ground_truth(None, record),
        Err(RunError::Oom(e)) => arena.into_ground_truth(Some(e), record),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_trace::{names, EventCategory};

    fn small_spec() -> TrainJobSpec {
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 4).with_iterations(2)
    }

    #[test]
    fn cpu_profile_contains_all_four_categories() {
        let trace = profile_on_cpu(&small_spec());
        for cat in [
            EventCategory::PythonFunction,
            EventCategory::UserAnnotation,
            EventCategory::CpuOp,
            EventCategory::CpuInstantEvent,
        ] {
            assert!(
                trace.of_category(cat).count() > 0,
                "missing category {cat:?}"
            );
        }
        assert_eq!(trace.iteration_windows().len(), 2);
    }

    #[test]
    fn cpu_profile_has_optimizer_annotations() {
        let trace = profile_on_cpu(&small_spec());
        assert!(trace
            .of_category(EventCategory::UserAnnotation)
            .any(|e| names::is_optimizer_step(&e.name)));
        assert!(trace
            .of_category(EventCategory::UserAnnotation)
            .any(|e| names::is_optimizer_zero_grad(&e.name)));
        assert!(trace
            .of_category(EventCategory::UserAnnotation)
            .any(|e| e.name == names::MODEL_TO_DEVICE));
    }

    #[test]
    fn memory_instants_balance_by_address() {
        let trace = profile_on_cpu(&small_spec());
        use std::collections::HashMap;
        let mut live: HashMap<u64, i64> = HashMap::new();
        for e in trace.memory_instants() {
            let addr = e.args.addr.unwrap();
            let bytes = e.args.bytes.unwrap();
            let entry = live.entry(addr).or_insert(0);
            if bytes > 0 {
                assert_eq!(*entry, 0, "allocation into a live address");
                *entry = bytes;
            } else {
                assert_eq!(*entry, -bytes, "free size must match allocation");
                *entry = 0;
            }
        }
    }

    #[test]
    fn gpu_run_produces_plausible_peak() {
        let gt = run_on_gpu(&small_spec(), &GpuDevice::rtx3060(), None, false);
        assert!(!gt.oom);
        // At least parameters + framework.
        assert!(gt.peak_nvml > 520 * MIB64);
        assert!(gt.peak_nvml < 12 * GIB);
        assert!(gt.peak_exact >= gt.peak_nvml);
    }

    #[test]
    fn gpu_run_oom_on_tiny_cap() {
        let gt = run_on_gpu(
            &small_spec(),
            &GpuDevice::rtx3060(),
            Some(545 * MIB64),
            false,
        );
        assert!(gt.oom);
        assert!(gt.oom_detail.is_some());
    }

    #[test]
    fn repeats_jitter_but_modestly() {
        let a = run_on_gpu(
            &small_spec().with_seed(1),
            &GpuDevice::rtx3060(),
            None,
            false,
        );
        let b = run_on_gpu(
            &small_spec().with_seed(2),
            &GpuDevice::rtx3060(),
            None,
            false,
        );
        assert_ne!(a.peak_nvml, b.peak_nvml, "jitter distinguishes repeats");
        let diff = a.peak_nvml.abs_diff(b.peak_nvml) as f64;
        assert!(diff / (a.peak_nvml as f64) < 0.05, "jitter stays small");
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = run_on_gpu(
            &small_spec().with_seed(7),
            &GpuDevice::rtx3060(),
            None,
            false,
        );
        let b = run_on_gpu(
            &small_spec().with_seed(7),
            &GpuDevice::rtx3060(),
            None,
            false,
        );
        assert_eq!(a.peak_nvml, b.peak_nvml);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn fp16_roughly_halves_the_footprint() {
        let f32_spec = TrainJobSpec::new(ModelId::Gpt2, OptimizerKind::Adam, 16);
        let f16_spec = f32_spec.clone().with_precision(Precision::F16);
        let device = GpuDevice::rtx3060();
        let a = run_on_gpu(&f32_spec, &device, None, false);
        let b = run_on_gpu(&f16_spec, &device, None, false);
        assert!(!a.oom && !b.oom);
        let job_a = a.peak_nvml - device.framework_bytes;
        let job_b = b.peak_nvml - device.framework_bytes;
        let ratio = job_b as f64 / job_a as f64;
        assert!(
            (0.40..0.65).contains(&ratio),
            "fp16/fp32 job-memory ratio {ratio:.3}"
        );
    }

    #[test]
    fn fp16_spec_label_is_tagged() {
        let spec =
            TrainJobSpec::new(ModelId::Gpt2, OptimizerKind::Adam, 4).with_precision(Precision::F16);
        assert!(spec.label().ends_with("+fp16"));
        let spec32 = TrainJobSpec::new(ModelId::Gpt2, OptimizerKind::Adam, 4);
        assert!(!spec32.label().contains("fp"));
    }

    #[test]
    fn zero_grad_placement_changes_gpu_peak() {
        let base =
            TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 8).with_iterations(3);
        let pos0 = run_on_gpu(&base, &GpuDevice::rtx3060(), None, false);
        let pos1 = run_on_gpu(
            &base.clone().with_zero_grad(ZeroGradPos::IterStart),
            &GpuDevice::rtx3060(),
            None,
            false,
        );
        assert_ne!(
            pos0.peak_exact, pos1.peak_exact,
            "POS0 vs POS1 must differ (paper Fig. 1)"
        );
    }
}
