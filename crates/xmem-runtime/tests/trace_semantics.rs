//! Trace-level semantics of the training-loop engine: the lifecycle
//! orderings xMem's Orchestrator depends on must actually hold in the
//! emitted profiler traces.

use std::collections::HashMap;
use xmem_models::ModelId;
use xmem_optim::OptimizerKind;
use xmem_runtime::{profile_on_cpu, Precision, TrainJobSpec, ZeroGradPos};
use xmem_trace::{names, EventCategory, Trace};

fn spec(model: ModelId, opt: OptimizerKind) -> TrainJobSpec {
    TrainJobSpec::new(model, opt, 4).with_iterations(3)
}

/// Sum of block sizes allocated within `[start, end)` and never freed.
fn persistent_bytes_in(trace: &Trace, start: u64, end: u64) -> u64 {
    let mut open: HashMap<u64, Vec<(u64, u64)>> = HashMap::new(); // addr -> (ts, size)
    let mut freed: Vec<(u64, u64)> = Vec::new();
    for e in trace.memory_instants() {
        let addr = e.args.addr.unwrap();
        let bytes = e.args.bytes.unwrap();
        if bytes > 0 {
            open.entry(addr).or_default().push((e.ts_us, bytes as u64));
        } else if let Some(stack) = open.get_mut(&addr) {
            if let Some(b) = stack.pop() {
                freed.push(b);
            }
        }
    }
    open.values()
        .flatten()
        .filter(|(ts, _)| (start..end).contains(ts))
        .map(|(_, b)| b)
        .sum()
}

#[test]
fn adagrad_state_is_eager_adam_state_is_lazy() {
    // Adagrad materializes its accumulator at optimizer construction
    // (inside the model-load window); Adam's state appears in the first
    // optimizer.step() window.
    for (opt, eager) in [(OptimizerKind::Adagrad, true), (OptimizerKind::Adam, false)] {
        let trace = profile_on_cpu(&spec(ModelId::MobileNetV3Small, opt));
        let load = trace
            .of_category(EventCategory::UserAnnotation)
            .find(|e| e.name == names::MODEL_TO_DEVICE)
            .expect("model load window");
        let persistent_in_load = persistent_bytes_in(&trace, load.ts_us, load.end_us());
        let graph = ModelId::MobileNetV3Small.build();
        let param_bytes = graph.param_bytes();
        if eager {
            assert!(
                persistent_in_load > param_bytes,
                "{opt}: state must be allocated during load"
            );
        } else {
            assert_eq!(
                persistent_in_load, param_bytes,
                "{opt}: only params during load"
            );
        }
    }
}

#[test]
fn pos0_zero_grad_sits_between_forward_and_backward() {
    let trace = profile_on_cpu(&spec(ModelId::DistilGpt2, OptimizerKind::AdamW));
    let zero_grads: Vec<u64> = trace
        .of_category(EventCategory::UserAnnotation)
        .filter(|e| names::is_optimizer_zero_grad(&e.name))
        .map(|e| e.ts_us)
        .collect();
    let backwards: Vec<u64> = trace
        .of_category(EventCategory::UserAnnotation)
        .filter(|e| e.name == names::BACKWARD_CALL)
        .map(|e| e.ts_us)
        .collect();
    assert_eq!(zero_grads.len(), 3);
    assert_eq!(backwards.len(), 3);
    for (zg, bw) in zero_grads.iter().zip(&backwards) {
        assert!(zg < bw, "POS0: zero_grad precedes backward");
    }
    // And each zero_grad comes after the iteration's dataloader fetch.
    let dataloads: Vec<u64> = trace
        .of_category(EventCategory::UserAnnotation)
        .filter(|e| e.name == names::DATALOADER_NEXT)
        .map(|e| e.ts_us)
        .collect();
    for (dl, zg) in dataloads.iter().zip(&zero_grads) {
        assert!(dl < zg, "POS0: zero_grad after dataload");
    }
}

#[test]
fn pos1_zero_grad_precedes_the_forward_pass() {
    let trace = profile_on_cpu(
        &spec(ModelId::DistilGpt2, OptimizerKind::AdamW).with_zero_grad(ZeroGradPos::IterStart),
    );
    let zero_grads: Vec<u64> = trace
        .of_category(EventCategory::UserAnnotation)
        .filter(|e| names::is_optimizer_zero_grad(&e.name))
        .map(|e| e.ts_us)
        .collect();
    // The model-forward python_function span starts after zero_grad in
    // every iteration.
    let forwards: Vec<u64> = trace
        .of_category(EventCategory::PythonFunction)
        .filter(|e| e.name == names::nn_module("distilgpt2"))
        .map(|e| e.ts_us)
        .collect();
    assert_eq!(forwards.len(), 3);
    for (zg, fw) in zero_grads.iter().zip(&forwards) {
        assert!(zg < fw, "POS1: zero_grad at iteration start");
    }
}

#[test]
fn inplace_relu_allocations_never_outlive_the_op() {
    // ResNet uses in-place ReLU: the op materializes no output tensor.
    // Its window may hold a transient CPU scratchpad, but every byte
    // allocated inside a relu window must be freed inside it.
    let trace = profile_on_cpu(&spec(
        ModelId::ResNet101,
        OptimizerKind::Sgd { momentum: true },
    ));
    let relu_windows: Vec<(u64, u64)> = trace
        .of_category(EventCategory::CpuOp)
        .filter(|e| e.name == "aten::relu")
        .map(|e| (e.ts_us, e.end_us()))
        .collect();
    assert!(!relu_windows.is_empty());
    let mut checked = 0;
    for &(s, t) in &relu_windows {
        let mut live: HashMap<u64, i64> = HashMap::new();
        for e in trace
            .memory_instants()
            .filter(|e| (s..t).contains(&e.ts_us))
        {
            *live.entry(e.args.addr.unwrap()).or_insert(0) += e.args.bytes.unwrap();
            checked += 1;
        }
        assert!(
            live.values().all(|&v| v <= 0),
            "relu window [{s},{t}) leaked an allocation"
        );
    }
    assert!(checked > 0, "scratchpads do appear inside relu windows");
}

#[test]
fn t5_dataloader_provides_three_tensors() {
    // Encoder tokens, decoder tokens and targets.
    let trace = profile_on_cpu(&spec(ModelId::T5Small, OptimizerKind::Adafactor));
    let first_load = trace
        .of_category(EventCategory::UserAnnotation)
        .find(|e| e.name == names::DATALOADER_NEXT)
        .expect("dataloader window");
    let allocs = trace
        .memory_instants()
        .filter(|e| e.args.bytes.unwrap_or(0) > 0)
        .filter(|e| (first_load.ts_us..first_load.end_us()).contains(&e.ts_us))
        .count();
    assert_eq!(allocs, 3);
}

#[test]
fn fp16_traces_carry_half_sized_parameters() {
    let f32_trace = profile_on_cpu(&spec(ModelId::Gpt2, OptimizerKind::Adam));
    let f16_trace =
        profile_on_cpu(&spec(ModelId::Gpt2, OptimizerKind::Adam).with_precision(Precision::F16));
    let load_bytes = |trace: &Trace| -> u64 {
        let load = trace
            .of_category(EventCategory::UserAnnotation)
            .find(|e| e.name == names::MODEL_TO_DEVICE)
            .expect("model load window");
        trace
            .memory_instants()
            .filter(|e| e.args.bytes.unwrap_or(0) > 0)
            .filter(|e| (load.ts_us..load.end_us()).contains(&e.ts_us))
            .map(|e| e.args.bytes.unwrap() as u64)
            .sum()
    };
    assert_eq!(load_bytes(&f32_trace), 2 * load_bytes(&f16_trace));
}

#[test]
fn every_iteration_has_the_full_annotation_set() {
    let trace = profile_on_cpu(&spec(ModelId::MnasNet, OptimizerKind::RMSprop));
    for name_check in [
        names::DATALOADER_NEXT.to_string(),
        names::BACKWARD_CALL.to_string(),
        names::optimizer_step("RMSprop"),
        names::optimizer_zero_grad("RMSprop"),
    ] {
        let count = trace
            .of_category(EventCategory::UserAnnotation)
            .filter(|e| e.name == name_check)
            .count();
        assert_eq!(count, 3, "{name_check} once per iteration");
    }
}
