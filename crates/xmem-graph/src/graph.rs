use crate::{DType, GraphError, Node, NodeId, OpKind, ParamId, TensorSpec};
use serde::{Deserialize, Serialize};

/// Broad architecture class, used by the evaluation to split results the way
/// the paper does (Figures 7a/7c vs 7b/7d, Table 3 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchClass {
    /// Convolutional network trained on image batches.
    Cnn,
    /// Transformer trained on token batches.
    Transformer,
}

impl ArchClass {
    /// Human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ArchClass::Cnn => "CNN",
            ArchClass::Transformer => "Transformer",
        }
    }
}

/// Shape template for the external inputs of a graph; the batch dimension
/// (and sequence length for token inputs) is bound at run time.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputTemplate {
    /// `[B, C, H, W]` float images with `[B]` integer class targets.
    Image {
        /// Channels.
        channels: usize,
        /// Height.
        height: usize,
        /// Width.
        width: usize,
    },
    /// `[B, D]` float feature vectors with `[B]` integer targets.
    Features {
        /// Feature dimension.
        dim: usize,
    },
    /// `[B, S]` integer token ids with `[B, S]` shifted targets.
    Tokens {
        /// Sequence length used when the caller passes `seq == 0`.
        default_seq: usize,
    },
    /// Encoder/decoder token ids (T5): inputs `[B, S_src]` and `[B, S_tgt]`.
    TokensEncDec {
        /// Default source length.
        default_src: usize,
        /// Default target length.
        default_tgt: usize,
    },
}

impl InputTemplate {
    /// Convenience constructor for image inputs.
    #[must_use]
    pub fn image(channels: usize, height: usize, width: usize) -> Self {
        InputTemplate::Image {
            channels,
            height,
            width,
        }
    }

    /// Convenience constructor for flat feature inputs.
    #[must_use]
    pub fn features(dim: usize) -> Self {
        InputTemplate::Features { dim }
    }

    /// Convenience constructor for token inputs.
    #[must_use]
    pub fn tokens(default_seq: usize) -> Self {
        InputTemplate::Tokens { default_seq }
    }

    /// Number of external input slots (2 for encoder/decoder models).
    #[must_use]
    pub fn slots(&self) -> usize {
        match self {
            InputTemplate::TokensEncDec { .. } => 2,
            _ => 1,
        }
    }

    /// Concrete input specs for a batch size; `seq == 0` selects defaults.
    #[must_use]
    pub fn input_specs(&self, batch: usize, seq: usize) -> Vec<TensorSpec> {
        match self {
            InputTemplate::Image {
                channels,
                height,
                width,
            } => vec![TensorSpec::f32([batch, *channels, *height, *width])],
            InputTemplate::Features { dim } => vec![TensorSpec::f32([batch, *dim])],
            InputTemplate::Tokens { default_seq } => {
                let s = if seq == 0 { *default_seq } else { seq };
                vec![TensorSpec::new([batch, s], DType::I64)]
            }
            InputTemplate::TokensEncDec {
                default_src,
                default_tgt,
            } => {
                let src = if seq == 0 { *default_src } else { seq };
                let tgt = if seq == 0 {
                    *default_tgt
                } else {
                    (seq / 2).max(1)
                };
                vec![
                    TensorSpec::new([batch, src], DType::I64),
                    TensorSpec::new([batch, tgt], DType::I64),
                ]
            }
        }
    }

    /// Spec of the supervision target loaded alongside each batch.
    #[must_use]
    pub fn target_spec(&self, batch: usize, seq: usize) -> TensorSpec {
        match self {
            InputTemplate::Image { .. } | InputTemplate::Features { .. } => {
                TensorSpec::new([batch], DType::I64)
            }
            InputTemplate::Tokens { default_seq } => {
                let s = if seq == 0 { *default_seq } else { seq };
                TensorSpec::new([batch, s], DType::I64)
            }
            InputTemplate::TokensEncDec { default_tgt, .. } => {
                let tgt = if seq == 0 {
                    *default_tgt
                } else {
                    (seq / 2).max(1)
                };
                TensorSpec::new([batch, tgt], DType::I64)
            }
        }
    }
}

/// A named parameter (or persistent buffer) of the model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamInfo {
    /// Identifier.
    pub id: ParamId,
    /// Fully qualified name, e.g. `features.0.weight`.
    pub name: String,
    /// Size description.
    pub spec: TensorSpec,
    /// `false` for buffers such as batch-norm running statistics (no
    /// gradient, no optimizer state).
    pub trainable: bool,
    /// Node that introduced the parameter (ties reference the introducer).
    pub owner: NodeId,
}

/// A topologically ordered operator DAG with its parameter registry.
///
/// Construct via [`crate::GraphBuilder`]; a `Graph` is immutable afterwards.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    pub(crate) name: String,
    pub(crate) arch: ArchClass,
    pub(crate) input_template: InputTemplate,
    pub(crate) nodes: Vec<Node>,
    pub(crate) params: Vec<ParamInfo>,
}

impl Graph {
    /// Model name, e.g. `"resnet101"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Architecture class.
    #[must_use]
    pub fn arch(&self) -> ArchClass {
        self.arch
    }

    /// Input template (batch/seq bound at run time).
    #[must_use]
    pub fn input_template(&self) -> &InputTemplate {
        &self.input_template
    }

    /// All nodes in topological order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node lookup.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All parameters and buffers.
    #[must_use]
    pub fn params(&self) -> &[ParamInfo] {
        &self.params
    }

    /// Parameter lookup.
    #[must_use]
    pub fn param(&self, id: ParamId) -> &ParamInfo {
        &self.params[id.index()]
    }

    /// Number of registered parameters/buffers (tensors, not elements).
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Total element count of *trainable* parameters — comparable with the
    /// parameter counts models publish (e.g. "125M").
    #[must_use]
    pub fn trainable_param_elems(&self) -> u64 {
        self.params
            .iter()
            .filter(|p| p.trainable)
            .map(|p| p.spec.numel() as u64)
            .sum()
    }

    /// Total bytes of all parameters and buffers.
    #[must_use]
    pub fn param_bytes(&self) -> u64 {
        self.params.iter().map(|p| p.spec.size_bytes() as u64).sum()
    }

    /// Concrete input specs for a run configuration (see
    /// [`InputTemplate::input_specs`]).
    #[must_use]
    pub fn input_specs(&self, batch: usize, seq: usize) -> Vec<TensorSpec> {
        self.input_template.input_specs(batch, seq)
    }

    /// First input spec — convenient for single-input models.
    #[must_use]
    pub fn input_spec(&self, batch: usize, seq: usize) -> TensorSpec {
        self.input_specs(batch, seq).remove(0)
    }

    /// Runs shape inference over the whole graph for the given external
    /// inputs, returning one output spec per node (indexed by [`NodeId`]).
    ///
    /// # Errors
    /// Propagates the first inference failure.
    pub fn infer_shapes(&self, inputs: &[TensorSpec]) -> Result<Vec<TensorSpec>, GraphError> {
        let mut out: Vec<TensorSpec> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let spec = match &node.op {
                OpKind::Input { slot } => {
                    inputs
                        .get(*slot)
                        .cloned()
                        .ok_or_else(|| GraphError::ShapeMismatch {
                            node: node.name.clone(),
                            detail: format!(
                                "graph expects at least {} input(s), got {}",
                                slot + 1,
                                inputs.len()
                            ),
                        })?
                }
                op => {
                    let in_specs: Vec<&TensorSpec> =
                        node.inputs.iter().map(|i| &out[i.index()]).collect();
                    op.infer(&node.name, &in_specs)?
                }
            };
            out.push(spec);
        }
        Ok(out)
    }

    /// Depth of the graph measured in non-view operator nodes; a cheap
    /// complexity feature used by the SchedTune baseline.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !n.is_input() && !n.op.is_view())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn mlp() -> Graph {
        let mut b = GraphBuilder::new("mlp", InputTemplate::features(32));
        let x = b.input();
        let x = b.linear(x, 32, 64, true, "fc1");
        let x = b.activation(x, crate::ActKind::Relu, "act");
        let x = b.linear(x, 64, 10, true, "fc2");
        b.cross_entropy_loss(x, "loss");
        b.finish().unwrap()
    }

    #[test]
    fn param_accounting() {
        let g = mlp();
        assert_eq!(g.num_params(), 4);
        assert_eq!(g.trainable_param_elems(), (32 * 64 + 64) + (64 * 10 + 10));
        assert_eq!(
            g.param_bytes(),
            4 * ((32 * 64 + 64) + (64 * 10 + 10)) as u64
        );
    }

    #[test]
    fn shape_inference_through_graph() {
        let g = mlp();
        let shapes = g.infer_shapes(&g.input_specs(16, 0)).unwrap();
        assert_eq!(shapes[1].shape.dims(), &[16, 64]);
        assert_eq!(shapes.last().unwrap().shape.rank(), 0);
    }

    #[test]
    fn missing_input_slot_is_an_error() {
        let g = mlp();
        let err = g.infer_shapes(&[]).unwrap_err();
        assert!(matches!(err, GraphError::ShapeMismatch { .. }));
    }

    #[test]
    fn templates_produce_expected_specs() {
        let t = InputTemplate::tokens(512);
        let specs = t.input_specs(4, 0);
        assert_eq!(specs[0].shape.dims(), &[4, 512]);
        let specs = t.input_specs(4, 128);
        assert_eq!(specs[0].shape.dims(), &[4, 128]);
        assert_eq!(t.target_spec(4, 128).shape.dims(), &[4, 128]);

        let ed = InputTemplate::TokensEncDec {
            default_src: 512,
            default_tgt: 114,
        };
        assert_eq!(ed.slots(), 2);
        let specs = ed.input_specs(2, 0);
        assert_eq!(specs[0].shape.dims(), &[2, 512]);
        assert_eq!(specs[1].shape.dims(), &[2, 114]);
    }

    #[test]
    fn op_count_skips_views_and_inputs() {
        let g = mlp();
        assert_eq!(g.op_count(), 4); // fc1, act, fc2, loss
    }
}
