use crate::OpKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node within its [`crate::Graph`], assigned in topological
/// (insertion) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Position of the node in [`crate::Graph::nodes`].
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a parameter within the graph's parameter registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ParamId(pub(crate) u32);

impl ParamId {
    /// Position of the parameter in [`crate::Graph::params`].
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One operator instance in the graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Identifier, equal to the node's topological position.
    pub id: NodeId,
    /// Fully qualified module path, e.g. `features.3.conv2`.
    pub name: String,
    /// Enclosing high-level component (the `python_function` scope the
    /// profiler reports), e.g. `features.3`.
    pub component: String,
    /// The operator.
    pub op: OpKind,
    /// Data inputs (outputs of earlier nodes).
    pub inputs: Vec<NodeId>,
    /// Parameters consumed, in the order of [`OpKind::param_specs`].
    pub params: Vec<ParamId>,
}

impl Node {
    /// Whether this node binds an external graph input.
    #[must_use]
    pub fn is_input(&self) -> bool {
        matches!(self.op, OpKind::Input { .. })
    }
}
