use crate::{DType, GraphError, Shape, TensorSpec};
use serde::{Deserialize, Serialize};

/// Pointwise activation functions.
///
/// They share memory behaviour (allocate an output the size of the input;
/// save one tensor for backward) and differ only in name and cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActKind {
    /// Rectified linear unit.
    Relu,
    /// ReLU clamped at 6 (MobileNet family).
    Relu6,
    /// Gaussian error linear unit (transformers, ConvNeXt).
    Gelu,
    /// Sigmoid-weighted linear unit / swish (EfficientNet, LLaMA MLPs).
    Silu,
    /// Hard swish (MobileNetV3).
    Hardswish,
    /// Hard sigmoid (squeeze-excite gates).
    Hardsigmoid,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl ActKind {
    /// The `aten::` kernel name the profiler records for this activation.
    #[must_use]
    pub const fn aten_name(self) -> &'static str {
        match self {
            ActKind::Relu => "aten::relu",
            ActKind::Relu6 => "aten::hardtanh",
            ActKind::Gelu => "aten::gelu",
            ActKind::Silu => "aten::silu",
            ActKind::Hardswish => "aten::hardswish",
            ActKind::Hardsigmoid => "aten::hardsigmoid",
            ActKind::Sigmoid => "aten::sigmoid",
            ActKind::Tanh => "aten::tanh",
        }
    }
}

/// Configuration of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Kernel extent (height, width).
    pub kernel: (usize, usize),
    /// Stride (height, width).
    pub stride: (usize, usize),
    /// Zero padding (height, width).
    pub padding: (usize, usize),
    /// Channel groups (`in_ch` for depthwise convolutions).
    pub groups: usize,
    /// Whether a bias vector is present.
    pub bias: bool,
}

impl Default for Conv2dSpec {
    fn default() -> Self {
        Conv2dSpec {
            in_ch: 1,
            out_ch: 1,
            kernel: (1, 1),
            stride: (1, 1),
            padding: (0, 0),
            groups: 1,
            bias: false,
        }
    }
}

/// Pooling window configuration shared by max and average pooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Window extent (height, width).
    pub kernel: (usize, usize),
    /// Stride (height, width).
    pub stride: (usize, usize),
    /// Zero padding (height, width).
    pub padding: (usize, usize),
}

impl PoolSpec {
    /// Square window with stride equal to the kernel and no padding.
    #[must_use]
    pub fn square(k: usize) -> Self {
        PoolSpec {
            kernel: (k, k),
            stride: (k, k),
            padding: (0, 0),
        }
    }
}

/// Configuration of a scaled-dot-product attention operator.
///
/// The operator consumes projected `q`, `k`, `v` tensors (projections are
/// separate [`OpKind::Linear`] nodes) and produces the pre-output-projection
/// context tensor. Grouped-query attention is expressed with
/// `kv_heads < heads`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttentionSpec {
    /// Number of query heads.
    pub heads: usize,
    /// Number of key/value heads (equal to `heads` for vanilla MHA).
    pub kv_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// Whether a causal mask is applied (decoder self-attention).
    pub causal: bool,
}

/// The operators whose memory behaviour the runtime models.
///
/// Each variant carries exactly the attributes needed for shape inference and
/// for deriving activation/gradient/workspace sizes. Variants with learnable
/// parameters expose them through [`OpKind::param_specs`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Pseudo-node binding graph input `slot` (0 = main input, 1 = decoder).
    Input {
        /// Which external input this node binds.
        slot: usize,
    },
    /// 2-D convolution.
    Conv2d(Conv2dSpec),
    /// Affine map over the last dimension.
    Linear {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
        /// Whether a bias vector is present.
        bias: bool,
    },
    /// Token-id lookup table.
    Embedding {
        /// Vocabulary size.
        vocab: usize,
        /// Embedding dimension.
        dim: usize,
    },
    /// Batch normalization over `[B, C, H, W]`.
    BatchNorm2d {
        /// Number of channels.
        features: usize,
    },
    /// Layer normalization over the last dimension.
    LayerNorm {
        /// Normalized dimension extent.
        dim: usize,
    },
    /// Root-mean-square normalization over the last dimension (LLaMA/Qwen).
    RmsNorm {
        /// Normalized dimension extent.
        dim: usize,
    },
    /// Pointwise activation.
    Activation(ActKind),
    /// 2-D max pooling.
    MaxPool2d(PoolSpec),
    /// 2-D average pooling.
    AvgPool2d(PoolSpec),
    /// Adaptive average pooling to a fixed spatial size.
    AdaptiveAvgPool2d {
        /// Output height.
        out_h: usize,
        /// Output width.
        out_w: usize,
    },
    /// Collapse dimensions `start_dim..` into one.
    Flatten {
        /// First dimension to collapse.
        start_dim: usize,
    },
    /// Reshape to explicit dims; one entry may be `-1`, and `0` keeps the
    /// input extent at that position.
    Reshape {
        /// Target dimensions.
        dims: Vec<i64>,
    },
    /// Dimension permutation (allocates a contiguous copy).
    Permute {
        /// New dimension order.
        order: Vec<usize>,
    },
    /// Elementwise sum of two tensors of identical shape (residual).
    Add,
    /// Elementwise product of two tensors (gating, SwiGLU, squeeze-excite).
    ///
    /// The second input may have fewer trailing spatial dims (broadcast).
    Mul,
    /// Concatenation along `dim`.
    Concat {
        /// Concatenation dimension.
        dim: usize,
    },
    /// Scaled-dot-product attention over projected q/k/v.
    Attention(AttentionSpec),
    /// Softmax over `dim`.
    Softmax {
        /// Reduction dimension.
        dim: usize,
    },
    /// Dropout (allocates a mask during training).
    Dropout {
        /// Drop probability.
        p_permille: u32,
    },
    /// Per-channel learnable scaling (ConvNeXt layer scale).
    Scale {
        /// Channel extent of the learnable gamma.
        channels: usize,
    },
    /// Cross-entropy loss producing a scalar.
    CrossEntropyLoss,
}

impl OpKind {
    /// Number of data inputs the operator consumes. `None` means variadic
    /// (at least one), used by [`OpKind::Concat`].
    #[must_use]
    pub fn arity(&self) -> Option<usize> {
        match self {
            OpKind::Input { .. } => Some(0),
            OpKind::Add | OpKind::Mul => Some(2),
            OpKind::Attention(_) => Some(3),
            OpKind::Concat { .. } => None,
            _ => Some(1),
        }
    }

    /// Parameter templates `(suffix, spec, trainable)` introduced by this
    /// operator, in registration order.
    #[must_use]
    pub fn param_specs(&self) -> Vec<(&'static str, TensorSpec, bool)> {
        match self {
            OpKind::Conv2d(c) => {
                let mut v = vec![(
                    "weight",
                    TensorSpec::f32([c.out_ch, c.in_ch / c.groups, c.kernel.0, c.kernel.1]),
                    true,
                )];
                if c.bias {
                    v.push(("bias", TensorSpec::f32([c.out_ch]), true));
                }
                v
            }
            OpKind::Linear {
                in_features,
                out_features,
                bias,
            } => {
                let mut v = vec![(
                    "weight",
                    TensorSpec::f32([*out_features, *in_features]),
                    true,
                )];
                if *bias {
                    v.push(("bias", TensorSpec::f32([*out_features]), true));
                }
                v
            }
            OpKind::Embedding { vocab, dim } => {
                vec![("weight", TensorSpec::f32([*vocab, *dim]), true)]
            }
            OpKind::BatchNorm2d { features } => vec![
                ("weight", TensorSpec::f32([*features]), true),
                ("bias", TensorSpec::f32([*features]), true),
                ("running_mean", TensorSpec::f32([*features]), false),
                ("running_var", TensorSpec::f32([*features]), false),
            ],
            OpKind::LayerNorm { dim } => vec![
                ("weight", TensorSpec::f32([*dim]), true),
                ("bias", TensorSpec::f32([*dim]), true),
            ],
            OpKind::RmsNorm { dim } => vec![("weight", TensorSpec::f32([*dim]), true)],
            OpKind::Scale { channels } => vec![("gamma", TensorSpec::f32([*channels]), true)],
            _ => Vec::new(),
        }
    }

    /// The `aten::` kernel name recorded for the forward execution.
    #[must_use]
    pub fn aten_name(&self) -> &'static str {
        match self {
            OpKind::Input { .. } => "aten::copy_",
            OpKind::Conv2d(_) => "aten::convolution",
            OpKind::Linear { .. } => "aten::linear",
            OpKind::Embedding { .. } => "aten::embedding",
            OpKind::BatchNorm2d { .. } => "aten::batch_norm",
            OpKind::LayerNorm { .. } => "aten::layer_norm",
            OpKind::RmsNorm { .. } => "aten::rms_norm",
            OpKind::Activation(a) => a.aten_name(),
            OpKind::MaxPool2d(_) => "aten::max_pool2d",
            OpKind::AvgPool2d(_) => "aten::avg_pool2d",
            OpKind::AdaptiveAvgPool2d { .. } => "aten::adaptive_avg_pool2d",
            OpKind::Flatten { .. } => "aten::flatten",
            OpKind::Reshape { .. } => "aten::reshape",
            OpKind::Permute { .. } => "aten::permute",
            OpKind::Add => "aten::add",
            OpKind::Mul => "aten::mul",
            OpKind::Concat { .. } => "aten::cat",
            OpKind::Attention(_) => "aten::scaled_dot_product_attention",
            OpKind::Softmax { .. } => "aten::softmax",
            OpKind::Dropout { .. } => "aten::dropout",
            OpKind::Scale { .. } => "aten::mul",
            OpKind::CrossEntropyLoss => "aten::cross_entropy_loss",
        }
    }

    /// Infers the output spec from input specs.
    ///
    /// # Errors
    /// Returns [`GraphError::ArityMismatch`] or [`GraphError::ShapeMismatch`]
    /// when the inputs are not consumable by this operator.
    pub fn infer(&self, node: &str, inputs: &[&TensorSpec]) -> Result<TensorSpec, GraphError> {
        if let Some(arity) = self.arity() {
            if inputs.len() != arity {
                return Err(GraphError::ArityMismatch {
                    node: node.to_string(),
                    expected: arity,
                    actual: inputs.len(),
                });
            }
        } else if inputs.is_empty() {
            return Err(GraphError::ArityMismatch {
                node: node.to_string(),
                expected: 1,
                actual: 0,
            });
        }

        let mismatch = |detail: String| GraphError::ShapeMismatch {
            node: node.to_string(),
            detail,
        };

        match self {
            OpKind::Input { .. } => unreachable!("input nodes are resolved by the graph"),
            OpKind::Conv2d(c) => {
                let x = inputs[0];
                let d = x.shape.dims();
                if d.len() != 4 {
                    return Err(mismatch(format!(
                        "conv2d expects 4-D input, got {}",
                        x.shape
                    )));
                }
                if d[1] != c.in_ch {
                    return Err(mismatch(format!(
                        "conv2d expects {} input channels, got {}",
                        c.in_ch, d[1]
                    )));
                }
                let hw = |extent: usize, k: usize, s: usize, p: usize| {
                    (extent + 2 * p).checked_sub(k).map(|n| n / s + 1)
                };
                let oh = hw(d[2], c.kernel.0, c.stride.0, c.padding.0);
                let ow = hw(d[3], c.kernel.1, c.stride.1, c.padding.1);
                match (oh, ow) {
                    (Some(oh), Some(ow)) if oh > 0 && ow > 0 => {
                        Ok(TensorSpec::new([d[0], c.out_ch, oh, ow], x.dtype))
                    }
                    _ => Err(mismatch(format!(
                        "conv2d kernel {:?} larger than padded input {}",
                        c.kernel, x.shape
                    ))),
                }
            }
            OpKind::Linear {
                in_features,
                out_features,
                ..
            } => {
                let x = inputs[0];
                let d = x.shape.dims();
                match d.last() {
                    Some(&last) if last == *in_features => {
                        let mut dims = d.to_vec();
                        *dims.last_mut().expect("non-empty") = *out_features;
                        Ok(TensorSpec::new(dims, x.dtype))
                    }
                    _ => Err(mismatch(format!(
                        "linear expects last dim {in_features}, got {}",
                        x.shape
                    ))),
                }
            }
            OpKind::Embedding { dim, .. } => {
                let x = inputs[0];
                if x.dtype.is_float() {
                    return Err(mismatch("embedding expects integer token ids".into()));
                }
                Ok(TensorSpec::new(x.shape.appended(*dim), DType::F32))
            }
            OpKind::BatchNorm2d { features } => {
                let x = inputs[0];
                let d = x.shape.dims();
                if d.len() != 4 || d[1] != *features {
                    return Err(mismatch(format!(
                        "batch_norm2d expects [B, {features}, H, W], got {}",
                        x.shape
                    )));
                }
                Ok(inputs[0].clone())
            }
            OpKind::LayerNorm { dim } | OpKind::RmsNorm { dim } => {
                let x = inputs[0];
                match x.shape.dims().last() {
                    Some(&last) if last == *dim => Ok(x.clone()),
                    _ => Err(mismatch(format!(
                        "norm expects last dim {dim}, got {}",
                        x.shape
                    ))),
                }
            }
            OpKind::Activation(_) | OpKind::Dropout { .. } | OpKind::Softmax { .. } => {
                Ok(inputs[0].clone())
            }
            OpKind::MaxPool2d(p) | OpKind::AvgPool2d(p) => {
                let x = inputs[0];
                let d = x.shape.dims();
                if d.len() != 4 {
                    return Err(mismatch(format!("pool expects 4-D input, got {}", x.shape)));
                }
                let hw = |extent: usize, k: usize, s: usize, pad: usize| {
                    (extent + 2 * pad).checked_sub(k).map(|n| n / s + 1)
                };
                let oh = hw(d[2], p.kernel.0, p.stride.0, p.padding.0);
                let ow = hw(d[3], p.kernel.1, p.stride.1, p.padding.1);
                match (oh, ow) {
                    (Some(oh), Some(ow)) if oh > 0 && ow > 0 => {
                        Ok(TensorSpec::new([d[0], d[1], oh, ow], x.dtype))
                    }
                    _ => Err(mismatch(format!(
                        "pool kernel {:?} larger than padded input {}",
                        p.kernel, x.shape
                    ))),
                }
            }
            OpKind::AdaptiveAvgPool2d { out_h, out_w } => {
                let x = inputs[0];
                let d = x.shape.dims();
                if d.len() != 4 {
                    return Err(mismatch(format!(
                        "adaptive pool expects 4-D input, got {}",
                        x.shape
                    )));
                }
                Ok(TensorSpec::new([d[0], d[1], *out_h, *out_w], x.dtype))
            }
            OpKind::Flatten { start_dim } => {
                let x = inputs[0];
                let d = x.shape.dims();
                if *start_dim >= d.len() {
                    return Err(mismatch(format!(
                        "flatten start_dim {start_dim} out of range for {}",
                        x.shape
                    )));
                }
                let mut dims = d[..*start_dim].to_vec();
                dims.push(d[*start_dim..].iter().product());
                Ok(TensorSpec::new(dims, x.dtype))
            }
            OpKind::Reshape { dims } => {
                let x = inputs[0];
                let numel = x.numel();
                let mut out: Vec<usize> = Vec::with_capacity(dims.len());
                let mut infer_at = None;
                for (i, &d) in dims.iter().enumerate() {
                    match d {
                        -1 if infer_at.is_none() => {
                            infer_at = Some(i);
                            out.push(1);
                        }
                        0 => out.push(x.shape.dim(i).unwrap_or(0)),
                        d if d > 0 => out.push(d as usize),
                        _ => {
                            return Err(GraphError::InvalidReshape {
                                node: node.to_string(),
                                input_numel: numel,
                                target: dims.clone(),
                            })
                        }
                    }
                }
                let known: usize = out.iter().product();
                if let Some(i) = infer_at {
                    if known == 0 || !numel.is_multiple_of(known) {
                        return Err(GraphError::InvalidReshape {
                            node: node.to_string(),
                            input_numel: numel,
                            target: dims.clone(),
                        });
                    }
                    out[i] = numel / known;
                } else if known != numel {
                    return Err(GraphError::InvalidReshape {
                        node: node.to_string(),
                        input_numel: numel,
                        target: dims.clone(),
                    });
                }
                Ok(TensorSpec::new(out, x.dtype))
            }
            OpKind::Permute { order } => {
                let x = inputs[0];
                let d = x.shape.dims();
                if order.len() != d.len() {
                    return Err(mismatch(format!(
                        "permute order {order:?} does not match rank of {}",
                        x.shape
                    )));
                }
                let mut seen = vec![false; d.len()];
                let mut dims = Vec::with_capacity(d.len());
                for &o in order {
                    if o >= d.len() || seen[o] {
                        return Err(mismatch(format!("invalid permutation {order:?}")));
                    }
                    seen[o] = true;
                    dims.push(d[o]);
                }
                Ok(TensorSpec::new(dims, x.dtype))
            }
            OpKind::Add => {
                if inputs[0].shape != inputs[1].shape {
                    return Err(mismatch(format!(
                        "add expects equal shapes, got {} and {}",
                        inputs[0].shape, inputs[1].shape
                    )));
                }
                Ok(inputs[0].clone())
            }
            OpKind::Mul => {
                // Allow broadcast of a lower-rank / size-1-spatial gate.
                if inputs[1].numel() > inputs[0].numel() {
                    return Err(mismatch(format!(
                        "mul gate {} larger than input {}",
                        inputs[1].shape, inputs[0].shape
                    )));
                }
                Ok(inputs[0].clone())
            }
            OpKind::Concat { dim } => {
                let first = inputs[0];
                let rank = first.shape.rank();
                if *dim >= rank {
                    return Err(mismatch(format!("concat dim {dim} out of range")));
                }
                let mut total = 0;
                for x in inputs {
                    if x.shape.rank() != rank || x.dtype != first.dtype {
                        return Err(mismatch(
                            "concat inputs must agree in rank and dtype".into(),
                        ));
                    }
                    for (i, (&a, &b)) in x.shape.dims().iter().zip(first.shape.dims()).enumerate() {
                        if i != *dim && a != b {
                            return Err(mismatch(format!(
                                "concat non-{dim} dims differ: {} vs {}",
                                x.shape, first.shape
                            )));
                        }
                    }
                    total += x.shape.dims()[*dim];
                }
                Ok(TensorSpec::new(
                    first.shape.with_dim(*dim, total),
                    first.dtype,
                ))
            }
            OpKind::Attention(a) => {
                let (q, k, v) = (inputs[0], inputs[1], inputs[2]);
                let qd = q.shape.dims();
                if qd.len() != 3 {
                    return Err(mismatch(format!(
                        "attention expects 3-D [B, S, H*Dh] query, got {}",
                        q.shape
                    )));
                }
                if qd[2] != a.heads * a.head_dim {
                    return Err(mismatch(format!(
                        "query features {} != heads*head_dim {}",
                        qd[2],
                        a.heads * a.head_dim
                    )));
                }
                let kv_feat = a.kv_heads * a.head_dim;
                for (name, t) in [("key", k), ("value", v)] {
                    let d = t.shape.dims();
                    if d.len() != 3 || d[2] != kv_feat || d[0] != qd[0] {
                        return Err(mismatch(format!(
                            "{name} expects [B, S, {kv_feat}], got {}",
                            t.shape
                        )));
                    }
                }
                if k.shape.dims()[1] != v.shape.dims()[1] {
                    return Err(mismatch("key/value sequence lengths differ".into()));
                }
                Ok(q.clone())
            }
            OpKind::Scale { channels } => {
                let x = inputs[0];
                if !x.shape.dims().contains(channels) {
                    return Err(mismatch(format!(
                        "scale channels {channels} not present in {}",
                        x.shape
                    )));
                }
                Ok(x.clone())
            }
            OpKind::CrossEntropyLoss => {
                let x = inputs[0];
                if x.shape.rank() < 2 {
                    return Err(mismatch(format!(
                        "cross-entropy expects logits of rank >= 2, got {}",
                        x.shape
                    )));
                }
                Ok(TensorSpec::new(Shape::scalar(), x.dtype))
            }
        }
    }

    /// Approximate multiply-accumulate count of the forward execution, used
    /// by the backends' duration models.
    #[must_use]
    pub fn macs(&self, inputs: &[&TensorSpec], output: &TensorSpec) -> u64 {
        let out = output.numel() as u64;
        match self {
            OpKind::Conv2d(c) => out * (c.kernel.0 * c.kernel.1 * c.in_ch / c.groups) as u64,
            OpKind::Linear { in_features, .. } => out * *in_features as u64,
            OpKind::Attention(a) => {
                let q = inputs[0].shape.dims();
                let kv_s = inputs[1].shape.dims()[1] as u64;
                let (b, sq) = (q[0] as u64, q[1] as u64);
                // QK^T and AV, over all heads.
                2 * b * a.heads as u64 * sq * kv_s * a.head_dim as u64
            }
            OpKind::Embedding { .. } => out,
            OpKind::CrossEntropyLoss => inputs[0].numel() as u64 * 4,
            OpKind::BatchNorm2d { .. }
            | OpKind::LayerNorm { .. }
            | OpKind::RmsNorm { .. }
            | OpKind::Softmax { .. } => inputs[0].numel() as u64 * 4,
            _ => inputs
                .iter()
                .map(|t| t.numel() as u64)
                .sum::<u64>()
                .max(out),
        }
    }

    /// Whether the operator merely reinterprets its input without moving
    /// data (its "output" aliases the input and allocates nothing).
    #[must_use]
    pub fn is_view(&self) -> bool {
        matches!(self, OpKind::Flatten { .. } | OpKind::Reshape { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(dims: &[usize]) -> TensorSpec {
        TensorSpec::f32(dims.to_vec())
    }

    #[test]
    fn conv_shape_standard() {
        let op = OpKind::Conv2d(Conv2dSpec {
            in_ch: 3,
            out_ch: 64,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
            ..Default::default()
        });
        let x = spec(&[8, 3, 224, 224]);
        let y = op.infer("c", &[&x]).unwrap();
        assert_eq!(y.shape.dims(), &[8, 64, 224, 224]);
    }

    #[test]
    fn conv_shape_strided() {
        let op = OpKind::Conv2d(Conv2dSpec {
            in_ch: 3,
            out_ch: 96,
            kernel: (4, 4),
            stride: (4, 4),
            ..Default::default()
        });
        let y = op.infer("c", &[&spec(&[2, 3, 224, 224])]).unwrap();
        assert_eq!(y.shape.dims(), &[2, 96, 56, 56]);
    }

    #[test]
    fn conv_rejects_channel_mismatch() {
        let op = OpKind::Conv2d(Conv2dSpec {
            in_ch: 16,
            out_ch: 8,
            ..Default::default()
        });
        assert!(matches!(
            op.infer("c", &[&spec(&[1, 3, 8, 8])]),
            Err(GraphError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn conv_param_specs_respect_groups_and_bias() {
        let op = OpKind::Conv2d(Conv2dSpec {
            in_ch: 32,
            out_ch: 32,
            kernel: (3, 3),
            groups: 32,
            bias: true,
            ..Default::default()
        });
        let params = op.param_specs();
        assert_eq!(params.len(), 2);
        assert_eq!(params[0].1.shape.dims(), &[32, 1, 3, 3]);
        assert_eq!(params[1].1.shape.dims(), &[32]);
    }

    #[test]
    fn linear_maps_last_dim() {
        let op = OpKind::Linear {
            in_features: 768,
            out_features: 3072,
            bias: true,
        };
        let y = op.infer("l", &[&spec(&[4, 128, 768])]).unwrap();
        assert_eq!(y.shape.dims(), &[4, 128, 3072]);
    }

    #[test]
    fn linear_rejects_wrong_features() {
        let op = OpKind::Linear {
            in_features: 10,
            out_features: 5,
            bias: false,
        };
        assert!(op.infer("l", &[&spec(&[4, 11])]).is_err());
    }

    #[test]
    fn embedding_appends_dim_and_requires_ints() {
        let op = OpKind::Embedding {
            vocab: 50257,
            dim: 768,
        };
        let tokens = TensorSpec::new([4, 128], DType::I64);
        let y = op.infer("e", &[&tokens]).unwrap();
        assert_eq!(y.shape.dims(), &[4, 128, 768]);
        assert_eq!(y.dtype, DType::F32);
        assert!(op.infer("e", &[&spec(&[4, 128])]).is_err());
    }

    #[test]
    fn pooling_shapes() {
        let op = OpKind::MaxPool2d(PoolSpec::square(2));
        let y = op.infer("p", &[&spec(&[1, 64, 224, 224])]).unwrap();
        assert_eq!(y.shape.dims(), &[1, 64, 112, 112]);

        let ad = OpKind::AdaptiveAvgPool2d { out_h: 1, out_w: 1 };
        let y = ad.infer("p", &[&spec(&[1, 512, 7, 7])]).unwrap();
        assert_eq!(y.shape.dims(), &[1, 512, 1, 1]);
    }

    #[test]
    fn flatten_collapses_tail() {
        let op = OpKind::Flatten { start_dim: 1 };
        let y = op.infer("f", &[&spec(&[8, 512, 7, 7])]).unwrap();
        assert_eq!(y.shape.dims(), &[8, 512 * 49]);
    }

    #[test]
    fn reshape_with_inference() {
        let op = OpKind::Reshape {
            dims: vec![0, -1, 64],
        };
        let y = op.infer("r", &[&spec(&[2, 128, 768])]).unwrap();
        assert_eq!(y.shape.dims(), &[2, 1536, 64]);
    }

    #[test]
    fn reshape_rejects_incompatible() {
        let op = OpKind::Reshape { dims: vec![7, 7] };
        assert!(matches!(
            op.infer("r", &[&spec(&[2, 24])]),
            Err(GraphError::InvalidReshape { .. })
        ));
    }

    #[test]
    fn permute_reorders() {
        let op = OpKind::Permute {
            order: vec![0, 2, 3, 1],
        };
        let y = op.infer("p", &[&spec(&[2, 96, 56, 56])]).unwrap();
        assert_eq!(y.shape.dims(), &[2, 56, 56, 96]);
    }

    #[test]
    fn permute_rejects_bad_order() {
        let op = OpKind::Permute { order: vec![0, 0] };
        assert!(op.infer("p", &[&spec(&[2, 3])]).is_err());
    }

    #[test]
    fn add_requires_same_shape() {
        let a = spec(&[2, 3]);
        let b = spec(&[2, 4]);
        assert!(OpKind::Add.infer("a", &[&a, &b]).is_err());
        assert!(OpKind::Add.infer("a", &[&a, &a]).is_ok());
    }

    #[test]
    fn mul_allows_broadcast_gate() {
        let x = spec(&[2, 64, 28, 28]);
        let gate = spec(&[2, 64, 1, 1]);
        let y = OpKind::Mul.infer("m", &[&x, &gate]).unwrap();
        assert_eq!(y.shape, x.shape);
    }

    #[test]
    fn concat_sums_dim() {
        let a = spec(&[2, 16, 8, 8]);
        let b = spec(&[2, 24, 8, 8]);
        let y = OpKind::Concat { dim: 1 }.infer("c", &[&a, &b]).unwrap();
        assert_eq!(y.shape.dims(), &[2, 40, 8, 8]);
    }

    #[test]
    fn attention_gqa_shapes() {
        let op = OpKind::Attention(AttentionSpec {
            heads: 16,
            kv_heads: 8,
            head_dim: 128,
            causal: true,
        });
        let q = spec(&[2, 512, 2048]);
        let kv = spec(&[2, 512, 1024]);
        let y = op.infer("attn", &[&q, &kv, &kv]).unwrap();
        assert_eq!(y.shape.dims(), &[2, 512, 2048]);
    }

    #[test]
    fn attention_rejects_feature_mismatch() {
        let op = OpKind::Attention(AttentionSpec {
            heads: 12,
            kv_heads: 12,
            head_dim: 64,
            causal: true,
        });
        let q = spec(&[2, 128, 768]);
        let bad_kv = spec(&[2, 128, 512]);
        assert!(op.infer("attn", &[&q, &bad_kv, &bad_kv]).is_err());
    }

    #[test]
    fn loss_is_scalar() {
        let y = OpKind::CrossEntropyLoss
            .infer("loss", &[&spec(&[8, 1000])])
            .unwrap();
        assert_eq!(y.shape.rank(), 0);
    }

    #[test]
    fn macs_scale_with_size() {
        let op = OpKind::Linear {
            in_features: 1024,
            out_features: 1024,
            bias: false,
        };
        let x = spec(&[1, 1024]);
        let y = op.infer("l", &[&x]).unwrap();
        assert_eq!(op.macs(&[&x], &y), 1024 * 1024);
    }

    #[test]
    fn views_do_not_allocate() {
        assert!(OpKind::Flatten { start_dim: 1 }.is_view());
        assert!(OpKind::Reshape { dims: vec![-1] }.is_view());
        assert!(!OpKind::Permute { order: vec![0] }.is_view());
    }
}
