use serde::{Deserialize, Serialize};
use std::fmt;

/// The extents of a tensor, innermost dimension last.
///
/// A rank-0 `Shape` (no dimensions) denotes a scalar with one element.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// ```
    /// use xmem_graph::Shape;
    /// let s = Shape::new([2, 3, 4]);
    /// assert_eq!(s.numel(), 24);
    /// ```
    #[must_use]
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// The scalar shape (rank 0, one element).
    #[must_use]
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Dimension extents.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (1 for scalars).
    #[must_use]
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent of dimension `i`, or `None` if out of range.
    #[must_use]
    pub fn dim(&self, i: usize) -> Option<usize> {
        self.0.get(i).copied()
    }

    /// Returns a new shape with dimension `i` replaced by `extent`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn with_dim(&self, i: usize, extent: usize) -> Self {
        let mut dims = self.0.clone();
        dims[i] = extent;
        Shape(dims)
    }

    /// Appends a dimension, returning the extended shape.
    #[must_use]
    pub fn appended(&self, extent: usize) -> Self {
        let mut dims = self.0.clone();
        dims.push(extent);
        Shape(dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn numel_multiplies_dims() {
        assert_eq!(Shape::new([4, 5, 6]).numel(), 120);
        assert_eq!(Shape::new([1]).numel(), 1);
        assert_eq!(Shape::new([0, 9]).numel(), 0);
    }

    #[test]
    fn with_dim_replaces() {
        let s = Shape::new([2, 3]).with_dim(0, 7);
        assert_eq!(s.dims(), &[7, 3]);
    }

    #[test]
    fn display_formats_brackets() {
        assert_eq!(Shape::new([8, 3, 224, 224]).to_string(), "[8, 3, 224, 224]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
