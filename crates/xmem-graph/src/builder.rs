use crate::op::Conv2dSpec;
use crate::{
    ActKind, ArchClass, AttentionSpec, Graph, GraphError, InputTemplate, Node, NodeId, OpKind,
    ParamId, ParamInfo, PoolSpec,
};

/// Incremental constructor for [`Graph`].
///
/// Nodes are appended in topological order; helper methods cover every
/// operator the model zoo needs. Scopes ([`GraphBuilder::with_scope`])
/// prefix node and parameter names the way nested `nn.Module`s do, which the
/// profiler later surfaces as `python_function` events.
///
/// # Example
/// ```
/// use xmem_graph::{GraphBuilder, InputTemplate, ActKind};
/// let mut b = GraphBuilder::new("demo", InputTemplate::features(8));
/// let x = b.input();
/// let x = b.with_scope("block", |b| {
///     let h = b.linear(x, 8, 8, false, "fc");
///     b.activation(h, ActKind::Gelu, "act")
/// });
/// b.cross_entropy_loss(x, "loss");
/// let g = b.finish().unwrap();
/// assert_eq!(g.nodes()[1].name, "block.fc");
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    name: String,
    arch: ArchClass,
    input_template: InputTemplate,
    nodes: Vec<Node>,
    params: Vec<ParamInfo>,
    scope: Vec<String>,
}

impl GraphBuilder {
    /// Starts a new graph. The architecture class defaults to
    /// [`ArchClass::Cnn`] for image/feature inputs and
    /// [`ArchClass::Transformer`] for token inputs.
    #[must_use]
    pub fn new(name: impl Into<String>, input_template: InputTemplate) -> Self {
        let arch = match input_template {
            InputTemplate::Tokens { .. } | InputTemplate::TokensEncDec { .. } => {
                ArchClass::Transformer
            }
            _ => ArchClass::Cnn,
        };
        GraphBuilder {
            name: name.into(),
            arch,
            input_template,
            nodes: Vec::new(),
            params: Vec::new(),
            scope: Vec::new(),
        }
    }

    /// Overrides the inferred architecture class.
    pub fn set_arch(&mut self, arch: ArchClass) -> &mut Self {
        self.arch = arch;
        self
    }

    fn qualified(&self, name: &str) -> String {
        if self.scope.is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", self.scope.join("."), name)
        }
    }

    fn component(&self) -> String {
        self.scope.join(".")
    }

    /// Runs `f` with `scope` pushed onto the name prefix stack.
    pub fn with_scope<T>(&mut self, scope: &str, f: impl FnOnce(&mut Self) -> T) -> T {
        self.scope.push(scope.to_string());
        let out = f(self);
        self.scope.pop();
        out
    }

    fn push_node(&mut self, name: &str, op: OpKind, inputs: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let qualified = self.qualified(name);
        let param_specs = op.param_specs();
        let mut params = Vec::with_capacity(param_specs.len());
        for (suffix, spec, trainable) in param_specs {
            let pid = ParamId(self.params.len() as u32);
            self.params.push(ParamInfo {
                id: pid,
                name: format!("{qualified}.{suffix}"),
                spec,
                trainable,
                owner: id,
            });
            params.push(pid);
        }
        self.nodes.push(Node {
            id,
            name: qualified,
            component: self.component(),
            op,
            inputs,
            params,
        });
        id
    }

    /// Binds external input slot 0. Call exactly once per slot.
    pub fn input(&mut self) -> NodeId {
        self.push_node("input", OpKind::Input { slot: 0 }, Vec::new())
    }

    /// Binds external input slot 1 (decoder tokens for encoder/decoder
    /// models).
    pub fn decoder_input(&mut self) -> NodeId {
        self.push_node("decoder_input", OpKind::Input { slot: 1 }, Vec::new())
    }

    /// Adds a 2-D convolution.
    pub fn conv2d(&mut self, x: NodeId, spec: Conv2dSpec, name: &str) -> NodeId {
        self.push_node(name, OpKind::Conv2d(spec), vec![x])
    }

    /// Adds an affine layer over the last dimension.
    pub fn linear(
        &mut self,
        x: NodeId,
        in_features: usize,
        out_features: usize,
        bias: bool,
        name: &str,
    ) -> NodeId {
        self.push_node(
            name,
            OpKind::Linear {
                in_features,
                out_features,
                bias,
            },
            vec![x],
        )
    }

    /// Adds a linear layer whose weight is tied to an existing parameter
    /// (e.g. a GPT-style `lm_head` sharing the token-embedding matrix). No
    /// new parameter is registered.
    pub fn linear_tied(
        &mut self,
        x: NodeId,
        in_features: usize,
        out_features: usize,
        tied: ParamId,
        name: &str,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            name: self.qualified(name),
            component: self.component(),
            op: OpKind::Linear {
                in_features,
                out_features,
                bias: false,
            },
            inputs: vec![x],
            params: vec![tied],
        });
        id
    }

    /// Adds a token embedding and returns `(output, weight_param)` so the
    /// weight can be tied later.
    pub fn embedding(
        &mut self,
        x: NodeId,
        vocab: usize,
        dim: usize,
        name: &str,
    ) -> (NodeId, ParamId) {
        let node = self.push_node(name, OpKind::Embedding { vocab, dim }, vec![x]);
        let pid = *self.nodes[node.index()]
            .params
            .first()
            .expect("embedding has a weight");
        (node, pid)
    }

    /// Adds a token embedding whose weight is shared with an existing
    /// parameter (e.g. T5's encoder/decoder shared vocabulary matrix). No
    /// new parameter is registered.
    pub fn embedding_tied(
        &mut self,
        x: NodeId,
        vocab: usize,
        dim: usize,
        tied: ParamId,
        name: &str,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            name: self.qualified(name),
            component: self.component(),
            op: OpKind::Embedding { vocab, dim },
            inputs: vec![x],
            params: vec![tied],
        });
        id
    }

    /// Adds 2-D batch normalization.
    pub fn batch_norm2d(&mut self, x: NodeId, features: usize, name: &str) -> NodeId {
        self.push_node(name, OpKind::BatchNorm2d { features }, vec![x])
    }

    /// Adds layer normalization over the last dimension.
    pub fn layer_norm(&mut self, x: NodeId, dim: usize, name: &str) -> NodeId {
        self.push_node(name, OpKind::LayerNorm { dim }, vec![x])
    }

    /// Adds RMS normalization over the last dimension.
    pub fn rms_norm(&mut self, x: NodeId, dim: usize, name: &str) -> NodeId {
        self.push_node(name, OpKind::RmsNorm { dim }, vec![x])
    }

    /// Adds a pointwise activation.
    pub fn activation(&mut self, x: NodeId, kind: ActKind, name: &str) -> NodeId {
        self.push_node(name, OpKind::Activation(kind), vec![x])
    }

    /// Adds 2-D max pooling.
    pub fn max_pool2d(&mut self, x: NodeId, spec: PoolSpec, name: &str) -> NodeId {
        self.push_node(name, OpKind::MaxPool2d(spec), vec![x])
    }

    /// Adds 2-D average pooling.
    pub fn avg_pool2d(&mut self, x: NodeId, spec: PoolSpec, name: &str) -> NodeId {
        self.push_node(name, OpKind::AvgPool2d(spec), vec![x])
    }

    /// Adds adaptive average pooling to `(out_h, out_w)`.
    pub fn adaptive_avg_pool2d(
        &mut self,
        x: NodeId,
        out_h: usize,
        out_w: usize,
        name: &str,
    ) -> NodeId {
        self.push_node(name, OpKind::AdaptiveAvgPool2d { out_h, out_w }, vec![x])
    }

    /// Collapses dimensions `start_dim..` into one (a view; allocates
    /// nothing).
    pub fn flatten(&mut self, x: NodeId, start_dim: usize, name: &str) -> NodeId {
        self.push_node(name, OpKind::Flatten { start_dim }, vec![x])
    }

    /// Reshapes to explicit dims (`-1` infers one extent, `0` copies the
    /// input extent).
    pub fn reshape(&mut self, x: NodeId, dims: Vec<i64>, name: &str) -> NodeId {
        self.push_node(name, OpKind::Reshape { dims }, vec![x])
    }

    /// Permutes dimensions (materializes a contiguous copy).
    pub fn permute(&mut self, x: NodeId, order: Vec<usize>, name: &str) -> NodeId {
        self.push_node(name, OpKind::Permute { order }, vec![x])
    }

    /// Adds an elementwise residual sum.
    pub fn add(&mut self, a: NodeId, b: NodeId, name: &str) -> NodeId {
        self.push_node(name, OpKind::Add, vec![a, b])
    }

    /// Adds an elementwise (possibly broadcast) product.
    pub fn mul(&mut self, a: NodeId, b: NodeId, name: &str) -> NodeId {
        self.push_node(name, OpKind::Mul, vec![a, b])
    }

    /// Concatenates along `dim`.
    pub fn concat(&mut self, inputs: Vec<NodeId>, dim: usize, name: &str) -> NodeId {
        self.push_node(name, OpKind::Concat { dim }, inputs)
    }

    /// Adds scaled-dot-product attention over projected q/k/v.
    pub fn attention(
        &mut self,
        q: NodeId,
        k: NodeId,
        v: NodeId,
        spec: AttentionSpec,
        name: &str,
    ) -> NodeId {
        self.push_node(name, OpKind::Attention(spec), vec![q, k, v])
    }

    /// Adds a softmax over `dim`.
    pub fn softmax(&mut self, x: NodeId, dim: usize, name: &str) -> NodeId {
        self.push_node(name, OpKind::Softmax { dim }, vec![x])
    }

    /// Adds dropout with probability `p`.
    pub fn dropout(&mut self, x: NodeId, p: f32, name: &str) -> NodeId {
        self.push_node(
            name,
            OpKind::Dropout {
                p_permille: (p * 1000.0) as u32,
            },
            vec![x],
        )
    }

    /// Adds a learnable per-channel scale (ConvNeXt layer scale).
    pub fn scale(&mut self, x: NodeId, channels: usize, name: &str) -> NodeId {
        self.push_node(name, OpKind::Scale { channels }, vec![x])
    }

    /// Adds the final cross-entropy loss.
    pub fn cross_entropy_loss(&mut self, x: NodeId, name: &str) -> NodeId {
        self.push_node(name, OpKind::CrossEntropyLoss, vec![x])
    }

    /// Validates and freezes the graph.
    ///
    /// Validation checks that the graph is non-empty, every edge points
    /// backwards (topological order), and shape inference succeeds for a
    /// probe batch.
    ///
    /// # Errors
    /// Returns the first structural or shape error found.
    pub fn finish(self) -> Result<Graph, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        for node in &self.nodes {
            for input in &node.inputs {
                if input.index() >= node.id.index() {
                    return Err(GraphError::DanglingInput {
                        node: node.name.clone(),
                    });
                }
            }
        }
        let graph = Graph {
            name: self.name,
            arch: self.arch,
            input_template: self.input_template,
            nodes: self.nodes,
            params: self.params,
        };
        // Probe with a small batch to surface shape errors at build time.
        graph.infer_shapes(&graph.input_specs(2, 0))?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_qualify_names() {
        let mut b = GraphBuilder::new("t", InputTemplate::features(4));
        let x = b.input();
        let y = b.with_scope("outer", |b| {
            b.with_scope("inner", |b| b.linear(x, 4, 4, false, "fc"))
        });
        b.cross_entropy_loss(y, "loss");
        let g = b.finish().unwrap();
        assert_eq!(g.nodes()[1].name, "outer.inner.fc");
        assert_eq!(g.nodes()[1].component, "outer.inner");
        assert_eq!(g.params()[0].name, "outer.inner.fc.weight");
    }

    #[test]
    fn tied_linear_registers_no_param() {
        let mut b = GraphBuilder::new("t", InputTemplate::tokens(16));
        let x = b.input();
        let (h, wte) = b.embedding(x, 100, 8, "wte");
        let logits = b.linear_tied(h, 8, 100, wte, "lm_head");
        b.cross_entropy_loss(logits, "loss");
        let g = b.finish().unwrap();
        assert_eq!(g.num_params(), 1);
        assert_eq!(g.node(logits).params, vec![wte]);
    }

    #[test]
    fn finish_rejects_empty() {
        let b = GraphBuilder::new("t", InputTemplate::features(4));
        assert!(matches!(b.finish(), Err(GraphError::EmptyGraph)));
    }

    #[test]
    fn finish_surfaces_shape_errors() {
        let mut b = GraphBuilder::new("t", InputTemplate::features(4));
        let x = b.input();
        b.linear(x, 5, 2, false, "bad"); // input is 4-dim features
        assert!(b.finish().is_err());
    }

    #[test]
    fn arch_class_follows_template() {
        let b = GraphBuilder::new("t", InputTemplate::tokens(8));
        assert_eq!(b.arch, ArchClass::Transformer);
        let b = GraphBuilder::new("t", InputTemplate::image(3, 8, 8));
        assert_eq!(b.arch, ArchClass::Cnn);
    }
}
