use std::error::Error;
use std::fmt;

/// Errors produced while constructing or analysing a [`crate::Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An operator received inputs whose shapes it cannot consume.
    ShapeMismatch {
        /// Name of the offending node.
        node: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// An operator received the wrong number of inputs.
    ArityMismatch {
        /// Name of the offending node.
        node: String,
        /// Number of inputs expected.
        expected: usize,
        /// Number of inputs supplied.
        actual: usize,
    },
    /// A node references an input that does not exist (or appears later in
    /// topological order).
    DanglingInput {
        /// Name of the offending node.
        node: String,
    },
    /// The graph has no nodes.
    EmptyGraph,
    /// A reshape target is incompatible with the element count of its input.
    InvalidReshape {
        /// Name of the offending node.
        node: String,
        /// Number of elements in the input tensor.
        input_numel: usize,
        /// The requested target dimensions.
        target: Vec<i64>,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::ShapeMismatch { node, detail } => {
                write!(f, "shape mismatch in node `{node}`: {detail}")
            }
            GraphError::ArityMismatch {
                node,
                expected,
                actual,
            } => write!(
                f,
                "node `{node}` expected {expected} input(s) but received {actual}"
            ),
            GraphError::DanglingInput { node } => {
                write!(f, "node `{node}` references an undefined input")
            }
            GraphError::EmptyGraph => write!(f, "graph contains no nodes"),
            GraphError::InvalidReshape {
                node,
                input_numel,
                target,
            } => write!(
                f,
                "node `{node}` cannot reshape {input_numel} elements into {target:?}"
            ),
        }
    }
}

impl Error for GraphError {}
