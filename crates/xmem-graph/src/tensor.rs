use crate::{DType, Shape};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Size-level description of a tensor: shape plus element type.
///
/// This is the unit of memory accounting across the whole project; a
/// `TensorSpec` never carries data.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct TensorSpec {
    /// Dimension extents.
    pub shape: Shape,
    /// Element type.
    pub dtype: DType,
}

impl TensorSpec {
    /// Creates a spec from a shape-like value and dtype.
    ///
    /// ```
    /// use xmem_graph::{TensorSpec, DType};
    /// let t = TensorSpec::new([8, 768], DType::F32);
    /// assert_eq!(t.size_bytes(), 8 * 768 * 4);
    /// ```
    #[must_use]
    pub fn new(shape: impl Into<Shape>, dtype: DType) -> Self {
        TensorSpec {
            shape: shape.into(),
            dtype,
        }
    }

    /// Convenience constructor for `f32` tensors.
    #[must_use]
    pub fn f32(shape: impl Into<Shape>) -> Self {
        TensorSpec::new(shape, DType::F32)
    }

    /// Number of elements.
    #[must_use]
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Logical (unrounded) size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.numel() * self.dtype.size_bytes()
    }

    /// Returns the same shape with a different dtype.
    #[must_use]
    pub fn with_dtype(&self, dtype: DType) -> Self {
        TensorSpec {
            shape: self.shape.clone(),
            dtype,
        }
    }
}

impl fmt::Display for TensorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.dtype, self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_accounts_for_dtype() {
        let shape = [16, 128];
        assert_eq!(
            TensorSpec::new(shape, DType::F32).size_bytes(),
            16 * 128 * 4
        );
        assert_eq!(
            TensorSpec::new(shape, DType::F16).size_bytes(),
            16 * 128 * 2
        );
        assert_eq!(
            TensorSpec::new(shape, DType::I64).size_bytes(),
            16 * 128 * 8
        );
    }

    #[test]
    fn scalar_spec() {
        let t = TensorSpec::f32(Shape::scalar());
        assert_eq!(t.numel(), 1);
        assert_eq!(t.size_bytes(), 4);
    }

    #[test]
    fn display_combines_dtype_and_shape() {
        assert_eq!(TensorSpec::f32([2, 2]).to_string(), "f32[2, 2]");
    }
}
