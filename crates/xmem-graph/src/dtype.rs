use serde::{Deserialize, Serialize};
use std::fmt;

/// Element type of a tensor.
///
/// Only the byte width matters for memory estimation; no arithmetic semantics
/// are attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DType {
    /// 32-bit IEEE float — the default training precision in the evaluation.
    #[default]
    F32,
    /// 16-bit IEEE float.
    F16,
    /// bfloat16.
    BF16,
    /// 64-bit IEEE float (optimizer internals on some platforms).
    F64,
    /// 64-bit signed integer (token ids, index tensors).
    I64,
    /// 32-bit signed integer.
    I32,
    /// 8-bit signed integer.
    I8,
    /// Boolean / byte mask.
    Bool,
}

impl DType {
    /// Size of one element in bytes.
    ///
    /// ```
    /// use xmem_graph::DType;
    /// assert_eq!(DType::F32.size_bytes(), 4);
    /// assert_eq!(DType::I64.size_bytes(), 8);
    /// assert_eq!(DType::Bool.size_bytes(), 1);
    /// ```
    #[must_use]
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::F64 | DType::I64 => 8,
            DType::F32 | DType::I32 => 4,
            DType::F16 | DType::BF16 => 2,
            DType::I8 | DType::Bool => 1,
        }
    }

    /// Whether this is a floating-point type (participates in autograd).
    #[must_use]
    pub const fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::F16 | DType::BF16 | DType::F64)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F32 => "f32",
            DType::F16 => "f16",
            DType::BF16 => "bf16",
            DType::F64 => "f64",
            DType::I64 => "i64",
            DType::I32 => "i32",
            DType::I8 => "i8",
            DType::Bool => "bool",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_consistent() {
        for d in [
            DType::F32,
            DType::F16,
            DType::BF16,
            DType::F64,
            DType::I64,
            DType::I32,
            DType::I8,
            DType::Bool,
        ] {
            assert!(d.size_bytes() >= 1 && d.size_bytes() <= 8);
        }
    }

    #[test]
    fn float_classification() {
        assert!(DType::F32.is_float());
        assert!(DType::BF16.is_float());
        assert!(!DType::I64.is_float());
        assert!(!DType::Bool.is_float());
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(DType::F32.to_string(), "f32");
        assert_eq!(DType::BF16.to_string(), "bf16");
    }
}
