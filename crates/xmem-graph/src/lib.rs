//! Memory-level intermediate representation for deep-learning models.
//!
//! This crate defines the typed graph that the rest of the xMem reproduction
//! operates on: [`DType`], [`Shape`] and [`TensorSpec`] describe tensors by
//! *size only* (no data is ever materialized), [`OpKind`] enumerates the
//! operators whose memory behaviour the runtime models, and [`Graph`] is a
//! topologically ordered DAG of [`Node`]s with an attached parameter
//! registry.
//!
//! The IR is deliberately memory-centric: shape inference exists so that
//! activation, gradient and workspace sizes can be derived exactly, but no
//! numerical semantics are attached to operators.
//!
//! # Example
//!
//! ```
//! use xmem_graph::{GraphBuilder, InputTemplate, DType};
//!
//! let mut b = GraphBuilder::new("tiny-mlp", InputTemplate::features(16));
//! let x = b.input();
//! let x = b.linear(x, 16, 32, true, "fc1");
//! let x = b.activation(x, xmem_graph::ActKind::Relu, "act1");
//! let x = b.linear(x, 32, 10, true, "fc2");
//! b.cross_entropy_loss(x, "loss");
//! let graph = b.finish().expect("valid graph");
//!
//! assert_eq!(graph.num_params(), 4); // two weights + two biases
//! let shapes = graph.infer_shapes(&graph.input_specs(8, 0)).unwrap();
//! assert_eq!(shapes.last().unwrap().shape.dims(), &[] as &[usize]); // scalar loss
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod dtype;
mod error;
mod graph;
mod node;
mod op;
mod shape;
mod tensor;

pub use builder::GraphBuilder;
pub use dtype::DType;
pub use error::GraphError;
pub use graph::{ArchClass, Graph, InputTemplate, ParamInfo};
pub use node::{Node, NodeId, ParamId};
pub use op::{ActKind, AttentionSpec, Conv2dSpec, OpKind, PoolSpec};
pub use shape::Shape;
pub use tensor::TensorSpec;
