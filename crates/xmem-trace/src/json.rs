//! Chrome-trace-style JSON reader/writer.
//!
//! The on-disk schema matches what `torch.profiler` exports closely enough
//! that the Analyzer logic transfers: a top-level `traceEvents` array of
//! objects with `ph` (phase: `"X"` span / `"i"` instant), `cat`, `name`,
//! `ts`, `dur` and an `args` object carrying `Addr` / `Bytes` /
//! `Device Id` / `Total Allocated` / `Total Reserved` /
//! `Sequence number`.

use crate::{EventArgs, EventCategory, Trace, TraceEvent};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

/// Failure to parse a trace JSON document.
#[derive(Debug)]
pub enum TraceParseError {
    /// The document is not valid JSON or misses required fields.
    Json(serde_json::Error),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::Json(e) => write!(f, "invalid trace json: {e}"),
            TraceParseError::Io(e) => write!(f, "trace io failure: {e}"),
        }
    }
}

impl Error for TraceParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceParseError::Json(e) => Some(e),
            TraceParseError::Io(e) => Some(e),
        }
    }
}

impl From<serde_json::Error> for TraceParseError {
    fn from(e: serde_json::Error) -> Self {
        TraceParseError::Json(e)
    }
}

impl From<std::io::Error> for TraceParseError {
    fn from(e: std::io::Error) -> Self {
        TraceParseError::Io(e)
    }
}

#[derive(Serialize, Deserialize)]
struct RawArgs {
    #[serde(rename = "Addr", skip_serializing_if = "Option::is_none")]
    addr: Option<u64>,
    #[serde(rename = "Bytes", skip_serializing_if = "Option::is_none")]
    bytes: Option<i64>,
    #[serde(rename = "Device Id", skip_serializing_if = "Option::is_none")]
    device: Option<i32>,
    #[serde(rename = "Total Allocated", skip_serializing_if = "Option::is_none")]
    total_allocated: Option<u64>,
    #[serde(rename = "Total Reserved", skip_serializing_if = "Option::is_none")]
    total_reserved: Option<u64>,
    #[serde(rename = "Sequence number", skip_serializing_if = "Option::is_none")]
    seq: Option<u64>,
}

#[derive(Serialize, Deserialize)]
struct RawEvent {
    ph: String,
    cat: String,
    name: String,
    pid: u32,
    tid: u32,
    ts: u64,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    dur: Option<u64>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    args: Option<RawArgs>,
}

#[derive(Serialize, Deserialize)]
struct RawTrace {
    #[serde(rename = "schemaVersion")]
    schema_version: u32,
    #[serde(rename = "displayTimeUnit", default)]
    display_time_unit: Option<String>,
    #[serde(rename = "traceName", default)]
    trace_name: Option<String>,
    #[serde(rename = "traceEvents")]
    trace_events: Vec<RawEvent>,
}

fn to_raw(event: &TraceEvent) -> RawEvent {
    let args = if event.args.is_empty() {
        None
    } else {
        Some(RawArgs {
            addr: event.args.addr,
            bytes: event.args.bytes,
            device: event.args.device,
            total_allocated: event.args.total_allocated,
            total_reserved: event.args.total_reserved,
            seq: event.args.seq,
        })
    };
    RawEvent {
        ph: if event.dur_us == 0 && event.category == EventCategory::CpuInstantEvent {
            "i".to_string()
        } else {
            "X".to_string()
        },
        cat: event.category.as_str().to_string(),
        name: event.name.clone(),
        pid: 1,
        tid: 1,
        ts: event.ts_us,
        dur: if event.category == EventCategory::CpuInstantEvent {
            None
        } else {
            Some(event.dur_us)
        },
        args,
    }
}

fn from_raw(raw: RawEvent) -> Option<TraceEvent> {
    let category = EventCategory::parse(&raw.cat)?;
    let args = raw
        .args
        .map(|a| EventArgs {
            addr: a.addr,
            bytes: a.bytes,
            device: a.device,
            total_allocated: a.total_allocated,
            total_reserved: a.total_reserved,
            seq: a.seq,
        })
        .unwrap_or_default();
    Some(TraceEvent {
        category,
        name: raw.name,
        ts_us: raw.ts,
        dur_us: raw.dur.unwrap_or(0),
        args,
    })
}

impl Trace {
    /// Serializes the trace to the JSON interchange format.
    ///
    /// # Errors
    /// Propagates serialization failures (effectively unreachable for this
    /// schema).
    pub fn to_json_string(&self) -> Result<String, TraceParseError> {
        let raw = RawTrace {
            schema_version: 1,
            display_time_unit: Some("us".to_string()),
            trace_name: Some(self.name().to_string()),
            trace_events: self.events().iter().map(to_raw).collect(),
        };
        Ok(serde_json::to_string(&raw)?)
    }

    /// Writes the JSON document to `writer`.
    ///
    /// # Errors
    /// Propagates I/O and serialization failures.
    pub fn write_json<W: Write>(&self, mut writer: W) -> Result<(), TraceParseError> {
        let s = self.to_json_string()?;
        writer.write_all(s.as_bytes())?;
        Ok(())
    }

    /// Parses a JSON document. Events with unknown categories are skipped
    /// (PyTorch traces contain many more categories than xMem consumes);
    /// events are re-sorted by timestamp.
    ///
    /// # Errors
    /// Returns [`TraceParseError::Json`] for malformed documents.
    pub fn from_json_str(s: &str) -> Result<Self, TraceParseError> {
        let raw: RawTrace = serde_json::from_str(s)?;
        let mut trace = Trace::new(raw.trace_name.unwrap_or_default());
        for event in raw.trace_events {
            if let Some(e) = from_raw(event) {
                trace.push(e);
            }
        }
        trace.sort_by_time();
        Ok(trace)
    }

    /// Reads and parses a JSON document from `reader`.
    ///
    /// # Errors
    /// Propagates I/O and parse failures.
    pub fn read_json<R: Read>(mut reader: R) -> Result<Self, TraceParseError> {
        let mut s = String::new();
        reader.read_to_string(&mut s)?;
        Trace::from_json_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;

    fn sample_trace() -> Trace {
        let mut t = Trace::new("job");
        t.push(TraceEvent::span(
            EventCategory::UserAnnotation,
            names::profiler_step(1),
            0,
            100,
        ));
        t.push(TraceEvent::span(
            EventCategory::PythonFunction,
            names::nn_module("encoder.0"),
            5,
            40,
        ));
        t.push(TraceEvent::span_with_seq(
            EventCategory::CpuOp,
            "aten::linear",
            6,
            30,
            7,
        ));
        t.push(TraceEvent::mem_alloc(8, 0xabc, 4096, -1));
        t.push(TraceEvent::mem_free(90, 0xabc, 4096, -1));
        t
    }

    #[test]
    fn roundtrip_preserves_events() {
        let t = sample_trace();
        let json = t.to_json_string().unwrap();
        let back = Trace::from_json_str(&json).unwrap();
        assert_eq!(back.events(), t.events());
        assert_eq!(back.name(), "job");
    }

    #[test]
    fn schema_uses_pytorch_arg_names() {
        let t = sample_trace();
        let json = t.to_json_string().unwrap();
        assert!(json.contains("\"Addr\""));
        assert!(json.contains("\"Bytes\""));
        assert!(json.contains("\"Device Id\""));
        assert!(json.contains("\"Sequence number\""));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn unknown_categories_are_skipped() {
        let json = r#"{
            "schemaVersion": 1,
            "traceEvents": [
                {"ph":"X","cat":"kernel","name":"sgemm","pid":1,"tid":1,"ts":0,"dur":5},
                {"ph":"X","cat":"cpu_op","name":"aten::add","pid":1,"tid":1,"ts":1,"dur":2}
            ]
        }"#;
        let t = Trace::from_json_str(json).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0].name, "aten::add");
    }

    #[test]
    fn malformed_document_is_an_error() {
        assert!(Trace::from_json_str("{\"traceEvents\": 5}").is_err());
        assert!(Trace::from_json_str("not json").is_err());
    }

    #[test]
    fn parser_sorts_by_time() {
        let json = r#"{
            "schemaVersion": 1,
            "traceEvents": [
                {"ph":"X","cat":"cpu_op","name":"late","pid":1,"tid":1,"ts":50,"dur":2},
                {"ph":"X","cat":"cpu_op","name":"early","pid":1,"tid":1,"ts":1,"dur":2}
            ]
        }"#;
        let t = Trace::from_json_str(json).unwrap();
        assert_eq!(t.events()[0].name, "early");
    }

    #[test]
    fn write_json_to_writer() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_json(&mut buf).unwrap();
        let back = Trace::read_json(&buf[..]).unwrap();
        assert_eq!(back.len(), t.len());
    }
}
