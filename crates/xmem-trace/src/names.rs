//! Canonical event names shared by the profiler (writer side) and the
//! Analyzer (reader side).
//!
//! These mirror the strings a real PyTorch profiler export contains, so the
//! Analyzer's matching logic is the same string-level logic the paper's tool
//! needs: prefix tests and step-number parsing, not privileged access to
//! runtime internals.

/// Iteration boundary marker: `ProfilerStep#<k>`.
pub const PROFILER_STEP_PREFIX: &str = "ProfilerStep#";
/// Optimizer step annotation: `Optimizer.step#<Name>.step`.
pub const OPTIMIZER_STEP_PREFIX: &str = "Optimizer.step#";
/// Gradient-clearing annotation: `Optimizer.zero_grad#<Name>.zero_grad`.
pub const OPTIMIZER_ZERO_GRAD_PREFIX: &str = "Optimizer.zero_grad#";
/// Dataloader fetch annotation, as PyTorch names it.
pub const DATALOADER_NEXT: &str = "enumerate(DataLoader)#_SingleProcessDataLoaderIter.__next__";
/// Model-loading annotation covering parameter materialization
/// (`model.to(device)` in the standard loop).
pub const MODEL_TO_DEVICE: &str = "model.to(device)";
/// Loss backward annotation wrapping the whole autograd pass.
pub const BACKWARD_CALL: &str = "loss.backward()";
/// Module-call `python_function` prefix: `nn.Module: <path>`.
pub const NN_MODULE_PREFIX: &str = "nn.Module: ";
/// Backward-node `cpu_op` prefix:
/// `autograd::engine::evaluate_function: <Node>`.
pub const AUTOGRAD_NODE_PREFIX: &str = "autograd::engine::evaluate_function: ";
/// Gradient-accumulation backward node (writes parameter `.grad`s).
pub const ACCUMULATE_GRAD: &str = "torch::autograd::AccumulateGrad";

/// Formats the iteration marker for step `k`.
#[must_use]
pub fn profiler_step(k: u32) -> String {
    format!("{PROFILER_STEP_PREFIX}{k}")
}

/// Parses `ProfilerStep#<k>`, returning `k`.
#[must_use]
pub fn parse_profiler_step(name: &str) -> Option<u32> {
    name.strip_prefix(PROFILER_STEP_PREFIX)?.parse().ok()
}

/// Formats the optimizer-step annotation, e.g. `Optimizer.step#AdamW.step`.
#[must_use]
pub fn optimizer_step(optimizer: &str) -> String {
    format!("{OPTIMIZER_STEP_PREFIX}{optimizer}.step")
}

/// Whether a `user_annotation` name marks an optimizer step.
#[must_use]
pub fn is_optimizer_step(name: &str) -> bool {
    name.starts_with(OPTIMIZER_STEP_PREFIX)
}

/// Formats the zero-grad annotation, e.g.
/// `Optimizer.zero_grad#AdamW.zero_grad`.
#[must_use]
pub fn optimizer_zero_grad(optimizer: &str) -> String {
    format!("{OPTIMIZER_ZERO_GRAD_PREFIX}{optimizer}.zero_grad")
}

/// Whether a `user_annotation` name marks a zero-grad call.
#[must_use]
pub fn is_optimizer_zero_grad(name: &str) -> bool {
    name.starts_with(OPTIMIZER_ZERO_GRAD_PREFIX)
}

/// Formats a module-call `python_function` name for module path `path`.
#[must_use]
pub fn nn_module(path: &str) -> String {
    format!("{NN_MODULE_PREFIX}{path}")
}

/// Extracts the module path from an `nn.Module: <path>` name.
#[must_use]
pub fn parse_nn_module(name: &str) -> Option<&str> {
    name.strip_prefix(NN_MODULE_PREFIX)
}

/// Formats a backward-engine `cpu_op` name for autograd node `node`,
/// e.g. `AddmmBackward0`.
#[must_use]
pub fn autograd_node(node: &str) -> String {
    format!("{AUTOGRAD_NODE_PREFIX}{node}")
}

/// Extracts the autograd node name from a backward-engine `cpu_op` name.
#[must_use]
pub fn parse_autograd_node(name: &str) -> Option<&str> {
    name.strip_prefix(AUTOGRAD_NODE_PREFIX)
}

/// Whether a `cpu_op` name belongs to the backward pass (autograd engine or
/// gradient accumulation).
#[must_use]
pub fn is_backward_op(name: &str) -> bool {
    name.starts_with(AUTOGRAD_NODE_PREFIX) || name == ACCUMULATE_GRAD
}

/// The conventional backward-node name for a forward kernel, e.g.
/// `aten::linear` → `LinearBackward0`.
#[must_use]
pub fn backward_node_for(aten_name: &str) -> String {
    let base = aten_name.strip_prefix("aten::").unwrap_or(aten_name);
    let mut chars = base.chars();
    let camel: String = match chars.next() {
        Some(c) => c.to_ascii_uppercase().to_string() + chars.as_str(),
        None => String::new(),
    };
    // `max_pool2d` → `MaxPool2d`: uppercase letters following underscores.
    let mut out = String::with_capacity(camel.len());
    let mut upper_next = false;
    for ch in camel.chars() {
        if ch == '_' {
            upper_next = true;
        } else if upper_next {
            out.push(ch.to_ascii_uppercase());
            upper_next = false;
        } else {
            out.push(ch);
        }
    }
    format!("{out}Backward0")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_step_roundtrip() {
        assert_eq!(parse_profiler_step(&profiler_step(3)), Some(3));
        assert_eq!(parse_profiler_step("ProfilerStep#12"), Some(12));
        assert_eq!(parse_profiler_step("ProfilerStep#x"), None);
        assert_eq!(parse_profiler_step("Other"), None);
    }

    #[test]
    fn optimizer_annotations() {
        assert_eq!(optimizer_step("AdamW"), "Optimizer.step#AdamW.step");
        assert!(is_optimizer_step("Optimizer.step#SGD.step"));
        assert!(!is_optimizer_step("Optimizer.zero_grad#SGD.zero_grad"));
        assert!(is_optimizer_zero_grad(&optimizer_zero_grad("SGD")));
    }

    #[test]
    fn module_names() {
        assert_eq!(
            parse_nn_module(&nn_module("features.0")),
            Some("features.0")
        );
        assert_eq!(parse_nn_module("aten::linear"), None);
    }

    #[test]
    fn backward_naming() {
        assert_eq!(backward_node_for("aten::linear"), "LinearBackward0");
        assert_eq!(backward_node_for("aten::max_pool2d"), "MaxPool2dBackward0");
        assert!(is_backward_op(&autograd_node("LinearBackward0")));
        assert!(is_backward_op(ACCUMULATE_GRAD));
        assert!(!is_backward_op("aten::linear"));
        assert_eq!(
            parse_autograd_node(&autograd_node("ConvolutionBackward0")),
            Some("ConvolutionBackward0")
        );
    }
}
