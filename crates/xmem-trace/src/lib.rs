//! Profiler trace model and JSON interchange format.
//!
//! The paper's pipeline consumes PyTorch-profiler exports: chrome-trace JSON
//! containing four event categories (§3.2) — `python_function` (module-call
//! hierarchy), `user_annotation` (training-phase markers such as
//! `ProfilerStep#k` and `Optimizer.zero_grad#...`), `cpu_op` (`aten::*`
//! kernels with start/end timestamps and forward/backward sequence numbers)
//! and `cpu_instant_event` (raw memory allocation/free instants carrying
//! address, signed byte count and device id, with **no linkage** to the
//! operator that caused them — recreating that linkage is the Analyzer's
//! job).
//!
//! This crate defines the in-memory [`Trace`] model, the canonical event
//! [`names`] the runtime emits and the Analyzer recognizes, and a
//! serde-based reader/writer for the JSON schema. The parser is tolerant:
//! events of unknown categories are skipped, mirroring how the real tool
//! ignores the many other categories a PyTorch trace contains.
//!
//! # Example
//!
//! ```
//! use xmem_trace::{Trace, TraceEvent, EventCategory};
//!
//! let mut trace = Trace::new("demo");
//! trace.push(TraceEvent::span(EventCategory::CpuOp, "aten::linear", 10, 25));
//! trace.push(TraceEvent::mem_alloc(12, 0xdead_0000, 4096, -1));
//! trace.push(TraceEvent::mem_free(20, 0xdead_0000, 4096, -1));
//!
//! let json = trace.to_json_string().unwrap();
//! let parsed = Trace::from_json_str(&json).unwrap();
//! assert_eq!(parsed.events().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod json;
pub mod names;
mod trace;

pub use event::{EventArgs, EventCategory, TraceEvent};
pub use json::TraceParseError;
pub use trace::Trace;
