use serde::{Deserialize, Serialize};
use std::fmt;

/// The four profiler event categories xMem consumes (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventCategory {
    /// Python-level call spans (module forward/backward invocations);
    /// provide the parent-child component hierarchy.
    PythonFunction,
    /// Training-phase markers: `ProfilerStep#k`, optimizer step/zero_grad,
    /// dataloader fetches, model loading.
    UserAnnotation,
    /// Dispatched computational kernels (`aten::*`) with precise start/end
    /// timestamps and forward↔backward sequence numbers.
    CpuOp,
    /// Memory allocation/free instants: address, signed bytes, device id —
    /// with no linkage to the triggering operator.
    CpuInstantEvent,
}

impl EventCategory {
    /// The `cat` string used in the JSON interchange format.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            EventCategory::PythonFunction => "python_function",
            EventCategory::UserAnnotation => "user_annotation",
            EventCategory::CpuOp => "cpu_op",
            EventCategory::CpuInstantEvent => "cpu_instant_event",
        }
    }

    /// Parses a `cat` string; unknown categories yield `None`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "python_function" => Some(EventCategory::PythonFunction),
            "user_annotation" => Some(EventCategory::UserAnnotation),
            "cpu_op" => Some(EventCategory::CpuOp),
            "cpu_instant_event" => Some(EventCategory::CpuInstantEvent),
            _ => None,
        }
    }
}

impl fmt::Display for EventCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Optional attributes attached to an event (`args` in the JSON format).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventArgs {
    /// Memory address of an allocation/free instant.
    pub addr: Option<u64>,
    /// Signed byte count: positive allocates, negative frees.
    pub bytes: Option<i64>,
    /// Device id (-1 = CPU, 0+ = accelerator ordinal).
    pub device: Option<i32>,
    /// Allocator "allocated bytes" gauge at this instant, when recorded.
    pub total_allocated: Option<u64>,
    /// Allocator "reserved bytes" gauge at this instant, when recorded.
    pub total_reserved: Option<u64>,
    /// Sequence number linking a forward `cpu_op` to its backward node.
    pub seq: Option<u64>,
}

impl EventArgs {
    /// True when no attribute is set (serialized as absent `args`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == EventArgs::default()
    }
}

/// One profiler event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Category (`cat`).
    pub category: EventCategory,
    /// Event name.
    pub name: String,
    /// Start timestamp in virtual microseconds.
    pub ts_us: u64,
    /// Duration in microseconds (0 for instant events).
    pub dur_us: u64,
    /// Optional attributes.
    pub args: EventArgs,
}

impl TraceEvent {
    /// A duration span event (`ph: "X"`).
    #[must_use]
    pub fn span(category: EventCategory, name: impl Into<String>, ts_us: u64, dur_us: u64) -> Self {
        TraceEvent {
            category,
            name: name.into(),
            ts_us,
            dur_us,
            args: EventArgs::default(),
        }
    }

    /// A span with a forward/backward sequence number.
    #[must_use]
    pub fn span_with_seq(
        category: EventCategory,
        name: impl Into<String>,
        ts_us: u64,
        dur_us: u64,
        seq: u64,
    ) -> Self {
        TraceEvent {
            args: EventArgs {
                seq: Some(seq),
                ..EventArgs::default()
            },
            ..TraceEvent::span(category, name, ts_us, dur_us)
        }
    }

    /// A `[memory]` instant recording an allocation of `bytes` at `addr`.
    #[must_use]
    pub fn mem_alloc(ts_us: u64, addr: u64, bytes: u64, device: i32) -> Self {
        TraceEvent {
            category: EventCategory::CpuInstantEvent,
            name: "[memory]".to_string(),
            ts_us,
            dur_us: 0,
            args: EventArgs {
                addr: Some(addr),
                bytes: Some(bytes as i64),
                device: Some(device),
                ..EventArgs::default()
            },
        }
    }

    /// A `[memory]` instant recording a free of `bytes` at `addr`.
    #[must_use]
    pub fn mem_free(ts_us: u64, addr: u64, bytes: u64, device: i32) -> Self {
        TraceEvent {
            category: EventCategory::CpuInstantEvent,
            name: "[memory]".to_string(),
            ts_us,
            dur_us: 0,
            args: EventArgs {
                addr: Some(addr),
                bytes: Some(-(bytes as i64)),
                device: Some(device),
                ..EventArgs::default()
            },
        }
    }

    /// End timestamp (`ts + dur`).
    #[must_use]
    pub fn end_us(&self) -> u64 {
        self.ts_us + self.dur_us
    }

    /// Whether this is a memory alloc/free instant.
    #[must_use]
    pub fn is_memory_instant(&self) -> bool {
        self.category == EventCategory::CpuInstantEvent && self.args.bytes.is_some()
    }

    /// Whether `[self.ts, self.end)` fully contains `[other.ts, other.end)`.
    /// Instants (zero duration) are contained when their timestamp falls in
    /// the half-open window.
    #[must_use]
    pub fn contains(&self, other: &TraceEvent) -> bool {
        if other.dur_us == 0 {
            self.ts_us <= other.ts_us && other.ts_us < self.end_us()
        } else {
            self.ts_us <= other.ts_us && other.end_us() <= self.end_us()
        }
    }

    /// Whether the timestamp `ts` falls within this event's span.
    #[must_use]
    pub fn covers_ts(&self, ts: u64) -> bool {
        self.ts_us <= ts && ts < self.end_us().max(self.ts_us + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_roundtrip() {
        for c in [
            EventCategory::PythonFunction,
            EventCategory::UserAnnotation,
            EventCategory::CpuOp,
            EventCategory::CpuInstantEvent,
        ] {
            assert_eq!(EventCategory::parse(c.as_str()), Some(c));
        }
        assert_eq!(EventCategory::parse("gpu_memcpy"), None);
    }

    #[test]
    fn memory_instants_sign_bytes() {
        let a = TraceEvent::mem_alloc(5, 0x10, 1024, -1);
        assert_eq!(a.args.bytes, Some(1024));
        assert!(a.is_memory_instant());
        let f = TraceEvent::mem_free(9, 0x10, 1024, -1);
        assert_eq!(f.args.bytes, Some(-1024));
    }

    #[test]
    fn containment_is_half_open() {
        let outer = TraceEvent::span(EventCategory::CpuOp, "op", 10, 10);
        let inner = TraceEvent::span(EventCategory::CpuOp, "inner", 12, 5);
        let instant_at_end = TraceEvent::mem_alloc(20, 0x1, 1, -1);
        let instant_inside = TraceEvent::mem_alloc(19, 0x1, 1, -1);
        assert!(outer.contains(&inner));
        assert!(!outer.contains(&instant_at_end));
        assert!(outer.contains(&instant_inside));
    }

    #[test]
    fn covers_ts_handles_spans() {
        let e = TraceEvent::span(EventCategory::CpuOp, "op", 10, 10);
        assert!(e.covers_ts(10));
        assert!(e.covers_ts(19));
        assert!(!e.covers_ts(20));
        assert!(!e.covers_ts(9));
    }
}
