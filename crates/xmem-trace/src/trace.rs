use crate::{EventCategory, TraceEvent};

/// An in-memory profiler trace: ordered events plus minimal metadata.
///
/// Events are kept in emission order; [`Trace::sort_by_time`] restores
/// time order after merging sources (the JSON parser calls it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace labelled `name` (usually the job name).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            events: Vec::new(),
        }
    }

    /// Trace label.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Stable-sorts events by start timestamp (ties keep emission order, so
    /// enclosing spans stay ahead of contained events emitted later).
    pub fn sort_by_time(&mut self) {
        self.events.sort_by_key(|e| e.ts_us);
    }

    /// Iterates events of one category.
    pub fn of_category(&self, category: EventCategory) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.category == category)
    }

    /// Iterates the memory alloc/free instants.
    pub fn memory_instants(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.is_memory_instant())
    }

    /// Approximate resident size of this trace in bytes: the event
    /// structs plus their heap-owned names. Used by bytes-budgeted caches
    /// to price retained traces (exact heap accounting is not the goal —
    /// a stable, cheap, monotone-in-size figure is).
    #[must_use]
    pub fn approx_bytes(&self) -> u64 {
        let fixed = std::mem::size_of::<TraceEvent>() as u64 * self.events.len() as u64;
        let names: u64 = self.events.iter().map(|e| e.name.len() as u64).sum();
        fixed + names + self.name.len() as u64
    }

    /// Timestamp of the last event end, i.e. the trace horizon.
    #[must_use]
    pub fn end_us(&self) -> u64 {
        self.events
            .iter()
            .map(TraceEvent::end_us)
            .max()
            .unwrap_or(0)
    }

    /// The `ProfilerStep#k` annotation spans in step order, as
    /// `(step, start, end)`.
    #[must_use]
    pub fn iteration_windows(&self) -> Vec<(u32, u64, u64)> {
        let mut windows: Vec<(u32, u64, u64)> = self
            .of_category(EventCategory::UserAnnotation)
            .filter_map(|e| {
                crate::names::parse_profiler_step(&e.name).map(|k| (k, e.ts_us, e.end_us()))
            })
            .collect();
        windows.sort_by_key(|w| w.0);
        windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;

    #[test]
    fn iteration_windows_are_parsed_and_ordered() {
        let mut t = Trace::new("t");
        t.push(TraceEvent::span(
            EventCategory::UserAnnotation,
            names::profiler_step(2),
            100,
            50,
        ));
        t.push(TraceEvent::span(
            EventCategory::UserAnnotation,
            names::profiler_step(1),
            10,
            80,
        ));
        t.push(TraceEvent::span(
            EventCategory::CpuOp,
            "aten::linear",
            12,
            4,
        ));
        let w = t.iteration_windows();
        assert_eq!(w, vec![(1, 10, 90), (2, 100, 150)]);
    }

    #[test]
    fn category_filters() {
        let mut t = Trace::new("t");
        t.push(TraceEvent::span(EventCategory::CpuOp, "aten::add", 0, 1));
        t.push(TraceEvent::mem_alloc(1, 0x2, 512, -1));
        assert_eq!(t.of_category(EventCategory::CpuOp).count(), 1);
        assert_eq!(t.memory_instants().count(), 1);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.end_us(), 1);
    }

    #[test]
    fn sort_is_stable_for_nested_spans() {
        let mut t = Trace::new("t");
        t.push(TraceEvent::span(
            EventCategory::PythonFunction,
            "outer",
            5,
            10,
        ));
        t.push(TraceEvent::span(EventCategory::CpuOp, "inner", 5, 4));
        t.push(TraceEvent::span(EventCategory::CpuOp, "early", 1, 1));
        t.sort_by_time();
        assert_eq!(t.events()[0].name, "early");
        assert_eq!(t.events()[1].name, "outer");
        assert_eq!(t.events()[2].name, "inner");
    }
}
