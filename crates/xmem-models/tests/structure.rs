//! Structural tests of the model zoo beyond parameter counts: component
//! organization, weight tying, attention configurations and operator
//! inventories — the properties the runtime's memory model relies on.

use xmem_graph::{ArchClass, OpKind};
use xmem_models::ModelId;

#[test]
fn every_graph_ends_in_a_loss() {
    for m in ModelId::all() {
        let g = m.build();
        let last = g.nodes().last().expect("non-empty");
        assert!(
            matches!(last.op, OpKind::CrossEntropyLoss),
            "{m}: last node is {:?}",
            last.op
        );
    }
}

#[test]
fn transformers_have_attention_cnns_have_convs() {
    for m in ModelId::all() {
        let g = m.build();
        let has_attn = g
            .nodes()
            .iter()
            .any(|n| matches!(n.op, OpKind::Attention(_)));
        let has_conv = g.nodes().iter().any(|n| matches!(n.op, OpKind::Conv2d(_)));
        match m.info().arch {
            ArchClass::Transformer => assert!(has_attn && !has_conv, "{m}"),
            ArchClass::Cnn => assert!(has_conv && !has_attn, "{m}"),
        }
    }
}

#[test]
fn gqa_models_have_fewer_kv_heads() {
    for (m, expect_gqa) in [
        (ModelId::Qwen3_0_6B, true),
        (ModelId::Llama32_3B, true),
        (ModelId::DeepSeekR1Distill1_5B, true),
        (ModelId::Gpt2, false),
        (ModelId::Pythia1B, false),
    ] {
        let g = m.build();
        let spec = g
            .nodes()
            .iter()
            .find_map(|n| match n.op {
                OpKind::Attention(a) => Some(a),
                _ => None,
            })
            .expect("transformer has attention");
        assert_eq!(spec.kv_heads < spec.heads, expect_gqa, "{m}: {spec:?}");
        assert!(spec.causal || m == ModelId::T5Small || m == ModelId::T5Base);
    }
}

#[test]
fn tied_lms_share_the_embedding_weight() {
    // Tied models: the lm_head linear references the embedding's ParamId.
    for m in [
        ModelId::DistilGpt2,
        ModelId::Gpt2,
        ModelId::GptNeo125M,
        ModelId::CerebrasGpt111M,
        ModelId::Qwen3_0_6B,
        ModelId::Llama32_3B,
        ModelId::Qwen3_4B,
        ModelId::T5Small,
    ] {
        let g = m.build();
        let mut param_use_count = std::collections::HashMap::new();
        for n in g.nodes() {
            for p in &n.params {
                *param_use_count.entry(*p).or_insert(0usize) += 1;
            }
        }
        assert!(
            param_use_count.values().any(|&c| c >= 2),
            "{m}: no parameter is shared between nodes"
        );
    }
    // Pythia is untied: every param belongs to exactly one node.
    let g = ModelId::Pythia1B.build();
    let mut param_use_count = std::collections::HashMap::new();
    for n in g.nodes() {
        for p in &n.params {
            *param_use_count.entry(*p).or_insert(0usize) += 1;
        }
    }
    assert!(
        param_use_count.values().all(|&c| c == 1),
        "pythia is untied"
    );
}

#[test]
fn t5_has_two_inputs_and_cross_attention() {
    let g = ModelId::T5Base.build();
    let inputs = g.nodes().iter().filter(|n| n.is_input()).count();
    assert_eq!(inputs, 2, "encoder + decoder token inputs");
    // Cross-attention: an attention node whose k input differs from its q
    // input's producer chain is present in every decoder block.
    let cross = g
        .nodes()
        .iter()
        .filter(|n| n.name.contains("EncDecAttention.sdpa"))
        .count();
    assert_eq!(cross, 12, "one cross-attention per decoder block");
}

#[test]
fn component_paths_group_repeated_blocks() {
    let g = ModelId::Gpt2.build();
    let block_components: std::collections::BTreeSet<&str> = g
        .nodes()
        .iter()
        .map(|n| n.component.as_str())
        .filter(|c| c.starts_with("transformer.h."))
        .collect();
    assert_eq!(block_components.len(), 12, "12 decoder block components");
}

#[test]
fn depthwise_convolutions_use_channel_groups() {
    let g = ModelId::MobileNetV2.build();
    let depthwise = g
        .nodes()
        .iter()
        .filter_map(|n| match n.op {
            OpKind::Conv2d(c) if c.groups > 1 => Some(c),
            _ => None,
        })
        .count();
    assert!(depthwise >= 17, "one depthwise conv per inverted residual");
}

#[test]
fn op_counts_are_in_expected_ranges() {
    // Sanity bounds: deep models have more operator nodes.
    let tiny = ModelId::MobileNetV3Small.build().op_count();
    let deep = ModelId::ResNet152.build().op_count();
    let huge = ModelId::Qwen3_4B.build().op_count();
    assert!(tiny < deep, "{tiny} < {deep}");
    assert!((100..=400).contains(&tiny), "{tiny}");
    assert!((400..=800).contains(&deep), "{deep}");
    assert!((500..=1000).contains(&huge), "{huge}");
}

#[test]
fn input_templates_match_arch() {
    for m in ModelId::all() {
        let g = m.build();
        let specs = g.input_specs(4, 0);
        match m.info().arch {
            ArchClass::Cnn => {
                assert_eq!(specs.len(), 1);
                assert_eq!(specs[0].shape.dims(), &[4, 3, 32, 32], "{m}");
            }
            ArchClass::Transformer => {
                assert!(!specs[0].dtype.is_float(), "{m}: token ids are integers");
                assert_eq!(specs[0].shape.dims()[0], 4, "{m}");
            }
        }
    }
}
