//! T5-small and T5-base (Raffel et al., 2020): encoder/decoder transformers
//! with a shared vocabulary embedding, bias-free projections and RMS-style
//! norms. The tiny relative-attention-bias tables (32 buckets × heads,
//! <0.01 % of parameters) are omitted; DESIGN.md records the substitution.

use xmem_graph::{ActKind, AttentionSpec, Graph, GraphBuilder, InputTemplate, NodeId, ParamId};

struct T5Cfg {
    name: &'static str,
    vocab: usize,
    d: usize,
    heads: usize,
    ff: usize,
    layers: usize,
    src_seq: usize,
    tgt_seq: usize,
}

fn attn_spec(cfg: &T5Cfg, causal: bool) -> AttentionSpec {
    AttentionSpec {
        heads: cfg.heads,
        kv_heads: cfg.heads,
        head_dim: cfg.d / cfg.heads,
        causal,
    }
}

/// Self-attention sublayer (pre-norm, residual).
fn self_attention(b: &mut GraphBuilder, x: NodeId, cfg: &T5Cfg, causal: bool) -> NodeId {
    let d = cfg.d;
    b.with_scope("SelfAttention", |b| {
        let n = b.rms_norm(x, d, "layer_norm");
        let q = b.linear(n, d, d, false, "q");
        let k = b.linear(n, d, d, false, "k");
        let v = b.linear(n, d, d, false, "v");
        let a = b.attention(q, k, v, attn_spec(cfg, causal), "sdpa");
        let o = b.linear(a, d, d, false, "o");
        b.add(o, x, "residual")
    })
}

/// Cross-attention sublayer: queries from the decoder stream, keys/values
/// from the encoder output.
fn cross_attention(b: &mut GraphBuilder, x: NodeId, enc: NodeId, cfg: &T5Cfg) -> NodeId {
    let d = cfg.d;
    b.with_scope("EncDecAttention", |b| {
        let n = b.rms_norm(x, d, "layer_norm");
        let q = b.linear(n, d, d, false, "q");
        let k = b.linear(enc, d, d, false, "k");
        let v = b.linear(enc, d, d, false, "v");
        let a = b.attention(q, k, v, attn_spec(cfg, false), "sdpa");
        let o = b.linear(a, d, d, false, "o");
        b.add(o, x, "residual")
    })
}

fn feed_forward(b: &mut GraphBuilder, x: NodeId, cfg: &T5Cfg) -> NodeId {
    let d = cfg.d;
    b.with_scope("DenseReluDense", |b| {
        let n = b.rms_norm(x, d, "layer_norm");
        let h = b.linear(n, d, cfg.ff, false, "wi");
        let h = b.activation(h, ActKind::Relu, "act");
        let h = b.dropout(h, 0.1, "dropout");
        let h = b.linear(h, cfg.ff, d, false, "wo");
        b.add(h, x, "residual")
    })
}

fn t5(cfg: &T5Cfg) -> Graph {
    let mut b = GraphBuilder::new(
        cfg.name,
        InputTemplate::TokensEncDec {
            default_src: cfg.src_seq,
            default_tgt: cfg.tgt_seq,
        },
    );
    let src = b.input();
    let tgt = b.decoder_input();
    let (mut enc, shared): (NodeId, ParamId) = b.embedding(src, cfg.vocab, cfg.d, "shared");
    // Encoder stack.
    for layer in 0..cfg.layers {
        enc = b.with_scope(&format!("encoder.block.{layer}"), |b| {
            let h = self_attention(b, enc, cfg, false);
            feed_forward(b, h, cfg)
        });
    }
    enc = b.rms_norm(enc, cfg.d, "encoder.final_layer_norm");
    // Decoder stack.
    let mut dec = b.embedding_tied(tgt, cfg.vocab, cfg.d, shared, "decoder.embed");
    for layer in 0..cfg.layers {
        dec = b.with_scope(&format!("decoder.block.{layer}"), |b| {
            let h = self_attention(b, dec, cfg, true);
            let h = cross_attention(b, h, enc, cfg);
            feed_forward(b, h, cfg)
        });
    }
    dec = b.rms_norm(dec, cfg.d, "decoder.final_layer_norm");
    let logits = b.linear_tied(dec, cfg.d, cfg.vocab, shared, "lm_head");
    b.cross_entropy_loss(logits, "loss");
    b.finish().expect("t5 graph is valid")
}

/// T5-small: 6+6 layers, d=512 — 60,506,624 parameters.
#[must_use]
pub fn t5_small() -> Graph {
    t5(&T5Cfg {
        name: "t5-small",
        vocab: 32128,
        d: 512,
        heads: 8,
        ff: 2048,
        layers: 6,
        src_seq: 128,
        tgt_seq: 32,
    })
}

/// T5-base: 12+12 layers, d=768 — 222,903,552 parameters.
#[must_use]
pub fn t5_base() -> Graph {
    t5(&T5Cfg {
        name: "t5-base",
        vocab: 32128,
        d: 768,
        heads: 12,
        ff: 3072,
        layers: 12,
        src_seq: 128,
        tgt_seq: 32,
    })
}
