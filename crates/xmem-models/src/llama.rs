//! LLaMA-family decoders: Llama-3.2-3B, DeepSeek-R1-Distill-Qwen-1.5B
//! (Qwen2.5 architecture) and Qwen3 0.6B/4B. RMSNorm, grouped-query
//! attention, SwiGLU MLPs; Qwen2.5 adds q/k/v biases, Qwen3 adds per-head
//! q/k RMS norms instead.

use xmem_graph::{ActKind, AttentionSpec, Graph, GraphBuilder, InputTemplate, NodeId};

/// Configuration of a LLaMA-style decoder.
pub struct LlamaCfg {
    /// Model name.
    pub name: &'static str,
    /// Vocabulary size.
    pub vocab: usize,
    /// Hidden width.
    pub d: usize,
    /// Number of decoder blocks.
    pub layers: usize,
    /// Query heads.
    pub heads: usize,
    /// Key/value heads (grouped-query attention).
    pub kv_heads: usize,
    /// Per-head dimension (q width = heads × head_dim, may differ from `d`).
    pub head_dim: usize,
    /// SwiGLU inner width.
    pub ff: usize,
    /// Whether q/k/v projections carry biases (Qwen2.5).
    pub qkv_bias: bool,
    /// Whether per-head q/k RMS norms are applied (Qwen3).
    pub qk_norm: bool,
    /// Whether `lm_head` is tied to the token embedding.
    pub tied: bool,
    /// Training sequence length used by the evaluation harness.
    pub seq: usize,
}

fn block(b: &mut GraphBuilder, x: NodeId, cfg: &LlamaCfg, name: &str) -> NodeId {
    let d = cfg.d;
    let q_width = cfg.heads * cfg.head_dim;
    let kv_width = cfg.kv_heads * cfg.head_dim;
    b.with_scope(name, |b| {
        let n = b.rms_norm(x, d, "input_layernorm");
        let mut q = b.linear(n, d, q_width, cfg.qkv_bias, "self_attn.q_proj");
        let mut k = b.linear(n, d, kv_width, cfg.qkv_bias, "self_attn.k_proj");
        let v = b.linear(n, d, kv_width, cfg.qkv_bias, "self_attn.v_proj");
        if cfg.qk_norm {
            // Per-head RMS norm over head_dim: view as [B, S*H, head_dim],
            // normalize, view back (views allocate nothing).
            q = b.reshape(q, vec![0, -1, cfg.head_dim as i64], "self_attn.q_view");
            q = b.rms_norm(q, cfg.head_dim, "self_attn.q_norm");
            q = b.reshape(q, vec![0, -1, q_width as i64], "self_attn.q_unview");
            k = b.reshape(k, vec![0, -1, cfg.head_dim as i64], "self_attn.k_view");
            k = b.rms_norm(k, cfg.head_dim, "self_attn.k_norm");
            k = b.reshape(k, vec![0, -1, kv_width as i64], "self_attn.k_unview");
        }
        let a = b.attention(
            q,
            k,
            v,
            AttentionSpec {
                heads: cfg.heads,
                kv_heads: cfg.kv_heads,
                head_dim: cfg.head_dim,
                causal: true,
            },
            "self_attn.sdpa",
        );
        let o = b.linear(a, q_width, d, false, "self_attn.o_proj");
        let x = b.add(o, x, "residual_1");

        let n = b.rms_norm(x, d, "post_attention_layernorm");
        let gate = b.linear(n, d, cfg.ff, false, "mlp.gate_proj");
        let gate = b.activation(gate, ActKind::Silu, "mlp.act");
        let up = b.linear(n, d, cfg.ff, false, "mlp.up_proj");
        let h = b.mul(gate, up, "mlp.gated");
        let h = b.linear(h, cfg.ff, d, false, "mlp.down_proj");
        b.add(h, x, "residual_2")
    })
}

/// Builds a LLaMA-style causal LM.
#[must_use]
pub fn llama_like(cfg: &LlamaCfg) -> Graph {
    let mut b = GraphBuilder::new(cfg.name, InputTemplate::tokens(cfg.seq));
    let tokens = b.input();
    let (mut x, wte) = b.embedding(tokens, cfg.vocab, cfg.d, "model.embed_tokens");
    for layer in 0..cfg.layers {
        x = block(&mut b, x, cfg, &format!("model.layers.{layer}"));
    }
    x = b.rms_norm(x, cfg.d, "model.norm");
    let logits = if cfg.tied {
        b.linear_tied(x, cfg.d, cfg.vocab, wte, "lm_head")
    } else {
        b.linear(x, cfg.d, cfg.vocab, false, "lm_head")
    };
    b.cross_entropy_loss(logits, "loss");
    b.finish().expect("llama graph is valid")
}

/// Qwen3-0.6B: 28 layers, d=1024, 16q/8kv heads × 128 — ~596M parameters.
#[must_use]
pub fn qwen3_0_6b() -> Graph {
    llama_like(&LlamaCfg {
        name: "Qwen3-0.6B",
        vocab: 151_936,
        d: 1024,
        layers: 28,
        heads: 16,
        kv_heads: 8,
        head_dim: 128,
        ff: 3072,
        qkv_bias: false,
        qk_norm: true,
        tied: true,
        seq: 128,
    })
}

/// Qwen3-4B: 36 layers, d=2560, 32q/8kv heads × 128 — ~4.02B parameters.
#[must_use]
pub fn qwen3_4b() -> Graph {
    llama_like(&LlamaCfg {
        name: "Qwen3-4B",
        vocab: 151_936,
        d: 2560,
        layers: 36,
        heads: 32,
        kv_heads: 8,
        head_dim: 128,
        ff: 9728,
        qkv_bias: false,
        qk_norm: true,
        tied: true,
        seq: 512,
    })
}

/// Llama-3.2-3B-Instruct: 28 layers, d=3072, 24q/8kv heads × 128 —
/// ~3.21B parameters.
#[must_use]
pub fn llama32_3b() -> Graph {
    llama_like(&LlamaCfg {
        name: "Llama-3.2-3B-Instruct",
        vocab: 128_256,
        d: 3072,
        layers: 28,
        heads: 24,
        kv_heads: 8,
        head_dim: 128,
        ff: 8192,
        qkv_bias: false,
        qk_norm: false,
        tied: true,
        seq: 512,
    })
}

/// DeepSeek-R1-Distill-Qwen-1.5B (Qwen2.5-1.5B architecture): 28 layers,
/// d=1536, 12q/2kv heads × 128, q/k/v biases — ~1.54B parameters.
#[must_use]
pub fn deepseek_r1_distill_1_5b() -> Graph {
    llama_like(&LlamaCfg {
        name: "DeepSeek-R1-Distill-Qwen-1.5B",
        vocab: 151_936,
        d: 1536,
        layers: 28,
        heads: 12,
        kv_heads: 2,
        head_dim: 128,
        ff: 8960,
        qkv_bias: true,
        qk_norm: false,
        tied: true,
        seq: 512,
    })
}
