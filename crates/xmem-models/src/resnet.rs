//! ResNet-101 and ResNet-152 (He et al., 2016), torchvision bottleneck
//! layouts.

use crate::util::{conv_bn, conv_bn_act};
use xmem_graph::{ActKind, Graph, GraphBuilder, InputTemplate, NodeId, PoolSpec};

const EXPANSION: usize = 4;

fn bottleneck(
    b: &mut GraphBuilder,
    x: NodeId,
    in_ch: usize,
    width: usize,
    stride: usize,
    name: &str,
) -> NodeId {
    b.with_scope(name, |b| {
        let out_ch = width * EXPANSION;
        let h = conv_bn_act(b, x, in_ch, width, 1, 1, 1, ActKind::Relu, "conv1");
        let h = conv_bn_act(b, h, width, width, 3, stride, 1, ActKind::Relu, "conv2");
        let h = conv_bn(b, h, width, out_ch, 1, 1, 1, "conv3");
        let shortcut = if stride != 1 || in_ch != out_ch {
            conv_bn(b, x, in_ch, out_ch, 1, stride, 1, "downsample")
        } else {
            x
        };
        let sum = b.add(h, shortcut, "add");
        b.activation(sum, ActKind::Relu, "relu")
    })
}

fn resnet(name: &str, blocks: [usize; 4]) -> Graph {
    let mut b = GraphBuilder::new(name, InputTemplate::image(3, 32, 32));
    let x = b.input();
    let mut x = conv_bn_act(&mut b, x, 3, 64, 7, 2, 1, ActKind::Relu, "stem");
    x = b.max_pool2d(
        x,
        PoolSpec {
            kernel: (3, 3),
            stride: (2, 2),
            padding: (1, 1),
        },
        "maxpool",
    );
    let widths = [64usize, 128, 256, 512];
    let mut in_ch = 64;
    for (stage, (&width, &depth)) in widths.iter().zip(blocks.iter()).enumerate() {
        for block in 0..depth {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            x = bottleneck(
                &mut b,
                x,
                in_ch,
                width,
                stride,
                &format!("layer{}.{block}", stage + 1),
            );
            in_ch = width * EXPANSION;
        }
    }
    x = b.adaptive_avg_pool2d(x, 1, 1, "avgpool");
    x = b.flatten(x, 1, "flatten");
    x = b.linear(x, 512 * EXPANSION, 1000, true, "fc");
    b.cross_entropy_loss(x, "loss");
    b.finish().expect("resnet graph is valid")
}

/// ResNet-101: 44,549,160 parameters.
#[must_use]
pub fn resnet101() -> Graph {
    resnet("resnet101", [3, 4, 23, 3])
}

/// ResNet-152: 60,192,808 parameters.
#[must_use]
pub fn resnet152() -> Graph {
    resnet("resnet152", [3, 8, 36, 3])
}
