//! RegNetX-400MF and RegNetY-400MF (Radosavovic et al., 2020), torchvision
//! layouts.

use crate::util::{conv_bn, conv_bn_act, squeeze_excite};
use xmem_graph::{ActKind, Graph, GraphBuilder, InputTemplate, NodeId};

struct RegNetCfg {
    widths: [usize; 4],
    depths: [usize; 4],
    group_width: usize,
    /// Squeeze-excite ratio relative to the *block input* width (RegNetY);
    /// `None` for RegNetX.
    se_ratio: Option<f64>,
}

#[allow(clippy::too_many_arguments)]
fn x_block(
    b: &mut GraphBuilder,
    x: NodeId,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    group_width: usize,
    se_from: Option<usize>,
    name: &str,
) -> NodeId {
    b.with_scope(name, |b| {
        let groups = out_ch / group_width;
        let h = conv_bn_act(b, x, in_ch, out_ch, 1, 1, 1, ActKind::Relu, "f.a");
        let h = conv_bn_act(
            b,
            h,
            out_ch,
            out_ch,
            3,
            stride,
            groups,
            ActKind::Relu,
            "f.b",
        );
        let h = if let Some(se_channels) = se_from {
            squeeze_excite(b, h, out_ch, se_channels, ActKind::Sigmoid, "f.se")
        } else {
            h
        };
        let h = conv_bn(b, h, out_ch, out_ch, 1, 1, 1, "f.c");
        let shortcut = if stride != 1 || in_ch != out_ch {
            conv_bn(b, x, in_ch, out_ch, 1, stride, 1, "proj")
        } else {
            x
        };
        let sum = b.add(h, shortcut, "add");
        b.activation(sum, ActKind::Relu, "relu")
    })
}

fn regnet(name: &str, cfg: &RegNetCfg) -> Graph {
    let mut b = GraphBuilder::new(name, InputTemplate::image(3, 32, 32));
    let x = b.input();
    let mut x = conv_bn_act(&mut b, x, 3, 32, 3, 2, 1, ActKind::Relu, "stem");
    let mut in_ch = 32;
    for stage in 0..4 {
        let out = cfg.widths[stage];
        for block in 0..cfg.depths[stage] {
            let stride = if block == 0 { 2 } else { 1 };
            let se = cfg.se_ratio.map(|r| ((in_ch as f64) * r).round() as usize);
            x = x_block(
                &mut b,
                x,
                in_ch,
                out,
                stride,
                cfg.group_width,
                se,
                &format!("trunk.block{}-{block}", stage + 1),
            );
            in_ch = out;
        }
    }
    x = b.adaptive_avg_pool2d(x, 1, 1, "avgpool");
    x = b.flatten(x, 1, "flatten");
    x = b.linear(x, in_ch, 1000, true, "fc");
    b.cross_entropy_loss(x, "loss");
    b.finish().expect("regnet graph is valid")
}

/// RegNetX-400MF: 5,495,976 parameters.
#[must_use]
pub fn regnet_x_400mf() -> Graph {
    regnet(
        "regnet_x_400mf",
        &RegNetCfg {
            widths: [32, 64, 160, 400],
            depths: [1, 2, 7, 12],
            group_width: 16,
            se_ratio: None,
        },
    )
}

/// RegNetY-400MF: 4,344,144 parameters.
#[must_use]
pub fn regnet_y_400mf() -> Graph {
    regnet(
        "regnet_y_400mf",
        &RegNetCfg {
            widths: [48, 104, 208, 440],
            depths: [1, 3, 6, 6],
            group_width: 8,
            se_ratio: Some(0.25),
        },
    )
}
