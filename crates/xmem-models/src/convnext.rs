//! ConvNeXt Tiny and Base (Liu et al., 2022), torchvision layouts.

use xmem_graph::{ActKind, Conv2dSpec, Graph, GraphBuilder, InputTemplate, NodeId};

/// Channels-first layer norm, implemented the way torchvision does: permute
/// to NHWC, normalize the trailing channel dimension, permute back. The two
/// permutes materialize copies, which is memory-faithful to the real
/// implementation.
fn layer_norm_2d(b: &mut GraphBuilder, x: NodeId, channels: usize, name: &str) -> NodeId {
    b.with_scope(name, |b| {
        let h = b.permute(x, vec![0, 2, 3, 1], "to_nhwc");
        let h = b.layer_norm(h, channels, "ln");
        b.permute(h, vec![0, 3, 1, 2], "to_nchw")
    })
}

/// ConvNeXt block: 7x7 depthwise conv → LN → pointwise MLP (4x) → layer
/// scale → residual, operating in NHWC between the permutes.
fn cn_block(b: &mut GraphBuilder, x: NodeId, dim: usize, name: &str) -> NodeId {
    b.with_scope(name, |b| {
        let h = b.conv2d(
            x,
            Conv2dSpec {
                in_ch: dim,
                out_ch: dim,
                kernel: (7, 7),
                padding: (3, 3),
                groups: dim,
                bias: true,
                ..Conv2dSpec::default()
            },
            "dwconv",
        );
        let h = b.permute(h, vec![0, 2, 3, 1], "permute_in");
        let h = b.layer_norm(h, dim, "norm");
        let h = b.linear(h, dim, 4 * dim, true, "pwconv1");
        let h = b.activation(h, ActKind::Gelu, "act");
        let h = b.linear(h, 4 * dim, dim, true, "pwconv2");
        let h = b.scale(h, dim, "layer_scale");
        let h = b.permute(h, vec![0, 3, 1, 2], "permute_out");
        b.add(h, x, "add")
    })
}

fn convnext(name: &str, depths: [usize; 4], dims: [usize; 4]) -> Graph {
    let mut b = GraphBuilder::new(name, InputTemplate::image(3, 32, 32));
    let x = b.input();
    // Stem: 4x4/4 patchify conv + LN.
    let mut x = b.conv2d(
        x,
        Conv2dSpec {
            in_ch: 3,
            out_ch: dims[0],
            kernel: (4, 4),
            stride: (4, 4),
            bias: true,
            ..Conv2dSpec::default()
        },
        "stem.conv",
    );
    x = layer_norm_2d(&mut b, x, dims[0], "stem.norm");
    for stage in 0..4 {
        if stage > 0 {
            x = layer_norm_2d(
                &mut b,
                x,
                dims[stage - 1],
                &format!("downsample{stage}.norm"),
            );
            x = b.conv2d(
                x,
                Conv2dSpec {
                    in_ch: dims[stage - 1],
                    out_ch: dims[stage],
                    kernel: (2, 2),
                    stride: (2, 2),
                    bias: true,
                    ..Conv2dSpec::default()
                },
                &format!("downsample{stage}.conv"),
            );
        }
        for block in 0..depths[stage] {
            x = cn_block(&mut b, x, dims[stage], &format!("stage{stage}.{block}"));
        }
    }
    x = b.adaptive_avg_pool2d(x, 1, 1, "avgpool");
    x = b.flatten(x, 1, "flatten");
    x = b.layer_norm(x, dims[3], "head.norm");
    x = b.linear(x, dims[3], 1000, true, "head.fc");
    b.cross_entropy_loss(x, "loss");
    b.finish().expect("convnext graph is valid")
}

/// ConvNeXt-Tiny: 28,589,128 parameters.
#[must_use]
pub fn convnext_tiny() -> Graph {
    convnext("convnext_tiny", [3, 3, 9, 3], [96, 192, 384, 768])
}

/// ConvNeXt-Base: 88,591,464 parameters.
#[must_use]
pub fn convnext_base() -> Graph {
    convnext("convnext_base", [3, 3, 27, 3], [128, 256, 512, 1024])
}
