//! GPT-2-family causal language models: DistilGPT2, GPT-2, GPT-Neo-125M and
//! Cerebras-GPT-111M. All share the pre-LN residual block; they differ in
//! depth, context length and projection biases.

use xmem_graph::{ActKind, AttentionSpec, Graph, GraphBuilder, InputTemplate, NodeId};

/// Configuration of a GPT-2-style decoder.
pub struct Gpt2Cfg {
    /// Model name.
    pub name: &'static str,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum (and positional-embedding) context length.
    pub ctx: usize,
    /// Hidden width.
    pub d: usize,
    /// Number of decoder blocks.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward inner width.
    pub ff: usize,
    /// Whether q/k/v projections carry biases (GPT-Neo omits them).
    pub attn_bias: bool,
    /// Training sequence length used by the evaluation harness.
    pub seq: usize,
}

fn block(b: &mut GraphBuilder, x: NodeId, cfg: &Gpt2Cfg, name: &str) -> NodeId {
    let d = cfg.d;
    b.with_scope(name, |b| {
        let ln1 = b.layer_norm(x, d, "ln_1");
        let q = b.linear(ln1, d, d, cfg.attn_bias, "attn.q_proj");
        let k = b.linear(ln1, d, d, cfg.attn_bias, "attn.k_proj");
        let v = b.linear(ln1, d, d, cfg.attn_bias, "attn.v_proj");
        let a = b.attention(
            q,
            k,
            v,
            AttentionSpec {
                heads: cfg.heads,
                kv_heads: cfg.heads,
                head_dim: d / cfg.heads,
                causal: true,
            },
            "attn.sdpa",
        );
        let proj = b.linear(a, d, d, true, "attn.c_proj");
        let x = b.add(proj, x, "residual_1");
        let ln2 = b.layer_norm(x, d, "ln_2");
        let h = b.linear(ln2, d, cfg.ff, true, "mlp.c_fc");
        let h = b.activation(h, ActKind::Gelu, "mlp.act");
        let h = b.linear(h, cfg.ff, d, true, "mlp.c_proj");
        b.add(h, x, "residual_2")
    })
}

/// Builds a GPT-2-style decoder-only LM with tied input/output embeddings.
#[must_use]
pub fn gpt2_like(cfg: &Gpt2Cfg) -> Graph {
    let mut b = GraphBuilder::new(cfg.name, InputTemplate::tokens(cfg.seq));
    let tokens = b.input();
    let (tok_emb, wte) = b.embedding(tokens, cfg.vocab, cfg.d, "transformer.wte");
    let (pos_emb, _) = b.embedding(tokens, cfg.ctx, cfg.d, "transformer.wpe");
    let mut x = b.add(tok_emb, pos_emb, "embed_add");
    x = b.dropout(x, 0.1, "drop");
    for layer in 0..cfg.layers {
        x = block(&mut b, x, cfg, &format!("transformer.h.{layer}"));
    }
    x = b.layer_norm(x, cfg.d, "transformer.ln_f");
    let logits = b.linear_tied(x, cfg.d, cfg.vocab, wte, "lm_head");
    b.cross_entropy_loss(logits, "loss");
    b.finish().expect("gpt graph is valid")
}

/// DistilGPT2: 6 layers, d=768 — 81,912,576 parameters.
#[must_use]
pub fn distilgpt2() -> Graph {
    gpt2_like(&Gpt2Cfg {
        name: "distilgpt2",
        vocab: 50257,
        ctx: 1024,
        d: 768,
        layers: 6,
        heads: 12,
        ff: 3072,
        attn_bias: true,
        seq: 128,
    })
}

/// GPT-2 (124M): 12 layers, d=768 — 124,439,808 parameters.
#[must_use]
pub fn gpt2() -> Graph {
    gpt2_like(&Gpt2Cfg {
        name: "gpt2",
        vocab: 50257,
        ctx: 1024,
        d: 768,
        layers: 12,
        heads: 12,
        ff: 3072,
        attn_bias: true,
        seq: 128,
    })
}

/// GPT-Neo-125M: 12 layers, d=768, bias-free q/k/v, 2048 context —
/// 125,198,592 parameters.
#[must_use]
pub fn gpt_neo_125m() -> Graph {
    gpt2_like(&Gpt2Cfg {
        name: "gpt-neo-125M",
        vocab: 50257,
        ctx: 2048,
        d: 768,
        layers: 12,
        heads: 12,
        ff: 3072,
        attn_bias: false,
        seq: 128,
    })
}

/// Cerebras-GPT-111M: 10 layers, d=768, 2048 context — ~111M parameters.
#[must_use]
pub fn cerebras_gpt_111m() -> Graph {
    gpt2_like(&Gpt2Cfg {
        name: "Cerebras-GPT-111M",
        vocab: 50257,
        ctx: 2048,
        d: 768,
        layers: 10,
        heads: 12,
        ff: 3072,
        attn_bias: true,
        seq: 128,
    })
}
