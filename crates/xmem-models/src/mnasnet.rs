//! MnasNet 1.0 (Tan et al., 2019), torchvision layout.

use crate::util::{conv_bn, conv_bn_act};
use xmem_graph::{ActKind, Graph, GraphBuilder, InputTemplate, NodeId};

#[allow(clippy::too_many_arguments)]
fn inverted_residual(
    b: &mut GraphBuilder,
    x: NodeId,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    expand: usize,
    name: &str,
) -> NodeId {
    b.with_scope(name, |b| {
        let mid = in_ch * expand;
        let h = conv_bn_act(b, x, in_ch, mid, 1, 1, 1, ActKind::Relu, "expand");
        let h = conv_bn_act(b, h, mid, mid, kernel, stride, mid, ActKind::Relu, "dw");
        let h = conv_bn(b, h, mid, out_ch, 1, 1, 1, "project");
        if stride == 1 && in_ch == out_ch {
            b.add(h, x, "add")
        } else {
            h
        }
    })
}

/// MnasNet 1.0: 4,383,312 parameters.
#[must_use]
pub fn mnasnet1_0() -> Graph {
    let mut b = GraphBuilder::new("mnasnet1_0", InputTemplate::image(3, 32, 32));
    let x = b.input();
    // Stem: conv 3x3/2 → depthwise separable to 16 channels.
    let mut x = conv_bn_act(&mut b, x, 3, 32, 3, 2, 1, ActKind::Relu, "layers.0");
    x = conv_bn_act(&mut b, x, 32, 32, 3, 1, 32, ActKind::Relu, "layers.3");
    x = conv_bn(&mut b, x, 32, 16, 1, 1, 1, "layers.6");
    // (out, kernel, stride, expand, repeats)
    let stacks: [(usize, usize, usize, usize, usize); 6] = [
        (24, 3, 2, 3, 3),
        (40, 5, 2, 3, 3),
        (80, 5, 2, 6, 3),
        (96, 3, 1, 6, 2),
        (192, 5, 2, 6, 4),
        (320, 3, 1, 6, 1),
    ];
    let mut in_ch = 16;
    for (stack, (out, kernel, stride, expand, repeats)) in stacks.into_iter().enumerate() {
        for r in 0..repeats {
            let s = if r == 0 { stride } else { 1 };
            x = inverted_residual(
                &mut b,
                x,
                in_ch,
                out,
                kernel,
                s,
                expand,
                &format!("layers.{}.{r}", 8 + stack),
            );
            in_ch = out;
        }
    }
    x = conv_bn_act(&mut b, x, in_ch, 1280, 1, 1, 1, ActKind::Relu, "layers.14");
    x = b.adaptive_avg_pool2d(x, 1, 1, "avgpool");
    x = b.flatten(x, 1, "flatten");
    x = b.dropout(x, 0.2, "classifier.0");
    x = b.linear(x, 1280, 1000, true, "classifier.1");
    b.cross_entropy_loss(x, "loss");
    b.finish().expect("mnasnet graph is valid")
}
