//! The model zoo: memory-level graphs of the 25 architectures in the xMem
//! evaluation (paper Table 2).
//!
//! Each builder reproduces the *memory-relevant* structure of the published
//! architecture — layer composition, tensor shapes, parameter tensors
//! (including weight tying) — so that parameter counts match the published
//! figures and activation/gradient/optimizer footprints are derived from
//! real shapes. Numerical semantics are out of scope.
//!
//! Models are addressed through [`ModelId`]; [`ModelId::build`] constructs
//! the graph and [`ModelId::info`] returns evaluation metadata (architecture
//! class, default batch grid, published parameter count).
//!
//! # Example
//! ```
//! use xmem_models::ModelId;
//!
//! let g = ModelId::DistilGpt2.build();
//! let published = ModelId::DistilGpt2.info().published_params as f64;
//! let actual = g.trainable_param_elems() as f64;
//! assert!((actual - published).abs() / published < 0.02);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convnext;
mod gpt;
mod llama;
mod mnasnet;
mod mobilenet;
mod neox;
mod opt;
mod registry;
mod regnet;
mod resnet;
mod t5;
mod util;
mod vgg;

pub use registry::{BatchGrid, ModelId, ModelInfo};
