//! OPT-125M and OPT-350M (Zhang et al., 2022). OPT-350M uses a 512-wide
//! word-embedding space with `project_in`/`project_out` around its
//! 1024-wide decoder; both tie `lm_head` to the token embedding.

use xmem_graph::{ActKind, AttentionSpec, Graph, GraphBuilder, InputTemplate, NodeId};

struct OptCfg {
    name: &'static str,
    vocab: usize,
    /// Learned positional embedding length (OPT reserves 2 extra slots).
    positions: usize,
    d: usize,
    word_embed_dim: usize,
    layers: usize,
    heads: usize,
    ff: usize,
    seq: usize,
}

fn block(b: &mut GraphBuilder, x: NodeId, cfg: &OptCfg, name: &str) -> NodeId {
    let d = cfg.d;
    b.with_scope(name, |b| {
        let ln1 = b.layer_norm(x, d, "self_attn_layer_norm");
        let q = b.linear(ln1, d, d, true, "self_attn.q_proj");
        let k = b.linear(ln1, d, d, true, "self_attn.k_proj");
        let v = b.linear(ln1, d, d, true, "self_attn.v_proj");
        let a = b.attention(
            q,
            k,
            v,
            AttentionSpec {
                heads: cfg.heads,
                kv_heads: cfg.heads,
                head_dim: d / cfg.heads,
                causal: true,
            },
            "self_attn.sdpa",
        );
        let proj = b.linear(a, d, d, true, "self_attn.out_proj");
        let x = b.add(proj, x, "residual_1");
        let ln2 = b.layer_norm(x, d, "final_layer_norm");
        let h = b.linear(ln2, d, cfg.ff, true, "fc1");
        let h = b.activation(h, ActKind::Relu, "act");
        let h = b.linear(h, cfg.ff, d, true, "fc2");
        b.add(h, x, "residual_2")
    })
}

fn opt(cfg: &OptCfg) -> Graph {
    let mut b = GraphBuilder::new(cfg.name, InputTemplate::tokens(cfg.seq));
    let tokens = b.input();
    let (tok_emb, wte) = b.embedding(tokens, cfg.vocab, cfg.word_embed_dim, "embed_tokens");
    let (pos_emb, _) = b.embedding(tokens, cfg.positions, cfg.d, "embed_positions");
    let mut x = if cfg.word_embed_dim != cfg.d {
        let projected = b.linear(tok_emb, cfg.word_embed_dim, cfg.d, false, "project_in");
        b.add(projected, pos_emb, "embed_add")
    } else {
        b.add(tok_emb, pos_emb, "embed_add")
    };
    for layer in 0..cfg.layers {
        x = block(&mut b, x, cfg, &format!("layers.{layer}"));
    }
    x = b.layer_norm(x, cfg.d, "final_layer_norm");
    if cfg.word_embed_dim != cfg.d {
        x = b.linear(x, cfg.d, cfg.word_embed_dim, false, "project_out");
    }
    let logits = b.linear_tied(x, cfg.word_embed_dim, cfg.vocab, wte, "lm_head");
    b.cross_entropy_loss(logits, "loss");
    b.finish().expect("opt graph is valid")
}

/// OPT-125M: 12 layers, d=768 — 125,239,296 parameters.
#[must_use]
pub fn opt_125m() -> Graph {
    opt(&OptCfg {
        name: "opt-125m",
        vocab: 50272,
        positions: 2050,
        d: 768,
        word_embed_dim: 768,
        layers: 12,
        heads: 12,
        ff: 3072,
        seq: 128,
    })
}

/// OPT-350M: 24 layers, d=1024 with 512-wide word embeddings —
/// 331,196,416 parameters.
#[must_use]
pub fn opt_350m() -> Graph {
    opt(&OptCfg {
        name: "opt-350m",
        vocab: 50272,
        positions: 2050,
        d: 1024,
        word_embed_dim: 512,
        layers: 24,
        heads: 16,
        ff: 4096,
        seq: 128,
    })
}
