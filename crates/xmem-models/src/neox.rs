//! Pythia-1B (Biderman et al., 2023): GPT-NeoX architecture with untied
//! input/output embeddings, rotary positions (no learned positional table)
//! and parallel attention + MLP residuals.

use xmem_graph::{ActKind, AttentionSpec, Graph, GraphBuilder, InputTemplate, NodeId};

struct NeoxCfg {
    name: &'static str,
    vocab: usize,
    d: usize,
    layers: usize,
    heads: usize,
    ff: usize,
    seq: usize,
}

/// GPT-NeoX block with parallel residuals:
/// `x + attn(ln1(x)) + mlp(ln2(x))`.
fn block(b: &mut GraphBuilder, x: NodeId, cfg: &NeoxCfg, name: &str) -> NodeId {
    let d = cfg.d;
    b.with_scope(name, |b| {
        let ln1 = b.layer_norm(x, d, "input_layernorm");
        let q = b.linear(ln1, d, d, true, "attention.q_proj");
        let k = b.linear(ln1, d, d, true, "attention.k_proj");
        let v = b.linear(ln1, d, d, true, "attention.v_proj");
        let a = b.attention(
            q,
            k,
            v,
            AttentionSpec {
                heads: cfg.heads,
                kv_heads: cfg.heads,
                head_dim: d / cfg.heads,
                causal: true,
            },
            "attention.sdpa",
        );
        let attn_out = b.linear(a, d, d, true, "attention.dense");

        let ln2 = b.layer_norm(x, d, "post_attention_layernorm");
        let h = b.linear(ln2, d, cfg.ff, true, "mlp.dense_h_to_4h");
        let h = b.activation(h, ActKind::Gelu, "mlp.act");
        let mlp_out = b.linear(h, cfg.ff, d, true, "mlp.dense_4h_to_h");

        let partial = b.add(attn_out, mlp_out, "parallel_add");
        b.add(partial, x, "residual")
    })
}

/// Pythia-1B: 16 layers, d=2048, untied embeddings — 1,011,781,632
/// parameters.
#[must_use]
pub fn pythia_1b() -> Graph {
    let cfg = NeoxCfg {
        name: "pythia-1b",
        vocab: 50304,
        d: 2048,
        layers: 16,
        heads: 8,
        ff: 8192,
        seq: 128,
    };
    let mut b = GraphBuilder::new(cfg.name, InputTemplate::tokens(cfg.seq));
    let tokens = b.input();
    let (mut x, _) = b.embedding(tokens, cfg.vocab, cfg.d, "embed_in");
    for layer in 0..cfg.layers {
        x = block(&mut b, x, &cfg, &format!("layers.{layer}"));
    }
    x = b.layer_norm(x, cfg.d, "final_layer_norm");
    // Untied output head — a fresh [vocab, d] matrix.
    let logits = b.linear(x, cfg.d, cfg.vocab, false, "embed_out");
    b.cross_entropy_loss(logits, "loss");
    b.finish().expect("pythia graph is valid")
}
