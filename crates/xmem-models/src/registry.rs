use serde::{Deserialize, Serialize};
use std::fmt;
use xmem_graph::{ArchClass, Graph};

/// A batch-size sweep `min..=max` with `step` (paper §4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchGrid {
    /// Smallest batch size.
    pub min: usize,
    /// Largest batch size.
    pub max: usize,
    /// Sweep step.
    pub step: usize,
}

impl BatchGrid {
    /// All batch sizes in the grid.
    #[must_use]
    pub fn values(&self) -> Vec<usize> {
        (self.min..=self.max).step_by(self.step).collect()
    }
}

/// Evaluation metadata for one model (paper Table 2).
///
/// Serialize-only: the `&'static str` display name has no owned
/// deserialized form, and the metadata is reconstructible from
/// [`ModelId::info`] anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ModelInfo {
    /// The model.
    pub id: ModelId,
    /// Display name, matching the paper's figure labels.
    pub name: &'static str,
    /// Architecture class.
    pub arch: ArchClass,
    /// `true` for the three large models evaluated only in RQ5 (A100).
    pub rq5_only: bool,
    /// Published trainable-parameter count (element count).
    pub published_params: u64,
    /// Batch-size grid used in the ANOVA sweep.
    pub batch_grid: BatchGrid,
    /// Default training sequence length (0 for image models).
    pub default_seq: usize,
}

/// The 25 models of the evaluation (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ModelId {
    Vgg16,
    Vgg19,
    ResNet101,
    ResNet152,
    MobileNetV2,
    MobileNetV3Small,
    MobileNetV3Large,
    MnasNet,
    RegNetX400MF,
    RegNetY400MF,
    ConvNextTiny,
    ConvNextBase,
    DistilGpt2,
    Gpt2,
    T5Small,
    T5Base,
    GptNeo125M,
    Opt125M,
    Opt350M,
    CerebrasGpt111M,
    Pythia1B,
    Qwen3_0_6B,
    Llama32_3B,
    DeepSeekR1Distill1_5B,
    Qwen3_4B,
}

const CNN_GRID: BatchGrid = BatchGrid {
    min: 200,
    max: 700,
    step: 100,
};
const XF_GRID: BatchGrid = BatchGrid {
    min: 5,
    max: 55,
    step: 5,
};
const BIG_XF_GRID: BatchGrid = BatchGrid {
    min: 1,
    max: 8,
    step: 1,
};
const RQ5_GRID: BatchGrid = BatchGrid {
    min: 1,
    max: 1,
    step: 1,
};

impl ModelId {
    /// All models, CNNs first, in Table 2 order.
    #[must_use]
    pub fn all() -> [ModelId; 25] {
        [
            ModelId::Vgg16,
            ModelId::Vgg19,
            ModelId::ResNet101,
            ModelId::ResNet152,
            ModelId::MobileNetV2,
            ModelId::MobileNetV3Small,
            ModelId::MobileNetV3Large,
            ModelId::MnasNet,
            ModelId::RegNetX400MF,
            ModelId::RegNetY400MF,
            ModelId::ConvNextTiny,
            ModelId::ConvNextBase,
            ModelId::DistilGpt2,
            ModelId::Gpt2,
            ModelId::T5Small,
            ModelId::T5Base,
            ModelId::GptNeo125M,
            ModelId::Opt125M,
            ModelId::Opt350M,
            ModelId::CerebrasGpt111M,
            ModelId::Pythia1B,
            ModelId::Qwen3_0_6B,
            ModelId::Llama32_3B,
            ModelId::DeepSeekR1Distill1_5B,
            ModelId::Qwen3_4B,
        ]
    }

    /// The 22 models used for RQ1–RQ4 (everything not marked RQ5-only).
    #[must_use]
    pub fn evaluation_set() -> Vec<ModelId> {
        ModelId::all()
            .into_iter()
            .filter(|m| !m.info().rq5_only)
            .collect()
    }

    /// The 3 large models used for RQ5 on the A100.
    #[must_use]
    pub fn rq5_set() -> Vec<ModelId> {
        ModelId::all()
            .into_iter()
            .filter(|m| m.info().rq5_only)
            .collect()
    }

    /// Evaluation metadata.
    #[must_use]
    pub fn info(self) -> ModelInfo {
        use ArchClass::{Cnn, Transformer};
        let (name, arch, rq5, params, grid, seq) = match self {
            ModelId::Vgg16 => ("VGG16", Cnn, false, 138_357_544, CNN_GRID, 0),
            ModelId::Vgg19 => ("VGG19", Cnn, false, 143_667_240, CNN_GRID, 0),
            ModelId::ResNet101 => ("ResNet101", Cnn, false, 44_549_160, CNN_GRID, 0),
            ModelId::ResNet152 => ("ResNet152", Cnn, false, 60_192_808, CNN_GRID, 0),
            ModelId::MobileNetV2 => ("MobileNetV2", Cnn, false, 3_504_872, CNN_GRID, 0),
            ModelId::MobileNetV3Small => ("MobeNetV3Small", Cnn, false, 2_542_856, CNN_GRID, 0),
            ModelId::MobileNetV3Large => ("MobeNetV3Large", Cnn, false, 5_483_032, CNN_GRID, 0),
            ModelId::MnasNet => ("MnasNet", Cnn, false, 4_383_312, CNN_GRID, 0),
            ModelId::RegNetX400MF => ("RegNetX400MF", Cnn, false, 5_495_976, CNN_GRID, 0),
            ModelId::RegNetY400MF => ("RegNetY400MF", Cnn, false, 4_344_144, CNN_GRID, 0),
            ModelId::ConvNextTiny => ("ConvNeXtTiny", Cnn, false, 28_589_128, CNN_GRID, 0),
            ModelId::ConvNextBase => ("ConvNeXtBase", Cnn, false, 88_591_464, CNN_GRID, 0),
            ModelId::DistilGpt2 => ("distilgpt2", Transformer, false, 81_912_576, XF_GRID, 128),
            ModelId::Gpt2 => ("gpt2", Transformer, false, 124_439_808, XF_GRID, 128),
            ModelId::T5Small => ("T5-small", Transformer, false, 60_506_624, XF_GRID, 128),
            ModelId::T5Base => ("t5-base", Transformer, false, 222_903_552, XF_GRID, 128),
            ModelId::GptNeo125M => (
                "gpt-neo-125M",
                Transformer,
                false,
                125_198_592,
                XF_GRID,
                128,
            ),
            ModelId::Opt125M => ("opt-125m", Transformer, false, 125_239_296, XF_GRID, 128),
            ModelId::Opt350M => ("opt-350m", Transformer, false, 331_196_416, XF_GRID, 128),
            ModelId::CerebrasGpt111M => (
                "Cerebras-GPT-111M",
                Transformer,
                false,
                111_046_656,
                XF_GRID,
                128,
            ),
            ModelId::Pythia1B => (
                "pythia-1b",
                Transformer,
                false,
                1_011_781_632,
                BIG_XF_GRID,
                128,
            ),
            ModelId::Qwen3_0_6B => (
                "Qwen3-0.6B",
                Transformer,
                false,
                596_049_920,
                BIG_XF_GRID,
                128,
            ),
            ModelId::Llama32_3B => (
                "Llama-3.2-3B-Instruct",
                Transformer,
                true,
                3_212_749_824,
                RQ5_GRID,
                512,
            ),
            ModelId::DeepSeekR1Distill1_5B => (
                "DeepSeek-R1-Distill-Qwen-1.5B",
                Transformer,
                true,
                1_543_714_304,
                RQ5_GRID,
                512,
            ),
            ModelId::Qwen3_4B => ("Qwen3-4B", Transformer, true, 4_022_468_096, RQ5_GRID, 512),
        };
        ModelInfo {
            id: self,
            name,
            arch,
            rq5_only: rq5,
            published_params: params,
            batch_grid: grid,
            default_seq: seq,
        }
    }

    /// Builds the model graph.
    ///
    /// Graph construction is deterministic; repeated calls return
    /// structurally identical graphs.
    #[must_use]
    pub fn build(self) -> Graph {
        match self {
            ModelId::Vgg16 => crate::vgg::vgg16(),
            ModelId::Vgg19 => crate::vgg::vgg19(),
            ModelId::ResNet101 => crate::resnet::resnet101(),
            ModelId::ResNet152 => crate::resnet::resnet152(),
            ModelId::MobileNetV2 => crate::mobilenet::mobilenet_v2(),
            ModelId::MobileNetV3Small => crate::mobilenet::mobilenet_v3_small(),
            ModelId::MobileNetV3Large => crate::mobilenet::mobilenet_v3_large(),
            ModelId::MnasNet => crate::mnasnet::mnasnet1_0(),
            ModelId::RegNetX400MF => crate::regnet::regnet_x_400mf(),
            ModelId::RegNetY400MF => crate::regnet::regnet_y_400mf(),
            ModelId::ConvNextTiny => crate::convnext::convnext_tiny(),
            ModelId::ConvNextBase => crate::convnext::convnext_base(),
            ModelId::DistilGpt2 => crate::gpt::distilgpt2(),
            ModelId::Gpt2 => crate::gpt::gpt2(),
            ModelId::T5Small => crate::t5::t5_small(),
            ModelId::T5Base => crate::t5::t5_base(),
            ModelId::GptNeo125M => crate::gpt::gpt_neo_125m(),
            ModelId::Opt125M => crate::opt::opt_125m(),
            ModelId::Opt350M => crate::opt::opt_350m(),
            ModelId::CerebrasGpt111M => crate::gpt::cerebras_gpt_111m(),
            ModelId::Pythia1B => crate::neox::pythia_1b(),
            ModelId::Qwen3_0_6B => crate::llama::qwen3_0_6b(),
            ModelId::Llama32_3B => crate::llama::llama32_3b(),
            ModelId::DeepSeekR1Distill1_5B => crate::llama::deepseek_r1_distill_1_5b(),
            ModelId::Qwen3_4B => crate::llama::qwen3_4b(),
        }
    }

    /// Looks a model up by its display name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<ModelId> {
        ModelId::all().into_iter().find(|m| m.info().name == name)
    }
}

impl fmt::Display for ModelId {
    /// `Display` = the paper's figure label.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.info().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_grids_match_the_paper() {
        assert_eq!(CNN_GRID.values(), vec![200, 300, 400, 500, 600, 700]);
        assert_eq!(
            XF_GRID.values(),
            vec![5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55]
        );
        assert_eq!(BIG_XF_GRID.values(), (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn evaluation_split_is_22_plus_3() {
        assert_eq!(ModelId::evaluation_set().len(), 22);
        assert_eq!(ModelId::rq5_set().len(), 3);
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        for m in ModelId::all() {
            assert_eq!(ModelId::by_name(m.info().name), Some(m));
        }
        assert_eq!(ModelId::by_name("nonexistent"), None);
    }

    /// Every model's trainable-parameter count must be within 2 % of the
    /// published figure — the strongest structural check available without
    /// weights.
    #[test]
    fn parameter_counts_match_published_figures() {
        for m in ModelId::all() {
            let info = m.info();
            let g = m.build();
            let actual = g.trainable_param_elems() as f64;
            let expected = info.published_params as f64;
            let rel = (actual - expected).abs() / expected;
            assert!(
                rel < 0.02,
                "{}: {} params, published {}, rel err {:.4}",
                info.name,
                actual,
                expected,
                rel
            );
        }
    }

    #[test]
    fn graphs_infer_shapes_on_their_batch_grids() {
        // Smallest and largest grid point for every non-RQ5 model.
        for m in ModelId::evaluation_set() {
            let info = m.info();
            let g = m.build();
            for batch in [info.batch_grid.min, info.batch_grid.max] {
                let shapes = g
                    .infer_shapes(&g.input_specs(batch, info.default_seq))
                    .unwrap_or_else(|e| panic!("{}@{batch}: {e}", info.name));
                assert_eq!(shapes.last().unwrap().shape.rank(), 0, "loss is scalar");
            }
        }
    }

    #[test]
    fn arch_classes_are_consistent_with_graphs() {
        for m in ModelId::all() {
            assert_eq!(m.build().arch(), m.info().arch, "{m}");
        }
    }

    #[test]
    fn tied_models_have_no_separate_lm_head_param() {
        let g = ModelId::Gpt2.build();
        assert!(!g.params().iter().any(|p| p.name.contains("lm_head")));
        let g = ModelId::Pythia1B.build();
        assert!(g.params().iter().any(|p| p.name.contains("embed_out")));
    }
}
