//! MobileNetV2 (Sandler et al., 2018) and MobileNetV3 Small/Large (Howard
//! et al., 2019), torchvision layouts.

use crate::util::{conv_bn, conv_bn_act, make_divisible, squeeze_excite};
use xmem_graph::{ActKind, Graph, GraphBuilder, InputTemplate, NodeId};

/// MobileNetV2 inverted residual: expand 1x1 → depthwise 3x3 → project 1x1.
fn v2_block(
    b: &mut GraphBuilder,
    x: NodeId,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    expand: usize,
    name: &str,
) -> NodeId {
    b.with_scope(name, |b| {
        let hidden = in_ch * expand;
        let mut h = x;
        if expand != 1 {
            h = conv_bn_act(b, h, in_ch, hidden, 1, 1, 1, ActKind::Relu6, "expand");
        }
        h = conv_bn_act(
            b,
            h,
            hidden,
            hidden,
            3,
            stride,
            hidden,
            ActKind::Relu6,
            "dw",
        );
        h = conv_bn(b, h, hidden, out_ch, 1, 1, 1, "project");
        if stride == 1 && in_ch == out_ch {
            b.add(h, x, "add")
        } else {
            h
        }
    })
}

/// MobileNetV2 (width 1.0): 3,504,872 parameters.
#[must_use]
pub fn mobilenet_v2() -> Graph {
    let mut b = GraphBuilder::new("mobilenet_v2", InputTemplate::image(3, 32, 32));
    let x = b.input();
    let mut x = conv_bn_act(&mut b, x, 3, 32, 3, 2, 1, ActKind::Relu6, "features.0");
    // (expand, out, repeats, stride)
    let cfg: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut in_ch = 32;
    let mut idx = 1;
    for (expand, out, repeats, stride) in cfg {
        for r in 0..repeats {
            let s = if r == 0 { stride } else { 1 };
            x = v2_block(&mut b, x, in_ch, out, s, expand, &format!("features.{idx}"));
            in_ch = out;
            idx += 1;
        }
    }
    x = conv_bn_act(
        &mut b,
        x,
        in_ch,
        1280,
        1,
        1,
        1,
        ActKind::Relu6,
        "features.18",
    );
    x = b.adaptive_avg_pool2d(x, 1, 1, "avgpool");
    x = b.flatten(x, 1, "flatten");
    x = b.dropout(x, 0.2, "classifier.0");
    x = b.linear(x, 1280, 1000, true, "classifier.1");
    b.cross_entropy_loss(x, "loss");
    b.finish().expect("mobilenet_v2 graph is valid")
}

/// One MobileNetV3 bneck row: kernel, expanded width, output width,
/// squeeze-excite, activation, stride.
struct Bneck {
    kernel: usize,
    expand: usize,
    out: usize,
    se: bool,
    act: ActKind,
    stride: usize,
}

fn v3_block(b: &mut GraphBuilder, x: NodeId, in_ch: usize, cfg: &Bneck, name: &str) -> NodeId {
    b.with_scope(name, |b| {
        let mut h = x;
        if cfg.expand != in_ch {
            h = conv_bn_act(b, h, in_ch, cfg.expand, 1, 1, 1, cfg.act, "expand");
        }
        h = conv_bn_act(
            b, h, cfg.expand, cfg.expand, cfg.kernel, cfg.stride, cfg.expand, cfg.act, "dw",
        );
        if cfg.se {
            let squeezed = make_divisible(cfg.expand as f64 / 4.0, 8);
            h = squeeze_excite(b, h, cfg.expand, squeezed, ActKind::Hardsigmoid, "se");
        }
        h = conv_bn(b, h, cfg.expand, cfg.out, 1, 1, 1, "project");
        if cfg.stride == 1 && in_ch == cfg.out {
            b.add(h, x, "add")
        } else {
            h
        }
    })
}

fn mobilenet_v3(name: &str, cfg: &[Bneck], last_conv: usize, classifier_width: usize) -> Graph {
    let mut b = GraphBuilder::new(name, InputTemplate::image(3, 32, 32));
    let x = b.input();
    let mut x = conv_bn_act(&mut b, x, 3, 16, 3, 2, 1, ActKind::Hardswish, "features.0");
    let mut in_ch = 16;
    for (i, row) in cfg.iter().enumerate() {
        x = v3_block(&mut b, x, in_ch, row, &format!("features.{}", i + 1));
        in_ch = row.out;
    }
    x = conv_bn_act(
        &mut b,
        x,
        in_ch,
        last_conv,
        1,
        1,
        1,
        ActKind::Hardswish,
        &format!("features.{}", cfg.len() + 1),
    );
    x = b.adaptive_avg_pool2d(x, 1, 1, "avgpool");
    x = b.flatten(x, 1, "flatten");
    x = b.linear(x, last_conv, classifier_width, true, "classifier.0");
    x = b.activation(x, ActKind::Hardswish, "classifier.1");
    x = b.dropout(x, 0.2, "classifier.2");
    x = b.linear(x, classifier_width, 1000, true, "classifier.3");
    b.cross_entropy_loss(x, "loss");
    b.finish().expect("mobilenet_v3 graph is valid")
}

/// MobileNetV3-Small: 2,542,856 parameters.
#[must_use]
pub fn mobilenet_v3_small() -> Graph {
    use ActKind::{Hardswish as HS, Relu as RE};
    let rows = [
        Bneck {
            kernel: 3,
            expand: 16,
            out: 16,
            se: true,
            act: RE,
            stride: 2,
        },
        Bneck {
            kernel: 3,
            expand: 72,
            out: 24,
            se: false,
            act: RE,
            stride: 2,
        },
        Bneck {
            kernel: 3,
            expand: 88,
            out: 24,
            se: false,
            act: RE,
            stride: 1,
        },
        Bneck {
            kernel: 5,
            expand: 96,
            out: 40,
            se: true,
            act: HS,
            stride: 2,
        },
        Bneck {
            kernel: 5,
            expand: 240,
            out: 40,
            se: true,
            act: HS,
            stride: 1,
        },
        Bneck {
            kernel: 5,
            expand: 240,
            out: 40,
            se: true,
            act: HS,
            stride: 1,
        },
        Bneck {
            kernel: 5,
            expand: 120,
            out: 48,
            se: true,
            act: HS,
            stride: 1,
        },
        Bneck {
            kernel: 5,
            expand: 144,
            out: 48,
            se: true,
            act: HS,
            stride: 1,
        },
        Bneck {
            kernel: 5,
            expand: 288,
            out: 96,
            se: true,
            act: HS,
            stride: 2,
        },
        Bneck {
            kernel: 5,
            expand: 576,
            out: 96,
            se: true,
            act: HS,
            stride: 1,
        },
        Bneck {
            kernel: 5,
            expand: 576,
            out: 96,
            se: true,
            act: HS,
            stride: 1,
        },
    ];
    mobilenet_v3("mobilenet_v3_small", &rows, 576, 1024)
}

/// MobileNetV3-Large: 5,483,032 parameters.
#[must_use]
pub fn mobilenet_v3_large() -> Graph {
    use ActKind::{Hardswish as HS, Relu as RE};
    let rows = [
        Bneck {
            kernel: 3,
            expand: 16,
            out: 16,
            se: false,
            act: RE,
            stride: 1,
        },
        Bneck {
            kernel: 3,
            expand: 64,
            out: 24,
            se: false,
            act: RE,
            stride: 2,
        },
        Bneck {
            kernel: 3,
            expand: 72,
            out: 24,
            se: false,
            act: RE,
            stride: 1,
        },
        Bneck {
            kernel: 5,
            expand: 72,
            out: 40,
            se: true,
            act: RE,
            stride: 2,
        },
        Bneck {
            kernel: 5,
            expand: 120,
            out: 40,
            se: true,
            act: RE,
            stride: 1,
        },
        Bneck {
            kernel: 5,
            expand: 120,
            out: 40,
            se: true,
            act: RE,
            stride: 1,
        },
        Bneck {
            kernel: 3,
            expand: 240,
            out: 80,
            se: false,
            act: HS,
            stride: 2,
        },
        Bneck {
            kernel: 3,
            expand: 200,
            out: 80,
            se: false,
            act: HS,
            stride: 1,
        },
        Bneck {
            kernel: 3,
            expand: 184,
            out: 80,
            se: false,
            act: HS,
            stride: 1,
        },
        Bneck {
            kernel: 3,
            expand: 184,
            out: 80,
            se: false,
            act: HS,
            stride: 1,
        },
        Bneck {
            kernel: 3,
            expand: 480,
            out: 112,
            se: true,
            act: HS,
            stride: 1,
        },
        Bneck {
            kernel: 3,
            expand: 672,
            out: 112,
            se: true,
            act: HS,
            stride: 1,
        },
        Bneck {
            kernel: 5,
            expand: 672,
            out: 160,
            se: true,
            act: HS,
            stride: 2,
        },
        Bneck {
            kernel: 5,
            expand: 960,
            out: 160,
            se: true,
            act: HS,
            stride: 1,
        },
        Bneck {
            kernel: 5,
            expand: 960,
            out: 160,
            se: true,
            act: HS,
            stride: 1,
        },
    ];
    mobilenet_v3("mobilenet_v3_large", &rows, 960, 1280)
}
