//! Shared building blocks for the CNN architectures.

use xmem_graph::{ActKind, Conv2dSpec, GraphBuilder, NodeId};

/// Conv → BatchNorm (no activation). Convolutions followed by BN carry no
/// bias, matching torchvision.
#[allow(clippy::too_many_arguments)]
pub fn conv_bn(
    b: &mut GraphBuilder,
    x: NodeId,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    groups: usize,
    name: &str,
) -> NodeId {
    let padding = kernel / 2;
    let c = b.conv2d(
        x,
        Conv2dSpec {
            in_ch,
            out_ch,
            kernel: (kernel, kernel),
            stride: (stride, stride),
            padding: (padding, padding),
            groups,
            bias: false,
        },
        &format!("{name}.conv"),
    );
    b.batch_norm2d(c, out_ch, &format!("{name}.bn"))
}

/// Conv → BatchNorm → activation.
#[allow(clippy::too_many_arguments)]
pub fn conv_bn_act(
    b: &mut GraphBuilder,
    x: NodeId,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    groups: usize,
    act: ActKind,
    name: &str,
) -> NodeId {
    let y = conv_bn(b, x, in_ch, out_ch, kernel, stride, groups, name);
    b.activation(y, act, &format!("{name}.act"))
}

/// Squeeze-and-excite gate: global pool → 1x1 conv → act → 1x1 conv →
/// gate activation → channel-wise multiply.
pub fn squeeze_excite(
    b: &mut GraphBuilder,
    x: NodeId,
    channels: usize,
    squeezed: usize,
    gate_act: ActKind,
    name: &str,
) -> NodeId {
    b.with_scope(name, |b| {
        let pooled = b.adaptive_avg_pool2d(x, 1, 1, "avgpool");
        let fc1 = b.conv2d(
            pooled,
            Conv2dSpec {
                in_ch: channels,
                out_ch: squeezed,
                bias: true,
                ..Conv2dSpec::default()
            },
            "fc1",
        );
        let a = b.activation(fc1, ActKind::Relu, "relu");
        let fc2 = b.conv2d(
            a,
            Conv2dSpec {
                in_ch: squeezed,
                out_ch: channels,
                bias: true,
                ..Conv2dSpec::default()
            },
            "fc2",
        );
        let gate = b.activation(fc2, gate_act, "gate");
        b.mul(x, gate, "scale")
    })
}

/// torchvision's `_make_divisible`: round `v` to the nearest multiple of
/// `divisor`, never going below 90 % of `v`.
#[must_use]
pub fn make_divisible(v: f64, divisor: usize) -> usize {
    let d = divisor as f64;
    let new_v = ((v + d / 2.0) / d).floor() * d;
    let new_v = new_v.max(d) as usize;
    if (new_v as f64) < 0.9 * v {
        new_v + divisor
    } else {
        new_v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_divisible_matches_torchvision() {
        assert_eq!(make_divisible(16.0, 8), 16);
        assert_eq!(make_divisible(24.0, 8), 24);
        assert_eq!(make_divisible(18.0, 8), 24); // 16 < 0.9*18 -> bumped
        assert_eq!(make_divisible(12.0, 8), 16); // 8 < 0.9*12 -> bumped
        assert_eq!(make_divisible(4.0, 8), 8);
    }
}
