//! VGG-16 and VGG-19 (Simonyan & Zisserman, 2014), torchvision layouts.

use xmem_graph::{ActKind, Conv2dSpec, Graph, GraphBuilder, InputTemplate, PoolSpec};

/// One entry of a VGG configuration: a conv output width or a max-pool.
enum Cfg {
    Conv(usize),
    Pool,
}

fn vgg(name: &str, cfg: &[Cfg]) -> Graph {
    let mut b = GraphBuilder::new(name, InputTemplate::image(3, 32, 32));
    let mut x = b.input();
    let mut in_ch = 3;
    let mut idx = 0;
    for entry in cfg {
        match entry {
            Cfg::Conv(out_ch) => {
                x = b.with_scope("features", |b| {
                    let c = b.conv2d(
                        x,
                        Conv2dSpec {
                            in_ch,
                            out_ch: *out_ch,
                            kernel: (3, 3),
                            padding: (1, 1),
                            bias: true,
                            ..Conv2dSpec::default()
                        },
                        &idx.to_string(),
                    );
                    b.activation(c, ActKind::Relu, &format!("{}", idx + 1))
                });
                in_ch = *out_ch;
                idx += 2;
            }
            Cfg::Pool => {
                x = b.with_scope("features", |b| {
                    b.max_pool2d(x, PoolSpec::square(2), &idx.to_string())
                });
                idx += 1;
            }
        }
    }
    x = b.adaptive_avg_pool2d(x, 7, 7, "avgpool");
    x = b.flatten(x, 1, "flatten");
    x = b.with_scope("classifier", |b| {
        let f = b.linear(x, 512 * 7 * 7, 4096, true, "0");
        let f = b.activation(f, ActKind::Relu, "1");
        let f = b.dropout(f, 0.5, "2");
        let f = b.linear(f, 4096, 4096, true, "3");
        let f = b.activation(f, ActKind::Relu, "4");
        let f = b.dropout(f, 0.5, "5");
        b.linear(f, 4096, 1000, true, "6")
    });
    b.cross_entropy_loss(x, "loss");
    b.finish().expect("vgg graph is valid")
}

/// VGG-16 (configuration D): 138,357,544 parameters.
#[must_use]
pub fn vgg16() -> Graph {
    use Cfg::{Conv, Pool};
    vgg(
        "vgg16",
        &[
            Conv(64),
            Conv(64),
            Pool,
            Conv(128),
            Conv(128),
            Pool,
            Conv(256),
            Conv(256),
            Conv(256),
            Pool,
            Conv(512),
            Conv(512),
            Conv(512),
            Pool,
            Conv(512),
            Conv(512),
            Conv(512),
            Pool,
        ],
    )
}

/// VGG-19 (configuration E): 143,667,240 parameters.
#[must_use]
pub fn vgg19() -> Graph {
    use Cfg::{Conv, Pool};
    vgg(
        "vgg19",
        &[
            Conv(64),
            Conv(64),
            Pool,
            Conv(128),
            Conv(128),
            Pool,
            Conv(256),
            Conv(256),
            Conv(256),
            Conv(256),
            Pool,
            Conv(512),
            Conv(512),
            Conv(512),
            Conv(512),
            Pool,
            Conv(512),
            Conv(512),
            Conv(512),
            Conv(512),
            Pool,
        ],
    )
}
