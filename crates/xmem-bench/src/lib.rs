//! Shared plumbing for the per-figure/table benchmark binaries.
//!
//! Every binary accepts:
//! * `--scale smoke|full` — the paper-scale campaign or a fast same-shape
//!   subsample (default `smoke`);
//! * `--seed <u64>` — the campaign seed (default 2025);
//! * `--out <dir>` — output directory for CSV/JSON artifacts (default
//!   `bench_out/`);
//! * `--threads <n>` — worker threads (default: all cores);
//! * `--uncached` — run xMem standalone (full pipeline per record) instead
//!   of routing the campaign through the estimation service's batched
//!   replay. The default (service-routed) collapses a campaign's xMem cost
//!   to one profile/analyze per distinct job; per-record
//!   `estimator_runtime_us` then measures the *serving* path (cache-hit
//!   latency), so pass `--uncached` when reproducing the paper's
//!   standalone runtime numbers (Table 4).
//!
//! Campaign records are cached as JSON per `(setting, scale, seed)` so the
//! figure/table binaries that share a campaign (Fig. 7/8, Tables 3/4) run
//! it once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use xmem_eval::anova::{anova_configs, AnovaScale};
use xmem_eval::montecarlo::monte_carlo_configs;
use xmem_eval::runner::{prewarm_matrix, run_campaign, CampaignOptions, EstimatorSet};
use xmem_eval::RunRecord;
use xmem_runtime::GpuDevice;
use xmem_service::{DeviceRegistry, EstimationService, ServiceConfig};

/// Campaign scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast same-shape subsample.
    Smoke,
    /// The paper's full design.
    Full,
}

impl Scale {
    /// Command-line label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Full => "full",
        }
    }
}

/// Parsed common arguments.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Campaign scale.
    pub scale: Scale,
    /// Campaign seed.
    pub seed: u64,
    /// Output directory.
    pub out_dir: PathBuf,
    /// Worker threads (0 = all).
    pub threads: usize,
    /// Run xMem standalone per record instead of service-routed (see the
    /// crate docs on `--uncached`).
    pub uncached: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: Scale::Smoke,
            seed: 2025,
            out_dir: PathBuf::from("bench_out"),
            threads: 0,
            uncached: false,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn parse() -> Self {
        let mut args = BenchArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--scale" => {
                    args.scale = match value("--scale").as_str() {
                        "smoke" => Scale::Smoke,
                        "full" => Scale::Full,
                        other => panic!("unknown scale `{other}` (smoke|full)"),
                    }
                }
                "--seed" => args.seed = value("--seed").parse().expect("numeric seed"),
                "--out" => args.out_dir = PathBuf::from(value("--out")),
                "--threads" => args.threads = value("--threads").parse().expect("numeric threads"),
                "--uncached" => args.uncached = true,
                other => panic!("unknown flag `{other}`"),
            }
        }
        args
    }
}

/// Bytes → GiB.
#[must_use]
pub fn gib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}

/// Writes an artifact under the output directory, creating it as needed.
///
/// # Panics
/// Panics on I/O failure (benchmark binaries fail loudly).
pub fn write_artifact(out_dir: &Path, name: &str, contents: &str) {
    fs::create_dir_all(out_dir).expect("create output dir");
    let path = out_dir.join(name);
    fs::write(&path, contents).expect("write artifact");
    println!("  wrote {}", path.display());
}

/// Campaign setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setting {
    /// Full-factorial on the RTX 3060.
    Anova,
    /// Randomized configurations on both commodity GPUs.
    MonteCarlo,
}

impl Setting {
    /// Label used in cache filenames and output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Setting::Anova => "anova",
            Setting::MonteCarlo => "montecarlo",
        }
    }
}

/// Runs (or loads from cache) the campaign for a setting. The cache lives
/// under the output directory and is keyed by setting/scale/seed.
#[must_use]
pub fn campaign_records(args: &BenchArgs, setting: Setting) -> Vec<RunRecord> {
    // The estimation mode is part of the cache identity: service-routed
    // and standalone runs differ in `estimator_runtime_us` (serving vs
    // full-pipeline latency), so serving one mode's records for the other
    // would silently corrupt runtime artifacts like Table 4.
    let cache = args.out_dir.join(format!(
        "records_{}_{}_{}{}.json",
        setting.label(),
        args.scale.label(),
        args.seed,
        if args.uncached { "_uncached" } else { "" }
    ));
    if let Ok(s) = fs::read_to_string(&cache) {
        if let Ok(records) = serde_json::from_str::<Vec<RunRecord>>(&s) {
            println!(
                "  loaded {} cached records from {}",
                records.len(),
                cache.display()
            );
            return records;
        }
    }
    let configs = match (setting, args.scale) {
        (Setting::Anova, Scale::Full) => anova_configs(args.seed, &AnovaScale::full()),
        (Setting::Anova, Scale::Smoke) => anova_configs(args.seed, &AnovaScale::smoke()),
        (Setting::MonteCarlo, Scale::Full) => monte_carlo_configs(1306, args.seed),
        (Setting::MonteCarlo, Scale::Smoke) => monte_carlo_configs(160, args.seed),
    };
    println!(
        "  running {} campaign: {} configurations ({} scale{})",
        setting.label(),
        configs.len(),
        args.scale.label(),
        if args.uncached {
            ", standalone xMem"
        } else {
            ", service-routed xMem"
        }
    );
    let started = std::time::Instant::now();
    let (estimators, service) = if args.uncached {
        (EstimatorSet::standard(args.seed), None)
    } else {
        // Route the whole campaign through the estimation service's
        // batched replay: distinct jobs profile once, every (job, device)
        // cell simulates once, and the per-record estimator calls below
        // are pure cache hits.
        let service = Arc::new(EstimationService::new(
            ServiceConfig::for_device(GpuDevice::rtx3060()).with_registry(DeviceRegistry::empty()),
        ));
        let (jobs, devices) = prewarm_matrix(&service, &configs);
        println!(
            "  prewarmed matrix: {} configurations -> {} analyses x {} devices \
             ({} profile runs, {} simulations)",
            configs.len(),
            jobs,
            devices,
            service.profile_runs(),
            service.sim_runs(),
        );
        (
            EstimatorSet::service_backed(args.seed, Arc::clone(&service)),
            Some(service),
        )
    };
    let records = run_campaign(
        &configs,
        &estimators,
        CampaignOptions {
            threads: args.threads,
        },
    );
    if let Some(service) = service {
        println!(
            "  analysis collapse held: {} profile runs / {} simulations for {} records",
            service.profile_runs(),
            service.sim_runs(),
            records.len()
        );
    }
    println!(
        "  campaign finished: {} records in {:.1}s",
        records.len(),
        started.elapsed().as_secs_f64()
    );
    fs::create_dir_all(&args.out_dir).expect("create output dir");
    fs::write(
        &cache,
        serde_json::to_string(&records).expect("records serialize"),
    )
    .expect("write cache");
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gib_converts() {
        assert_eq!(gib(1 << 30), 1.0);
        assert_eq!(gib(3 << 29), 1.5);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Scale::Smoke.label(), "smoke");
        assert_eq!(Setting::Anova.label(), "anova");
        assert_eq!(Setting::MonteCarlo.label(), "montecarlo");
    }
}
