//! Figure 8: four-quadrant analysis — PEF (x) versus MRE (y) per model per
//! estimator, 20 % thresholds, for the ANOVA and Monte Carlo settings.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use xmem_bench::{campaign_records, write_artifact, BenchArgs, Setting};
use xmem_eval::summary::{summarize, Quadrant};

fn main() {
    let args = BenchArgs::parse();
    for setting in [Setting::Anova, Setting::MonteCarlo] {
        println!("Figure 8 ({} setting):", setting.label());
        let records = campaign_records(&args, setting);
        let summaries = summarize(&records);

        let mut csv = String::from("model,estimator,pef,mre,quadrant\n");
        let mut quadrant_counts: BTreeMap<(String, Quadrant), usize> = BTreeMap::new();
        for s in &summaries {
            let Some(mre) = s.mre else { continue };
            let q = s.quadrant().expect("mre present");
            let _ = writeln!(
                csv,
                "{},{},{:.4},{:.4},{:?}",
                s.model.info().name,
                s.estimator,
                s.pef,
                mre,
                q
            );
            *quadrant_counts.entry((s.estimator.clone(), q)).or_default() += 1;
        }
        let estimators: Vec<String> = {
            let mut v: Vec<String> = quadrant_counts.keys().map(|(e, _)| e.clone()).collect();
            v.dedup();
            v.sort();
            v.dedup();
            v
        };
        println!(
            "{:<12} {:>8} {:>14} {:>15} {:>7}",
            "estimator", "Optimal", "Overestimation", "Underestimation", "Worst"
        );
        for est in estimators {
            let count = |q: Quadrant| quadrant_counts.get(&(est.clone(), q)).copied().unwrap_or(0);
            println!(
                "{:<12} {:>8} {:>14} {:>15} {:>7}",
                est,
                count(Quadrant::Optimal),
                count(Quadrant::Overestimation),
                count(Quadrant::Underestimation),
                count(Quadrant::Worst)
            );
        }
        write_artifact(
            &args.out_dir,
            &format!("fig8_{}.csv", setting.label()),
            &csv,
        );
    }
    println!("Paper shape: xMem dominates the Optimal quadrant (15/22 ANOVA,");
    println!("18/22 Monte Carlo); DNNMem scatters into Underestimation/Worst;");
    println!("SchedTune polarizes; LLMem scatters.");
}
