//! Figure 7: MRE box plots per model per estimator — (a) CNN/ANOVA,
//! (b) Transformer/ANOVA, (c) CNN/Monte Carlo, (d) Transformer/Monte
//! Carlo.
//!
//! Runs (or loads) both campaigns, prints the per-model box statistics and
//! writes the figure data as CSV.

use xmem_bench::{campaign_records, write_artifact, BenchArgs, Setting};
use xmem_eval::anova::anova_f_by_model;
use xmem_eval::summary::{render_summary_table, summaries_to_csv, summarize};
use xmem_graph::ArchClass;

fn main() {
    let args = BenchArgs::parse();
    for setting in [Setting::Anova, Setting::MonteCarlo] {
        println!("Figure 7 ({} setting):", setting.label());
        let records = campaign_records(&args, setting);
        let summaries = summarize(&records);
        for arch in [ArchClass::Cnn, ArchClass::Transformer] {
            let sub: Vec<_> = summaries
                .iter()
                .filter(|s| s.model.info().arch == arch)
                .cloned()
                .collect();
            println!("-- {} models --", arch.label());
            print!("{}", render_summary_table(&sub));
        }
        write_artifact(
            &args.out_dir,
            &format!("fig7_{}.csv", setting.label()),
            &summaries_to_csv(&summaries),
        );
        if setting == Setting::Anova {
            let f_stats = anova_f_by_model(&records);
            let mut models: Vec<_> = f_stats.keys().copied().collect();
            models.sort();
            println!("-- one-way ANOVA of estimator errors (per model) --");
            for model in models {
                let r = f_stats[&model];
                println!(
                    "  {:<30} F({},{}) = {:.1}",
                    model.info().name,
                    r.df_between,
                    r.df_within,
                    r.f_statistic
                );
            }
        }
    }
    println!("Paper shape: xMem lowest and tightest boxes; DNNMem 10-30%;");
    println!("SchedTune widest; LLMem largest outliers (transformers only).");
}
