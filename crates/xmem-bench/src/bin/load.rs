//! `load` — loopback load generator for the HTTP serving front end.
//!
//! Drives a server (an in-process one on an ephemeral port by default, or
//! an external one via `--addr`) with N concurrent keep-alive connections
//! cycling a scheduler-shaped request mix (estimates, a named-device
//! estimate, a placement query, a health probe) and emits a
//! machine-readable `BENCH_server.json` with throughput, latency
//! percentiles, and error counts — so every PR has a measurable
//! trajectory for the network layer, not just the estimator under it.
//!
//! Usage: `load [--addr HOST:PORT] [--connections N] [--requests N]
//! [--quick] [--out PATH] [--shutdown]`
//!
//! * `--addr`        — target an already-running server (e.g. `xmem-cli
//!   listen`); the default spawns an in-process server;
//! * `--connections` — concurrent keep-alive connections (default 32,
//!   quick 8);
//! * `--requests`    — requests per connection (default 200, quick 32);
//! * `--quick`       — CI-sized run;
//! * `--shutdown`    — `POST /v1/shutdown` when done (drains an external
//!   server; the in-process server is always drained);
//! * `--out`         — output path (default `BENCH_server.json`).
//!
//! Backpressure `503`s are counted separately from real server errors:
//! `server_errors_5xx` excludes them, so a zero-5xx CI gate composes with
//! deliberate overload probes.

use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;
use xmem_runtime::GpuDevice;
use xmem_server::{HttpClient, ServerConfig, ServerHandle};
use xmem_service::{AsyncEstimationService, AsyncServiceConfig};

/// The request mix one connection cycles through, spelled as
/// `(method, path, body)` — a scheduler's steady-state traffic shape:
/// mostly admission estimates (cache-hot), some placement, a health
/// probe.
const MIX: [(&str, &str, &str); 5] = [
    (
        "POST",
        "/v1/estimate",
        r#"{"model":"MobeNetV3Small","optimizer":"Adam","batch":8,"iterations":2}"#,
    ),
    (
        "POST",
        "/v1/estimate",
        r#"{"job":{"model":"distilgpt2","optimizer":"AdamW","batch":4,"iterations":2},"device":"rtx4060"}"#,
    ),
    (
        "POST",
        "/v1/estimate",
        r#"{"model":"MobeNetV3Small","optimizer":"Adam","batch":16,"iterations":2}"#,
    ),
    (
        "POST",
        "/v1/best-device",
        r#"{"model":"MobeNetV3Small","optimizer":"Adam","batch":8,"iterations":2}"#,
    ),
    ("GET", "/healthz", ""),
];

#[derive(Debug, Serialize)]
struct Latency {
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    mean_ns: u64,
}

#[derive(Debug, Default, Serialize)]
struct StatusCounts {
    ok_2xx: u64,
    client_errors_4xx: u64,
    /// Deliberate backpressure (`503` + `retry-after`) — not a server
    /// failure.
    backpressure_503: u64,
    /// Real server-side failures: every 5xx except `503`.
    server_errors_5xx: u64,
    /// Socket-level failures (connect/read/write); each is followed by a
    /// reconnect.
    transport_errors: u64,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: &'static str,
    quick: bool,
    generated_unix: u64,
    target: String,
    connections: usize,
    requests_per_connection: usize,
    total_requests: u64,
    wall_ns: u64,
    requests_per_sec: f64,
    latency: Latency,
    status: StatusCounts,
    /// Whether the drained server reported a clean drain (in-process
    /// target only).
    drain_clean: Option<bool>,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    #[allow(clippy::cast_sign_loss)]
    let index = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[index.min(sorted.len() - 1)]
}

/// Consecutive socket-level failures before a connection declares the
/// target dead and aborts the whole run (via the shared stop flag).
const MAX_CONSECUTIVE_TRANSPORT_ERRORS: u64 = 5;

/// One connection's worth of load; returns (latencies ns, status counts).
///
/// `stop` aborts every connection early once any of them proves the run
/// is pointless: a real server error (the run fails its zero-5xx assert
/// anyway) or a dead target (consecutive transport failures).
fn run_connection(
    addr: &str,
    requests: usize,
    offset: usize,
    stop: &AtomicBool,
) -> (Vec<u64>, StatusCounts) {
    let mut latencies = Vec::with_capacity(requests);
    let mut status = StatusCounts::default();
    let mut client = None;
    let mut consecutive_transport = 0;
    for i in 0..requests {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let (method, path, body) = MIX[(offset + i) % MIX.len()];
        if client.is_none() {
            match HttpClient::connect(addr) {
                Ok(c) => client = Some(c),
                Err(_) => {
                    status.transport_errors += 1;
                    consecutive_transport += 1;
                    if consecutive_transport >= MAX_CONSECUTIVE_TRANSPORT_ERRORS {
                        stop.store(true, Ordering::Relaxed);
                    }
                    continue;
                }
            }
        }
        let connection = client.as_mut().expect("connected above");
        let started = Instant::now();
        let outcome = if method == "GET" {
            connection.get(path)
        } else {
            connection.post_json(path, body)
        };
        match outcome {
            Ok(response) => {
                latencies.push(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                consecutive_transport = 0;
                match response.status {
                    200..=299 => status.ok_2xx += 1,
                    503 => status.backpressure_503 += 1,
                    400..=499 => status.client_errors_4xx += 1,
                    500..=599 => {
                        status.server_errors_5xx += 1;
                        stop.store(true, Ordering::Relaxed);
                    }
                    _ => {}
                }
            }
            Err(_) => {
                status.transport_errors += 1;
                consecutive_transport += 1;
                if consecutive_transport >= MAX_CONSECUTIVE_TRANSPORT_ERRORS {
                    stop.store(true, Ordering::Relaxed);
                }
                client = None; // reconnect on the next request
            }
        }
    }
    (latencies, status)
}

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_server.json");
    let mut addr: Option<String> = None;
    let mut connections: Option<usize> = None;
    let mut requests: Option<usize> = None;
    let mut shutdown = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--shutdown" => shutdown = true,
            "--out" => out = args.next().expect("missing value for --out"),
            "--addr" => addr = Some(args.next().expect("missing value for --addr")),
            "--connections" => {
                connections = Some(
                    args.next()
                        .expect("missing value for --connections")
                        .parse()
                        .expect("--connections must be a number"),
                );
            }
            "--requests" => {
                requests = Some(
                    args.next()
                        .expect("missing value for --requests")
                        .parse()
                        .expect("--requests must be a number"),
                );
            }
            other => panic!(
                "unknown flag `{other}` (load [--addr HOST:PORT] [--connections N] \
                 [--requests N] [--quick] [--out PATH] [--shutdown])"
            ),
        }
    }
    let connections = connections.unwrap_or(if quick { 8 } else { 32 });
    let requests = requests.unwrap_or(if quick { 32 } else { 200 });

    // Target: an external server, or an in-process one on an ephemeral
    // port (same code path as `xmem-cli listen`).
    let in_process = if addr.is_none() {
        let service = Arc::new(AsyncEstimationService::new(AsyncServiceConfig::for_device(
            GpuDevice::rtx3060(),
        )));
        let server = ServerHandle::bind(
            "127.0.0.1:0",
            service,
            ServerConfig::default().with_workers(connections + 4),
        )
        .expect("bind loopback server");
        addr = Some(server.local_addr().to_string());
        Some(server)
    } else {
        None
    };
    let addr = addr.expect("target address");
    println!(
        "load: {connections} connections x {requests} requests against {addr} ({} mode)",
        if quick { "quick" } else { "full" }
    );

    // Prewarm: run the whole mix once so the timed run measures the
    // serving hot path (cache hits), not one-time profile runs.
    {
        let mut client = HttpClient::connect(addr.as_str()).expect("connect for prewarm");
        for (method, path, body) in MIX {
            let response = if method == "GET" {
                client.get(path)
            } else {
                client.post_json(path, body)
            };
            let response = response.expect("prewarm request");
            assert!(
                response.status < 500,
                "prewarm hit a server error: {} on {path}",
                response.status
            );
        }
    }

    let barrier = Arc::new(Barrier::new(connections));
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let results: Vec<(Vec<u64>, StatusCounts)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let barrier = Arc::clone(&barrier);
                let addr = addr.as_str();
                let stop = &stop;
                scope.spawn(move || {
                    barrier.wait();
                    run_connection(addr, requests, c, stop)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread panicked"))
            .collect()
    });
    let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);

    let mut latencies: Vec<u64> = Vec::new();
    let mut status = StatusCounts::default();
    for (connection_latencies, connection_status) in results {
        latencies.extend(connection_latencies);
        status.ok_2xx += connection_status.ok_2xx;
        status.client_errors_4xx += connection_status.client_errors_4xx;
        status.backpressure_503 += connection_status.backpressure_503;
        status.server_errors_5xx += connection_status.server_errors_5xx;
        status.transport_errors += connection_status.transport_errors;
    }
    latencies.sort_unstable();
    let total_requests = latencies.len() as u64;
    #[allow(clippy::cast_precision_loss)]
    let requests_per_sec = if wall_ns == 0 {
        0.0
    } else {
        total_requests as f64 / (wall_ns as f64 / 1e9)
    };
    let mean_ns = if latencies.is_empty() {
        0
    } else {
        latencies.iter().sum::<u64>() / latencies.len() as u64
    };

    if shutdown {
        let mut client = HttpClient::connect(addr.as_str()).expect("connect for shutdown");
        let response = client.post_json("/v1/shutdown", "{}").expect("shutdown");
        assert_eq!(
            response.status, 200,
            "shutdown answered {}",
            response.status
        );
    }
    let drain_clean = in_process.map(|server| server.shutdown().clean);

    let report = Report {
        schema: "xmem-bench-server/v1",
        quick,
        generated_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        target: addr,
        connections,
        requests_per_connection: requests,
        total_requests,
        wall_ns,
        requests_per_sec,
        latency: Latency {
            p50_ns: percentile(&latencies, 0.50),
            p90_ns: percentile(&latencies, 0.90),
            p99_ns: percentile(&latencies, 0.99),
            max_ns: latencies.last().copied().unwrap_or(0),
            mean_ns,
        },
        status,
        drain_clean,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write report");
    println!(
        "{} requests in {:.2}s: {:.0} req/s, p50 {:.2}ms, p99 {:.2}ms | \
         2xx {} | 4xx {} | 503 {} | 5xx {} | transport {}",
        report.total_requests,
        report.wall_ns as f64 / 1e9,
        report.requests_per_sec,
        report.latency.p50_ns as f64 / 1e6,
        report.latency.p99_ns as f64 / 1e6,
        report.status.ok_2xx,
        report.status.client_errors_4xx,
        report.status.backpressure_503,
        report.status.server_errors_5xx,
        report.status.transport_errors,
    );
    println!("wrote {out}");
    assert!(
        report.status.server_errors_5xx == 0,
        "load run hit real server errors"
    );
}
