//! `load` — loopback load generator for the HTTP serving front end.
//!
//! Drives a server (an in-process one on an ephemeral port by default, or
//! an external one via `--addr`) with N concurrent keep-alive connections
//! cycling a scheduler-shaped request mix (estimates, a named-device
//! estimate, a placement query, a health probe) and emits a
//! machine-readable `BENCH_server.json` with throughput, latency
//! percentiles, and error counts — so every PR has a measurable
//! trajectory for the network layer, not just the estimator under it.
//!
//! Usage: `load [--addr HOST:PORT] [--connections N] [--requests N]
//! [--quick] [--out PATH] [--shutdown]`
//!
//! * `--addr`        — target an already-running server (e.g. `xmem-cli
//!   listen`); the default spawns an in-process server;
//! * `--connections` — concurrent keep-alive connections (default 32,
//!   quick 8);
//! * `--requests`    — requests per connection (default 200, quick 32);
//! * `--quick`       — CI-sized run;
//! * `--shutdown`    — `POST /v1/shutdown` when done (drains an external
//!   server; the in-process server is always drained);
//! * `--out`         — output path (default `BENCH_server.json`;
//!   `BENCH_cluster.json` in cluster mode).
//!
//! Cluster mode (`--cluster`) drives a consistent-hash ring instead of a
//! single server. By default it boots a 3-node in-process ring, proves
//! the exactly-once economy with cold keys (every distinct `JobKey` sent
//! to *every* node must incur exactly one `profile_runs` increment
//! cluster-wide — asserted in-harness from the ring's own counters),
//! measures a single-node baseline and the ring under the same mix
//! through ring-aware [`ClusterClient`]s, and emits `BENCH_cluster.json`
//! with the scaling ratio. With `--peers a,b,c --auth-token t` it drives
//! an external ring instead (the CI cluster-smoke job, which kills a
//! node mid-load and gates on `failovers >= 1` and zero real 5xx).
//!
//! Backpressure `503`s are counted separately from real server errors:
//! `server_errors_5xx` excludes them, so a zero-5xx CI gate composes with
//! deliberate overload probes.

use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;
use xmem_runtime::GpuDevice;
use xmem_server::{
    ClusterClient, ClusterConfig, HttpClient, ServerConfig, ServerHandle, AUTH_HEADER,
};
use xmem_service::{AsyncEstimationService, AsyncServiceConfig};

/// The request mix one connection cycles through, spelled as
/// `(method, path, body)` — a scheduler's steady-state traffic shape:
/// mostly admission estimates (cache-hot), some placement, a health
/// probe.
const MIX: [(&str, &str, &str); 5] = [
    (
        "POST",
        "/v1/estimate",
        r#"{"model":"MobeNetV3Small","optimizer":"Adam","batch":8,"iterations":2}"#,
    ),
    (
        "POST",
        "/v1/estimate",
        r#"{"job":{"model":"distilgpt2","optimizer":"AdamW","batch":4,"iterations":2},"device":"rtx4060"}"#,
    ),
    (
        "POST",
        "/v1/estimate",
        r#"{"model":"MobeNetV3Small","optimizer":"Adam","batch":16,"iterations":2}"#,
    ),
    (
        "POST",
        "/v1/best-device",
        r#"{"model":"MobeNetV3Small","optimizer":"Adam","batch":8,"iterations":2}"#,
    ),
    ("GET", "/healthz", ""),
];

#[derive(Debug, Serialize)]
struct Latency {
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    mean_ns: u64,
}

#[derive(Debug, Default, Serialize)]
struct StatusCounts {
    ok_2xx: u64,
    client_errors_4xx: u64,
    /// Deliberate backpressure (`503` + `retry-after`) — not a server
    /// failure.
    backpressure_503: u64,
    /// Real server-side failures: every 5xx except `503`.
    server_errors_5xx: u64,
    /// Socket-level failures (connect/read/write); each is followed by a
    /// reconnect.
    transport_errors: u64,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: &'static str,
    quick: bool,
    generated_unix: u64,
    target: String,
    connections: usize,
    requests_per_connection: usize,
    total_requests: u64,
    wall_ns: u64,
    requests_per_sec: f64,
    latency: Latency,
    status: StatusCounts,
    /// Whether the drained server reported a clean drain (in-process
    /// target only).
    drain_clean: Option<bool>,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    #[allow(clippy::cast_sign_loss)]
    let index = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[index.min(sorted.len() - 1)]
}

/// Consecutive socket-level failures before a connection declares the
/// target dead and aborts the whole run (via the shared stop flag).
const MAX_CONSECUTIVE_TRANSPORT_ERRORS: u64 = 5;

/// One connection's worth of load; returns (latencies ns, status counts).
///
/// `stop` aborts every connection early once any of them proves the run
/// is pointless: a real server error (the run fails its zero-5xx assert
/// anyway) or a dead target (consecutive transport failures).
fn run_connection(
    addr: &str,
    requests: usize,
    offset: usize,
    stop: &AtomicBool,
) -> (Vec<u64>, StatusCounts) {
    let mut latencies = Vec::with_capacity(requests);
    let mut status = StatusCounts::default();
    let mut client = None;
    let mut consecutive_transport = 0;
    for i in 0..requests {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let (method, path, body) = MIX[(offset + i) % MIX.len()];
        if client.is_none() {
            match HttpClient::connect(addr) {
                Ok(c) => client = Some(c),
                Err(_) => {
                    status.transport_errors += 1;
                    consecutive_transport += 1;
                    if consecutive_transport >= MAX_CONSECUTIVE_TRANSPORT_ERRORS {
                        stop.store(true, Ordering::Relaxed);
                    }
                    continue;
                }
            }
        }
        let connection = client.as_mut().expect("connected above");
        let started = Instant::now();
        let outcome = if method == "GET" {
            connection.get(path)
        } else {
            connection.post_json(path, body)
        };
        match outcome {
            Ok(response) => {
                latencies.push(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                consecutive_transport = 0;
                match response.status {
                    200..=299 => status.ok_2xx += 1,
                    503 => status.backpressure_503 += 1,
                    400..=499 => status.client_errors_4xx += 1,
                    500..=599 => {
                        status.server_errors_5xx += 1;
                        stop.store(true, Ordering::Relaxed);
                    }
                    _ => {}
                }
            }
            Err(_) => {
                status.transport_errors += 1;
                consecutive_transport += 1;
                if consecutive_transport >= MAX_CONSECUTIVE_TRANSPORT_ERRORS {
                    stop.store(true, Ordering::Relaxed);
                }
                client = None; // reconnect on the next request
            }
        }
    }
    (latencies, status)
}

/// One ring-aware connection's worth of load; returns
/// (latencies ns, status counts, failovers). Mirrors [`run_connection`]
/// but routes through a [`ClusterClient`], so a dead owner fails over to
/// the next ring node instead of surfacing a transport error.
fn run_cluster_connection(
    nodes: &[String],
    token: &str,
    requests: usize,
    offset: usize,
    stop: &AtomicBool,
) -> (Vec<u64>, StatusCounts, u64) {
    let mut client = ClusterClient::new(nodes, Some(token));
    let mut latencies = Vec::with_capacity(requests);
    let mut status = StatusCounts::default();
    let mut consecutive_transport = 0;
    for i in 0..requests {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let (method, path, body) = MIX[(offset + i) % MIX.len()];
        let started = Instant::now();
        let outcome = if method == "GET" {
            client.get(path)
        } else {
            client.post_json(path, body)
        };
        match outcome {
            Ok(response) => {
                latencies.push(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                consecutive_transport = 0;
                match response.status {
                    200..=299 => status.ok_2xx += 1,
                    503 => status.backpressure_503 += 1,
                    400..=499 => status.client_errors_4xx += 1,
                    500..=599 => {
                        status.server_errors_5xx += 1;
                        stop.store(true, Ordering::Relaxed);
                    }
                    _ => {}
                }
            }
            Err(_) => {
                // Every ring node failed for this request (the client
                // already exhausted its failover order).
                status.transport_errors += 1;
                consecutive_transport += 1;
                if consecutive_transport >= MAX_CONSECUTIVE_TRANSPORT_ERRORS {
                    stop.store(true, Ordering::Relaxed);
                }
            }
        }
    }
    (latencies, status, client.failovers())
}

/// What a measured phase drives: one plain server, or a ring through
/// [`ClusterClient`]s.
enum LoadTarget<'a> {
    Single(&'a str),
    Ring(&'a [String], &'a str),
}

/// Throughput/latency/status for one measured phase of a cluster run.
#[derive(Debug, Serialize)]
struct PhaseReport {
    total_requests: u64,
    wall_ns: u64,
    requests_per_sec: f64,
    latency: Latency,
    status: StatusCounts,
}

/// The in-harness exactly-once proof: `distinct_keys` cold keys were
/// each sent to every ring node, and the ring's own `profile_runs`
/// counters summed to exactly `distinct_keys`.
#[derive(Debug, Serialize)]
struct ExactlyOnce {
    distinct_keys: u64,
    cluster_profile_runs: u64,
    exactly_once: bool,
}

#[derive(Debug, Serialize)]
struct ClusterReport {
    schema: &'static str,
    quick: bool,
    generated_unix: u64,
    nodes: Vec<String>,
    connections: usize,
    requests_per_connection: usize,
    /// `None` against an external ring (no access to its counters).
    one_profile_per_key: Option<ExactlyOnce>,
    /// Same mix against one plain node — the scaling denominator
    /// (in-process mode only).
    baseline_single_node: Option<PhaseReport>,
    cluster: PhaseReport,
    /// Requests that fell over to another ring node after their first
    /// choice failed (summed over every client).
    failovers: u64,
    /// `cluster.requests_per_sec / baseline.requests_per_sec`.
    scaling_rps_ratio: Option<f64>,
    /// Whether every in-process node drained cleanly.
    drain_clean: Option<bool>,
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Fold per-connection results into a [`PhaseReport`].
fn summarize(results: Vec<(Vec<u64>, StatusCounts)>, wall_ns: u64) -> PhaseReport {
    let mut latencies: Vec<u64> = Vec::new();
    let mut status = StatusCounts::default();
    for (connection_latencies, connection_status) in results {
        latencies.extend(connection_latencies);
        status.ok_2xx += connection_status.ok_2xx;
        status.client_errors_4xx += connection_status.client_errors_4xx;
        status.backpressure_503 += connection_status.backpressure_503;
        status.server_errors_5xx += connection_status.server_errors_5xx;
        status.transport_errors += connection_status.transport_errors;
    }
    latencies.sort_unstable();
    let total_requests = latencies.len() as u64;
    #[allow(clippy::cast_precision_loss)]
    let requests_per_sec = if wall_ns == 0 {
        0.0
    } else {
        total_requests as f64 / (wall_ns as f64 / 1e9)
    };
    let mean_ns = if latencies.is_empty() {
        0
    } else {
        latencies.iter().sum::<u64>() / latencies.len() as u64
    };
    PhaseReport {
        total_requests,
        wall_ns,
        requests_per_sec,
        latency: Latency {
            p50_ns: percentile(&latencies, 0.50),
            p90_ns: percentile(&latencies, 0.90),
            p99_ns: percentile(&latencies, 0.99),
            max_ns: latencies.last().copied().unwrap_or(0),
            mean_ns,
        },
        status,
    }
}

/// Barrier-synced measured phase against `target`; returns the phase
/// report and the summed failover count (0 for a plain target).
fn measure(target: &LoadTarget, connections: usize, requests: usize) -> (PhaseReport, u64) {
    let barrier = Arc::new(Barrier::new(connections));
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let results: Vec<(Vec<u64>, StatusCounts, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let barrier = Arc::clone(&barrier);
                let stop = &stop;
                scope.spawn(move || {
                    barrier.wait();
                    match target {
                        LoadTarget::Single(addr) => {
                            let (latencies, status) = run_connection(addr, requests, c, stop);
                            (latencies, status, 0)
                        }
                        LoadTarget::Ring(nodes, token) => {
                            run_cluster_connection(nodes, token, requests, c, stop)
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread panicked"))
            .collect()
    });
    let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let failovers: u64 = results.iter().map(|(_, _, f)| f).sum();
    let results = results
        .into_iter()
        .map(|(latencies, status, _)| (latencies, status))
        .collect();
    (summarize(results, wall_ns), failovers)
}

/// Shared `x-xmem-auth` secret for the in-process bench ring.
const BENCH_TOKEN: &str = "bench-secret";

/// The `--cluster` entry point. `external` carries `(nodes, token)` when
/// `--peers`/`--auth-token` target a running ring; otherwise a 3-node
/// in-process ring is booted and additionally proves the exactly-once
/// profiling economy and a single-node scaling baseline.
fn run_cluster(
    quick: bool,
    out: &str,
    external: Option<(Vec<String>, String)>,
    connections: usize,
    requests: usize,
    shutdown: bool,
) {
    let mut ring: Vec<(ServerHandle, Arc<AsyncEstimationService>)> = Vec::new();
    let (nodes, token) = match external {
        Some((nodes, token)) => (nodes, token),
        None => {
            for _ in 0..3 {
                let service = Arc::new(AsyncEstimationService::new(
                    AsyncServiceConfig::for_device(GpuDevice::rtx3060()),
                ));
                let server = ServerHandle::bind(
                    "127.0.0.1:0",
                    Arc::clone(&service),
                    ServerConfig::default().with_workers(connections + 4),
                )
                .expect("bind ring node");
                ring.push((server, service));
            }
            let addrs: Vec<String> = ring
                .iter()
                .map(|(server, _)| server.local_addr().to_string())
                .collect();
            for (server, _) in &mut ring {
                let config = ClusterConfig {
                    self_addr: server.local_addr().to_string(),
                    peers: addrs.clone(),
                    auth_token: BENCH_TOKEN.to_string(),
                };
                server.install_cluster(&config).expect("install ring");
            }
            (addrs, BENCH_TOKEN.to_string())
        }
    };
    println!(
        "load --cluster: {} nodes [{}], {connections} connections x {requests} requests ({} mode)",
        nodes.len(),
        nodes.join(", "),
        if quick { "quick" } else { "full" }
    );

    // Exactly-once proof (in-process only): every cold key is shown to
    // every node; ownership must collapse that to one profile run per
    // key cluster-wide, counted from the services themselves.
    let one_profile_per_key = if ring.is_empty() {
        None
    } else {
        let distinct_keys: u64 = if quick { 8 } else { 24 };
        let mut clients: Vec<HttpClient> = nodes
            .iter()
            .map(|node| HttpClient::connect(node.as_str()).expect("connect for exactly-once"))
            .collect();
        for key in 0..distinct_keys {
            let body = format!(
                r#"{{"model":"MobeNetV3Small","optimizer":"Adam","batch":{},"iterations":2}}"#,
                32 + key
            );
            for client in &mut clients {
                let response = client
                    .request(
                        "POST",
                        "/v1/estimate",
                        &[("content-type", "application/json"), (AUTH_HEADER, &token)],
                        body.as_bytes(),
                    )
                    .expect("cold estimate");
                assert_eq!(
                    response.status,
                    200,
                    "cold estimate answered {}: {}",
                    response.status,
                    response.text()
                );
            }
        }
        let cluster_profile_runs: u64 = ring
            .iter()
            .map(|(_, service)| service.service().profile_runs())
            .sum();
        assert_eq!(
            cluster_profile_runs, distinct_keys,
            "one-analysis-per-key violated: {cluster_profile_runs} profile runs \
             for {distinct_keys} distinct keys"
        );
        println!(
            "exactly-once: {distinct_keys} distinct keys x {} sightings each -> \
             {cluster_profile_runs} profile runs cluster-wide",
            nodes.len()
        );
        Some(ExactlyOnce {
            distinct_keys,
            cluster_profile_runs,
            exactly_once: true,
        })
    };

    // Single-node scaling baseline (in-process only): the same mix
    // against one plain (non-clustered) server.
    let mut drain_all_clean: Option<bool> = None;
    let baseline_single_node = if ring.is_empty() {
        None
    } else {
        let service = Arc::new(AsyncEstimationService::new(AsyncServiceConfig::for_device(
            GpuDevice::rtx3060(),
        )));
        let server = ServerHandle::bind(
            "127.0.0.1:0",
            service,
            ServerConfig::default().with_workers(connections + 4),
        )
        .expect("bind baseline server");
        let addr = server.local_addr().to_string();
        let mut client = HttpClient::connect(addr.as_str()).expect("connect for baseline prewarm");
        for (method, path, body) in MIX {
            let response = if method == "GET" {
                client.get(path)
            } else {
                client.post_json(path, body)
            };
            assert!(response.expect("baseline prewarm").status < 500);
        }
        drop(client);
        let (report, _) = measure(&LoadTarget::Single(&addr), connections, requests);
        drain_all_clean = Some(server.shutdown().clean);
        Some(report)
    };

    // Prewarm the ring through an owner-routing client so the measured
    // phase hits warm owners, then measure.
    {
        let mut client = ClusterClient::new(&nodes, Some(&token));
        for (method, path, body) in MIX {
            let response = if method == "GET" {
                client.get(path)
            } else {
                client.post_json(path, body)
            };
            let response = response.expect("cluster prewarm request");
            assert!(
                response.status < 500,
                "cluster prewarm hit a server error: {} on {path}",
                response.status
            );
        }
    }
    let (cluster_report, failovers) =
        measure(&LoadTarget::Ring(&nodes, &token), connections, requests);

    if shutdown {
        for node in &nodes {
            if let Ok(mut client) = HttpClient::connect(node.as_str()) {
                let _ = client.request(
                    "POST",
                    "/v1/shutdown",
                    &[("content-type", "application/json"), (AUTH_HEADER, &token)],
                    b"{}",
                );
            }
        }
    }
    for (server, _) in ring {
        let clean = server.shutdown().clean;
        drain_all_clean = Some(drain_all_clean.unwrap_or(true) && clean);
    }

    let scaling_rps_ratio = baseline_single_node.as_ref().and_then(|baseline| {
        (baseline.requests_per_sec > 0.0)
            .then(|| cluster_report.requests_per_sec / baseline.requests_per_sec)
    });
    let report = ClusterReport {
        schema: "xmem-bench-cluster/v1",
        quick,
        generated_unix: unix_now(),
        nodes,
        connections,
        requests_per_connection: requests,
        one_profile_per_key,
        baseline_single_node,
        cluster: cluster_report,
        failovers,
        scaling_rps_ratio,
        drain_clean: drain_all_clean,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(out, &json).expect("write report");
    println!(
        "cluster: {} requests in {:.2}s: {:.0} req/s, p50 {:.2}ms, p99 {:.2}ms | \
         2xx {} | 4xx {} | 503 {} | 5xx {} | transport {} | failovers {}",
        report.cluster.total_requests,
        report.cluster.wall_ns as f64 / 1e9,
        report.cluster.requests_per_sec,
        report.cluster.latency.p50_ns as f64 / 1e6,
        report.cluster.latency.p99_ns as f64 / 1e6,
        report.cluster.status.ok_2xx,
        report.cluster.status.client_errors_4xx,
        report.cluster.status.backpressure_503,
        report.cluster.status.server_errors_5xx,
        report.cluster.status.transport_errors,
        report.failovers,
    );
    if let Some(ratio) = report.scaling_rps_ratio {
        println!("scaling: {ratio:.2}x over the single-node baseline");
    }
    println!("wrote {out}");
    assert!(
        report.cluster.status.server_errors_5xx == 0,
        "cluster load run hit real server errors"
    );
    if let Some(baseline) = &report.baseline_single_node {
        assert!(
            baseline.status.server_errors_5xx == 0,
            "baseline load run hit real server errors"
        );
    }
}

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut connections: Option<usize> = None;
    let mut requests: Option<usize> = None;
    let mut shutdown = false;
    let mut cluster = false;
    let mut peers: Option<String> = None;
    let mut auth_token: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--shutdown" => shutdown = true,
            "--cluster" => cluster = true,
            "--out" => out = Some(args.next().expect("missing value for --out")),
            "--addr" => addr = Some(args.next().expect("missing value for --addr")),
            "--peers" => peers = Some(args.next().expect("missing value for --peers")),
            "--auth-token" => {
                auth_token = Some(args.next().expect("missing value for --auth-token"));
            }
            "--connections" => {
                connections = Some(
                    args.next()
                        .expect("missing value for --connections")
                        .parse()
                        .expect("--connections must be a number"),
                );
            }
            "--requests" => {
                requests = Some(
                    args.next()
                        .expect("missing value for --requests")
                        .parse()
                        .expect("--requests must be a number"),
                );
            }
            other => panic!(
                "unknown flag `{other}` (load [--addr HOST:PORT] [--connections N] \
                 [--requests N] [--quick] [--out PATH] [--shutdown] \
                 [--cluster [--peers A,B,C --auth-token SECRET]])"
            ),
        }
    }
    let connections = connections.unwrap_or(if quick { 8 } else { 32 });
    let requests = requests.unwrap_or(if quick { 32 } else { 200 });

    if cluster || peers.is_some() {
        assert!(
            addr.is_none(),
            "--cluster routes by ring membership; use --peers, not --addr"
        );
        let external = peers.map(|list| {
            let token = auth_token.expect("--peers requires --auth-token");
            let nodes: Vec<String> = list
                .split(',')
                .map(|p| p.trim().to_string())
                .filter(|p| !p.is_empty())
                .collect();
            assert!(nodes.len() >= 2, "--peers needs at least two nodes");
            (nodes, token)
        });
        let out = out.unwrap_or_else(|| String::from("BENCH_cluster.json"));
        run_cluster(quick, &out, external, connections, requests, shutdown);
        return;
    }
    let out = out.unwrap_or_else(|| String::from("BENCH_server.json"));

    // Target: an external server, or an in-process one on an ephemeral
    // port (same code path as `xmem-cli listen`).
    let in_process = if addr.is_none() {
        let service = Arc::new(AsyncEstimationService::new(AsyncServiceConfig::for_device(
            GpuDevice::rtx3060(),
        )));
        let server = ServerHandle::bind(
            "127.0.0.1:0",
            service,
            ServerConfig::default().with_workers(connections + 4),
        )
        .expect("bind loopback server");
        addr = Some(server.local_addr().to_string());
        Some(server)
    } else {
        None
    };
    let addr = addr.expect("target address");
    println!(
        "load: {connections} connections x {requests} requests against {addr} ({} mode)",
        if quick { "quick" } else { "full" }
    );

    // Prewarm: run the whole mix once so the timed run measures the
    // serving hot path (cache hits), not one-time profile runs.
    {
        let mut client = HttpClient::connect(addr.as_str()).expect("connect for prewarm");
        for (method, path, body) in MIX {
            let response = if method == "GET" {
                client.get(path)
            } else {
                client.post_json(path, body)
            };
            let response = response.expect("prewarm request");
            assert!(
                response.status < 500,
                "prewarm hit a server error: {} on {path}",
                response.status
            );
        }
    }

    let barrier = Arc::new(Barrier::new(connections));
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let results: Vec<(Vec<u64>, StatusCounts)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let barrier = Arc::clone(&barrier);
                let addr = addr.as_str();
                let stop = &stop;
                scope.spawn(move || {
                    barrier.wait();
                    run_connection(addr, requests, c, stop)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread panicked"))
            .collect()
    });
    let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);

    let mut latencies: Vec<u64> = Vec::new();
    let mut status = StatusCounts::default();
    for (connection_latencies, connection_status) in results {
        latencies.extend(connection_latencies);
        status.ok_2xx += connection_status.ok_2xx;
        status.client_errors_4xx += connection_status.client_errors_4xx;
        status.backpressure_503 += connection_status.backpressure_503;
        status.server_errors_5xx += connection_status.server_errors_5xx;
        status.transport_errors += connection_status.transport_errors;
    }
    latencies.sort_unstable();
    let total_requests = latencies.len() as u64;
    #[allow(clippy::cast_precision_loss)]
    let requests_per_sec = if wall_ns == 0 {
        0.0
    } else {
        total_requests as f64 / (wall_ns as f64 / 1e9)
    };
    let mean_ns = if latencies.is_empty() {
        0
    } else {
        latencies.iter().sum::<u64>() / latencies.len() as u64
    };

    if shutdown {
        let mut client = HttpClient::connect(addr.as_str()).expect("connect for shutdown");
        let response = client.post_json("/v1/shutdown", "{}").expect("shutdown");
        assert_eq!(
            response.status, 200,
            "shutdown answered {}",
            response.status
        );
    }
    let drain_clean = in_process.map(|server| server.shutdown().clean);

    let report = Report {
        schema: "xmem-bench-server/v1",
        quick,
        generated_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        target: addr,
        connections,
        requests_per_connection: requests,
        total_requests,
        wall_ns,
        requests_per_sec,
        latency: Latency {
            p50_ns: percentile(&latencies, 0.50),
            p90_ns: percentile(&latencies, 0.90),
            p99_ns: percentile(&latencies, 0.99),
            max_ns: latencies.last().copied().unwrap_or(0),
            mean_ns,
        },
        status,
        drain_clean,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write report");
    println!(
        "{} requests in {:.2}s: {:.0} req/s, p50 {:.2}ms, p99 {:.2}ms | \
         2xx {} | 4xx {} | 503 {} | 5xx {} | transport {}",
        report.total_requests,
        report.wall_ns as f64 / 1e9,
        report.requests_per_sec,
        report.latency.p50_ns as f64 / 1e6,
        report.latency.p99_ns as f64 / 1e6,
        report.status.ok_2xx,
        report.status.client_errors_4xx,
        report.status.backpressure_503,
        report.status.server_errors_5xx,
        report.status.transport_errors,
    );
    println!("wrote {out}");
    assert!(
        report.status.server_errors_5xx == 0,
        "load run hit real server errors"
    );
}
