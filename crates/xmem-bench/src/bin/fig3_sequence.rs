//! Figure 3: the impact of deallocation ordering on peak segment memory.
//!
//! Two sequences over identical tensors (118 MiB and 78 MiB): holding the
//! first tensor across the second allocation forces 196 MiB of segments;
//! releasing it first lets the 78 MiB tensor reuse the cached 118 MiB
//! block, peaking at 118 MiB — the paper's 196 MB vs 118 MB example.

use xmem_alloc::{AllocatorConfig, CachingAllocator, DeviceAllocator};

const MIB: usize = 1 << 20;

fn run_sequence(order: &[(usize, bool)], sizes: &[usize]) -> u64 {
    let mut alloc = CachingAllocator::new(
        AllocatorConfig::pytorch_defaults(),
        DeviceAllocator::unlimited(),
    );
    let mut addrs = vec![None; sizes.len()];
    for &(tensor, is_alloc) in order {
        if is_alloc {
            addrs[tensor] = Some(alloc.alloc(sizes[tensor]).expect("unbounded"));
        } else if let Some(addr) = addrs[tensor].take() {
            alloc.free(addr);
        }
    }
    alloc.counters().peak_reserved
}

fn main() {
    let sizes = [118 * MIB, 78 * MIB];
    // Sequence 1: free tensor 0 only after tensor 1 is allocated.
    let seq1 = [(0, true), (1, true), (0, false), (1, false)];
    // Sequence 2: free tensor 0 before allocating tensor 1.
    let seq2 = [(0, true), (0, false), (1, true), (1, false)];
    let peak1 = run_sequence(&seq1, &sizes) / MIB as u64;
    let peak2 = run_sequence(&seq2, &sizes) / MIB as u64;
    println!("Figure 3: identical tensors, different deallocation order");
    println!("  Sequence 1 (hold then free):  peak segment memory {peak1} MiB");
    println!("  Sequence 2 (free then alloc): peak segment memory {peak2} MiB");
    println!("Paper reports 196 MB vs 118 MB.");
    assert_eq!(peak1, 196);
    assert_eq!(peak2, 118);
}
