//! Figure 6: validation of the Memory Simulator — actual segment usage of
//! the (simulated-GPU) training run vs xMem's simulated segment usage,
//! for distilGPT2, GPT-Neo and ConvNeXt-Base.

use std::fmt::Write as _;
use xmem_bench::{gib, write_artifact, BenchArgs};
use xmem_core::{Estimator, EstimatorConfig};
use xmem_models::ModelId;
use xmem_optim::OptimizerKind;
use xmem_runtime::{run_on_gpu, GpuDevice, TrainJobSpec};

fn main() {
    let args = BenchArgs::parse();
    let device = GpuDevice::rtx3060();
    println!(
        "Figure 6: real vs simulated segment usage (device {})",
        device.name
    );
    let cases = [
        (ModelId::DistilGpt2, 40),
        (ModelId::GptNeo125M, 32),
        (ModelId::ConvNextBase, 200),
    ];
    let mut csv = String::from("model,source,ts_us,segment_bytes\n");
    for (model, batch) in cases {
        let name = model.info().name;
        let spec = TrainJobSpec::new(model, OptimizerKind::AdamW, batch)
            .with_iterations(3)
            .with_seed(args.seed);
        let real = run_on_gpu(&spec, &device, None, true);
        assert!(!real.oom, "{name} must fit for the figure");
        let est = Estimator::new(EstimatorConfig::for_device(device).with_timeline())
            .estimate_job(&spec)
            .expect("estimation succeeds");
        for p in &real.timeline {
            let _ = writeln!(csv, "{name},real,{},{}", p.ts_us, p.reserved);
        }
        for p in &est.curve {
            let _ = writeln!(csv, "{name},simulated,{},{}", p.ts_us, p.reserved);
        }
        let real_peak = real.peak_exact - (real.peak_exact - real.counters.peak_reserved);
        let sim_peak = est.job_peak_bytes;
        let err = (sim_peak as f64 - real_peak as f64).abs() / real_peak as f64 * 100.0;
        println!(
            "  {name:<14} real segment peak {:.3} GiB | simulated {:.3} GiB | divergence {err:.2}%",
            gib(real_peak),
            gib(sim_peak),
        );
    }
    write_artifact(&args.out_dir, "fig6_sim_vs_real.csv", &csv);
    println!("Paper shape: simulated segment curves track the real allocator closely.");
}
