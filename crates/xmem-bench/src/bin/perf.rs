//! `perf` — the estimate-serving performance harness.
//!
//! Times the hot paths the service layers optimize — single estimates
//! (cold, warm, and warm with the full request-tracing envelope on),
//! N×D matrix replay with the pressure-aware fast path
//! on and off, contended simulation-cell cache hits, raw allocator replay
//! throughput, the O(1) LRU against a scan-based reference, the
//! crash-consistent persistence layer (snapshot write cost, warm-boot
//! recovery, and the first estimate after a restart), and a cold
//! batch-size sweep with the incremental parameterized replay on and off
//! — and emits a machine-readable `BENCH_estimator.json` so every PR has
//! a measurable trajectory.
//!
//! Usage: `perf [--quick] [--out PATH]`
//!
//! * `--quick` — CI-sized iteration counts (seconds, not minutes);
//! * `--out`  — output path (default `BENCH_estimator.json`, i.e. the
//!   repo root when run from it).

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use xmem_core::{Analyzer, Orchestrator, Simulator};
use xmem_models::ModelId;
use xmem_optim::OptimizerKind;
use xmem_runtime::{profile_on_cpu, GpuDevice, TrainJobSpec};
use xmem_service::{EstimationService, ServiceConfig, ShardedLruCache, Telemetry, TelemetryConfig};

/// One timed benchmark.
#[derive(Debug, Serialize)]
struct Benchmark {
    /// Stable benchmark identifier.
    name: String,
    /// Operations timed.
    iterations: u64,
    /// Total wall time.
    total_ns: u64,
    /// Per-operation latency.
    ns_per_op: f64,
    /// Throughput.
    ops_per_sec: f64,
    /// What one "operation" is.
    unit: String,
}

/// Service counters snapshot proving what the timed paths executed.
#[derive(Debug, Serialize)]
struct Counters {
    profile_runs: u64,
    sim_runs: u64,
    fast_path_hits: u64,
    full_replays: u64,
    unbounded_replays: u64,
    sim_cache_hits: u64,
    analysis_cache_hits: u64,
    /// Counters of the dedicated incremental-sweep service (its sweep is
    /// timed cold, so these prove the 3-anchor contract exactly).
    sweep_profile_runs: u64,
    sweep_param_replays: u64,
    sweep_incremental_cells: u64,
    sweep_full_replays: u64,
}

/// Headline ratios derived from paired benchmarks.
#[derive(Debug, Serialize)]
struct Derived {
    /// `matrix_replay_full` time over `matrix_replay_fast` time: the
    /// measured speedup of the pressure-aware fast path on an all-roomy
    /// fleet (analyses prewarmed in both runs).
    matrix_fast_path_speedup: f64,
    /// Scan-based reference LRU insert latency over the intrusive-list
    /// cache's: the measured win of O(1) eviction at this capacity.
    lru_o1_speedup_vs_scan: f64,
    /// Cold first-estimate latency over the first estimate served after a
    /// warm boot from a state dir: what crash-consistent persistence buys
    /// a restarted server on its first request.
    warm_restart_first_estimate_speedup: f64,
    /// Full per-batch sweep time over the incremental (parameterized
    /// replay) sweep time, both cold: the win of profiling 3 anchors and
    /// deriving every other batch point instead of profiling all of them.
    sweep_incremental_speedup: f64,
    /// Warm-estimate slowdown with request tracing on, in percent:
    /// `(estimate_warm_traced - estimate_warm) / estimate_warm * 100`.
    /// The telemetry contract is "free enough to leave on"; the harness
    /// asserts this stays ≤ 5%.
    tracing_overhead_pct: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: &'static str,
    quick: bool,
    generated_unix: u64,
    benchmarks: Vec<Benchmark>,
    counters: Counters,
    derived: Derived,
}

fn bench(name: &str, unit: &str, iterations: u64, mut op: impl FnMut()) -> Benchmark {
    let started = Instant::now();
    for _ in 0..iterations {
        op();
    }
    let total_ns = started.elapsed().as_nanos() as u64;
    finish(name, unit, iterations, total_ns)
}

fn finish(name: &str, unit: &str, iterations: u64, total_ns: u64) -> Benchmark {
    let ns_per_op = total_ns as f64 / iterations.max(1) as f64;
    let bench = Benchmark {
        name: name.to_string(),
        iterations,
        total_ns,
        ns_per_op,
        ops_per_sec: if ns_per_op > 0.0 {
            1e9 / ns_per_op
        } else {
            0.0
        },
        unit: unit.to_string(),
    };
    println!(
        "  {:<34} {:>12.0} ns/{} ({:.0} /s, n={})",
        bench.name, bench.ns_per_op, bench.unit, bench.ops_per_sec, bench.iterations
    );
    bench
}

/// The benchmark job mix: small CNN sweeps plus a transformer.
fn jobs() -> Vec<TrainJobSpec> {
    vec![
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 4).with_iterations(2),
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8).with_iterations(2),
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 16).with_iterations(2),
        TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 2).with_iterations(2),
    ]
}

/// Registry names of the synthetic benchmark fleet.
const FLEET: [&str; 8] = ["d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7"];

/// An all-roomy 8-device fleet (16–72 GiB): every cell qualifies for the
/// fast path, so the fast/full pairing isolates the replay strategy.
fn register_fleet(service: &EstimationService) {
    for (i, name) in FLEET.iter().enumerate() {
        service.register_device(
            name,
            GpuDevice {
                name: "perf-fleet",
                capacity: (16 + 8 * i as u64) << 30,
                framework_bytes: 550 << 20,
                init_bytes: 0,
            },
        );
    }
}

/// Times one matrix replay over prewarmed analyses (profiling excluded),
/// so fast vs full compares only the simulation fan-out.
fn matrix_replay(service: &EstimationService, name: &str) -> Benchmark {
    let jobs = jobs();
    for job in &jobs {
        service.stages(job).expect("benchmark jobs analyze");
    }
    let names: Vec<&str> = FLEET.to_vec();
    let started = Instant::now();
    let matrix = service
        .estimate_matrix(&jobs, &names)
        .expect("fleet is registered");
    let total_ns = started.elapsed().as_nanos() as u64;
    finish(name, "cell", matrix.num_cells() as u64, total_ns)
}

/// The scan-based eviction reference the O(1) cache replaced: a
/// `min_by_key` sweep over the whole shard per insert at capacity.
struct ScanLru {
    map: std::collections::HashMap<u64, (u64, u64)>, // key -> (value, tick)
    clock: u64,
    capacity: usize,
}

impl ScanLru {
    fn insert(&mut self, key: u64, value: u64) {
        self.clock += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, &(_, tick))| tick)
                .map(|(&k, _)| k)
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (value, self.clock));
    }
}

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_estimator.json");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("missing value for --out"),
            other => panic!("unknown flag `{other}` (perf [--quick] [--out PATH])"),
        }
    }
    println!(
        "xmem perf harness ({} mode)",
        if quick { "quick" } else { "full" }
    );

    let mut benchmarks = Vec::new();
    let warm_reps: u64 = if quick { 100 } else { 1000 };
    let hit_reps: u64 = if quick { 2_000 } else { 20_000 };
    let replay_reps: u64 = if quick { 5 } else { 40 };
    let lru_reps: u64 = if quick { 20_000 } else { 200_000 };

    // --- single estimates -------------------------------------------------
    let single =
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8).with_iterations(2);
    let service = EstimationService::for_device(GpuDevice::rtx3060());
    let cold = bench("estimate_cold", "estimate", 1, || {
        service.estimate(&single).expect("estimates");
    });
    let cold_ns = cold.ns_per_op;
    benchmarks.push(cold);
    let warm = bench("estimate_warm", "estimate", warm_reps, || {
        service.estimate(&single).expect("estimates");
    });
    let warm_ns = warm.ns_per_op;
    benchmarks.push(warm);

    // --- tracing overhead on the warm path ---------------------------------
    // The same warm estimate with the full request-telemetry envelope a
    // served request pays: trace begun, every pipeline span recorded,
    // trace finished into the ring + stage histograms. The contract is
    // that tracing is cheap enough to leave on in production.
    let tracing_overhead_pct = {
        let telemetry = Telemetry::new(TelemetryConfig::default());
        let traced = bench("estimate_warm_traced", "estimate", warm_reps, || {
            let ctx = telemetry.begin_trace(None);
            service.estimate_traced(&single, &ctx).expect("estimates");
            telemetry.finish(&ctx, "BENCH", "/v1/estimate", 200, false);
        });
        let pct = (traced.ns_per_op - warm_ns) / warm_ns.max(1.0) * 100.0;
        benchmarks.push(traced);
        assert!(
            pct <= 5.0,
            "tracing overhead on the warm path must stay within 5% (measured {pct:.2}%)"
        );
        pct
    };

    // --- N x D matrix replay: fast path vs forced full replays -----------
    let fast_service = EstimationService::for_device(GpuDevice::rtx3060());
    register_fleet(&fast_service);
    let fast = matrix_replay(&fast_service, "matrix_replay_fast");
    let stats = fast_service.sim_stats();
    assert_eq!(
        stats.full_replays, 0,
        "all-roomy fleet must serve every cell via the fast path"
    );
    assert_eq!(stats.unbounded_replays, jobs().len() as u64);

    let full_service = EstimationService::new(
        ServiceConfig::for_device(GpuDevice::rtx3060()).with_fast_path(false),
    );
    register_fleet(&full_service);
    let full = matrix_replay(&full_service, "matrix_replay_full");
    assert_eq!(full_service.sim_stats().fast_path_hits, 0);
    let matrix_fast_path_speedup = full.ns_per_op / fast.ns_per_op.max(1.0);

    // Warm matrix: every cell is a pure sim-shard hit.
    {
        let jobs = jobs();
        let names: Vec<&str> = FLEET.to_vec();
        let cells = (jobs.len() * FLEET.len()) as u64;
        let reps = if quick { 20 } else { 200 };
        let started = Instant::now();
        for _ in 0..reps {
            fast_service
                .estimate_matrix(&jobs, &names)
                .expect("fleet is registered");
        }
        let total_ns = started.elapsed().as_nanos() as u64;
        benchmarks.push(finish("matrix_warm", "cell", cells * reps, total_ns));
    }
    benchmarks.push(fast);
    benchmarks.push(full);

    // --- contended cache-hit latency --------------------------------------
    // 8 threads hammering one warm simulation cell: shard-lock + clone
    // cost under contention.
    {
        let device = GpuDevice::rtx3060();
        fast_service
            .estimate_for_device(&single, device)
            .expect("warms the cell");
        let done = AtomicU64::new(0);
        let started = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..hit_reps {
                        fast_service
                            .estimate_for_device(&single, device)
                            .expect("pure hit");
                    }
                    done.fetch_add(hit_reps, Ordering::Relaxed);
                });
            }
        });
        let total_ns = started.elapsed().as_nanos() as u64;
        benchmarks.push(finish(
            "sim_cell_hit_contended_8t",
            "lookup",
            done.load(Ordering::Relaxed),
            total_ns,
        ));
    }

    // --- allocator replay throughput --------------------------------------
    {
        let spec =
            TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 4).with_iterations(2);
        let trace = profile_on_cpu(&spec);
        let analyzed = Analyzer::new().analyze(&trace).expect("trace analyzes");
        let sequence = Orchestrator::default().orchestrate(&analyzed);
        let events = sequence.events.len() as u64;
        let simulator = Simulator::unbounded();
        let started = Instant::now();
        for _ in 0..replay_reps {
            std::hint::black_box(simulator.replay(&sequence));
        }
        let total_ns = started.elapsed().as_nanos() as u64;
        benchmarks.push(finish(
            "replay_throughput",
            "event",
            events * replay_reps,
            total_ns,
        ));
    }

    // --- O(1) LRU vs the scan-based reference -----------------------------
    // Distinct keys cycling twice the capacity: once warm, every insert
    // evicts, which is exactly where the old implementation scanned.
    let lru_capacity = 1024usize;
    let o1 = {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(lru_capacity, 1);
        let mut key = 0u64;
        bench("lru_insert_o1", "insert", lru_reps, || {
            cache.insert(key % (2 * lru_capacity as u64), key);
            key += 1;
        })
    };
    let scan = {
        let mut cache = ScanLru {
            map: std::collections::HashMap::new(),
            clock: 0,
            capacity: lru_capacity,
        };
        let mut key = 0u64;
        bench("lru_insert_scan_reference", "insert", lru_reps, || {
            cache.insert(key % (2 * lru_capacity as u64), key);
            key += 1;
        })
    };
    let lru_o1_speedup_vs_scan = scan.ns_per_op / o1.ns_per_op.max(1.0);
    benchmarks.push(o1);
    benchmarks.push(scan);

    // --- warm restart: snapshot cost and recovery payoff -------------------
    // A state-dir service populated with the benchmark job mix: how much
    // a snapshot write costs, how long a warm boot (snapshot + journal
    // replay + boot compaction) takes, and what the first estimate after
    // a restart costs when it is a recovered-cache hit instead of a
    // profile run.
    let warm_restart_first_estimate_speedup = {
        let state_dir =
            std::env::temp_dir().join(format!("xmem-perf-state-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&state_dir);
        let state_config =
            || ServiceConfig::for_device(GpuDevice::rtx3060()).with_state_dir(&state_dir);

        let persisted = EstimationService::new(state_config());
        assert!(
            persisted.persist_stats().enabled,
            "benchmark state dir must be usable"
        );
        for job in jobs() {
            persisted.estimate(&job).expect("estimates");
        }
        let snapshot_reps: u64 = if quick { 20 } else { 100 };
        benchmarks.push(bench("snapshot_write", "snapshot", snapshot_reps, || {
            persisted.snapshot_now().expect("snapshot writes");
        }));
        drop(persisted);

        let boot_reps: u64 = if quick { 10 } else { 50 };
        benchmarks.push(bench("warm_boot_recovery", "boot", boot_reps, || {
            std::hint::black_box(EstimationService::new(state_config()));
        }));

        let rebooted = EstimationService::new(state_config());
        let started = Instant::now();
        rebooted.estimate(&single).expect("estimates");
        let total_ns = started.elapsed().as_nanos() as u64;
        let after_boot = finish("estimate_after_warm_boot", "estimate", 1, total_ns);
        assert_eq!(
            rebooted.profile_runs(),
            0,
            "the first estimate after a warm boot must be a recovered-cache hit"
        );
        let speedup = cold_ns / after_boot.ns_per_op.max(1.0);
        benchmarks.push(after_boot);
        let _ = std::fs::remove_dir_all(&state_dir);
        speedup
    };

    // --- incremental sweep vs full per-batch sweep -------------------------
    // Two fresh services, each timed cold over the same dense batch grid:
    // one with the parameterized-replay sweep disabled (every batch point
    // profiles + analyzes from scratch), one with it on (3 anchor profiles
    // fit an affine per-event model, every other cell is derived). Cells
    // must be bit-identical; only the work to produce them differs.
    let (sweep_incremental_speedup, sweep_counters) = {
        let batches: Vec<usize> = (1..=if quick { 12 } else { 48 }).collect();
        let base =
            TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 1).with_iterations(2);

        let full_sweep = EstimationService::new(
            ServiceConfig::for_device(GpuDevice::rtx3060()).with_incremental_sweep(false),
        );
        let started = Instant::now();
        let full_cells = full_sweep.sweep(&base, &batches);
        let full = finish(
            "sweep_full",
            "cell",
            batches.len() as u64,
            started.elapsed().as_nanos() as u64,
        );

        let inc_sweep = EstimationService::for_device(GpuDevice::rtx3060());
        let started = Instant::now();
        let inc_cells = inc_sweep.sweep(&base, &batches);
        let inc = finish(
            "sweep_incremental",
            "cell",
            batches.len() as u64,
            started.elapsed().as_nanos() as u64,
        );

        for ((fb, f), (ib, i)) in full_cells.iter().zip(&inc_cells) {
            assert_eq!(fb, ib);
            let (f, i) = (f.as_ref().expect("sweeps"), i.as_ref().expect("sweeps"));
            assert_eq!(f, i, "incremental sweep cells must be bit-identical");
        }
        let sims = inc_sweep.sim_stats();
        assert_eq!(
            inc_sweep.profile_runs(),
            3,
            "incremental sweep profiles 3 anchors"
        );
        assert_eq!(
            sims.param_replays, 1,
            "one parameterized fit per sweep family"
        );
        assert_eq!(sims.incremental_cells, batches.len() as u64);
        assert_eq!(
            sims.full_replays, 0,
            "no cell may fall back to a full replay"
        );
        let speedup = full.ns_per_op / inc.ns_per_op.max(1.0);
        benchmarks.push(full);
        benchmarks.push(inc);
        (
            speedup,
            (
                inc_sweep.profile_runs(),
                sims.param_replays,
                sims.incremental_cells,
                sims.full_replays,
            ),
        )
    };

    // --- report ------------------------------------------------------------
    let sims = fast_service.sim_stats();
    let counters = Counters {
        profile_runs: fast_service.profile_runs(),
        sim_runs: sims.sim_runs,
        fast_path_hits: sims.fast_path_hits,
        full_replays: sims.full_replays,
        unbounded_replays: sims.unbounded_replays,
        sim_cache_hits: sims.cache.hits,
        analysis_cache_hits: fast_service.cache_stats().hits,
        sweep_profile_runs: sweep_counters.0,
        sweep_param_replays: sweep_counters.1,
        sweep_incremental_cells: sweep_counters.2,
        sweep_full_replays: sweep_counters.3,
    };
    let report = Report {
        schema: "xmem-bench-perf/v1",
        quick,
        generated_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        benchmarks,
        counters,
        derived: Derived {
            matrix_fast_path_speedup,
            lru_o1_speedup_vs_scan,
            warm_restart_first_estimate_speedup,
            sweep_incremental_speedup,
            tracing_overhead_pct,
        },
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write benchmark report");
    println!(
        "fast-path speedup {:.2}x | O(1) LRU vs scan {:.2}x | warm restart {:.0}x | incremental sweep {:.2}x | tracing overhead {:.2}%",
        report.derived.matrix_fast_path_speedup,
        report.derived.lru_o1_speedup_vs_scan,
        report.derived.warm_restart_first_estimate_speedup,
        report.derived.sweep_incremental_speedup,
        report.derived.tracing_overhead_pct
    );
    println!("wrote {out}");
}
