//! Figure 9 (RQ5): MRE of xMem vs DNNMem for the three large models on an
//! NVIDIA A100 40 GB — Llama-3.2-3B-Instruct, DeepSeek-R1-Distill-Qwen-1.5B
//! and Qwen3-4B, with SGD and Adafactor at batch 1, five repeats.

use std::fmt::Write as _;
use xmem_baselines::{DnnMem, MemoryEstimator};
use xmem_bench::{write_artifact, BenchArgs, Scale};
use xmem_eval::metrics;
use xmem_eval::XMemEstimator;
use xmem_models::ModelId;
use xmem_optim::OptimizerKind;
use xmem_runtime::{run_on_gpu, GpuDevice, TrainJobSpec};

fn main() {
    let args = BenchArgs::parse();
    let device = GpuDevice::a100_40g();
    let repeats: u64 = match args.scale {
        Scale::Smoke => 2,
        Scale::Full => 5,
    };
    println!("Figure 9 (RQ5): large models on {}", device.name);
    let optimizers = [
        OptimizerKind::Sgd { momentum: false },
        OptimizerKind::Adafactor,
    ];
    let xmem = XMemEstimator::new();
    let dnnmem = DnnMem::new();
    let mut csv = String::from("model,estimator,optimizer,repeat,rel_error\n");
    for model in ModelId::rq5_set() {
        let name = model.info().name;
        let mut errs: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
        for opt in optimizers {
            for rep in 0..repeats {
                let spec = TrainJobSpec::new(model, opt, 1)
                    .with_iterations(3)
                    .with_seed(args.seed ^ (rep + 1) ^ u64::from(opt.is_stateful()) << 32);
                let gt = run_on_gpu(&spec, &device, None, false);
                assert!(!gt.oom, "{name}+{} must fit the A100", opt.name());
                for est in [&xmem as &dyn MemoryEstimator, &dnnmem] {
                    let out = est.estimate(&spec, &device).expect("both support LMs");
                    let e = metrics::relative_error(out.peak_bytes, gt.peak_nvml);
                    errs.entry(est.name()).or_default().push(e);
                    let _ = writeln!(csv, "{name},{},{},{rep},{e:.6}", est.name(), opt.name());
                }
            }
        }
        let mre = |e: &str| metrics::median(&errs[e]).unwrap_or(f64::NAN) * 100.0;
        println!(
            "  {name:<32} xMem MRE {:>5.1}% | DNNMem MRE {:>5.1}%",
            mre("xMem"),
            mre("DNNMem")
        );
    }
    write_artifact(&args.out_dir, "fig9_large_models.csv", &csv);
    println!("Paper shape: xMem 1-9% MRE; DNNMem 37-52% on these models.");
}
