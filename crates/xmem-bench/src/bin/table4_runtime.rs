//! Table 4: mean estimator runtime (including input preprocessing — for
//! xMem that is the CPU profiling run; for LLMem the two GPU probe
//! executions; for SchedTune feature extraction + inference).
//!
//! Absolute numbers are not comparable with the paper's Python prototype
//! on real hardware; the relative story is recorded in EXPERIMENTS.md.

use std::fmt::Write as _;
use xmem_bench::{campaign_records, write_artifact, BenchArgs, Setting};
use xmem_eval::summary::runtime_table;

fn main() {
    let args = BenchArgs::parse();
    println!("Table 4: mean estimator runtime (Monte Carlo campaign)");
    let records = campaign_records(&args, Setting::MonteCarlo);
    let table = runtime_table(&records);
    let mut csv = String::from("estimator,mean_runtime_s\n");
    println!("{:<12} {:>16}", "estimator", "mean runtime (s)");
    for (est, secs) in &table {
        println!("{est:<12} {secs:>16.4}");
        let _ = writeln!(csv, "{est},{secs:.6}");
    }
    write_artifact(&args.out_dir, "table4_runtime.csv", &csv);
    println!("Paper (Python on real traces): DNNMem 33s, SchedTune 2s, LLMem 17s, xMem 26s.");
}
