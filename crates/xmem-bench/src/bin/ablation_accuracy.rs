//! Ablation study (DESIGN.md §4): how much each xMem mechanism contributes.
//!
//! Part 1 — estimation accuracy. Variants each disable one mechanism:
//! * `no-retime`  — Orchestrator lifecycle rules off (raw CPU timings);
//! * `no-filter`  — script-level blocks are replayed too;
//! * `no-roundup` — allocator 512 B rounding off;
//! * `tensor-sum` — no allocator simulation at all: peak of live tensor
//!   bytes (the naive estimate prior work uses, §2.2).
//!
//! Part 2 — OOM-prediction fidelity near the capacity boundary, where the
//! two-level semantics matter:
//! * `no-reclaim` — cached segments are not released before reporting OOM
//!   (the single-level behaviour the paper attributes to DNNMem, §5.1).

use std::fmt::Write as _;
use xmem_alloc::AllocatorConfig;
use xmem_bench::{write_artifact, BenchArgs};
use xmem_core::{Analyzer, Estimator, EstimatorConfig, Orchestrator};
use xmem_eval::metrics;
use xmem_models::ModelId;
use xmem_optim::OptimizerKind;
use xmem_runtime::{profile_on_cpu, run_on_gpu, GpuDevice, TrainJobSpec};

fn variant_config(device: GpuDevice, variant: &str) -> EstimatorConfig {
    let mut cfg = EstimatorConfig::for_device(device);
    match variant {
        "full" => {}
        "no-retime" => {
            cfg.orchestrator = Orchestrator {
                retime: false,
                ..Orchestrator::default()
            }
        }
        "no-filter" => {
            cfg.orchestrator = Orchestrator {
                filter_script: false,
                ..Orchestrator::default()
            }
        }
        "no-roundup" => cfg.allocator = AllocatorConfig::without_round_up(),
        "no-reclaim" => cfg.allocator = AllocatorConfig::without_reclaim(),
        other => panic!("unknown variant {other}"),
    }
    cfg
}

/// Naive tensor-sum estimate: peak of live requested bytes, no allocator.
fn tensor_sum_estimate(spec: &TrainJobSpec, device: &GpuDevice) -> u64 {
    let trace = profile_on_cpu(spec);
    let analyzed = Analyzer::new().analyze(&trace).expect("well-formed trace");
    let seq = Orchestrator::default().orchestrate(&analyzed);
    let mut live = 0u64;
    let mut peak = 0u64;
    for e in &seq.events {
        if e.is_alloc {
            live += e.bytes;
            peak = peak.max(live);
        } else {
            live -= e.bytes;
        }
    }
    peak + device.framework_bytes
}

fn main() {
    let args = BenchArgs::parse();
    let device = GpuDevice::rtx3060();
    let jobs = [
        (ModelId::ResNet101, OptimizerKind::Adam, 300),
        (ModelId::ConvNextTiny, OptimizerKind::AdamW, 300),
        (ModelId::DistilGpt2, OptimizerKind::AdamW, 20),
        (ModelId::Gpt2, OptimizerKind::Adafactor, 20),
        (ModelId::T5Small, OptimizerKind::Adam, 20),
        (ModelId::MobileNetV3Large, OptimizerKind::RMSprop, 400),
    ];
    let mut csv = String::from("variant,mre,mean_signed_error\n");

    println!(
        "Part 1: accuracy over {} jobs (MRE / mean signed error)",
        jobs.len()
    );
    let truths: Vec<u64> = jobs
        .iter()
        .map(|(model, opt, batch)| {
            let spec = TrainJobSpec::new(*model, *opt, *batch)
                .with_iterations(3)
                .with_seed(args.seed);
            let gt = run_on_gpu(&spec, &device, None, false);
            assert!(!gt.oom);
            gt.peak_nvml
        })
        .collect();
    let report = |variant: &str, estimates: Vec<u64>, csv: &mut String| {
        let errors: Vec<f64> = estimates
            .iter()
            .zip(&truths)
            .map(|(&e, &t)| metrics::relative_error(e, t))
            .collect();
        let signed: f64 = estimates
            .iter()
            .zip(&truths)
            .map(|(&e, &t)| (e as f64 - t as f64) / t as f64)
            .sum::<f64>()
            / truths.len() as f64;
        let mre = metrics::median(&errors).expect("non-empty") * 100.0;
        println!(
            "  {variant:<12} MRE {mre:>7.3}%   bias {:+.3}%",
            signed * 100.0
        );
        let _ = writeln!(csv, "{variant},{:.6},{:.6}", mre / 100.0, signed);
    };
    for variant in ["full", "no-retime", "no-filter", "no-roundup"] {
        let estimates: Vec<u64> = jobs
            .iter()
            .map(|(model, opt, batch)| {
                let spec = TrainJobSpec::new(*model, *opt, *batch)
                    .with_iterations(3)
                    .with_seed(args.seed);
                Estimator::new(variant_config(device, variant))
                    .estimate_job(&spec)
                    .expect("estimation succeeds")
                    .peak_bytes
            })
            .collect();
        report(variant, estimates, &mut csv);
    }
    let estimates: Vec<u64> = jobs
        .iter()
        .map(|(model, opt, batch)| {
            let spec = TrainJobSpec::new(*model, *opt, *batch)
                .with_iterations(3)
                .with_seed(args.seed);
            tensor_sum_estimate(&spec, &device)
        })
        .collect();
    report("tensor-sum", estimates, &mut csv);

    // Part 2: OOM verdicts across the capacity boundary — the two-level
    // reclaim path decides the verdict for jobs just below capacity.
    println!("\nPart 2: OOM-prediction agreement across the capacity boundary");
    let sweep: Vec<TrainJobSpec> = [48, 56, 64, 72, 80, 88, 96, 104]
        .iter()
        .map(|&b| {
            TrainJobSpec::new(ModelId::Gpt2, OptimizerKind::AdamW, b)
                .with_iterations(3)
                .with_seed(args.seed)
        })
        .collect();
    for variant in ["full", "no-reclaim"] {
        let estimator = Estimator::new(variant_config(device, variant));
        let mut agree = 0;
        for spec in &sweep {
            let est = estimator.estimate_job(spec).expect("estimation succeeds");
            let gt = run_on_gpu(spec, &device, None, false);
            if est.oom_predicted == gt.oom {
                agree += 1;
            }
        }
        println!("  {variant:<12} verdict agreement {agree}/{}", sweep.len());
        let _ = writeln!(csv, "{variant}-oom-agreement,{agree},{}", sweep.len());
    }
    write_artifact(&args.out_dir, "ablation_accuracy.csv", &csv);
}
