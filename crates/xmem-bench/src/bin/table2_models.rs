//! Table 2: the model/optimizer inventory of the evaluation, with our
//! reproduced parameter counts next to the published ones.

use xmem_eval::anova::optimizers_for;
use xmem_models::ModelId;

fn main() {
    println!(
        "{:<32} {:<12} {:>14} {:>14} {:>7} {:<12} {:<30}",
        "model", "class", "params(pub)", "params(ours)", "RQ5", "batch grid", "optimizers"
    );
    for model in ModelId::all() {
        let info = model.info();
        let graph = model.build();
        let grid = info.batch_grid;
        let opts: Vec<&str> = optimizers_for(info.arch).iter().map(|o| o.name()).collect();
        println!(
            "{:<32} {:<12} {:>14} {:>14} {:>7} {:<12} {:<30}",
            info.name,
            info.arch.label(),
            info.published_params,
            graph.trainable_param_elems(),
            if info.rq5_only { "yes" } else { "" },
            format!("{}..{}/{}", grid.min, grid.max, grid.step),
            opts.join(",")
        );
    }
}
