//! Table 3: average memory-conservation potential (MCP, Eq. 8) in GiB per
//! estimator, split by architecture class — Monte Carlo records only, as
//! in the paper (§4.4).

use std::fmt::Write as _;
use xmem_bench::{campaign_records, write_artifact, BenchArgs, Setting};
use xmem_eval::summary::mcp_table;

fn main() {
    let args = BenchArgs::parse();
    println!("Table 3: memory conservation potential (Monte Carlo)");
    let records = campaign_records(&args, Setting::MonteCarlo);
    let table = mcp_table(&records);
    let fmt = |v: Option<f64>| v.map_or_else(|| "N/A".to_string(), |x| format!("{x:.2}"));
    println!(
        "{:<12} {:>10} {:>14} {:>10}",
        "estimator", "CNN", "Transformer", "Overall"
    );
    let mut csv = String::from("estimator,cnn_gib,transformer_gib,overall_gib\n");
    for row in &table {
        println!(
            "{:<12} {:>10} {:>14} {:>10}",
            row.estimator,
            fmt(row.cnn_gib),
            fmt(row.transformer_gib),
            fmt(row.overall_gib)
        );
        let _ = writeln!(
            csv,
            "{},{},{},{}",
            row.estimator,
            fmt(row.cnn_gib),
            fmt(row.transformer_gib),
            fmt(row.overall_gib)
        );
    }
    write_artifact(&args.out_dir, "table3_mcp.csv", &csv);
    println!("Paper: DNNMem 3.08/1.29/2.11, SchedTune 5.81/-4.42/0.38,");
    println!("       LLMem N/A/1.68/1.69, xMem 8.67/7.07/7.82 (GB).");
}
