//! Figure 1: the impact of `optimizer.zero_grad()` placement (POS0 =
//! before backward, POS1 = at iteration start) on tensor vs segment
//! memory, for distilGPT2, GPT-Neo and ConvNeXt.
//!
//! Prints the POS0/POS1 peak segment memory per model and writes the
//! full tensor/segment curves as CSV.

use std::fmt::Write as _;
use xmem_bench::{gib, write_artifact, BenchArgs};
use xmem_models::ModelId;
use xmem_optim::OptimizerKind;
use xmem_runtime::{run_on_gpu, GpuDevice, TrainJobSpec, ZeroGradPos};

fn main() {
    let args = BenchArgs::parse();
    let device = GpuDevice::rtx3060();
    println!("Figure 1: zero_grad placement (device {})", device.name);
    let cases = [
        (ModelId::DistilGpt2, 16),
        (ModelId::GptNeo125M, 8),
        (ModelId::ConvNextTiny, 200),
    ];
    let mut csv = String::from("model,pos,ts_us,tensor_bytes,segment_bytes\n");
    for (model, batch) in cases {
        let name = model.info().name;
        let mut peaks = Vec::new();
        for pos in [ZeroGradPos::BeforeBackward, ZeroGradPos::IterStart] {
            let spec = TrainJobSpec::new(model, OptimizerKind::AdamW, batch)
                .with_iterations(3)
                .with_zero_grad(pos)
                .with_seed(args.seed);
            let gt = run_on_gpu(&spec, &device, None, true);
            assert!(!gt.oom, "{name} must fit for the figure");
            for p in &gt.timeline {
                let _ = writeln!(
                    csv,
                    "{name},{},{},{},{}",
                    pos.label(),
                    p.ts_us,
                    p.allocated,
                    p.reserved
                );
            }
            let peak_tensor = gt.timeline.iter().map(|p| p.allocated).max().unwrap_or(0);
            peaks.push((pos, gt.peak_exact, peak_tensor));
        }
        let (p0, p1) = (peaks[0].1, peaks[1].1);
        let delta = (p0 as f64 - p1 as f64).abs() / p1.min(p0) as f64 * 100.0;
        println!(
            "  {name:<14} POS0 segment peak {:.3} GiB (tensor {:.3}) | POS1 {:.3} GiB (tensor {:.3}) | Δsegment {delta:.1}%",
            gib(p0),
            gib(peaks[0].2),
            gib(p1),
            gib(peaks[1].2),
        );
    }
    write_artifact(&args.out_dir, "fig1_zero_grad.csv", &csv);
    println!("Paper shape: tensor curves similar, segment peaks differ by placement.");
}
