//! `cache` — the adaptive-tiering cache benchmark.
//!
//! Replays one deterministic, skewed [`JobKey`] trace — a Zipf(s≈1.0)
//! popularity distribution over a few thousand jobs, polluted with
//! one-shot scan keys (every 10th access is a key never seen again, the
//! sweep/probe traffic shape) and a hot-set rotation at the halfway mark
//! (the workload the online tuner exists for) — against the same
//! `ShardedLruCache` under four policies at an **identical bytes
//! budget**: plain LRU, static SLRU at several pinned fractions, and the
//! default self-tuning adaptive tier (TinyLFU admission + ghost lists +
//! hill-climbing tuner). Emits `BENCH_cache.json` with per-policy hit
//! rates, replay/warm-serve throughput, and the adaptive machinery's
//! counters, asserting in-harness that the adaptive policy beats plain
//! LRU *and* the best static fraction on hit-rate.
//!
//! Usage: `cache [--quick] [--out PATH]`
//!
//! * `--quick` — CI-sized trace (seconds, not minutes);
//! * `--out`  — output path (default `BENCH_cache.json`).

use serde::Serialize;
use std::time::Instant;
use xmem_models::ModelId;
use xmem_optim::OptimizerKind;
use xmem_runtime::TrainJobSpec;
use xmem_service::{JobKey, ShardedLruCache, TieringMode};

/// One timed benchmark (same shape as the `perf` harness).
#[derive(Debug, Serialize)]
struct Benchmark {
    name: String,
    iterations: u64,
    total_ns: u64,
    ns_per_op: f64,
    ops_per_sec: f64,
    unit: String,
}

fn finish(name: &str, unit: &str, iterations: u64, total_ns: u64) -> Benchmark {
    let ns_per_op = total_ns as f64 / iterations.max(1) as f64;
    let bench = Benchmark {
        name: name.to_string(),
        iterations,
        total_ns,
        ns_per_op,
        ops_per_sec: if ns_per_op > 0.0 {
            1e9 / ns_per_op
        } else {
            0.0
        },
        unit: unit.to_string(),
    };
    println!(
        "  {:<34} {:>12.0} ns/{} ({:.0} /s, n={})",
        bench.name, bench.ns_per_op, bench.unit, bench.ops_per_sec, bench.iterations
    );
    bench
}

/// One policy's outcome over the shared trace.
#[derive(Debug, Serialize)]
struct PolicyResult {
    /// Stable policy identifier.
    name: String,
    /// Fraction of trace accesses served without an insert.
    hit_rate: f64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    promoted: u64,
    /// TinyLFU gate denials (adaptive only; 0 elsewhere).
    admission_denied: u64,
    /// Ghost-list hits consumed by the tuner (adaptive only).
    ghost_hits: u64,
    /// Hill-climbing adjustments of the protected fraction.
    tuner_steps: u64,
    /// Frequency-sketch halving decays.
    sketch_resets: u64,
    /// The live protected fraction after the replay, in permille.
    protected_frac_permille: u32,
    /// The byte budget every policy ran under (identical across rows).
    bytes_budget: u64,
}

/// Headline comparisons the CI gate and the README table read.
#[derive(Debug, Serialize)]
struct Derived {
    plain_lru_hit_rate: f64,
    best_static_hit_rate: f64,
    /// The pinned fraction that won among the static rows.
    best_static_frac: f64,
    adaptive_hit_rate: f64,
    /// Adaptive hit-rate minus plain LRU's (the CI-gated headline).
    adaptive_vs_plain_delta: f64,
    /// Adaptive hit-rate minus the best static fraction's.
    adaptive_vs_best_static_delta: f64,
    /// The learned protected fraction the tuner settled on, in permille.
    adaptive_learned_frac_permille: u32,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: &'static str,
    quick: bool,
    generated_unix: u64,
    /// Trace geometry, so a report is self-describing.
    universe: usize,
    trace_len: usize,
    cache_capacity: usize,
    bytes_budget: u64,
    zipf_s: f64,
    benchmarks: Vec<Benchmark>,
    policies: Vec<PolicyResult>,
    derived: Derived,
}

/// xorshift64* — the deterministic trace RNG.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// A Zipf(s) sampler over ranks `0..n` via inverse-CDF binary search.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut XorShift) -> usize {
        #[allow(clippy::cast_precision_loss)]
        let u = (rng.next() >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// The job universe: one [`JobKey`] per batch size — realistic key
/// contents (model, optimizer, batch, iterations) with cheap uniqueness.
fn job_key(batch: usize) -> JobKey {
    JobKey::of(&TrainJobSpec::new(
        ModelId::MobileNetV3Small,
        OptimizerKind::Adam,
        batch,
    ))
}

/// Deterministic synthetic entry cost in bytes: varied (64..=1016, mean
/// ≈540) so the bytes budget — not just the entry count — binds.
fn cost_of(index: u64) -> u64 {
    let mut h = index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 33;
    64 + (h % 120) * 8
}

/// One trace access: a universe index (the key) plus its entry cost.
#[derive(Clone, Copy)]
struct Access {
    index: u64,
    cost: u64,
}

/// Builds the shared skewed trace: Zipf-ranked accesses over `universe`
/// keys, a one-shot scan key every 10th access, and a hot-set rotation
/// (rank→key mapping shifted by a third of the universe) at the halfway
/// mark.
fn build_trace(universe: usize, len: usize, zipf_s: f64) -> Vec<Access> {
    let zipf = Zipf::new(universe, zipf_s);
    let mut rng = XorShift(0x5eed_cafe_f00d_d00d);
    let mut scan_serial = 0u64;
    let rotation = universe as u64 / 3;
    let mut trace = Vec::with_capacity(len);
    for op in 0..len {
        if op % 10 == 9 {
            // A globally unique one-shot key, outside the Zipf universe.
            scan_serial += 1;
            let index = universe as u64 + scan_serial;
            trace.push(Access {
                index,
                cost: cost_of(index),
            });
            continue;
        }
        let rank = zipf.sample(&mut rng) as u64;
        let phase = u64::from(op >= len / 2);
        let index = (rank + phase * rotation) % universe as u64;
        trace.push(Access {
            index,
            cost: cost_of(index),
        });
    }
    trace
}

/// Replays the trace against one cache policy, timing the full replay
/// and a warm-serve pass over the head of the popularity distribution.
fn run_policy(
    name: &str,
    cache: &ShardedLruCache<JobKey, u64>,
    trace: &[Access],
    keys: &[JobKey],
    bytes_budget: u64,
    benchmarks: &mut Vec<Benchmark>,
) -> PolicyResult {
    let key_of = |access: &Access| -> JobKey {
        keys.get(access.index as usize)
            .cloned()
            .unwrap_or_else(|| job_key(access.index as usize))
    };
    let started = Instant::now();
    for access in trace {
        let key = key_of(access);
        if cache.get(&key).is_none() {
            cache.insert(key, access.cost);
        }
    }
    let replay_ns = started.elapsed().as_nanos() as u64;
    benchmarks.push(finish(
        &format!("replay_{name}"),
        "access",
        trace.len() as u64,
        replay_ns,
    ));

    // Warm-serve throughput: hammer the 32 hottest post-rotation keys —
    // resident under any sane policy — so this times pure hit latency.
    let warm_reps = trace.len() as u64 / 4;
    let rotation = keys.len() as u64 / 3;
    let hot: Vec<JobKey> = (0..32)
        .map(|rank| keys[((rank + rotation) % keys.len() as u64) as usize].clone())
        .collect();
    for key in &hot {
        if cache.get(key).is_none() {
            cache.insert(key.clone(), cost_of(0));
        }
    }
    let before = cache.stats();
    let started = Instant::now();
    for i in 0..warm_reps {
        std::hint::black_box(cache.get(&hot[(i % 32) as usize]));
    }
    let warm_ns = started.elapsed().as_nanos() as u64;
    benchmarks.push(finish(
        &format!("warm_get_{name}"),
        "lookup",
        warm_reps,
        warm_ns,
    ));
    let stats = cache.stats();
    assert_eq!(
        stats.hits - before.hits,
        warm_reps,
        "{name}: the warm-serve pass must be pure hits"
    );

    // Hit rate over the trace replay: `before` excludes every warm-pass
    // lookup (it adds at most the 32 seeding gets — noise at trace
    // scale), so replay-phase hits/misses are read from it.
    let replay_hits = before.hits;
    let replay_misses = before.misses;
    let tier = cache.tier_stats();
    #[allow(clippy::cast_precision_loss)]
    let hit_rate = replay_hits as f64 / (replay_hits + replay_misses).max(1) as f64;
    PolicyResult {
        name: name.to_string(),
        hit_rate,
        hits: replay_hits,
        misses: replay_misses,
        insertions: stats.insertions,
        evictions: stats.evictions,
        promoted: stats.promoted,
        admission_denied: stats.admission_denied,
        ghost_hits: stats.ghost_hits,
        tuner_steps: stats.tuner_steps,
        sketch_resets: stats.sketch_resets,
        protected_frac_permille: tier.protected_frac_permille,
        bytes_budget,
    }
}

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_cache.json");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("missing value for --out"),
            other => panic!("unknown flag `{other}` (cache [--quick] [--out PATH])"),
        }
    }
    println!(
        "xmem cache tiering harness ({} mode)",
        if quick { "quick" } else { "full" }
    );

    let universe: usize = if quick { 2048 } else { 8192 };
    let trace_len: usize = if quick { 120_000 } else { 1_200_000 };
    let capacity = universe / 8;
    let shards = 4;
    let zipf_s = 1.0;
    // Identical bytes budget for every policy: roughly the mean entry
    // cost times the entry capacity, so *both* bounds genuinely bind.
    let bytes_budget = capacity as u64 * 540;

    println!(
        "  universe={universe} trace={trace_len} capacity={capacity} budget={bytes_budget}B zipf_s={zipf_s}"
    );
    let trace = build_trace(universe, trace_len, zipf_s);
    let keys: Vec<JobKey> = (0..universe).map(job_key).collect();
    // Scan keys are constructed on the fly; pre-warm the allocator path
    // so the first policy isn't charged for it.
    std::hint::black_box(job_key(universe + 1));

    let weigher: fn(&u64) -> u64 = |cost| *cost;
    let mut benchmarks = Vec::new();
    let mut policies = Vec::new();

    let build = |mode: TieringMode| -> ShardedLruCache<JobKey, u64> {
        ShardedLruCache::new(capacity, shards)
            .with_tiering(mode)
            .with_bytes_budget(bytes_budget, weigher)
    };

    let plain = run_policy(
        "plain_lru",
        &build(TieringMode::Off),
        &trace,
        &keys,
        bytes_budget,
        &mut benchmarks,
    );

    let static_fracs = [0.25, 0.5, 0.75];
    for &frac in &static_fracs {
        let name = format!("static_slru_{:02}", (frac * 100.0) as u32);
        let cache = build(TieringMode::Static(frac));
        policies.push(run_policy(
            &name,
            &cache,
            &trace,
            &keys,
            bytes_budget,
            &mut benchmarks,
        ));
    }

    let adaptive_cache = build(TieringMode::adaptive());
    let adaptive = run_policy(
        "adaptive",
        &adaptive_cache,
        &trace,
        &keys,
        bytes_budget,
        &mut benchmarks,
    );

    // --- in-harness proof obligations ----------------------------------
    let (best_static_hit_rate, best_static_frac) = policies
        .iter()
        .zip(&static_fracs)
        .map(|(p, &f)| (p.hit_rate, f))
        .fold(
            (0.0f64, 0.0f64),
            |best, cur| {
                if cur.0 > best.0 {
                    cur
                } else {
                    best
                }
            },
        );
    println!(
        "hit rates: plain {:.4} | best static ({best_static_frac}) {:.4} | adaptive {:.4} (learned {}‰, {} denials, {} ghost hits, {} tuner steps, {} sketch resets)",
        plain.hit_rate,
        best_static_hit_rate,
        adaptive.hit_rate,
        adaptive.protected_frac_permille,
        adaptive.admission_denied,
        adaptive.ghost_hits,
        adaptive.tuner_steps,
        adaptive.sketch_resets,
    );
    for p in policies.iter() {
        println!("  {:<18} hit_rate {:.4}", p.name, p.hit_rate);
    }
    assert!(
        adaptive.hit_rate > plain.hit_rate,
        "adaptive ({:.4}) must beat plain LRU ({:.4}) on this skewed trace",
        adaptive.hit_rate,
        plain.hit_rate
    );
    assert!(
        adaptive.hit_rate >= best_static_hit_rate,
        "adaptive ({:.4}) must not lose to the best static fraction ({best_static_frac}: {:.4})",
        adaptive.hit_rate,
        best_static_hit_rate
    );
    assert!(
        adaptive.ghost_hits > 0,
        "the ghost lists must have informed the tuner"
    );
    assert!(
        adaptive.tuner_steps > 0,
        "the tuner must have moved the protected fraction"
    );
    assert!(
        adaptive.sketch_resets > 0,
        "the frequency sketch must have decayed on a trace this long"
    );
    assert!(
        adaptive.admission_denied > 0,
        "the TinyLFU gate must have denied one-shot scan keys"
    );
    assert_eq!(
        plain.admission_denied + plain.ghost_hits + plain.tuner_steps,
        0,
        "plain LRU must not touch the tiering machinery"
    );

    let derived = Derived {
        plain_lru_hit_rate: plain.hit_rate,
        best_static_hit_rate,
        best_static_frac,
        adaptive_hit_rate: adaptive.hit_rate,
        adaptive_vs_plain_delta: adaptive.hit_rate - plain.hit_rate,
        adaptive_vs_best_static_delta: adaptive.hit_rate - best_static_hit_rate,
        adaptive_learned_frac_permille: adaptive.protected_frac_permille,
    };
    let mut all_policies = vec![plain];
    all_policies.append(&mut policies);
    all_policies.push(adaptive);
    let report = Report {
        schema: "xmem-bench-cache/v1",
        quick,
        generated_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        universe,
        trace_len,
        cache_capacity: capacity,
        bytes_budget,
        zipf_s,
        benchmarks,
        policies: all_policies,
        derived,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write benchmark report");
    println!("wrote {out}");
}
