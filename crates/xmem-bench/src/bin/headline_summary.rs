//! The headline aggregate of §1/§7: xMem's improvement over the best
//! baseline — MRE −91 %, PEF −75 %, MCP +368 % in the paper.

use xmem_bench::{campaign_records, BenchArgs, Setting};
use xmem_eval::summary::headline;

fn main() {
    let args = BenchArgs::parse();
    let mut records = campaign_records(&args, Setting::Anova);
    records.extend(campaign_records(&args, Setting::MonteCarlo));
    let h = headline(&records).expect("records for xMem and baselines");
    println!("Headline aggregate over {} records:", records.len());
    println!(
        "  MRE: xMem {:.1}% vs best baseline {:.1}%  ->  reduced by {:.0}%",
        h.xmem_mre * 100.0,
        h.best_baseline_mre * 100.0,
        h.mre_reduction * 100.0
    );
    println!(
        "  PEF: xMem {:.1}% vs best baseline {:.1}%  ->  reduced by {:.0}%",
        h.xmem_pef * 100.0,
        h.best_baseline_pef * 100.0,
        h.pef_reduction * 100.0
    );
    println!(
        "  MCP: xMem {:.2} GiB vs best baseline {:.2} GiB  ->  increased by {:.0}%",
        h.xmem_mcp_gib,
        h.best_baseline_mcp_gib,
        h.mcp_increase * 100.0
    );
    println!("Paper: MRE -91%, PEF -75%, MCP +368%.");
}
