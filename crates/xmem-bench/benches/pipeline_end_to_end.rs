//! Criterion benchmark: the estimation pipeline stage by stage — CPU
//! profiling, trace JSON round-trip, analysis, orchestration + simulation,
//! and the end-to-end estimate (Table 4's cost drivers).

use criterion::{criterion_group, criterion_main, Criterion};
use xmem_core::{Analyzer, Estimator, EstimatorConfig, Orchestrator, Simulator};
use xmem_models::ModelId;
use xmem_optim::OptimizerKind;
use xmem_runtime::{profile_on_cpu, GpuDevice, TrainJobSpec};

fn spec() -> TrainJobSpec {
    TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 32).with_iterations(3)
}

fn bench_stages(c: &mut Criterion) {
    let spec = spec();
    let trace = profile_on_cpu(&spec);
    let json = trace.to_json_string().expect("serialize");
    let analyzed = Analyzer::new().analyze(&trace).expect("analyze");
    let sequence = Orchestrator::default().orchestrate(&analyzed);
    let device = GpuDevice::rtx3060();

    c.bench_function("profile_on_cpu", |b| {
        b.iter(|| std::hint::black_box(profile_on_cpu(&spec)))
    });
    c.bench_function("trace_json_parse", |b| {
        b.iter(|| std::hint::black_box(xmem_trace::Trace::from_json_str(&json).expect("parse")))
    });
    c.bench_function("analyzer", |b| {
        b.iter(|| std::hint::black_box(Analyzer::new().analyze(&trace).expect("analyze")))
    });
    c.bench_function("orchestrate_and_simulate", |b| {
        b.iter(|| {
            let seq = Orchestrator::default().orchestrate(&analyzed);
            std::hint::black_box(
                Simulator::new(device.capacity, device.framework_bytes).replay(&seq),
            )
        })
    });
    c.bench_function("simulator_replay", |b| {
        b.iter(|| {
            std::hint::black_box(
                Simulator::new(device.capacity, device.framework_bytes).replay(&sequence),
            )
        })
    });
    c.bench_function("estimate_end_to_end", |b| {
        let estimator = Estimator::new(EstimatorConfig::for_device(device));
        b.iter(|| std::hint::black_box(estimator.estimate_job(&spec).expect("estimate")))
    });
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
