//! Criterion benchmark: caching-allocator throughput — the inner loop of
//! both the ground-truth runtime and xMem's Simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xmem_alloc::{AllocatorConfig, CachingAllocator, DeviceAllocator};

/// A deterministic mixed alloc/free workload of `n` operations.
fn churn(alloc: &mut CachingAllocator, n: usize) {
    let mut live: Vec<u64> = Vec::with_capacity(64);
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let size = 512 + (state % (8 << 20)) as usize;
        if i % 3 == 2 && !live.is_empty() {
            let idx = (state >> 32) as usize % live.len();
            alloc.free(live.swap_remove(idx));
        } else if let Ok(addr) = alloc.alloc(size) {
            live.push(addr);
        }
    }
    for addr in live {
        alloc.free(addr);
    }
}

fn bench_allocator(c: &mut Criterion) {
    let mut group = c.benchmark_group("caching_allocator");
    for ops in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(ops as u64));
        group.bench_with_input(
            BenchmarkId::new("pytorch_defaults", ops),
            &ops,
            |b, &ops| {
                b.iter(|| {
                    let mut alloc = CachingAllocator::new(
                        AllocatorConfig::pytorch_defaults(),
                        DeviceAllocator::unlimited(),
                    );
                    churn(&mut alloc, ops);
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("without_caching", ops), &ops, |b, &ops| {
            b.iter(|| {
                let mut alloc = CachingAllocator::new(
                    AllocatorConfig::without_caching(),
                    DeviceAllocator::unlimited(),
                );
                churn(&mut alloc, ops);
            });
        });
    }
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut alloc = CachingAllocator::new(
        AllocatorConfig::pytorch_defaults(),
        DeviceAllocator::unlimited(),
    );
    churn(&mut alloc, 5_000);
    // Re-populate a non-trivial live state.
    let addrs: Vec<u64> = (0..512)
        .map(|i| alloc.alloc(4096 + i * 512).expect("unbounded"))
        .collect();
    c.bench_function("allocator_snapshot", |b| {
        b.iter(|| std::hint::black_box(alloc.snapshot()))
    });
    for a in addrs {
        alloc.free(a);
    }
}

criterion_group!(benches, bench_allocator, bench_snapshot);
criterion_main!(benches);
