//! Criterion benchmark: allocator-mechanism ablations — simulator replay
//! cost under each allocator variant (rounding, caching, reclaim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmem_alloc::AllocatorConfig;
use xmem_core::{Analyzer, Orchestrator, Simulator};
use xmem_models::ModelId;
use xmem_optim::OptimizerKind;
use xmem_runtime::{profile_on_cpu, GpuDevice, TrainJobSpec};

fn bench_simulator_variants(c: &mut Criterion) {
    let spec = TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 8).with_iterations(3);
    let trace = profile_on_cpu(&spec);
    let analyzed = Analyzer::new().analyze(&trace).expect("analyze");
    let sequence = Orchestrator::default().orchestrate(&analyzed);
    let device = GpuDevice::rtx3060();

    let variants: [(&str, AllocatorConfig); 4] = [
        ("pytorch_defaults", AllocatorConfig::pytorch_defaults()),
        ("without_round_up", AllocatorConfig::without_round_up()),
        ("without_caching", AllocatorConfig::without_caching()),
        ("without_reclaim", AllocatorConfig::without_reclaim()),
    ];
    let mut group = c.benchmark_group("simulator_allocator_variants");
    for (name, config) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, cfg| {
            b.iter(|| {
                let sim = Simulator {
                    allocator: cfg.clone(),
                    capacity: Some(device.capacity),
                    framework_bytes: device.framework_bytes,
                    record_timeline: false,
                };
                std::hint::black_box(sim.replay(&sequence))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator_variants);
criterion_main!(benches);
