use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The device (driver) level of the memory chain — a capacity-limited,
/// page-granular allocator standing in for `cudaMalloc`/`cudaFree`.
///
/// Virtual addresses are handed out monotonically (the CUDA virtual address
/// space is effectively unbounded); capacity accounting is what matters.
/// `reserved_external` models memory the job cannot use: other processes
/// (`M_init`) plus the CUDA context / framework overhead (`M_fm`) from the
/// paper's notation (Table 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceAllocator {
    capacity: u64,
    page: u64,
    reserved_external: u64,
    used: u64,
    peak_used: u64,
    next_addr: u64,
    allocs: HashMap<u64, u64>,
    num_allocs: u64,
    num_frees: u64,
}

impl DeviceAllocator {
    /// Allocation granularity of modern CUDA drivers (2 MiB). The one
    /// definition every simulation layer shares: the bounded/unbounded
    /// simulators pass it to [`DeviceAllocator::new`], and the fast-path
    /// exactness check in `xmem-core` verifies segment sizes against it —
    /// changing the page here keeps both in lockstep.
    pub const DEFAULT_PAGE: u64 = 2 << 20;

    /// Creates a device with `capacity` bytes, `page`-byte allocation
    /// granularity (2 MiB for modern CUDA drivers) and `reserved_external`
    /// bytes already unavailable to the job.
    ///
    /// # Panics
    /// Panics if `page` is zero.
    #[must_use]
    pub fn new(capacity: u64, page: u64, reserved_external: u64) -> Self {
        assert!(page > 0, "page granularity must be non-zero");
        DeviceAllocator {
            capacity,
            page,
            reserved_external,
            used: 0,
            peak_used: 0,
            // Start away from zero so address 0 never appears (NULL-like).
            next_addr: 0x7f00_0000_0000,
            allocs: HashMap::new(),
            num_allocs: 0,
            num_frees: 0,
        }
    }

    /// Unlimited device for pure framework-level simulations (the paper's
    /// Fig. 3 example and the one-level ablation).
    #[must_use]
    pub fn unlimited() -> Self {
        DeviceAllocator::new(u64::MAX / 2, Self::DEFAULT_PAGE, 0)
    }

    /// Total device capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes unavailable to the job (other processes + framework context).
    #[must_use]
    pub fn reserved_external(&self) -> u64 {
        self.reserved_external
    }

    /// Adjusts the external reservation (used by the second validation
    /// round, which caps the job at `M_init + M_fm + estimate`).
    pub fn set_reserved_external(&mut self, bytes: u64) {
        self.reserved_external = bytes;
    }

    /// Bytes currently allocated through this device (page-rounded).
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Peak of [`DeviceAllocator::used`].
    #[must_use]
    pub fn peak_used(&self) -> u64 {
        self.peak_used
    }

    /// Total bytes NVML would report as used: external reservations plus
    /// job allocations.
    #[must_use]
    pub fn total_used(&self) -> u64 {
        self.reserved_external + self.used
    }

    /// Bytes still allocatable.
    #[must_use]
    pub fn available(&self) -> u64 {
        self.capacity
            .saturating_sub(self.reserved_external)
            .saturating_sub(self.used)
    }

    fn round_page(&self, size: u64) -> u64 {
        size.div_ceil(self.page) * self.page
    }

    /// Allocates `size` bytes (rounded to page granularity), returning the
    /// base address, or `None` on device OOM.
    pub fn alloc(&mut self, size: u64) -> Option<u64> {
        let rounded = self.round_page(size.max(1));
        if rounded > self.available() {
            return None;
        }
        let addr = self.next_addr;
        self.next_addr += rounded;
        self.used += rounded;
        self.peak_used = self.peak_used.max(self.used);
        self.allocs.insert(addr, rounded);
        self.num_allocs += 1;
        Some(addr)
    }

    /// Frees an allocation, returning its rounded size.
    ///
    /// # Panics
    /// Panics if `addr` was not returned by [`DeviceAllocator::alloc`] (a
    /// simulation bug, never a workload condition).
    pub fn free(&mut self, addr: u64) -> u64 {
        let size = self
            .allocs
            .remove(&addr)
            .expect("device free of unknown address");
        self.used -= size;
        self.num_frees += 1;
        size
    }

    /// Number of live device allocations.
    #[must_use]
    pub fn live_allocs(&self) -> usize {
        self.allocs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1 << 20;

    #[test]
    fn alloc_rounds_to_page() {
        let mut d = DeviceAllocator::new(100 * MIB, 2 * MIB, 0);
        let a = d.alloc(1).unwrap();
        assert_eq!(d.used(), 2 * MIB);
        assert_eq!(d.free(a), 2 * MIB);
        assert_eq!(d.used(), 0);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut d = DeviceAllocator::new(10 * MIB, 2 * MIB, 0);
        assert!(d.alloc(8 * MIB).is_some());
        assert!(d.alloc(4 * MIB).is_none()); // only 2 MiB left
        assert!(d.alloc(2 * MIB).is_some());
        assert_eq!(d.available(), 0);
    }

    #[test]
    fn external_reservation_reduces_availability() {
        let mut d = DeviceAllocator::new(10 * MIB, 2 * MIB, 6 * MIB);
        assert_eq!(d.available(), 4 * MIB);
        assert!(d.alloc(6 * MIB).is_none());
        assert!(d.alloc(4 * MIB).is_some());
        assert_eq!(d.total_used(), 10 * MIB);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut d = DeviceAllocator::new(100 * MIB, 2 * MIB, 0);
        let a = d.alloc(10 * MIB).unwrap();
        let b = d.alloc(10 * MIB).unwrap();
        d.free(a);
        d.free(b);
        assert_eq!(d.peak_used(), 20 * MIB);
        assert_eq!(d.used(), 0);
    }

    #[test]
    #[should_panic(expected = "unknown address")]
    fn double_free_panics() {
        let mut d = DeviceAllocator::new(100 * MIB, 2 * MIB, 0);
        let a = d.alloc(MIB).unwrap();
        d.free(a);
        d.free(a);
    }

    #[test]
    fn addresses_are_unique_and_nonzero() {
        let mut d = DeviceAllocator::new(100 * MIB, 2 * MIB, 0);
        let a = d.alloc(MIB).unwrap();
        let b = d.alloc(MIB).unwrap();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
