use crate::{MemoryCounters, PoolKind};
use serde::{Deserialize, Serialize};

/// Allocation state of a block inside a segment snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockState {
    /// Block is handed out to a caller.
    Allocated,
    /// Block is cached, available for reuse.
    Free,
}

/// One block within a [`SegmentSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockSnapshot {
    /// Offset from the segment base address.
    pub offset: u64,
    /// Rounded block size in bytes.
    pub size: u64,
    /// Originally requested size (0 for free blocks).
    pub requested: u64,
    /// Allocation state.
    pub state: BlockState,
}

/// One device segment and its block tiling.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentSnapshot {
    /// Device base address.
    pub addr: u64,
    /// Segment size in bytes.
    pub size: u64,
    /// Owning pool.
    pub pool: PoolKind,
    /// Blocks ordered by offset; they tile the segment exactly.
    pub blocks: Vec<BlockSnapshot>,
}

impl SegmentSnapshot {
    /// Bytes of this segment occupied by allocated blocks.
    #[must_use]
    pub fn active_bytes(&self) -> u64 {
        self.blocks
            .iter()
            .filter(|b| b.state == BlockState::Allocated)
            .map(|b| b.size)
            .sum()
    }

    /// External fragmentation of the segment: cached bytes that exist but
    /// are unusable as one contiguous run.
    #[must_use]
    pub fn largest_free_run(&self) -> u64 {
        self.blocks
            .iter()
            .filter(|b| b.state == BlockState::Free)
            .map(|b| b.size)
            .max()
            .unwrap_or(0)
    }
}

/// Full state of a [`crate::CachingAllocator`] at one instant — the
/// stand-in for PyTorch's `torch.cuda.memory_snapshot()` used to validate
/// the Memory Simulator (paper Fig. 6) and the Analyzer output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocatorSnapshot {
    /// Virtual timestamp at capture (µs).
    pub ts_us: u64,
    /// Segments ordered by base address.
    pub segments: Vec<SegmentSnapshot>,
    /// Counter state at capture.
    pub counters: MemoryCounters,
}

impl AllocatorSnapshot {
    /// Total reserved bytes (sum of segment sizes).
    #[must_use]
    pub fn reserved_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.size).sum()
    }

    /// Total allocated-block bytes across segments.
    #[must_use]
    pub fn active_bytes(&self) -> u64 {
        self.segments
            .iter()
            .map(SegmentSnapshot::active_bytes)
            .sum()
    }
}

/// Structural difference between two allocator snapshots — used to
/// validate the Memory Simulator against real allocator state (the
/// paper's Fig. 6 check, and the Analyzer's snapshot verification hook).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotDiff {
    /// `other.reserved - self.reserved` in bytes.
    pub reserved_delta: i64,
    /// `other.active - self.active` in bytes.
    pub active_delta: i64,
    /// `other.segments - self.segments` count.
    pub segment_count_delta: i64,
}

impl SnapshotDiff {
    /// Whether the snapshots agree within `tolerance_bytes` on both byte
    /// quantities.
    #[must_use]
    pub fn within(&self, tolerance_bytes: u64) -> bool {
        self.reserved_delta.unsigned_abs() <= tolerance_bytes
            && self.active_delta.unsigned_abs() <= tolerance_bytes
    }
}

impl AllocatorSnapshot {
    /// Diffs `other` against `self`.
    #[must_use]
    pub fn diff(&self, other: &AllocatorSnapshot) -> SnapshotDiff {
        SnapshotDiff {
            reserved_delta: other.reserved_bytes() as i64 - self.reserved_bytes() as i64,
            active_delta: other.active_bytes() as i64 - self.active_bytes() as i64,
            segment_count_delta: other.segments.len() as i64 - self.segments.len() as i64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> SegmentSnapshot {
        SegmentSnapshot {
            addr: 0x1000,
            size: 2048,
            pool: PoolKind::Small,
            blocks: vec![
                BlockSnapshot {
                    offset: 0,
                    size: 512,
                    requested: 100,
                    state: BlockState::Allocated,
                },
                BlockSnapshot {
                    offset: 512,
                    size: 1024,
                    requested: 0,
                    state: BlockState::Free,
                },
                BlockSnapshot {
                    offset: 1536,
                    size: 512,
                    requested: 512,
                    state: BlockState::Allocated,
                },
            ],
        }
    }

    #[test]
    fn segment_accounting() {
        let s = seg();
        assert_eq!(s.active_bytes(), 1024);
        assert_eq!(s.largest_free_run(), 1024);
    }

    #[test]
    fn diff_reports_deltas_and_tolerance() {
        let a = AllocatorSnapshot {
            ts_us: 0,
            segments: vec![seg()],
            counters: MemoryCounters::default(),
        };
        let b = AllocatorSnapshot {
            ts_us: 1,
            segments: vec![seg(), seg()],
            counters: MemoryCounters::default(),
        };
        let d = a.diff(&b);
        assert_eq!(d.reserved_delta, 2048);
        assert_eq!(d.active_delta, 1024);
        assert_eq!(d.segment_count_delta, 1);
        assert!(d.within(2048));
        assert!(!d.within(1000));
        assert_eq!(
            a.diff(&a),
            SnapshotDiff {
                reserved_delta: 0,
                active_delta: 0,
                segment_count_delta: 0
            }
        );
    }

    #[test]
    fn snapshot_totals() {
        let snap = AllocatorSnapshot {
            ts_us: 7,
            segments: vec![seg(), seg()],
            counters: MemoryCounters::default(),
        };
        assert_eq!(snap.reserved_bytes(), 4096);
        assert_eq!(snap.active_bytes(), 2048);
    }
}
