use serde::{Deserialize, Serialize};

/// Which free pool a segment belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Requests of at most `small_size` (1 MiB by default).
    Small,
    /// Everything larger.
    Large,
}

/// Live byte counters of a [`crate::CachingAllocator`], in the three
/// meanings PyTorch distinguishes:
///
/// * `allocated` — bytes the *caller* asked for (the paper's "Tensor"
///   memory, Fig. 1 green/red areas);
/// * `active` — bytes occupied by allocated blocks after rounding;
/// * `reserved` — bytes held in segments obtained from the device (the
///   paper's "Segment" memory — what NVML observes and what estimation must
///   predict).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryCounters {
    /// Requested bytes currently allocated.
    pub allocated: u64,
    /// Rounded bytes currently allocated.
    pub active: u64,
    /// Segment bytes currently reserved from the device.
    pub reserved: u64,
    /// High-water mark of `allocated`.
    pub peak_allocated: u64,
    /// High-water mark of `active`.
    pub peak_active: u64,
    /// High-water mark of `reserved`.
    pub peak_reserved: u64,
    /// Number of successful block allocations.
    pub num_allocs: u64,
    /// Number of block frees.
    pub num_frees: u64,
    /// Number of segments requested from the device.
    pub num_segments_allocated: u64,
    /// Number of segments returned to the device.
    pub num_segments_released: u64,
    /// Number of times cached segments were reclaimed to satisfy a request.
    pub num_reclaims: u64,
}

impl MemoryCounters {
    pub(crate) fn on_alloc(&mut self, requested: u64, rounded: u64) {
        self.allocated += requested;
        self.active += rounded;
        self.num_allocs += 1;
        self.peak_allocated = self.peak_allocated.max(self.allocated);
        self.peak_active = self.peak_active.max(self.active);
    }

    pub(crate) fn on_free(&mut self, requested: u64, rounded: u64) {
        self.allocated -= requested;
        self.active -= rounded;
        self.num_frees += 1;
    }

    pub(crate) fn on_segment_alloc(&mut self, bytes: u64) {
        self.reserved += bytes;
        self.num_segments_allocated += 1;
        self.peak_reserved = self.peak_reserved.max(self.reserved);
    }

    pub(crate) fn on_segment_release(&mut self, bytes: u64) {
        self.reserved -= bytes;
        self.num_segments_released += 1;
    }
}

/// One point of the memory-usage curve (paper Figs. 1 and 6): the counter
/// state after an allocator event, stamped with the caller's virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Virtual time in microseconds (caller-provided).
    pub ts_us: u64,
    /// Requested bytes allocated at this instant ("Tensor" curve).
    pub allocated: u64,
    /// Segment bytes reserved at this instant ("Segment" curve).
    pub reserved: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_peaks() {
        let mut c = MemoryCounters::default();
        c.on_alloc(100, 512);
        c.on_alloc(100, 512);
        c.on_free(100, 512);
        assert_eq!(c.allocated, 100);
        assert_eq!(c.active, 512);
        assert_eq!(c.peak_allocated, 200);
        assert_eq!(c.peak_active, 1024);
        assert_eq!(c.num_allocs, 2);
        assert_eq!(c.num_frees, 1);
    }

    #[test]
    fn segment_counters() {
        let mut c = MemoryCounters::default();
        c.on_segment_alloc(2 << 20);
        c.on_segment_alloc(20 << 20);
        c.on_segment_release(2 << 20);
        assert_eq!(c.reserved, 20 << 20);
        assert_eq!(c.peak_reserved, 22 << 20);
        assert_eq!(c.num_segments_allocated, 2);
        assert_eq!(c.num_segments_released, 1);
    }
}
