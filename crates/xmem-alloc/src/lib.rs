//! Two-level GPU memory-allocator simulation.
//!
//! This crate reproduces the memory-management chain that sits between a
//! deep-learning framework and the GPU (paper §2.2 and §3.4):
//!
//! * [`CachingAllocator`] — a best-fit-with-coalescing (BFC) caching
//!   allocator modeled on PyTorch's `CUDACachingAllocator`: requests are
//!   rounded up to 512-byte multiples, served by splitting blocks out of
//!   larger *segments* (2 MiB small buffers / 20 MiB large buffers / 2
//!   MiB-rounded huge allocations), freed blocks are cached and coalesced
//!   with free neighbours, and cached segments are reclaimed before an
//!   out-of-memory condition is reported.
//! * [`DeviceAllocator`] — the device (driver) level: a capacity-limited,
//!   page-granular allocator standing in for `cudaMalloc`/`cudaFree`.
//!
//! An OOM is signalled only when a request fails at *both* levels even after
//! cached-segment reclamation — the two-level semantics the paper identifies
//! as missing from prior estimators.
//!
//! The same allocator serves two roles in this reproduction: it backs the
//! simulated-GPU ground-truth runtime, and it is the engine of xMem's Memory
//! Simulator. All behaviour knobs live in [`AllocatorConfig`] so ablation
//! benchmarks can disable rounding, caching, reclamation, or the second
//! level independently.
//!
//! # Example
//!
//! ```
//! use xmem_alloc::{AllocatorConfig, CachingAllocator, DeviceAllocator};
//!
//! let device = DeviceAllocator::new(12 * (1 << 30), 2 << 20, 0);
//! let mut alloc = CachingAllocator::new(AllocatorConfig::pytorch_defaults(), device);
//!
//! let a = alloc.alloc(1_000_000).unwrap();          // rounded to 512-multiple
//! assert_eq!(alloc.counters().reserved, 2 << 20);   // one 2 MiB small segment
//! alloc.free(a);
//! assert_eq!(alloc.counters().reserved, 2 << 20);   // segment stays cached
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod caching;
mod config;
mod device;
mod error;
mod slab;
mod snapshot;
mod stats;

pub use caching::CachingAllocator;
pub use config::AllocatorConfig;
pub use device::DeviceAllocator;
pub use error::OomError;
pub use snapshot::{AllocatorSnapshot, BlockSnapshot, BlockState, SegmentSnapshot, SnapshotDiff};
pub use stats::{MemoryCounters, PoolKind, TimelinePoint};
