use crate::slab::Slab;
use crate::snapshot::{AllocatorSnapshot, BlockSnapshot, BlockState, SegmentSnapshot};
use crate::{AllocatorConfig, DeviceAllocator, MemoryCounters, OomError, PoolKind, TimelinePoint};
use std::collections::{BTreeSet, HashMap};

type BlockKey = u32;
type SegmentKey = u32;

#[derive(Debug, Clone)]
struct Block {
    addr: u64,
    size: usize,
    /// Caller-requested size; 0 while the block is free.
    requested: usize,
    segment: SegmentKey,
    prev: Option<BlockKey>,
    next: Option<BlockKey>,
    allocated: bool,
}

#[derive(Debug, Clone)]
struct Segment {
    addr: u64,
    size: usize,
    pool: PoolKind,
    first_block: BlockKey,
}

/// Best-fit-with-coalescing caching allocator — the framework level of the
/// two-level simulation (paper §3.4 techniques i–v).
///
/// Mirrors PyTorch's `CUDACachingAllocator`:
/// 1. requests are rounded up to 512-byte multiples (*Round up*);
/// 2. memory is obtained from the device in *Segments* (2 MiB small
///    buffers, 20 MiB large buffers, 2 MiB-rounded huge allocations);
/// 3. free blocks are kept in per-pool ordered sets and served best-fit,
///    splitting when the remainder is worth keeping (*Algorithm*, BFC);
/// 4. freed blocks are cached and coalesced with free neighbours
///    (*Caching Behaviour*);
/// 5. on device OOM, cached segments are released and the request retried;
///    only if that fails is [`OomError`] reported (*OOM*, two-level
///    semantics).
///
/// Streams are not modeled (the evaluation workloads are single-stream
/// training loops); this is the only simplification relative to the real
/// allocator and is shared with the paper's released simulator.
#[derive(Debug, Clone)]
pub struct CachingAllocator {
    config: AllocatorConfig,
    device: DeviceAllocator,
    blocks: Slab<Block>,
    segments: Slab<Segment>,
    /// Free blocks keyed by (size, addr) — best-fit = first in range.
    free_small: BTreeSet<(usize, u64, BlockKey)>,
    free_large: BTreeSet<(usize, u64, BlockKey)>,
    by_addr: HashMap<u64, BlockKey>,
    counters: MemoryCounters,
    clock_us: u64,
    timeline: Option<Vec<TimelinePoint>>,
}

impl CachingAllocator {
    /// Creates an allocator over `device` with the given behaviour knobs.
    #[must_use]
    pub fn new(config: AllocatorConfig, device: DeviceAllocator) -> Self {
        CachingAllocator {
            config,
            device,
            blocks: Slab::new(),
            segments: Slab::new(),
            free_small: BTreeSet::new(),
            free_large: BTreeSet::new(),
            by_addr: HashMap::new(),
            counters: MemoryCounters::default(),
            clock_us: 0,
            timeline: None,
        }
    }

    /// Convenience constructor with PyTorch defaults on an unlimited device.
    #[must_use]
    pub fn unbounded() -> Self {
        CachingAllocator::new(
            AllocatorConfig::pytorch_defaults(),
            DeviceAllocator::unlimited(),
        )
    }

    /// The behaviour configuration.
    #[must_use]
    pub fn config(&self) -> &AllocatorConfig {
        &self.config
    }

    /// The underlying device level.
    #[must_use]
    pub fn device(&self) -> &DeviceAllocator {
        &self.device
    }

    /// Mutable access to the device level (used by the validation protocol
    /// to tighten the external reservation between rounds).
    pub fn device_mut(&mut self) -> &mut DeviceAllocator {
        &mut self.device
    }

    /// Current counters.
    #[must_use]
    pub fn counters(&self) -> &MemoryCounters {
        &self.counters
    }

    /// Advances the virtual clock used to stamp timeline points.
    pub fn advance_clock(&mut self, ts_us: u64) {
        self.clock_us = self.clock_us.max(ts_us);
    }

    /// Enables usage-curve recording (one point per alloc/free).
    pub fn record_timeline(&mut self, enable: bool) {
        if enable && self.timeline.is_none() {
            self.timeline = Some(Vec::new());
        } else if !enable {
            self.timeline = None;
        }
    }

    /// The recorded usage curve, if recording is enabled.
    #[must_use]
    pub fn timeline(&self) -> &[TimelinePoint] {
        self.timeline.as_deref().unwrap_or(&[])
    }

    fn note_timeline(&mut self) {
        if let Some(t) = &mut self.timeline {
            t.push(TimelinePoint {
                ts_us: self.clock_us,
                allocated: self.counters.allocated,
                reserved: self.counters.reserved,
            });
        }
    }

    fn pool_of(&self, rounded: usize) -> PoolKind {
        if rounded <= self.config.small_size {
            PoolKind::Small
        } else {
            PoolKind::Large
        }
    }

    fn free_set(&mut self, pool: PoolKind) -> &mut BTreeSet<(usize, u64, BlockKey)> {
        match pool {
            PoolKind::Small => &mut self.free_small,
            PoolKind::Large => &mut self.free_large,
        }
    }

    /// Allocates `size` bytes, returning the block's device address.
    ///
    /// # Errors
    /// Returns [`OomError`] when the request cannot be satisfied at either
    /// level even after cached-segment reclamation.
    pub fn alloc(&mut self, size: usize) -> Result<u64, OomError> {
        let rounded = self.config.round_size(size);
        let pool = self.pool_of(rounded);

        let key = match self.find_free_block(pool, rounded) {
            Some(key) => key,
            None => self.alloc_segment_block(pool, rounded, size)?,
        };

        let key = self.maybe_split(pool, key, rounded);
        let block = self.blocks.get_mut(key);
        block.allocated = true;
        block.requested = size;
        let addr = block.addr;
        // `active` tracks real block sizes: when the remainder was too small
        // to split off, the block is larger than the rounded request.
        let block_size = block.size as u64;
        self.by_addr.insert(addr, key);
        self.counters.on_alloc(size as u64, block_size);
        self.note_timeline();
        Ok(addr)
    }

    /// Frees the block at `addr`, caching and coalescing it.
    ///
    /// # Panics
    /// Panics if `addr` is not a live allocation (a simulation bug).
    pub fn free(&mut self, addr: u64) {
        let key = self.by_addr.remove(&addr).expect("free of unknown address");
        let block = self.blocks.get_mut(key);
        assert!(block.allocated, "double free");
        block.allocated = false;
        let requested = std::mem::take(&mut block.requested);
        let rounded = block.size;
        let segment_key = block.segment;
        let pool = self.segments.get(segment_key).pool;

        self.counters.on_free(requested as u64, rounded as u64);
        let merged = self.coalesce(pool, key);

        if self.config.caching_enabled {
            let b = self.blocks.get(merged);
            let entry = (b.size, b.addr, merged);
            self.free_set(pool).insert(entry);
        } else {
            // Non-caching ablation: return whole-segment blocks to the
            // device immediately; partial blocks must stay.
            let b = self.blocks.get(merged);
            let seg = self.segments.get(segment_key);
            if b.size == seg.size {
                self.release_segment_with_block(segment_key, merged);
            } else {
                let entry = (b.size, b.addr, merged);
                self.free_set(pool).insert(entry);
            }
        }
        self.note_timeline();
    }

    /// Releases every cached whole-segment block back to the device
    /// (`torch.cuda.empty_cache()`).
    pub fn empty_cache(&mut self) {
        self.release_cached_segments(None);
    }

    /// Captures the full segment/block state.
    #[must_use]
    pub fn snapshot(&self) -> AllocatorSnapshot {
        let mut segments: Vec<SegmentSnapshot> = Vec::with_capacity(self.segments.len());
        for (_, seg) in self.segments.iter() {
            let mut blocks = Vec::new();
            let mut cur = Some(seg.first_block);
            while let Some(k) = cur {
                let b = self.blocks.get(k);
                blocks.push(BlockSnapshot {
                    offset: b.addr - seg.addr,
                    size: b.size as u64,
                    requested: b.requested as u64,
                    state: if b.allocated {
                        BlockState::Allocated
                    } else {
                        BlockState::Free
                    },
                });
                cur = b.next;
            }
            segments.push(SegmentSnapshot {
                addr: seg.addr,
                size: seg.size as u64,
                pool: seg.pool,
                blocks,
            });
        }
        segments.sort_by_key(|s| s.addr);
        AllocatorSnapshot {
            ts_us: self.clock_us,
            segments,
            counters: self.counters,
        }
    }

    // ---- internals -------------------------------------------------------

    fn find_free_block(&mut self, pool: PoolKind, rounded: usize) -> Option<BlockKey> {
        let max_split = self.config.max_split_size;
        let set = self.free_set(pool);
        let mut chosen = None;
        for &(size, addr, key) in set.range((rounded, 0, 0)..) {
            if let Some(mss) = max_split {
                // Oversize blocks are preserved for oversize requests.
                if size >= mss && rounded < mss {
                    continue;
                }
            }
            chosen = Some((size, addr, key));
            break;
        }
        let (size, addr, key) = chosen?;
        set.remove(&(size, addr, key));
        Some(key)
    }

    fn alloc_segment_block(
        &mut self,
        pool: PoolKind,
        rounded: usize,
        requested: usize,
    ) -> Result<BlockKey, OomError> {
        let alloc_size = self.config.allocation_size(rounded);
        let mut reclaim_attempted = false;

        // Proactive garbage collection (`garbage_collection_threshold`):
        // trim cached whole segments before growing past the configured
        // fraction of usable capacity.
        if let Some(threshold) = self.config.gc_threshold {
            let usable = self
                .device
                .capacity()
                .saturating_sub(self.device.reserved_external());
            if usable < u64::MAX / 4 {
                let budget = (usable as f64 * threshold) as u64;
                if self.counters.reserved + alloc_size as u64 > budget {
                    self.release_cached_segments(None);
                }
            }
        }

        let addr = match self.device.alloc(alloc_size as u64) {
            Some(addr) => addr,
            None if self.config.reclaim_on_oom => {
                reclaim_attempted = true;
                // First try freeing cached blocks from the same pool that
                // could satisfy the request, then everything.
                self.release_cached_segments(Some((pool, alloc_size)));
                match self.device.alloc(alloc_size as u64) {
                    Some(addr) => addr,
                    None => {
                        self.release_cached_segments(None);
                        self.device
                            .alloc(alloc_size as u64)
                            .ok_or_else(|| self.oom_error(requested, rounded, alloc_size, true))?
                    }
                }
            }
            None => return Err(self.oom_error(requested, rounded, alloc_size, false)),
        };
        if reclaim_attempted {
            self.counters.num_reclaims += 1;
        }

        let segment_key = self.segments.insert(Segment {
            addr,
            size: alloc_size,
            pool,
            first_block: 0, // patched below
        });
        let block_key = self.blocks.insert(Block {
            addr,
            size: alloc_size,
            requested: 0,
            segment: segment_key,
            prev: None,
            next: None,
            allocated: false,
        });
        self.segments.get_mut(segment_key).first_block = block_key;
        self.counters.on_segment_alloc(alloc_size as u64);
        Ok(block_key)
    }

    fn oom_error(
        &self,
        requested: usize,
        rounded: usize,
        segment_request: usize,
        reclaim_attempted: bool,
    ) -> OomError {
        OomError {
            requested,
            rounded,
            segment_request,
            device_capacity: self
                .device
                .capacity()
                .saturating_sub(self.device.reserved_external()),
            reserved: self.counters.reserved,
            allocated: self.counters.allocated,
            reclaim_attempted,
        }
    }

    /// Splits `key` if worthwhile, returning the key of the block that will
    /// serve the request (the leading part).
    fn maybe_split(&mut self, pool: PoolKind, key: BlockKey, rounded: usize) -> BlockKey {
        let (block_size, block_addr, segment, next) = {
            let b = self.blocks.get(key);
            (b.size, b.addr, b.segment, b.next)
        };
        debug_assert!(block_size >= rounded);
        if !self
            .config
            .should_split(pool == PoolKind::Small, block_size, rounded)
        {
            return key;
        }
        let remainder_key = self.blocks.insert(Block {
            addr: block_addr + rounded as u64,
            size: block_size - rounded,
            requested: 0,
            segment,
            prev: Some(key),
            next,
            allocated: false,
        });
        if let Some(next_key) = next {
            self.blocks.get_mut(next_key).prev = Some(remainder_key);
        }
        {
            let b = self.blocks.get_mut(key);
            b.size = rounded;
            b.next = Some(remainder_key);
        }
        let r = self.blocks.get(remainder_key);
        let entry = (r.size, r.addr, remainder_key);
        self.free_set(pool).insert(entry);
        key
    }

    /// Merges `key` with free neighbours; returns the surviving block key.
    /// The surviving block is *not* inserted into the free set.
    fn coalesce(&mut self, pool: PoolKind, key: BlockKey) -> BlockKey {
        let mut key = key;
        // Merge with previous while free.
        loop {
            let prev = self.blocks.get(key).prev;
            match prev {
                Some(p) if !self.blocks.get(p).allocated => {
                    let entry = {
                        let b = self.blocks.get(p);
                        (b.size, b.addr, p)
                    };
                    self.free_set(pool).remove(&entry);
                    let removed = self.blocks.remove(key);
                    let p_block = self.blocks.get_mut(p);
                    p_block.size += removed.size;
                    p_block.next = removed.next;
                    if let Some(n) = removed.next {
                        self.blocks.get_mut(n).prev = Some(p);
                    }
                    key = p;
                }
                _ => break,
            }
        }
        // Merge with next while free.
        loop {
            let next = self.blocks.get(key).next;
            match next {
                Some(n) if !self.blocks.get(n).allocated => {
                    let entry = {
                        let b = self.blocks.get(n);
                        (b.size, b.addr, n)
                    };
                    self.free_set(pool).remove(&entry);
                    let removed = self.blocks.remove(n);
                    let b = self.blocks.get_mut(key);
                    b.size += removed.size;
                    b.next = removed.next;
                    if let Some(nn) = removed.next {
                        self.blocks.get_mut(nn).prev = Some(key);
                    }
                }
                _ => break,
            }
        }
        key
    }

    /// Releases cached whole-segment free blocks back to the device.
    ///
    /// With `filter = Some((pool, min_size))` only blocks from `pool` of at
    /// least `min_size` are released (PyTorch's
    /// `release_available_cached_blocks`); with `None`, everything
    /// releasable goes (`release_cached_blocks`).
    fn release_cached_segments(&mut self, filter: Option<(PoolKind, usize)>) {
        // Single scan over the segments: everything the release loop
        // needs — including the free-set entry, which is fully determined
        // by the (whole-segment) block — is captured here, so no slab
        // lookups happen while mutating. The buffer is sized up front; a
        // reclaim never reallocates it mid-collection.
        let mut to_release: Vec<(SegmentKey, BlockKey, PoolKind, usize, u64)> =
            Vec::with_capacity(self.segments.len());
        for (seg_key, seg) in self.segments.iter() {
            if let Some((pool, min_size)) = filter {
                if seg.pool != pool || seg.size < min_size {
                    continue;
                }
            }
            let first = self.blocks.get(seg.first_block);
            // Releasable iff the segment is one free block.
            if !first.allocated && first.next.is_none() && first.prev.is_none() {
                to_release.push((seg_key, seg.first_block, seg.pool, first.size, first.addr));
            }
        }
        for (seg_key, block_key, pool, size, addr) in to_release {
            self.free_set(pool).remove(&(size, addr, block_key));
            self.release_segment_with_block(seg_key, block_key);
        }
    }

    fn release_segment_with_block(&mut self, seg_key: SegmentKey, block_key: BlockKey) {
        let seg = self.segments.remove(seg_key);
        self.blocks.remove(block_key);
        self.device.free(seg.addr);
        self.counters.on_segment_release(seg.size as u64);
    }

    /// Exhaustive structural self-check used by tests and property tests.
    ///
    /// # Panics
    /// Panics on any violated invariant.
    pub fn check_invariants(&self) {
        let mut reserved = 0u64;
        let mut active = 0u64;
        let mut allocated = 0u64;
        let mut free_seen = 0usize;
        for (seg_key, seg) in self.segments.iter() {
            reserved += seg.size as u64;
            let mut offset = 0u64;
            let mut cur = Some(seg.first_block);
            let mut prev: Option<BlockKey> = None;
            let mut last_free = false;
            while let Some(k) = cur {
                let b = self.blocks.get(k);
                assert_eq!(b.segment, seg_key, "block points at wrong segment");
                assert_eq!(b.addr, seg.addr + offset, "blocks must tile the segment");
                assert_eq!(b.prev, prev, "prev link broken");
                if b.allocated {
                    active += b.size as u64;
                    allocated += b.requested as u64;
                    assert_eq!(
                        self.by_addr.get(&b.addr),
                        Some(&k),
                        "allocated block missing from address index"
                    );
                    last_free = false;
                } else {
                    assert!(
                        !last_free,
                        "two adjacent free blocks must have been coalesced"
                    );
                    last_free = true;
                    free_seen += 1;
                    let entry = (b.size, b.addr, k);
                    let in_set = match seg.pool {
                        PoolKind::Small => self.free_small.contains(&entry),
                        PoolKind::Large => self.free_large.contains(&entry),
                    };
                    assert!(in_set, "free block missing from its pool set");
                }
                offset += b.size as u64;
                prev = Some(k);
                cur = b.next;
            }
            assert_eq!(offset, seg.size as u64, "blocks must cover the segment");
        }
        assert_eq!(reserved, self.counters.reserved, "reserved counter drift");
        assert_eq!(active, self.counters.active, "active counter drift");
        assert_eq!(
            allocated, self.counters.allocated,
            "allocated counter drift"
        );
        assert_eq!(
            free_seen,
            self.free_small.len() + self.free_large.len(),
            "free set size mismatch"
        );
        assert_eq!(
            self.device.live_allocs(),
            self.segments.len(),
            "device allocations must equal segments"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: usize = 1 << 20;

    fn small_device() -> DeviceAllocator {
        DeviceAllocator::new(64 * MIB as u64, 2 * MIB as u64, 0)
    }

    fn alloc() -> CachingAllocator {
        CachingAllocator::new(AllocatorConfig::pytorch_defaults(), small_device())
    }

    #[test]
    fn small_request_reserves_small_buffer() {
        let mut a = alloc();
        a.alloc(100).unwrap();
        assert_eq!(a.counters().reserved, 2 * MIB as u64);
        assert_eq!(a.counters().active, 512);
        assert_eq!(a.counters().allocated, 100);
        a.check_invariants();
    }

    #[test]
    fn large_request_reserves_large_buffer() {
        let mut a = alloc();
        a.alloc(3 * MIB).unwrap(); // > 1 MiB small threshold
        assert_eq!(a.counters().reserved, 20 * MIB as u64);
        a.check_invariants();
    }

    #[test]
    fn huge_request_rounds_to_2mib() {
        let mut a = alloc();
        a.alloc(11 * MIB).unwrap();
        assert_eq!(a.counters().reserved, 12 * MIB as u64);
        a.check_invariants();
    }

    #[test]
    fn freed_block_is_cached_and_reused() {
        let mut a = alloc();
        let x = a.alloc(MIB / 2).unwrap();
        let reserved = a.counters().reserved;
        a.free(x);
        assert_eq!(a.counters().reserved, reserved, "segment stays cached");
        let y = a.alloc(MIB / 2).unwrap();
        assert_eq!(x, y, "cached block is reused best-fit");
        a.check_invariants();
    }

    #[test]
    fn small_pool_packs_multiple_blocks_per_segment() {
        let mut a = alloc();
        for _ in 0..4 {
            a.alloc(256 * 1024).unwrap();
        }
        // 4 × 256 KiB fit one 2 MiB segment.
        assert_eq!(a.counters().reserved, 2 * MIB as u64);
        assert_eq!(a.counters().num_segments_allocated, 1);
        a.check_invariants();
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let mut a = alloc();
        let x = a.alloc(512 * 1024).unwrap();
        let y = a.alloc(512 * 1024).unwrap();
        let z = a.alloc(512 * 1024).unwrap();
        a.free(x);
        a.free(z);
        a.free(y); // middle free merges all three (plus trailing remainder)
        a.check_invariants();
        let snap = a.snapshot();
        assert_eq!(snap.segments.len(), 1);
        assert_eq!(
            snap.segments[0].blocks.len(),
            1,
            "segment collapses back to a single free block"
        );
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_block() {
        let mut a = alloc();
        let _a1 = a.alloc(4 * MIB).unwrap(); // seg1 (low addr): [4 | 16 free]
        let t = a.alloc(16 * MIB).unwrap(); // exactly fills seg1's hole
        let a2 = a.alloc(10 * MIB).unwrap(); // seg2 (high addr): exact 10 MiB
        a.free(a2);
        a.free(t);
        // Free blocks: 16 MiB at a LOW address, 10 MiB at a HIGH address.
        // Best fit for 8 MiB must pick the 10 MiB block despite its higher
        // address (first-fit-by-address would pick the 16 MiB one).
        let re = a.alloc(8 * MIB).unwrap();
        assert_eq!(re, a2);
        assert_eq!(a.counters().reserved, 30 * MIB as u64, "no new segment");
        a.check_invariants();
    }

    #[test]
    fn reclaim_releases_cached_segments_before_oom() {
        // Device fits one 20 MiB large buffer plus one 2 MiB small segment.
        let device = DeviceAllocator::new(22 * MIB as u64, 2 * MIB as u64, 0);
        let mut a = CachingAllocator::new(AllocatorConfig::pytorch_defaults(), device);
        let x = a.alloc(100 * 1024).unwrap(); // small pool, 2 MiB segment
        a.free(x); // cached
                   // 21 MiB huge request needs a 22 MiB segment: the cached small
                   // segment must be reclaimed first.
        a.alloc(21 * MIB).unwrap();
        assert_eq!(a.counters().num_reclaims, 1);
        assert_eq!(a.counters().num_segments_released, 1);
        a.check_invariants();
    }

    #[test]
    fn without_reclaim_fails_where_reclaim_succeeds() {
        let device = DeviceAllocator::new(22 * MIB as u64, 2 * MIB as u64, 0);
        let mut a = CachingAllocator::new(AllocatorConfig::without_reclaim(), device);
        let x = a.alloc(100 * 1024).unwrap();
        a.free(x);
        let err = a.alloc(21 * MIB).unwrap_err();
        assert!(!err.reclaim_attempted);
    }

    #[test]
    fn small_request_can_oom_on_large_buffer_demand() {
        // Faithful PyTorch nuance: a 6 MiB request demands a 20 MiB large
        // buffer and fails on an 8 MiB device even though 8 MiB > 6 MiB.
        let device = DeviceAllocator::new(8 * MIB as u64, 2 * MIB as u64, 0);
        let mut a = CachingAllocator::new(AllocatorConfig::pytorch_defaults(), device);
        let err = a.alloc(6 * MIB).unwrap_err();
        assert_eq!(err.segment_request, 20 * MIB);
        a.check_invariants();
    }

    #[test]
    fn oom_when_truly_exhausted() {
        let device = DeviceAllocator::new(24 * MIB as u64, 2 * MIB as u64, 0);
        let mut a = CachingAllocator::new(AllocatorConfig::pytorch_defaults(), device);
        a.alloc(12 * MIB).unwrap();
        a.alloc(12 * MIB).unwrap();
        let err = a.alloc(1024).unwrap_err();
        assert!(err.reclaim_attempted);
        assert_eq!(err.requested, 1024);
        a.check_invariants();
    }

    #[test]
    fn non_caching_mode_returns_segments_eagerly() {
        let mut a = CachingAllocator::new(AllocatorConfig::without_caching(), small_device());
        let x = a.alloc(3 * MIB).unwrap();
        assert_eq!(a.counters().reserved, 20 * MIB as u64);
        a.free(x);
        assert_eq!(a.counters().reserved, 0, "segment returned to device");
        a.check_invariants();
    }

    #[test]
    fn timeline_records_curve() {
        let mut a = alloc();
        a.record_timeline(true);
        a.advance_clock(10);
        let x = a.alloc(MIB).unwrap();
        a.advance_clock(20);
        a.free(x);
        let t = a.timeline();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].ts_us, 10);
        assert_eq!(t[0].allocated, MIB as u64);
        assert_eq!(t[1].ts_us, 20);
        assert_eq!(t[1].allocated, 0);
        assert_eq!(t[1].reserved, 2 * MIB as u64);
    }

    #[test]
    fn snapshot_reflects_split_blocks() {
        let mut a = alloc();
        a.alloc(100).unwrap();
        let snap = a.snapshot();
        assert_eq!(snap.segments.len(), 1);
        assert_eq!(snap.segments[0].blocks.len(), 2); // 512 allocated + remainder
        assert_eq!(snap.active_bytes(), 512);
        assert_eq!(snap.reserved_bytes(), 2 * MIB as u64);
    }

    #[test]
    fn peak_reserved_counts_high_water_mark() {
        let mut a = alloc();
        let x = a.alloc(15 * MIB).unwrap(); // 16 MiB segment (2 MiB-rounded)
        a.free(x);
        a.empty_cache();
        assert_eq!(a.counters().reserved, 0);
        assert_eq!(a.counters().peak_reserved, 16 * MIB as u64);
    }

    #[test]
    fn gc_threshold_trims_cache_proactively() {
        let mut cfg = AllocatorConfig::pytorch_defaults();
        cfg.gc_threshold = Some(0.4);
        // 64 MiB device, 40% budget = 25.6 MiB.
        let device = DeviceAllocator::new(64 * MIB as u64, 2 * MIB as u64, 0);
        let mut a = CachingAllocator::new(cfg, device);
        let x = a.alloc(14 * MIB).unwrap(); // 14 MiB segment
        a.free(x); // cached
                   // The next request would push reserved to 32 MiB > 25.6 MiB
                   // budget: the cached segment is collected first.
        a.alloc(18 * MIB).unwrap();
        assert_eq!(a.counters().reserved, 18 * MIB as u64);
        assert_eq!(a.counters().num_segments_released, 1);
        a.check_invariants();

        // Without the threshold the cache would have been kept.
        let device = DeviceAllocator::new(64 * MIB as u64, 2 * MIB as u64, 0);
        let mut b = CachingAllocator::new(AllocatorConfig::pytorch_defaults(), device);
        let x = b.alloc(14 * MIB).unwrap();
        b.free(x);
        b.alloc(18 * MIB).unwrap();
        assert_eq!(b.counters().reserved, 32 * MIB as u64);
    }

    #[test]
    fn max_split_size_preserves_oversize_blocks() {
        let mut cfg = AllocatorConfig::pytorch_defaults();
        cfg.max_split_size = Some(4 * MIB);
        let mut a = CachingAllocator::new(cfg, small_device());
        let big = a.alloc(16 * MIB).unwrap(); // exact 16 MiB segment
        a.free(big); // cached oversize block
                     // A 2 MiB request must NOT split the oversize block; it opens a new
                     // 20 MiB large-buffer segment instead.
        a.alloc(2 * MIB).unwrap();
        assert_eq!(a.counters().reserved, 36 * MIB as u64);
        a.check_invariants();
    }

    #[test]
    fn exact_fit_does_not_split_in_large_pool() {
        let mut a = alloc();
        let x = a.alloc(19 * MIB + 512 * 1024).unwrap(); // leaves 512 KiB < 1 MiB
        let snap = a.snapshot();
        assert_eq!(
            snap.segments[0].blocks.len(),
            1,
            "no split below 1 MiB remainder"
        );
        a.free(x);
        a.check_invariants();
    }
}
