use serde::{Deserialize, Serialize};

const MIB: usize = 1024 * 1024;

/// Behaviour knobs of the [`crate::CachingAllocator`].
///
/// The defaults ([`AllocatorConfig::pytorch_defaults`]) mirror the constants
/// in PyTorch's `CUDACachingAllocator.cpp` (release/2.6). The ablation
/// constructors switch off individual mechanisms so their contribution to
/// estimation accuracy can be measured (DESIGN.md §4, ablation benches).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocatorConfig {
    /// All block sizes are rounded up to a multiple of this (512 B).
    pub min_block_size: usize,
    /// Requests at or below this size are served from the small pool (1 MiB).
    pub small_size: usize,
    /// Segment size for the small pool (2 MiB).
    pub small_buffer: usize,
    /// Segment size for large requests below `min_large_alloc` (20 MiB).
    pub large_buffer: usize,
    /// Requests at or above this bypass `large_buffer` sizing (10 MiB).
    pub min_large_alloc: usize,
    /// Huge segment sizes are rounded up to a multiple of this (2 MiB).
    pub round_large: usize,
    /// When `false`, requests are not rounded to `min_block_size`
    /// (ablation: shows the cost of ignoring hardware alignment, §3.4 i).
    pub round_up: bool,
    /// When `false`, freed segments are returned to the device immediately
    /// instead of being cached (ablation: a non-caching allocator).
    pub caching_enabled: bool,
    /// When `false`, cached segments are *not* reclaimed before reporting
    /// OOM (the single-level behaviour the paper attributes to DNNMem §5.1).
    pub reclaim_on_oom: bool,
    /// Mirrors `max_split_size_mb`: free blocks at least this large are
    /// only handed to requests that are themselves at least this large.
    /// `None` disables the check (the PyTorch default).
    pub max_split_size: Option<usize>,
    /// Mirrors `garbage_collection_threshold`: when reserved memory
    /// exceeds this fraction of usable capacity, cached whole segments are
    /// proactively released before requesting a new one. `None` disables
    /// proactive collection (the PyTorch default).
    pub gc_threshold: Option<f64>,
}

impl AllocatorConfig {
    /// The PyTorch 2.6 `CUDACachingAllocator` constants.
    #[must_use]
    pub fn pytorch_defaults() -> Self {
        AllocatorConfig {
            min_block_size: 512,
            small_size: MIB,
            small_buffer: 2 * MIB,
            large_buffer: 20 * MIB,
            min_large_alloc: 10 * MIB,
            round_large: 2 * MIB,
            round_up: true,
            caching_enabled: true,
            reclaim_on_oom: true,
            max_split_size: None,
            gc_threshold: None,
        }
    }

    /// Ablation: no request rounding.
    #[must_use]
    pub fn without_round_up() -> Self {
        AllocatorConfig {
            round_up: false,
            ..Self::pytorch_defaults()
        }
    }

    /// Ablation: freed segments are returned to the device eagerly.
    #[must_use]
    pub fn without_caching() -> Self {
        AllocatorConfig {
            caching_enabled: false,
            ..Self::pytorch_defaults()
        }
    }

    /// Ablation / DNNMem mode: no cached-segment reclamation before OOM.
    #[must_use]
    pub fn without_reclaim() -> Self {
        AllocatorConfig {
            reclaim_on_oom: false,
            ..Self::pytorch_defaults()
        }
    }

    /// Rounds a request up per `min_block_size` (identity when `round_up`
    /// is disabled, except that zero-sized requests still occupy one
    /// minimum block).
    #[must_use]
    pub fn round_size(&self, size: usize) -> usize {
        if !self.round_up {
            return size.max(1);
        }
        if size < self.min_block_size {
            self.min_block_size
        } else {
            size.div_ceil(self.min_block_size) * self.min_block_size
        }
    }

    /// Segment size requested from the device for a rounded block size —
    /// PyTorch's `get_allocation_size`.
    #[must_use]
    pub fn allocation_size(&self, rounded: usize) -> usize {
        if rounded <= self.small_size {
            self.small_buffer
        } else if rounded < self.min_large_alloc {
            self.large_buffer
        } else {
            rounded.div_ceil(self.round_large) * self.round_large
        }
    }

    /// Whether a free block of `block_size` serving a request of `size`
    /// should be split (PyTorch's `should_split`).
    #[must_use]
    pub fn should_split(&self, pool_is_small: bool, block_size: usize, size: usize) -> bool {
        let remaining = block_size - size;
        if pool_is_small {
            remaining >= self.min_block_size
        } else {
            remaining > self.small_size
        }
    }
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        Self::pytorch_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_size_matches_pytorch() {
        let c = AllocatorConfig::pytorch_defaults();
        assert_eq!(c.round_size(1), 512);
        assert_eq!(c.round_size(512), 512);
        assert_eq!(c.round_size(513), 1024);
        assert_eq!(c.round_size(4000), 4096);
        assert_eq!(c.round_size(0), 512);
    }

    #[test]
    fn round_size_identity_when_disabled() {
        let c = AllocatorConfig::without_round_up();
        assert_eq!(c.round_size(513), 513);
        assert_eq!(c.round_size(0), 1);
    }

    #[test]
    fn allocation_size_tiers() {
        let c = AllocatorConfig::pytorch_defaults();
        assert_eq!(c.allocation_size(512), 2 * MIB); // small
        assert_eq!(c.allocation_size(MIB), 2 * MIB); // boundary is small
        assert_eq!(c.allocation_size(MIB + 512), 20 * MIB); // large buffer
        assert_eq!(c.allocation_size(10 * MIB), 10 * MIB); // exact huge
        assert_eq!(c.allocation_size(10 * MIB + 512), 12 * MIB); // rounded up to 2 MiB
    }

    #[test]
    fn should_split_pool_rules() {
        let c = AllocatorConfig::pytorch_defaults();
        // Small pool splits whenever >= 512 remains.
        assert!(c.should_split(true, 2 * MIB, 1024));
        assert!(!c.should_split(true, 1024, 1024));
        assert!(!c.should_split(true, 1024 + 511, 1024));
        // Large pool splits only when more than 1 MiB remains.
        assert!(c.should_split(false, 20 * MIB, 2 * MIB));
        assert!(!c.should_split(false, 2 * MIB + MIB, 2 * MIB));
    }
}
