use std::error::Error;
use std::fmt;

/// Out-of-memory error reported by the two-level allocator.
///
/// Carries the allocator state at failure time so callers (the runtime's OOM
/// handling and the evaluation protocol) can report it the way a CUDA OOM
/// message does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OomError {
    /// Bytes originally requested by the caller.
    pub requested: usize,
    /// Request after rounding.
    pub rounded: usize,
    /// Segment size that was asked of the device.
    pub segment_request: usize,
    /// Device capacity available to the framework (capacity minus external
    /// reservations).
    pub device_capacity: u64,
    /// Bytes currently reserved in segments by the caching allocator.
    pub reserved: u64,
    /// Bytes currently allocated to live blocks.
    pub allocated: u64,
    /// Whether cached-segment reclamation was attempted before failing.
    pub reclaim_attempted: bool,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory: tried to allocate {} bytes (segment request {}; \
             {} reserved, {} allocated, {} capacity, reclaim {})",
            self.requested,
            self.segment_request,
            self.reserved,
            self.allocated,
            self.device_capacity,
            if self.reclaim_attempted {
                "attempted"
            } else {
                "skipped"
            }
        )
    }
}

impl Error for OomError {}
