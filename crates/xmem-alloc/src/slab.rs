//! A minimal slab arena: stable `u32` keys, O(1) insert/remove, reuse of
//! vacated slots. Used for block and segment storage inside the caching
//! allocator so that intrusive prev/next links stay cheap `Copy` keys.

#[derive(Debug, Clone)]
pub(crate) struct Slab<T> {
    items: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Slab<T> {
    pub(crate) fn new() -> Self {
        Slab {
            items: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    pub(crate) fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if let Some(key) = self.free.pop() {
            self.items[key as usize] = Some(value);
            key
        } else {
            self.items.push(Some(value));
            (self.items.len() - 1) as u32
        }
    }

    pub(crate) fn remove(&mut self, key: u32) -> T {
        let v = self.items[key as usize]
            .take()
            .expect("slab remove of vacant slot");
        self.free.push(key);
        self.len -= 1;
        v
    }

    pub(crate) fn get(&self, key: u32) -> &T {
        self.items[key as usize].as_ref().expect("vacant slab slot")
    }

    pub(crate) fn get_mut(&mut self, key: u32) -> &mut T {
        self.items[key as usize].as_mut().expect("vacant slab slot")
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.items
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (i as u32, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_reuses_slots() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(a), "a");
        let c = s.insert("c");
        assert_eq!(c, a, "vacated slot is reused");
        assert_eq!(*s.get(b), "b");
        assert_eq!(*s.get(c), "c");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_skips_vacant() {
        let mut s = Slab::new();
        let a = s.insert(1);
        let _b = s.insert(2);
        s.remove(a);
        let items: Vec<i32> = s.iter().map(|(_, v)| *v).collect();
        assert_eq!(items, vec![2]);
    }

    #[test]
    #[should_panic(expected = "vacant")]
    fn remove_twice_panics() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        s.remove(a);
    }
}
