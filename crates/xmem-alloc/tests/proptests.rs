//! Property-based tests of the caching-allocator invariants.
//!
//! Every test drives the allocator with a randomized alloc/free interleaving
//! and then asserts structural invariants via `check_invariants()` (blocks
//! tile segments exactly, free sets match free blocks, counters match a
//! recomputation, adjacent free blocks are always coalesced) plus
//! test-specific conservation properties.

use proptest::prelude::*;
use xmem_alloc::{AllocatorConfig, CachingAllocator, DeviceAllocator};

/// A randomized workload step.
#[derive(Debug, Clone)]
enum Step {
    /// Allocate this many bytes.
    Alloc(usize),
    /// Free the i-th live allocation (modulo live count).
    Free(usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (1usize..64 * 1024 * 1024).prop_map(Step::Alloc),
        2 => any::<usize>().prop_map(Step::Free),
    ]
}

fn run_workload(alloc: &mut CachingAllocator, steps: &[Step]) -> (u64, u64) {
    let mut live: Vec<(u64, usize)> = Vec::new();
    let mut peak_live_requested: u64 = 0;
    let mut live_requested: u64 = 0;
    for step in steps {
        match step {
            Step::Alloc(size) => {
                if let Ok(addr) = alloc.alloc(*size) {
                    live.push((addr, *size));
                    live_requested += *size as u64;
                    peak_live_requested = peak_live_requested.max(live_requested);
                }
            }
            Step::Free(i) => {
                if !live.is_empty() {
                    let (addr, size) = live.swap_remove(i % live.len());
                    alloc.free(addr);
                    live_requested -= size as u64;
                }
            }
        }
        alloc.check_invariants();
    }
    // Drain the remainder so callers can check the empty end state.
    for (addr, size) in live {
        alloc.free(addr);
        live_requested -= size as u64;
    }
    alloc.check_invariants();
    (peak_live_requested, live_requested)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After freeing everything, no bytes remain allocated, and emptying the
    /// cache returns every segment to the device.
    #[test]
    fn full_roundtrip_conserves_memory(steps in proptest::collection::vec(step_strategy(), 1..120)) {
        let mut a = CachingAllocator::new(
            AllocatorConfig::pytorch_defaults(),
            DeviceAllocator::unlimited(),
        );
        let (_, live_left) = run_workload(&mut a, &steps);
        prop_assert_eq!(live_left, 0);
        prop_assert_eq!(a.counters().allocated, 0);
        prop_assert_eq!(a.counters().active, 0);
        a.empty_cache();
        prop_assert_eq!(a.counters().reserved, 0);
        prop_assert_eq!(a.device().used(), 0);
    }

    /// Reserved memory always dominates active memory, and the reserved peak
    /// dominates the peak of live requested bytes.
    #[test]
    fn reserved_dominates_requested(steps in proptest::collection::vec(step_strategy(), 1..120)) {
        let mut a = CachingAllocator::new(
            AllocatorConfig::pytorch_defaults(),
            DeviceAllocator::unlimited(),
        );
        let (peak_requested, _) = run_workload(&mut a, &steps);
        prop_assert!(a.counters().peak_reserved >= a.counters().peak_active);
        prop_assert!(a.counters().peak_active >= peak_requested);
    }

    /// The allocator is deterministic: identical workloads produce identical
    /// counters and snapshots.
    #[test]
    fn identical_workloads_are_deterministic(steps in proptest::collection::vec(step_strategy(), 1..80)) {
        let mut a = CachingAllocator::new(
            AllocatorConfig::pytorch_defaults(),
            DeviceAllocator::unlimited(),
        );
        let mut b = CachingAllocator::new(
            AllocatorConfig::pytorch_defaults(),
            DeviceAllocator::unlimited(),
        );
        run_workload(&mut a, &steps);
        run_workload(&mut b, &steps);
        prop_assert_eq!(a.counters(), b.counters());
        prop_assert_eq!(a.snapshot().segments, b.snapshot().segments);
    }

    /// Under the default config every accounting quantity stays 512-byte
    /// aligned, and the unrounded variant still dominates requested bytes.
    /// (Note: rounding does NOT always increase `active` — clean 512-byte
    /// reuse can beat the fragmentation of odd-sized blocks, which is why
    /// real allocators round in the first place.)
    #[test]
    fn rounding_keeps_accounting_aligned(steps in proptest::collection::vec(step_strategy(), 1..80)) {
        let mut rounded = CachingAllocator::new(
            AllocatorConfig::pytorch_defaults(),
            DeviceAllocator::unlimited(),
        );
        let mut exact = CachingAllocator::new(
            AllocatorConfig::without_round_up(),
            DeviceAllocator::unlimited(),
        );
        let (peak_requested, _) = run_workload(&mut rounded, &steps);
        prop_assert_eq!(rounded.counters().peak_active % 512, 0);
        prop_assert_eq!(rounded.counters().active % 512, 0);
        prop_assert_eq!(rounded.counters().peak_reserved % 512, 0);
        prop_assert!(rounded.counters().peak_active >= peak_requested);

        let (peak_requested, _) = run_workload(&mut exact, &steps);
        prop_assert!(exact.counters().peak_active >= peak_requested);
    }

    /// On a bounded device, the allocator never reserves more than the
    /// device capacity, even across OOM-reclaim cycles.
    #[test]
    fn capacity_is_never_exceeded(steps in proptest::collection::vec(step_strategy(), 1..120)) {
        let capacity = 256u64 * 1024 * 1024;
        let mut a = CachingAllocator::new(
            AllocatorConfig::pytorch_defaults(),
            DeviceAllocator::new(capacity, 2 << 20, 0),
        );
        let mut live: Vec<u64> = Vec::new();
        for step in &steps {
            match step {
                Step::Alloc(size) => {
                    if let Ok(addr) = a.alloc(*size) {
                        live.push(addr);
                    }
                }
                Step::Free(i) => {
                    if !live.is_empty() {
                        a.free(live.swap_remove(i % live.len()));
                    }
                }
            }
            prop_assert!(a.counters().reserved <= capacity);
            prop_assert!(a.device().used() <= capacity);
            a.check_invariants();
        }
    }

    /// Snapshots round-trip through serde JSON.
    #[test]
    fn snapshot_serde_roundtrip(steps in proptest::collection::vec(step_strategy(), 1..40)) {
        let mut a = CachingAllocator::new(
            AllocatorConfig::pytorch_defaults(),
            DeviceAllocator::unlimited(),
        );
        let mut live: Vec<u64> = Vec::new();
        for step in &steps {
            match step {
                Step::Alloc(size) => {
                    if let Ok(addr) = a.alloc(*size) {
                        live.push(addr);
                    }
                }
                Step::Free(i) => {
                    if !live.is_empty() {
                        a.free(live.swap_remove(i % live.len()));
                    }
                }
            }
        }
        let snap = a.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: xmem_alloc::AllocatorSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(snap, back);
    }
}
