//! Optimizer memory models.
//!
//! An optimizer contributes to peak GPU memory in two ways the paper's
//! Orchestrator must capture (§3.3 rule 5):
//!
//! 1. **Persistent state** allocated on the first `step()` — e.g. Adam's
//!    `exp_avg`/`exp_avg_sq` pair doubles the parameter footprint, while
//!    SGD without momentum allocates nothing. This is why the paper profiles
//!    at least two iterations: iteration 2's peak sits on top of iteration
//!    1's state allocations.
//! 2. **Transient scratch** allocated and freed inside each `step()` —
//!    update tensors materialized by the `foreach` implementations.
//!
//! [`OptimizerKind::state_specs`] returns the persistent per-parameter state
//! tensors, [`OptimizerKind::step_scratch_bytes`] the transient scratch, and
//! [`OptimizerKind::eager_init`] distinguishes Adagrad, whose accumulator is
//! created at construction time rather than on first step.
//!
//! # Example
//! ```
//! use xmem_optim::OptimizerKind;
//! use xmem_graph::TensorSpec;
//!
//! let p = TensorSpec::f32([768, 768]);
//! assert_eq!(OptimizerKind::AdamW.state_specs(&p).len(), 2);
//! assert_eq!(OptimizerKind::Sgd { momentum: false }.state_specs(&p).len(), 0);
//! // Adafactor factors the second moment of matrices into row + col vectors.
//! let states = OptimizerKind::Adafactor.state_specs(&p);
//! assert_eq!(states.iter().map(|s| s.numel()).sum::<usize>(), 768 + 768);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;
use xmem_graph::TensorSpec;

/// The optimizers used in the paper's evaluation (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Stochastic gradient descent; allocates a momentum buffer per
    /// parameter when `momentum` is set.
    Sgd {
        /// Whether a momentum buffer is maintained.
        momentum: bool,
    },
    /// Adam: `exp_avg` + `exp_avg_sq` per parameter.
    Adam,
    /// AdamW: decoupled weight decay, same state as Adam.
    AdamW,
    /// RMSprop (PyTorch defaults: no momentum, not centered): `square_avg`.
    RMSprop,
    /// Adagrad: `sum` accumulator, eagerly initialized at construction.
    Adagrad,
    /// Adafactor (HF defaults, no first moment): factored second moment —
    /// row + column vectors for matrices, a full tensor for vectors.
    Adafactor,
}

impl OptimizerKind {
    /// All optimizers, in the paper's Table 2 order.
    #[must_use]
    pub fn all() -> [OptimizerKind; 6] {
        [
            OptimizerKind::Sgd { momentum: true },
            OptimizerKind::Adam,
            OptimizerKind::AdamW,
            OptimizerKind::RMSprop,
            OptimizerKind::Adagrad,
            OptimizerKind::Adafactor,
        ]
    }

    /// Class name as it appears in profiler annotations
    /// (`Optimizer.step#<name>.step`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            OptimizerKind::Sgd { .. } => "SGD",
            OptimizerKind::Adam => "Adam",
            OptimizerKind::AdamW => "AdamW",
            OptimizerKind::RMSprop => "RMSprop",
            OptimizerKind::Adagrad => "Adagrad",
            OptimizerKind::Adafactor => "Adafactor",
        }
    }

    /// Parses [`OptimizerKind::name`] output (momentum defaults to true for
    /// SGD, matching the evaluation configuration).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "SGD" => Some(OptimizerKind::Sgd { momentum: true }),
            "Adam" => Some(OptimizerKind::Adam),
            "AdamW" => Some(OptimizerKind::AdamW),
            "RMSprop" => Some(OptimizerKind::RMSprop),
            "Adagrad" => Some(OptimizerKind::Adagrad),
            "Adafactor" => Some(OptimizerKind::Adafactor),
            _ => None,
        }
    }

    /// Persistent state tensors allocated for one trainable parameter.
    #[must_use]
    pub fn state_specs(&self, param: &TensorSpec) -> Vec<TensorSpec> {
        match self {
            OptimizerKind::Sgd { momentum: false } => Vec::new(),
            OptimizerKind::Sgd { momentum: true } => vec![param.clone()],
            OptimizerKind::Adam | OptimizerKind::AdamW => vec![param.clone(), param.clone()],
            OptimizerKind::RMSprop | OptimizerKind::Adagrad => vec![param.clone()],
            OptimizerKind::Adafactor => {
                let dims = param.shape.dims();
                if dims.len() >= 2 {
                    // exp_avg_sq_row: shape[..-1]; exp_avg_sq_col:
                    // shape[..-2] ++ shape[-1].
                    let row: Vec<usize> = dims[..dims.len() - 1].to_vec();
                    let mut col: Vec<usize> = dims[..dims.len() - 2].to_vec();
                    col.push(dims[dims.len() - 1]);
                    vec![
                        TensorSpec::new(row, param.dtype),
                        TensorSpec::new(col, param.dtype),
                    ]
                } else {
                    vec![param.clone()]
                }
            }
        }
    }

    /// Total persistent state bytes for one parameter.
    #[must_use]
    pub fn state_bytes(&self, param: &TensorSpec) -> u64 {
        self.state_specs(param)
            .iter()
            .map(|s| s.size_bytes() as u64)
            .sum()
    }

    /// Whether state is allocated at optimizer construction (before the
    /// first step) rather than lazily inside the first `step()` call.
    /// True for Adagrad, whose `sum` accumulator needs
    /// `initial_accumulator_value` up front.
    #[must_use]
    pub fn eager_init(&self) -> bool {
        matches!(self, OptimizerKind::Adagrad)
    }

    /// Transient scratch allocated (and freed) while stepping one
    /// parameter: the materialized update tensor of the non-fused
    /// implementations. Plain SGD updates in place and allocates nothing.
    #[must_use]
    pub fn step_scratch_bytes(&self, param: &TensorSpec) -> usize {
        match self {
            OptimizerKind::Sgd { momentum: false } => 0,
            // Momentum SGD, Adam-family, RMSprop, Adagrad and Adafactor all
            // materialize one update tensor the size of the parameter.
            _ => param.size_bytes(),
        }
    }

    /// Whether this optimizer maintains any persistent state at all.
    #[must_use]
    pub fn is_stateful(&self) -> bool {
        !matches!(self, OptimizerKind::Sgd { momentum: false })
    }
}

impl fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> TensorSpec {
        TensorSpec::f32([1024, 512])
    }

    fn vector() -> TensorSpec {
        TensorSpec::f32([1024])
    }

    #[test]
    fn sgd_state_depends_on_momentum() {
        assert!(OptimizerKind::Sgd { momentum: false }
            .state_specs(&matrix())
            .is_empty());
        assert_eq!(
            OptimizerKind::Sgd { momentum: true }.state_bytes(&matrix()),
            matrix().size_bytes() as u64
        );
        assert!(!OptimizerKind::Sgd { momentum: false }.is_stateful());
    }

    #[test]
    fn adam_family_doubles_params() {
        for opt in [OptimizerKind::Adam, OptimizerKind::AdamW] {
            assert_eq!(opt.state_bytes(&matrix()), 2 * matrix().size_bytes() as u64);
        }
    }

    #[test]
    fn single_slot_optimizers() {
        for opt in [OptimizerKind::RMSprop, OptimizerKind::Adagrad] {
            assert_eq!(opt.state_bytes(&matrix()), matrix().size_bytes() as u64);
        }
    }

    #[test]
    fn adafactor_factors_matrices_only() {
        let m = OptimizerKind::Adafactor.state_specs(&matrix());
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].shape.dims(), &[1024]);
        assert_eq!(m[1].shape.dims(), &[512]);

        let v = OptimizerKind::Adafactor.state_specs(&vector());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].shape.dims(), &[1024]);

        // 4-D conv kernels factor over the last dimension pair.
        let k = TensorSpec::f32([64, 32, 3, 3]);
        let s = OptimizerKind::Adafactor.state_specs(&k);
        assert_eq!(s[0].shape.dims(), &[64, 32, 3]);
        assert_eq!(s[1].shape.dims(), &[64, 32, 3]);
    }

    #[test]
    fn adafactor_state_is_sublinear_for_matrices() {
        let bytes = OptimizerKind::Adafactor.state_bytes(&matrix());
        assert!(bytes < matrix().size_bytes() as u64 / 100);
    }

    #[test]
    fn only_adagrad_is_eager() {
        for opt in OptimizerKind::all() {
            assert_eq!(opt.eager_init(), opt == OptimizerKind::Adagrad);
        }
    }

    #[test]
    fn name_roundtrip() {
        for opt in OptimizerKind::all() {
            assert_eq!(OptimizerKind::parse(opt.name()), Some(opt));
        }
        assert_eq!(OptimizerKind::parse("LAMB"), None);
    }

    #[test]
    fn scratch_is_zero_only_for_plain_sgd() {
        assert_eq!(
            OptimizerKind::Sgd { momentum: false }.step_scratch_bytes(&matrix()),
            0
        );
        for opt in OptimizerKind::all() {
            if opt != (OptimizerKind::Sgd { momentum: false }) {
                assert!(opt.step_scratch_bytes(&matrix()) > 0);
            }
        }
    }
}
