//! The estimator interface the evaluation harness drives.

use serde::{Deserialize, Serialize};
use xmem_models::ModelId;
use xmem_runtime::{GpuDevice, TrainJobSpec};

/// One estimator invocation's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EstimateOutcome {
    /// Predicted peak total device memory (job + framework), in bytes.
    pub peak_bytes: u64,
    /// Whether the estimator predicts the job will not fit the device
    /// (Eq. 1: `peak > M^max`).
    pub oom_predicted: bool,
}

impl EstimateOutcome {
    /// Builds an outcome from a peak prediction and the device capacity.
    #[must_use]
    pub fn from_peak(peak_bytes: u64, device: &GpuDevice) -> Self {
        EstimateOutcome {
            peak_bytes,
            oom_predicted: peak_bytes > device.capacity - device.init_bytes,
        }
    }
}

/// A peak-GPU-memory estimator (xMem or a baseline).
pub trait MemoryEstimator {
    /// Estimator name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Whether the estimator supports this model at all (LLMem is
    /// transformer-only; absent boxes in Fig. 7 come from this).
    fn supports(&self, model: ModelId) -> bool;

    /// Produces an estimate for a job on a device, or `None` when the
    /// estimator fails outright (e.g. LLMem's measurement runs OOM).
    fn estimate(&self, spec: &TrainJobSpec, device: &GpuDevice) -> Option<EstimateOutcome>;

    /// Whether the estimation procedure consumes the target GPU (LLMem
    /// does; the paper's zero-GPU-overhead requirement).
    fn consumes_gpu(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_flags_oom_above_capacity() {
        let d = GpuDevice::rtx4060(); // 8 GiB
        let fit = EstimateOutcome::from_peak(6 << 30, &d);
        assert!(!fit.oom_predicted);
        let over = EstimateOutcome::from_peak(9 << 30, &d);
        assert!(over.oom_predicted);
    }
}
