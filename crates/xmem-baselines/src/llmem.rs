//! LLMem reproduction (Kim et al., IJCAI 2024) — the paper's
//! representative of direct GPU measurement (§5.3).
//!
//! LLMem estimates fine-tuning memory for transformer LMs by combining a
//! closed-form static model (weights, gradients, optimizer state) with a
//! *measured* per-batch dynamic share obtained by executing the job at
//! batch 1 on the target GPU, then extrapolating linearly to the requested
//! batch size. Faithful properties:
//!
//! * consumes the target GPU (violating the paper's zero-overhead
//!   requirement — flagged via [`MemoryEstimator::consumes_gpu`]);
//! * the calibration run can itself OOM, in which case the estimator
//!   fails outright (`None`);
//! * linear extrapolation misses allocator nonlinearity — segment
//!   granularity, caching and batch-independent buffers make `peak(b)`
//!   piecewise, so the batch-1 share amplified 10–50× scatters the
//!   estimate;
//! * transformer-only: CNN workloads are unsupported (absent boxes in
//!   Fig. 7a/7c).

use crate::traits::{EstimateOutcome, MemoryEstimator};
use xmem_graph::ArchClass;
use xmem_models::ModelId;
use xmem_runtime::{run_on_gpu, GpuDevice, TrainJobSpec};

/// The LLMem estimator.
#[derive(Debug, Clone, Default)]
pub struct LlMem {
    _private: (),
}

impl LlMem {
    /// Creates the estimator.
    #[must_use]
    pub fn new() -> Self {
        LlMem::default()
    }
}

impl MemoryEstimator for LlMem {
    fn name(&self) -> &'static str {
        "LLMem"
    }

    fn supports(&self, model: ModelId) -> bool {
        model.info().arch == ArchClass::Transformer
    }

    fn estimate(&self, spec: &TrainJobSpec, device: &GpuDevice) -> Option<EstimateOutcome> {
        if !self.supports(spec.model) {
            return None;
        }
        // Analytic static footprint from the model card: weights, their
        // gradients and optimizer state (LLMem models these in closed form
        // for transformer fine-tuning).
        let graph = spec.model.build();
        let params: u64 = graph.param_bytes();
        let mut grads = 0u64;
        let mut states = 0u64;
        for p in graph.params() {
            if p.trainable {
                grads += p.spec.size_bytes() as u64;
                states += spec.optimizer.state_bytes(&p.spec);
            }
        }
        let static_bytes = params + grads + states;
        // Analytic activation footprint at batch b: the sum of operator
        // output tensors (LLMem's closed-form per-layer accounting).
        let analytic_act = |batch: usize| -> u64 {
            let inputs = graph.input_specs(batch, spec.seq);
            match graph.infer_shapes(&inputs) {
                Ok(shapes) => graph
                    .nodes()
                    .iter()
                    .filter(|n| !n.is_input() && !n.op.is_view())
                    .map(|n| match n.op {
                        // The LM-head loss materializes log-probabilities
                        // the size of the logits — LLMem's analytic model
                        // accounts for them explicitly.
                        xmem_graph::OpKind::CrossEntropyLoss => n
                            .inputs
                            .first()
                            .map_or(0, |i| shapes[i.index()].size_bytes() as u64),
                        _ => shapes[n.id.index()].size_bytes() as u64,
                    })
                    .sum(),
                Err(_) => 0,
            }
        };
        // One calibration execution at batch 1 on the *target* GPU (this
        // consumes the GPU and can itself OOM). It absorbs the analytic
        // model's systematic error into a scale factor.
        let probe_spec = TrainJobSpec {
            batch: 1,
            iterations: 2,
            seed: spec.seed ^ 0xaa,
            ..spec.clone()
        };
        let probe = run_on_gpu(&probe_spec, device, None, false);
        if probe.oom {
            return None;
        }
        // LLMem reads the framework's tensor-level peak
        // (`torch.cuda.max_memory_allocated`) rather than NVML, so the
        // calibration is free of segment-cache slack — and consequently
        // the final prediction misses exactly that slack.
        let measured_dyn_1 = probe.counters.peak_allocated.saturating_sub(static_bytes);
        let act_1 = analytic_act(1).max(1);
        // The analytic activation model is a lower bound by construction;
        // the measurement only refines it upward (at batch 1 the true peak
        // often sits in the gradient phase, which would otherwise crush
        // the calibration factor toward zero).
        let calibration = (measured_dyn_1 as f64 / act_1 as f64).max(1.0);
        // Tensor-level prediction: blind to the tensor→segment gap
        // (allocator caching/fragmentation), which it systematically
        // undershoots by.
        let job = static_bytes as f64 + calibration * analytic_act(spec.batch) as f64;
        let predicted = device.framework_bytes + job as u64;
        Some(EstimateOutcome::from_peak(predicted, device))
    }

    fn consumes_gpu(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_optim::OptimizerKind;

    #[test]
    fn rejects_cnns() {
        let e = LlMem::new();
        assert!(!e.supports(ModelId::ResNet101));
        let spec = TrainJobSpec::new(ModelId::ResNet101, OptimizerKind::Adam, 32);
        assert!(e.estimate(&spec, &GpuDevice::rtx3060()).is_none());
    }

    #[test]
    fn estimates_transformers_with_bounded_error_at_small_batch() {
        let e = LlMem::new();
        let device = GpuDevice::rtx3060();
        let spec =
            TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 5).with_iterations(3);
        let est = e.estimate(&spec, &device).unwrap();
        let gt = run_on_gpu(&spec, &device, None, false);
        assert!(!gt.oom);
        let err = (est.peak_bytes as f64 - gt.peak_nvml as f64).abs() / gt.peak_nvml as f64;
        assert!(err < 0.5, "small-batch error {err:.3}");
    }

    #[test]
    fn extrapolation_error_grows_with_batch() {
        let e = LlMem::new();
        let device = GpuDevice::rtx3060();
        let rel_err = |batch: usize| -> f64 {
            let spec =
                TrainJobSpec::new(ModelId::Gpt2, OptimizerKind::AdamW, batch).with_iterations(3);
            let est = e.estimate(&spec, &device).unwrap();
            let gt = run_on_gpu(&spec, &device, None, false);
            assert!(!gt.oom);
            (est.peak_bytes as f64 - gt.peak_nvml as f64).abs() / gt.peak_nvml as f64
        };
        // Not strictly monotone, but far extrapolation must be clearly
        // worse than near extrapolation on average.
        let near = rel_err(4);
        let far = rel_err(40);
        assert!(
            far > near * 0.8,
            "far extrapolation ({far:.3}) should not beat near ({near:.3}) decisively"
        );
    }

    #[test]
    fn fails_when_probes_oom() {
        // Pythia-1B + AdamW cannot fit even batch 1 on 12 GiB: the probe
        // runs OOM and LLMem reports failure.
        let e = LlMem::new();
        let spec = TrainJobSpec::new(ModelId::Pythia1B, OptimizerKind::AdamW, 4);
        assert!(e.estimate(&spec, &GpuDevice::rtx3060()).is_none());
    }

    #[test]
    fn declares_gpu_consumption() {
        assert!(LlMem::new().consumes_gpu());
    }
}
