//! Reproductions of the three baseline estimators the paper compares
//! against (§4.1.1), each with the methodological strengths and weaknesses
//! §5 attributes to it:
//!
//! * [`DnnMem`] — static computational-graph analysis with a one-level BFC
//!   allocator simulation. A-priori and GPU-free, but blind to optimizer
//!   state, code placement (`zero_grad`), auxiliary autograd buffers and
//!   the device-level reclaim path.
//! * [`SchedTune`] — a gradient-boosted-trees regressor (implemented from
//!   scratch in [`gbdt`]) over model/hardware features, trained on
//!   historical runs of a *subset* of models. Fast, but generalizes poorly
//!   to unseen architectures (the cold-start problem).
//! * [`LlMem`] — direct GPU measurement: runs the job at batch 1 and 2 on
//!   the *target* GPU and extrapolates linearly. Potentially accurate but
//!   consumes the scarce resource, can itself OOM, and mis-extrapolates
//!   allocator nonlinearity. Transformer-only.
//!
//! All estimators (and xMem, adapted in `xmem-eval`) implement
//! [`MemoryEstimator`], the interface the evaluation harness drives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dnnmem;
pub mod gbdt;
mod llmem;
mod schedtune;
mod traits;

pub use dnnmem::DnnMem;
pub use llmem::LlMem;
pub use schedtune::{SchedTune, SchedTuneTrainingReport};
pub use traits::{EstimateOutcome, MemoryEstimator};
