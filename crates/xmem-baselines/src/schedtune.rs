//! SchedTune reproduction (Albahar et al., CCGrid 2022) — the paper's
//! representative of data-driven estimation (§5.2).
//!
//! SchedTune trains a regression model on historical executions: features
//! describing the model/job/hardware, labels from measured peaks. It is
//! fast at inference time and needs no GPU at estimation time, but it
//! generalizes poorly to architectures outside its training distribution —
//! the cold-start problem the paper demonstrates (negative transformer MCP
//! in Table 3).
//!
//! The training corpus here is generated from simulated-GPU runs of a
//! deliberately *historical* model subset (pre-2020 architectures plus the
//! two most common LMs), exactly the situation of a cluster that has been
//! logging yesterday's workloads.

use crate::gbdt::{Gbdt, GbdtParams};
use crate::traits::{EstimateOutcome, MemoryEstimator};
use serde::{Deserialize, Serialize};
use xmem_graph::ArchClass;
use xmem_models::ModelId;
use xmem_optim::OptimizerKind;
use xmem_runtime::{run_on_gpu, GpuDevice, TrainJobSpec};

/// The historical model subset the regressor is trained on.
const TRAINING_MODELS: [ModelId; 6] = [
    ModelId::Vgg16,
    ModelId::ResNet101,
    ModelId::MobileNetV2,
    ModelId::MnasNet,
    ModelId::DistilGpt2,
    ModelId::Gpt2,
];

/// Feature extraction: everything a scheduler knows *before* running the
/// job (model card + job request + device).
fn features(spec: &TrainJobSpec, device: &GpuDevice) -> Vec<f64> {
    let info = spec.model.info();
    let graph = spec.model.build();
    let param_bytes = graph.param_bytes() as f64;
    let seq = if spec.seq == 0 {
        info.default_seq
    } else {
        spec.seq
    } as f64;
    let input_numel: f64 = graph
        .input_specs(spec.batch, spec.seq)
        .iter()
        .map(|s| s.numel() as f64)
        .sum();
    vec![
        (param_bytes.max(1.0)).log2(),
        spec.batch as f64,
        input_numel.log2(),
        // State slots per parameter distinguish optimizer families.
        match spec.optimizer {
            OptimizerKind::Sgd { momentum: false } => 0.0,
            OptimizerKind::Sgd { momentum: true }
            | OptimizerKind::RMSprop
            | OptimizerKind::Adagrad => 1.0,
            OptimizerKind::Adam | OptimizerKind::AdamW => 2.0,
            OptimizerKind::Adafactor => 0.1,
        },
        match info.arch {
            ArchClass::Cnn => 0.0,
            ArchClass::Transformer => 1.0,
        },
        graph.op_count() as f64,
        seq,
        (device.capacity as f64).log2(),
    ]
}

/// Summary of corpus generation (returned for diagnostics/tests).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedTuneTrainingReport {
    /// Number of historical runs harvested (OOM runs are unusable).
    pub samples: usize,
    /// Historical runs that hit OOM and were discarded.
    pub discarded_oom: usize,
}

/// The SchedTune estimator: a fitted GBDT over job features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedTune {
    model: Gbdt,
    /// Corpus statistics.
    pub report: SchedTuneTrainingReport,
}

impl SchedTune {
    /// Trains on the historical corpus: the subset models swept over a few
    /// batch sizes and optimizers on both commodity GPUs, labelled with the
    /// measured NVML peak. Deterministic given `seed`.
    #[must_use]
    pub fn train(seed: u64) -> Self {
        let mut x: Vec<Vec<f64>> = Vec::new();
        let mut y: Vec<f64> = Vec::new();
        let mut report = SchedTuneTrainingReport::default();
        let devices = [GpuDevice::rtx3060(), GpuDevice::rtx4060()];
        let optimizers = [
            OptimizerKind::Sgd { momentum: true },
            OptimizerKind::Adam,
            OptimizerKind::AdamW,
        ];
        for (i, model) in TRAINING_MODELS.into_iter().enumerate() {
            let grid = model.info().batch_grid;
            // Historical logs rarely cover the full grid: take 4 points.
            let batches: Vec<usize> = grid.values().into_iter().step_by(2).take(4).collect();
            for (j, &batch) in batches.iter().enumerate() {
                for (k, &opt) in optimizers.iter().enumerate() {
                    for (d, device) in devices.iter().enumerate() {
                        let run_seed = seed
                            ^ ((i as u64) << 24 | (j as u64) << 16 | (k as u64) << 8 | d as u64);
                        let spec = TrainJobSpec::new(model, opt, batch)
                            .with_iterations(3)
                            .with_seed(run_seed);
                        let gt = run_on_gpu(&spec, device, None, false);
                        if gt.oom {
                            report.discarded_oom += 1;
                            continue;
                        }
                        x.push(features(&spec, device));
                        y.push(gt.peak_nvml as f64);
                        report.samples += 1;
                    }
                }
            }
        }
        let model = Gbdt::fit(&x, &y, &GbdtParams::default());
        report.samples = y.len();
        SchedTune { model, report }
    }

    /// Serializes the fitted model (pre-trained deployment).
    ///
    /// # Errors
    /// Propagates serialization failures.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Loads a fitted model.
    ///
    /// # Errors
    /// Propagates deserialization failures.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

impl MemoryEstimator for SchedTune {
    fn name(&self) -> &'static str {
        "SchedTune"
    }

    fn supports(&self, _model: ModelId) -> bool {
        true
    }

    fn estimate(&self, spec: &TrainJobSpec, device: &GpuDevice) -> Option<EstimateOutcome> {
        let predicted = self.model.predict(&features(spec, device)).max(0.0) as u64;
        Some(EstimateOutcome::from_peak(predicted, device))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> SchedTune {
        SchedTune::train(42)
    }

    #[test]
    fn training_produces_a_usable_corpus() {
        let st = trained();
        assert!(st.report.samples > 50, "got {}", st.report.samples);
    }

    #[test]
    fn in_distribution_predictions_are_reasonable() {
        let st = trained();
        let device = GpuDevice::rtx3060();
        let spec = TrainJobSpec::new(ModelId::ResNet101, OptimizerKind::Adam, 300)
            .with_iterations(3)
            .with_seed(999);
        let est = st.estimate(&spec, &device).unwrap();
        let gt = run_on_gpu(&spec, &device, None, false);
        assert!(!gt.oom);
        let err = (est.peak_bytes as f64 - gt.peak_nvml as f64).abs() / gt.peak_nvml as f64;
        assert!(err < 0.35, "in-distribution error {err:.3}");
    }

    #[test]
    fn cold_start_architectures_mispredict() {
        // Pythia-1B is far outside the training distribution; tree models
        // cannot extrapolate, so the error is large.
        let st = trained();
        let device = GpuDevice::rtx3060();
        let spec = TrainJobSpec::new(ModelId::Pythia1B, OptimizerKind::Sgd { momentum: false }, 2)
            .with_iterations(3);
        let est = st.estimate(&spec, &device).unwrap();
        let gt = run_on_gpu(&spec, &device, None, false);
        assert!(!gt.oom);
        let err = (est.peak_bytes as f64 - gt.peak_nvml as f64).abs() / gt.peak_nvml as f64;
        assert!(err > 0.25, "cold-start error should be large, got {err:.3}");
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let st = trained();
        let json = st.to_json().unwrap();
        let back = SchedTune::from_json(&json).unwrap();
        let device = GpuDevice::rtx3060();
        let spec = TrainJobSpec::new(ModelId::Vgg16, OptimizerKind::Adam, 200);
        assert_eq!(st.estimate(&spec, &device), back.estimate(&spec, &device));
    }
}
