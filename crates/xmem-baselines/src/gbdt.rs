//! Gradient-boosted regression trees, from scratch — the learning substrate
//! for the SchedTune baseline.
//!
//! Squared-error boosting with exact greedy splits: each round fits a
//! depth-bounded regression tree to the current residuals and shrinks it by
//! the learning rate. No external ML dependency is used (DESIGN.md §1).

use serde::{Deserialize, Serialize};

/// Boosting hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbdtParams {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage per round.
    pub learning_rate: f64,
    /// Minimum samples per leaf (regularization).
    pub min_samples_leaf: usize,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_trees: 120,
            max_depth: 4,
            learning_rate: 0.1,
            min_samples_leaf: 2,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// One regression tree (nodes in a flat arena; root at index 0).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn fit(x: &[Vec<f64>], residuals: &[f64], indices: &[usize], params: &GbdtParams) -> Self {
        let mut tree = Tree { nodes: Vec::new() };
        tree.grow(x, residuals, indices, params, 0);
        tree
    }

    fn grow(
        &mut self,
        x: &[Vec<f64>],
        residuals: &[f64],
        indices: &[usize],
        params: &GbdtParams,
        depth: usize,
    ) -> usize {
        let mean = indices.iter().map(|&i| residuals[i]).sum::<f64>() / indices.len() as f64;
        if depth >= params.max_depth || indices.len() < 2 * params.min_samples_leaf {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        match best_split(x, residuals, indices, params.min_samples_leaf) {
            None => {
                self.nodes.push(Node::Leaf { value: mean });
                self.nodes.len() - 1
            }
            Some((feature, threshold)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    indices.iter().partition(|&&i| x[i][feature] <= threshold);
                // Reserve this node's slot, then grow children.
                let slot = self.nodes.len();
                self.nodes.push(Node::Leaf { value: mean }); // placeholder
                let left = self.grow(x, residuals, &left_idx, params, depth + 1);
                let right = self.grow(x, residuals, &right_idx, params, depth + 1);
                self.nodes[slot] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                slot
            }
        }
    }

    fn predict(&self, features: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Exact greedy split search: minimize total SSE over all (feature,
/// threshold) candidates.
fn best_split(
    x: &[Vec<f64>],
    residuals: &[f64],
    indices: &[usize],
    min_leaf: usize,
) -> Option<(usize, f64)> {
    let n_features = x[indices[0]].len();
    let total_sum: f64 = indices.iter().map(|&i| residuals[i]).sum();
    let total_sq: f64 = indices.iter().map(|&i| residuals[i] * residuals[i]).sum();
    let n = indices.len() as f64;
    let base_sse = total_sq - total_sum * total_sum / n;

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    #[allow(clippy::needless_range_loop)] // feature indexes per-sample rows, not one slice
    for feature in 0..n_features {
        let mut sorted: Vec<usize> = indices.to_vec();
        sorted.sort_by(|&a, &b| {
            x[a][feature]
                .partial_cmp(&x[b][feature])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for (count, window) in sorted.windows(2).enumerate() {
            let i = window[0];
            left_sum += residuals[i];
            left_sq += residuals[i] * residuals[i];
            let left_n = (count + 1) as f64;
            let right_n = n - left_n;
            if (count + 1) < min_leaf || (right_n as usize) < min_leaf {
                continue;
            }
            let (xa, xb) = (x[i][feature], x[window[1]][feature]);
            if xa == xb {
                continue; // no threshold separates equal values
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse = (left_sq - left_sum * left_sum / left_n)
                + (right_sq - right_sum * right_sum / right_n);
            if best.as_ref().is_none_or(|&(_, _, b)| sse < b) {
                best = Some((feature, (xa + xb) / 2.0, sse));
            }
        }
    }
    best.and_then(|(f, t, sse)| (sse < base_sse - 1e-12).then_some((f, t)))
}

/// A fitted gradient-boosting model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gbdt {
    base: f64,
    trees: Vec<Tree>,
    learning_rate: f64,
}

impl Gbdt {
    /// Fits the ensemble to `(x, y)`.
    ///
    /// # Panics
    /// Panics when `x` and `y` are empty or of different lengths.
    #[must_use]
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: &GbdtParams) -> Self {
        assert!(
            !x.is_empty() && x.len() == y.len(),
            "non-empty, aligned data"
        );
        let base = y.iter().sum::<f64>() / y.len() as f64;
        let mut predictions = vec![base; y.len()];
        let indices: Vec<usize> = (0..y.len()).collect();
        let mut trees = Vec::with_capacity(params.n_trees);
        for _ in 0..params.n_trees {
            let residuals: Vec<f64> = y.iter().zip(&predictions).map(|(yi, pi)| yi - pi).collect();
            let tree = Tree::fit(x, &residuals, &indices, params);
            for (i, pred) in predictions.iter_mut().enumerate() {
                *pred += params.learning_rate * tree.predict(&x[i]);
            }
            trees.push(tree);
        }
        Gbdt {
            base,
            trees,
            learning_rate: params.learning_rate,
        }
    }

    /// Predicts for one feature vector.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.base + self.learning_rate * self.trees.iter().map(|t| t.predict(features)).sum::<f64>()
    }

    /// Number of trees in the ensemble.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the ensemble is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 3*a + b^2, on a small grid.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..12 {
            for b in 0..12 {
                x.push(vec![a as f64, b as f64]);
                y.push(3.0 * a as f64 + (b * b) as f64);
            }
        }
        (x, y)
    }

    #[test]
    fn fits_training_data() {
        let (x, y) = grid();
        let model = Gbdt::fit(&x, &y, &GbdtParams::default());
        let mse = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| (model.predict(xi) - yi).powi(2))
            .sum::<f64>()
            / y.len() as f64;
        let var = {
            let mean = y.iter().sum::<f64>() / y.len() as f64;
            y.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / y.len() as f64
        };
        assert!(
            mse < 0.05 * var,
            "mse {mse} should beat 5% of variance {var}"
        );
    }

    #[test]
    fn interpolates_in_range() {
        let (x, y) = grid();
        let model = Gbdt::fit(&x, &y, &GbdtParams::default());
        let pred = model.predict(&[5.5, 5.5]);
        let truth = 3.0 * 5.5 + 5.5 * 5.5;
        assert!((pred - truth).abs() / truth < 0.25);
    }

    #[test]
    fn extrapolation_saturates_at_leaves() {
        // Trees cannot extrapolate: far outside the training range the
        // prediction flattens — the mechanism behind SchedTune's
        // cold-start failures.
        let (x, y) = grid();
        let model = Gbdt::fit(&x, &y, &GbdtParams::default());
        let at_edge = model.predict(&[11.0, 11.0]);
        let far_out = model.predict(&[100.0, 100.0]);
        assert!((at_edge - far_out).abs() < 1.0);
    }

    #[test]
    fn constant_target_yields_base_prediction() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]];
        let y = vec![7.0; 4];
        let model = Gbdt::fit(&x, &y, &GbdtParams::default());
        assert!((model.predict(&[2.5]) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let (x, y) = grid();
        let model = Gbdt::fit(
            &x,
            &y,
            &GbdtParams {
                n_trees: 10,
                ..GbdtParams::default()
            },
        );
        let json = serde_json::to_string(&model).unwrap();
        let back: Gbdt = serde_json::from_str(&json).unwrap();
        assert_eq!(model.predict(&[3.0, 3.0]), back.predict(&[3.0, 3.0]));
        assert_eq!(back.len(), 10);
        assert!(!back.is_empty());
    }
}
