//! DNNMem reproduction (Gao et al., ESEC/FSE 2020), per the published
//! description — the paper's representative of static analysis (§5.1).
//!
//! DNNMem walks the static computation graph: weight tensors, weight
//! gradients, operator outputs with reference-counted liveness, per-op
//! ephemeral (workspace) estimates, a CUDA-context constant, and a
//! framework-level BFC allocator simulation. Faithfully reproduced
//! limitations:
//!
//! * **no optimizer-state modelling** — accurate for SGD, increasingly
//!   wrong for Adam/AdamW (2× parameter bytes missing);
//! * **no auxiliary autograd buffers** — dropout masks, pool indices,
//!   normalization statistics, attention log-sum-exp and the materialized
//!   cross-entropy log-probabilities are absent from a static graph;
//! * **no `zero_grad` placement sensitivity** — gradients are assumed to
//!   die at the iteration boundary (POS1-like), whatever the code does;
//! * **one-level allocator** — the framework BFC is simulated, but not the
//!   device level or the cached-segment reclaim that precedes a real OOM;
//! * **its own CUDA-context constant** instead of the measured framework
//!   overhead.

use crate::traits::{EstimateOutcome, MemoryEstimator};
use xmem_alloc::{AllocatorConfig, CachingAllocator, DeviceAllocator};
use xmem_graph::Graph;
use xmem_models::ModelId;
use xmem_runtime::{BackendKind, GpuDevice, Phase, TrainJobSpec};

/// The DNNMem estimator.
#[derive(Debug, Clone)]
pub struct DnnMem {
    /// The CUDA-context constant DNNMem adds (their paper's calibration —
    /// close to, but not equal to, the true framework overhead).
    pub cuda_context_bytes: u64,
}

impl Default for DnnMem {
    fn default() -> Self {
        DnnMem {
            cuda_context_bytes: 450 << 20,
        }
    }
}

impl DnnMem {
    /// Creates the estimator with its published-style context constant.
    #[must_use]
    pub fn new() -> Self {
        DnnMem::default()
    }

    /// Static walk: returns the simulated framework-allocator peak for the
    /// job (no context constant added).
    #[must_use]
    pub fn static_peak(&self, graph: &Graph, spec: &TrainJobSpec) -> u64 {
        let inputs = graph.input_specs(spec.batch, spec.seq);
        let shapes = match graph.infer_shapes(&inputs) {
            Ok(s) => s,
            Err(_) => return 0,
        };
        // One-level BFC: unbounded device, no reclaim (never exercised).
        let mut alloc = CachingAllocator::new(
            AllocatorConfig::without_reclaim(),
            DeviceAllocator::unlimited(),
        );

        // Weights are resident. Gradients are NOT pre-allocated: on a
        // static graph each parameter gradient's last consumer is the
        // per-layer optimizer update, so liveness analysis frees it right
        // after its backward node — it cannot know that PyTorch retains
        // `.grad` until `zero_grad()`. This is the systematic
        // underestimation the paper observes, growing with model size
        // (Fig. 9) and with gradient/parameter footprint.
        for p in graph.params() {
            let _ = alloc.alloc(p.spec.size_bytes());
        }
        // Batch tensors.
        let mut batch_addrs = Vec::new();
        for spec_in in &inputs {
            if let Ok(a) = alloc.alloc(spec_in.size_bytes()) {
                batch_addrs.push(a);
            }
        }
        let target = graph.input_template().target_spec(spec.batch, spec.seq);
        if let Ok(a) = alloc.alloc(target.size_bytes()) {
            batch_addrs.push(a);
        }

        // Forward walk: outputs live until their backward node (static
        // liveness over the training graph). DNNMem models cuDNN workspace
        // sizes per operator; it does not know about views or in-place
        // execution, so every operator output is a tensor.
        let mut out_addrs: Vec<Option<u64>> = vec![None; graph.nodes().len()];
        for (i, node) in graph.nodes().iter().enumerate() {
            if node.is_input() {
                continue;
            }
            let in_specs: Vec<&xmem_graph::TensorSpec> =
                node.inputs.iter().map(|id| &shapes[id.index()]).collect();
            let out_spec = &shapes[i];
            if !node.op.is_view() {
                if let Ok(a) = alloc.alloc(out_spec.size_bytes()) {
                    out_addrs[i] = Some(a);
                }
            }
            let ws =
                BackendKind::Gpu.workspace_bytes(&node.op, &in_specs, out_spec, Phase::Forward);
            if ws > 0 {
                if let Ok(a) = alloc.alloc(ws) {
                    alloc.free(a);
                }
            }
        }
        // Backward walk (reverse): gradient of each activation lives while
        // its producer's backward runs; activations are freed after their
        // backward consumes them.
        let mut grad_addrs: Vec<Option<u64>> = vec![None; graph.nodes().len()];
        for i in (0..graph.nodes().len()).rev() {
            let node = &graph.nodes()[i];
            if node.is_input() || node.op.is_view() {
                continue;
            }
            let in_specs: Vec<&xmem_graph::TensorSpec> =
                node.inputs.iter().map(|id| &shapes[id.index()]).collect();
            let out_spec = &shapes[i];
            // Gradients of this node's inputs.
            for input in &node.inputs {
                let idx = input.index();
                if grad_addrs[idx].is_none() && shapes[idx].dtype.is_float() {
                    if let Ok(a) = alloc.alloc(shapes[idx].size_bytes()) {
                        grad_addrs[idx] = Some(a);
                    }
                }
            }
            let ws =
                BackendKind::Gpu.workspace_bytes(&node.op, &in_specs, out_spec, Phase::Backward);
            if ws > 0 {
                if let Ok(a) = alloc.alloc(ws) {
                    alloc.free(a);
                }
            }
            // Parameter gradients: live only across this node's backward
            // and its (assumed fused) per-layer update.
            let mut param_grads = Vec::new();
            for pid in &node.params {
                let p = &graph.params()[pid.index()];
                if p.trainable {
                    if let Ok(a) = alloc.alloc(p.spec.size_bytes()) {
                        param_grads.push(a);
                    }
                }
            }
            for a in param_grads {
                alloc.free(a);
            }
            // Consume: free this node's output gradient and its activation.
            if let Some(a) = grad_addrs[i].take() {
                alloc.free(a);
            }
            if let Some(a) = out_addrs[i].take() {
                alloc.free(a);
            }
        }
        for a in batch_addrs {
            alloc.free(a);
        }
        alloc.counters().peak_reserved
    }
}

impl MemoryEstimator for DnnMem {
    fn name(&self) -> &'static str {
        "DNNMem"
    }

    fn supports(&self, _model: ModelId) -> bool {
        true
    }

    fn estimate(&self, spec: &TrainJobSpec, device: &GpuDevice) -> Option<EstimateOutcome> {
        let graph = spec.model.build();
        let peak = self.static_peak(&graph, spec) + self.cuda_context_bytes;
        Some(EstimateOutcome::from_peak(peak, device))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_optim::OptimizerKind;

    fn spec(model: ModelId, opt: OptimizerKind, batch: usize) -> TrainJobSpec {
        TrainJobSpec::new(model, opt, batch).with_iterations(3)
    }

    #[test]
    fn estimates_scale_with_batch() {
        let d = GpuDevice::rtx3060();
        let e = DnnMem::new();
        let small = e
            .estimate(&spec(ModelId::ResNet101, OptimizerKind::Adam, 200), &d)
            .unwrap();
        let large = e
            .estimate(&spec(ModelId::ResNet101, OptimizerKind::Adam, 600), &d)
            .unwrap();
        assert!(large.peak_bytes > small.peak_bytes);
    }

    #[test]
    fn blind_to_optimizer_choice() {
        let d = GpuDevice::rtx3060();
        let e = DnnMem::new();
        let sgd = e
            .estimate(
                &spec(ModelId::Gpt2, OptimizerKind::Sgd { momentum: false }, 8),
                &d,
            )
            .unwrap();
        let adam = e
            .estimate(&spec(ModelId::Gpt2, OptimizerKind::Adam, 8), &d)
            .unwrap();
        assert_eq!(
            sgd.peak_bytes, adam.peak_bytes,
            "static analysis cannot see optimizer state"
        );
    }

    #[test]
    fn blind_to_zero_grad_placement() {
        let d = GpuDevice::rtx3060();
        let e = DnnMem::new();
        let s = spec(ModelId::DistilGpt2, OptimizerKind::AdamW, 8);
        let pos0 = e.estimate(&s, &d).unwrap();
        let pos1 = e
            .estimate(
                &s.clone()
                    .with_zero_grad(xmem_runtime::ZeroGradPos::IterStart),
                &d,
            )
            .unwrap();
        assert_eq!(pos0.peak_bytes, pos1.peak_bytes);
    }

    #[test]
    fn underestimates_stateful_training() {
        // Against ground truth with Adam, DNNMem misses ~2x params of
        // state: its estimate must sit below the true peak.
        let d = GpuDevice::rtx3060();
        let s = spec(ModelId::Gpt2, OptimizerKind::Adam, 16);
        let est = DnnMem::new().estimate(&s, &d).unwrap();
        let gt = xmem_runtime::run_on_gpu(&s, &d, None, false);
        assert!(!gt.oom);
        assert!(est.peak_bytes < gt.peak_nvml);
    }

    #[test]
    fn supports_everything() {
        assert!(DnnMem::new().supports(ModelId::Vgg16));
        assert!(DnnMem::new().supports(ModelId::Qwen3_4B));
        assert!(!DnnMem::new().consumes_gpu());
    }
}
