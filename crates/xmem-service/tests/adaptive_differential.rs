//! Differential test for adaptive cache tiering: estimation *results*
//! must be bit-identical whether tiering is on (the default) or off.
//! The tuner, frequency sketch, ghost lists, and admission gate only
//! decide **what stays resident** — cached stages are pure functions of
//! the job key, so re-deriving an entry the gate refused (or the tuner
//! squeezed out) reproduces the same bytes.

use xmem_models::ModelId;
use xmem_optim::OptimizerKind;
use xmem_runtime::{GpuDevice, TrainJobSpec};
use xmem_service::{DeviceRegistry, EstimationService, ServiceConfig, TieringMode};

/// Deterministic xorshift64* stream, seeding the pseudo-random fleet and
/// query mix identically for both services.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

const FLEET_NAMES: [&str; 3] = ["diff-dev-0", "diff-dev-1", "diff-dev-2"];

/// A pseudo-random fleet: raw byte sizes off MiB alignment, capacities
/// always clearing the framework + tenant overheads.
fn pseudo_random_fleet(rng: &mut XorShift) -> Vec<GpuDevice> {
    FLEET_NAMES
        .iter()
        .map(|name| GpuDevice {
            name,
            capacity: 1_500_000_000 + rng.below(18_000_000_000),
            framework_bytes: 500_000_000 + rng.below(90_000_000),
            init_bytes: rng.below(120_000_000),
        })
        .collect()
}

fn service_with(tiering: TieringMode, fleet: &[GpuDevice]) -> EstimationService {
    let registry = DeviceRegistry::empty();
    for device in fleet {
        registry.register(device.name, *device);
    }
    // A deliberately tight, single-sharded cache so evictions, the
    // admission gate, and tuner traffic all actually happen.
    let mut config = ServiceConfig::for_device(GpuDevice::rtx3060())
        .with_registry(registry)
        .with_cache_capacity(4)
        .with_tiering(tiering);
    config.shards = 1;
    EstimationService::new(config)
}

fn spec(batch: usize) -> TrainJobSpec {
    TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, batch).with_iterations(2)
}

#[test]
fn adaptive_tiering_is_bit_identical_to_plain_lru_service_results() {
    let mut rng = XorShift(0x9e37_79b9_97f4_a7c1);
    let fleet = pseudo_random_fleet(&mut rng);
    let adaptive = service_with(TieringMode::adaptive(), &fleet);
    let plain = service_with(TieringMode::Off, &fleet);
    assert!(adaptive.stage_tier_stats().adaptive);
    assert!(!plain.stage_tier_stats().segmented);

    // A pseudo-random query mix over more distinct jobs than the cache
    // holds: single estimates, per-device estimates, sweeps, matrices,
    // and placement decisions, in one interleaved deterministic order.
    for _ in 0..40 {
        let batch = 1 + rng.below(8) as usize;
        match rng.below(5) {
            0 => {
                let a = adaptive.estimate(&spec(batch)).unwrap();
                let b = plain.estimate(&spec(batch)).unwrap();
                assert_eq!(a, b, "estimate(batch={batch}) diverged");
            }
            1 => {
                let device = fleet[rng.below(fleet.len() as u64) as usize];
                let a = adaptive.estimate_for_device(&spec(batch), device).unwrap();
                let b = plain.estimate_for_device(&spec(batch), device).unwrap();
                assert_eq!(a, b, "estimate_for_device(batch={batch}) diverged");
            }
            2 => {
                let batches = [batch, batch + 1, batch + 3];
                let a = adaptive.sweep(&spec(1), &batches);
                let b = plain.sweep(&spec(1), &batches);
                for ((b1, e1), (b2, e2)) in a.iter().zip(&b) {
                    assert_eq!(b1, b2);
                    assert_eq!(e1.as_ref().unwrap(), e2.as_ref().unwrap(), "sweep diverged");
                }
            }
            3 => {
                let jobs = [spec(batch)];
                let a = adaptive.estimate_matrix(&jobs, &FLEET_NAMES).unwrap();
                let b = plain.estimate_matrix(&jobs, &FLEET_NAMES).unwrap();
                assert_eq!(a, b, "matrix(batch={batch}) diverged");
            }
            _ => {
                let a = adaptive.best_device_for_job(&spec(batch)).unwrap();
                let b = plain.best_device_for_job(&spec(batch)).unwrap();
                assert_eq!(a, b, "placement(batch={batch}) diverged");
            }
        }
    }

    // The equality above must not be vacuous: the adaptive service's
    // tiering machinery actually ran on this mix.
    let stats = adaptive.cache_stats();
    assert!(
        stats.promoted > 0,
        "re-hit stage entries must have been promoted"
    );
    assert!(
        stats.evictions + stats.admission_denied > 0,
        "the tight cache must have come under pressure"
    );
    let tier = adaptive.stage_tier_stats();
    assert!(tier.segmented && tier.adaptive);
    assert!(tier.entries <= tier.capacity);
    let plain_stats = plain.cache_stats();
    assert_eq!(plain_stats.admission_denied, 0);
    assert_eq!(plain_stats.ghost_hits, 0);
    assert_eq!(
        stats.hits + stats.misses,
        plain_stats.hits + plain_stats.misses,
        "both services saw the same lookup sequence"
    );
}
