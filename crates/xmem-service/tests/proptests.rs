//! Property-based tests of the sharded LRU cache under service-shaped
//! keys — arbitrary `(model, optimizer, batch)` workloads must never
//! change the value a key maps to, and occupancy must respect the
//! configured capacity — plus the multi-device layer under random
//! fleets: `best_device_for_job` must always pick a fitting device, and
//! matrix cells must equal independent sequential estimates.

use proptest::prelude::*;
use std::collections::HashMap;
use xmem_core::{Estimator, EstimatorConfig};
use xmem_models::ModelId;
use xmem_optim::OptimizerKind;
use xmem_runtime::{GpuDevice, TrainJobSpec};
use xmem_service::{DeviceRegistry, EstimationService, JobKey, ServiceConfig, ShardedLruCache};

const MODELS: [ModelId; 4] = [
    ModelId::MobileNetV3Small,
    ModelId::DistilGpt2,
    ModelId::ResNet101,
    ModelId::T5Small,
];

const OPTIMIZERS: [OptimizerKind; 4] = [
    OptimizerKind::Adam,
    OptimizerKind::AdamW,
    OptimizerKind::Sgd { momentum: true },
    OptimizerKind::Adafactor,
];

/// A key drawn from the service's real key space: model × optimizer ×
/// batch ∈ 1..64.
fn key_strategy() -> impl Strategy<Value = JobKey> {
    (0usize..MODELS.len(), 0usize..OPTIMIZERS.len(), 1usize..64).prop_map(
        |(model, optimizer, batch)| {
            JobKey::of(&TrainJobSpec::new(
                MODELS[model],
                OPTIMIZERS[optimizer],
                batch,
            ))
        },
    )
}

/// The "peak bytes" a key would deterministically produce: the pipeline is
/// pure in the key, so a content-derived stand-in preserves the property
/// under test (cache churn must never change what a key returns) without
/// profiling real models thousands of times.
fn synthetic_peak(key: &JobKey) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whatever interleaving of inserts, hits and evictions a workload
    /// produces, a cached key always returns exactly the peak it was
    /// inserted with, and a miss never invents a value.
    #[test]
    fn cache_churn_never_changes_returned_peak_bytes(
        keys in proptest::collection::vec(key_strategy(), 1..200),
        capacity in 1usize..24,
        shards in 1usize..6,
    ) {
        let cache: ShardedLruCache<JobKey, u64> = ShardedLruCache::new(capacity, shards);
        let mut reference: HashMap<JobKey, u64> = HashMap::new();
        for key in &keys {
            let expected = synthetic_peak(key);
            match cache.get(key) {
                Some(peak) => prop_assert_eq!(
                    peak, expected,
                    "cache returned a different peak than was inserted"
                ),
                None => cache.insert(key.clone(), expected),
            }
            reference.insert(key.clone(), expected);
        }
        // Every still-cached entry agrees with the reference value.
        for (key, expected) in &reference {
            if let Some(peak) = cache.get(key) {
                prop_assert_eq!(peak, *expected);
            }
        }
    }

    /// Occupancy never exceeds the configured total capacity, at every
    /// step of the workload, for any shard count.
    #[test]
    fn lru_never_exceeds_configured_capacity(
        keys in proptest::collection::vec(key_strategy(), 1..300),
        capacity in 1usize..16,
        shards in 1usize..24,
    ) {
        let cache: ShardedLruCache<JobKey, u64> = ShardedLruCache::new(capacity, shards);
        prop_assert_eq!(cache.capacity(), capacity);
        for key in &keys {
            if cache.get(key).is_none() {
                cache.insert(key.clone(), synthetic_peak(key));
            }
            prop_assert!(
                cache.len() <= capacity,
                "cache holds {} entries, capacity is {}",
                cache.len(),
                capacity
            );
        }
    }

    /// Counter bookkeeping: hits + misses equals lookups, and insertions
    /// never exceed misses (every insert is caused by a miss).
    #[test]
    fn counters_are_consistent(
        keys in proptest::collection::vec(key_strategy(), 1..150),
    ) {
        let cache: ShardedLruCache<JobKey, u64> = ShardedLruCache::new(32, 4);
        for key in &keys {
            if cache.get(key).is_none() {
                cache.insert(key.clone(), synthetic_peak(key));
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, keys.len() as u64);
        prop_assert_eq!(stats.insertions, stats.misses);
        prop_assert!(stats.evictions <= stats.insertions);
    }
}

// ---------------------------------------------------------------------------
// O(1) LRU vs a scan-based reference model, operation for operation.
// ---------------------------------------------------------------------------

/// One cache operation drawn by the model-comparison proptest.
#[derive(Debug, Clone, Copy)]
enum CacheOp {
    Get(u16),
    Peek(u16),
    Insert(u16),
}

fn op_strategy() -> impl Strategy<Value = CacheOp> {
    (0u8..3, 0u16..48).prop_map(|(kind, key)| match kind {
        0 => CacheOp::Get(key),
        1 => CacheOp::Peek(key),
        _ => CacheOp::Insert(key),
    })
}

/// Deterministic value/cost for a key, so cache and model always agree on
/// what an insert carries.
fn op_value(key: u16) -> u64 {
    (u64::from(key) * 7919) % 97 + 1
}

/// The reference model: exactly the scan-based single-shard LRU the O(1)
/// implementation replaced — recency ticks, `min_by_key` eviction sweeps,
/// linear byte accounting — extended with the same bytes-budget and
/// rejection rules.
#[derive(Debug, Default)]
struct ScanModel {
    map: HashMap<u16, (u64, u64, u64)>, // key -> (value, cost, tick)
    clock: u64,
    evictions: u64,
    rejected: u64,
}

impl ScanModel {
    fn get(&mut self, key: u16) -> Option<u64> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(&key).map(|e| {
            e.2 = clock;
            e.0
        })
    }

    fn peek(&self, key: u16) -> Option<u64> {
        self.map.get(&key).map(|e| e.0)
    }

    fn bytes(&self) -> u64 {
        self.map.values().map(|e| e.1).sum()
    }

    fn insert(&mut self, key: u16, value: u64, cost: u64, capacity: usize, budget: Option<u64>) {
        self.clock += 1;
        if budget.is_some_and(|b| cost > b) {
            self.map.remove(&key);
            self.rejected += 1;
            return;
        }
        self.map.insert(key, (value, cost, self.clock));
        while self.map.len() > capacity || budget.is_some_and(|b| self.bytes() > b) {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, &(_, _, tick))| tick)
                .map(|(&k, _)| k)
                .expect("non-empty while over limit");
            self.map.remove(&oldest);
            self.evictions += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every interleaving of get/peek/insert on a single-shard cache must
    /// match the scan-based reference model operation for operation:
    /// identical lookup results, identical resident key sets, identical
    /// eviction/rejection counts, and the bytes budget honored at every
    /// step. (Single shard so hashing does not spread keys: the model and
    /// the cache then see the exact same per-shard workload.)
    #[test]
    fn o1_lru_matches_scan_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..400),
        capacity in 1usize..24,
        // The vendored proptest has no `option` module: a bool picks
        // between budgeted and unbudgeted runs.
        budget in (any::<bool>(), 1u64..400).prop_map(|(on, b)| on.then_some(b)),
    ) {
        let mut cache: ShardedLruCache<u16, u64> = ShardedLruCache::new(capacity, 1);
        if let Some(budget) = budget {
            cache = cache.with_bytes_budget(budget, |v: &u64| *v);
        }
        let mut model = ScanModel::default();

        for &op in &ops {
            match op {
                CacheOp::Get(key) => {
                    prop_assert_eq!(cache.get(&key), model.get(key), "get({}) diverged", key);
                }
                CacheOp::Peek(key) => {
                    prop_assert_eq!(cache.peek(&key), model.peek(key), "peek({}) diverged", key);
                }
                CacheOp::Insert(key) => {
                    let value = op_value(key);
                    cache.insert(key, value);
                    // An unbudgeted cache installs no weigher, so entries
                    // cost 0 there — mirror that.
                    let cost = if budget.is_some() { value } else { 0 };
                    model.insert(key, value, cost, capacity, budget);
                }
            }
            prop_assert_eq!(cache.len(), model.map.len(), "resident count diverged");
            prop_assert_eq!(cache.bytes_in_use(), model.bytes(), "byte gauge diverged");
            if let Some(budget) = budget {
                prop_assert!(cache.bytes_in_use() <= budget, "budget exceeded");
            }
            cache.check_invariants();
        }

        // Same survivors, not just the same number of them.
        for (&key, &(value, _, _)) in &model.map {
            prop_assert_eq!(cache.peek(&key), Some(value), "model key {} missing", key);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.evictions, model.evictions, "eviction counts diverged");
        prop_assert_eq!(stats.rejected, model.rejected, "rejection counts diverged");
        // Stats invariants: every lookup is a hit or a miss; every insert
        // either lands or is rejected.
        let (gets, inserts) = ops.iter().fold((0u64, 0u64), |(g, i), op| match op {
            CacheOp::Get(_) => (g + 1, i),
            CacheOp::Peek(_) => (g, i),
            CacheOp::Insert(_) => (g, i + 1),
        });
        prop_assert_eq!(stats.hits + stats.misses, gets);
        prop_assert_eq!(stats.insertions + stats.rejected, inserts);
        prop_assert!(stats.evictions <= stats.insertions);
    }
}

/// The segmented (SLRU) reference model: per-key `(value, cost, tick,
/// protected)` with a global clock. A get promotes a probation entry to
/// protected (demoting the oldest protected entry when the segment
/// overflows, stamping it with a fresh tick — the demoted entry lands at
/// probation's MRU in the real cache), and eviction victims are the
/// oldest probation entry first, then the oldest protected one.
#[derive(Debug, Default)]
struct SegmentedModel {
    map: HashMap<u16, (u64, u64, u64, bool)>, // key -> (value, cost, tick, protected)
    clock: u64,
    evictions: u64,
    rejected: u64,
    promoted: u64,
    protected_cap: usize,
}

impl SegmentedModel {
    fn protected_len(&self) -> usize {
        self.map.values().filter(|e| e.3).count()
    }

    fn oldest(&self, protected: bool) -> Option<u16> {
        self.map
            .iter()
            .filter(|(_, &(_, _, _, p))| p == protected)
            .min_by_key(|(_, &(_, _, tick, _))| tick)
            .map(|(&k, _)| k)
    }

    fn get(&mut self, key: u16) -> Option<u64> {
        self.clock += 1;
        let clock = self.clock;
        let cap = self.protected_cap;
        let (value, promote) = {
            let entry = self.map.get_mut(&key)?;
            entry.2 = clock;
            let promote = cap > 0 && !entry.3;
            if promote {
                entry.3 = true;
            }
            (entry.0, promote)
        };
        if promote {
            self.promoted += 1;
            if self.protected_len() > cap {
                let demoted = self
                    .oldest(true)
                    .expect("a protected entry exists while over cap");
                self.clock += 1;
                let clock = self.clock;
                let entry = self.map.get_mut(&demoted).expect("demotion victim exists");
                entry.2 = clock;
                entry.3 = false;
            }
        }
        Some(value)
    }

    fn peek(&self, key: u16) -> Option<u64> {
        self.map.get(&key).map(|e| e.0)
    }

    fn bytes(&self) -> u64 {
        self.map.values().map(|e| e.1).sum()
    }

    fn insert(&mut self, key: u16, value: u64, cost: u64, capacity: usize, budget: Option<u64>) {
        self.clock += 1;
        if budget.is_some_and(|b| cost > b) {
            self.map.remove(&key);
            self.rejected += 1;
            return;
        }
        // A replacement keeps its segment; a new key starts in probation.
        let protected = self.map.get(&key).is_some_and(|e| e.3);
        self.map.insert(key, (value, cost, self.clock, protected));
        while self.map.len() > capacity || budget.is_some_and(|b| self.bytes() > b) {
            let victim = self
                .oldest(false)
                .or_else(|| self.oldest(true))
                .expect("non-empty while over limit");
            self.map.remove(&victim);
            self.evictions += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Segmented admission against the SLRU reference model, operation
    /// for operation: identical lookups, survivors, eviction/rejection
    /// **and promotion** counts, with the probation-first eviction order
    /// and protected-overflow demotion matching exactly.
    #[test]
    fn segmented_lru_matches_slru_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..400),
        capacity in 1usize..24,
        // Drawn in eighths so every protected/probation split is hit,
        // including the degenerate 0 (plain LRU) and all-protected ends.
        // (The vendored proptest has no RangeInclusive strategy.)
        eighths in 0u32..9,
        budget in (any::<bool>(), 1u64..400).prop_map(|(on, b)| on.then_some(b)),
    ) {
        let frac = f64::from(eighths) / 8.0;
        let mut cache: ShardedLruCache<u16, u64> =
            ShardedLruCache::new(capacity, 1).with_segmented_admission(frac);
        if let Some(budget) = budget {
            cache = cache.with_bytes_budget(budget, |v: &u64| *v);
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let protected_cap = ((capacity as f64 * frac).round() as usize).min(capacity);
        let mut model = SegmentedModel {
            protected_cap,
            ..SegmentedModel::default()
        };

        for &op in &ops {
            match op {
                CacheOp::Get(key) => {
                    prop_assert_eq!(cache.get(&key), model.get(key), "get({}) diverged", key);
                }
                CacheOp::Peek(key) => {
                    prop_assert_eq!(cache.peek(&key), model.peek(key), "peek({}) diverged", key);
                }
                CacheOp::Insert(key) => {
                    let value = op_value(key);
                    cache.insert(key, value);
                    let cost = if budget.is_some() { value } else { 0 };
                    model.insert(key, value, cost, capacity, budget);
                }
            }
            prop_assert_eq!(cache.len(), model.map.len(), "resident count diverged");
            prop_assert_eq!(cache.bytes_in_use(), model.bytes(), "byte gauge diverged");
            cache.check_invariants();
        }

        for (&key, &(value, _, _, _)) in &model.map {
            prop_assert_eq!(cache.peek(&key), Some(value), "model key {} missing", key);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.evictions, model.evictions, "eviction counts diverged");
        prop_assert_eq!(stats.rejected, model.rejected, "rejection counts diverged");
        prop_assert_eq!(stats.promoted, model.promoted, "promotion counts diverged");
        if protected_cap == 0 {
            prop_assert_eq!(stats.promoted, 0, "plain mode must never promote");
        }
    }

    /// Adaptive tiering with the tuner frozen against the same SLRU
    /// reference model, operation for operation: with tuning disabled the
    /// sketch, ghost lists, admission gate, and byte-split are all inert,
    /// so the machinery must be bit-identical to a static split at the
    /// same fraction. (Eighths have exact permille representations, so
    /// the integer tier caps equal the static path's float rounding.)
    #[test]
    fn frozen_adaptive_matches_the_slru_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..400),
        capacity in 1usize..24,
        eighths in 0u32..9,
        budget in (any::<bool>(), 1u64..400).prop_map(|(on, b)| on.then_some(b)),
    ) {
        let frac = f64::from(eighths) / 8.0;
        let mut cache: ShardedLruCache<u16, u64> =
            ShardedLruCache::new(capacity, 1).with_adaptive_tuning_disabled(frac);
        if let Some(budget) = budget {
            cache = cache.with_bytes_budget(budget, |v: &u64| *v);
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let protected_cap = ((capacity as f64 * frac).round() as usize).min(capacity);
        let mut model = SegmentedModel {
            protected_cap,
            ..SegmentedModel::default()
        };

        for &op in &ops {
            match op {
                CacheOp::Get(key) => {
                    prop_assert_eq!(cache.get(&key), model.get(key), "get({}) diverged", key);
                }
                CacheOp::Peek(key) => {
                    prop_assert_eq!(cache.peek(&key), model.peek(key), "peek({}) diverged", key);
                }
                CacheOp::Insert(key) => {
                    let value = op_value(key);
                    cache.insert(key, value);
                    let cost = if budget.is_some() { value } else { 0 };
                    model.insert(key, value, cost, capacity, budget);
                }
            }
            prop_assert_eq!(cache.len(), model.map.len(), "resident count diverged");
            prop_assert_eq!(cache.bytes_in_use(), model.bytes(), "byte gauge diverged");
            cache.check_invariants();
        }

        for (&key, &(value, _, _, _)) in &model.map {
            prop_assert_eq!(cache.peek(&key), Some(value), "model key {} missing", key);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.evictions, model.evictions, "eviction counts diverged");
        prop_assert_eq!(stats.rejected, model.rejected, "rejection counts diverged");
        prop_assert_eq!(stats.promoted, model.promoted, "promotion counts diverged");
        prop_assert_eq!(stats.ghost_hits, 0, "frozen tuner must not consult ghosts");
        prop_assert_eq!(stats.admission_denied, 0, "frozen tuner must not gate admission");
        prop_assert_eq!(stats.tuner_steps, 0, "frozen tuner must not step");
    }
}

/// Registry-key names for randomly generated fleets (`GpuDevice::name`
/// is `&'static str`, so the pool is static).
const FLEET_NAMES: [&str; 4] = ["prop-dev-0", "prop-dev-1", "prop-dev-2", "prop-dev-3"];

/// A random device: raw byte sizes, deliberately *not* MiB-aligned, so
/// the allocator simulation's page-granularity rounding is exercised at
/// odd capacities. Capacity always exceeds framework + tenant overheads.
fn device_strategy(index: usize) -> impl Strategy<Value = GpuDevice> {
    (
        1_400_000_000u64..20_000_000_000,
        500_000_000u64..590_000_000,
        0u64..130_000_000,
    )
        .prop_map(move |(capacity, framework_bytes, init_bytes)| GpuDevice {
            name: FLEET_NAMES[index],
            capacity,
            framework_bytes,
            init_bytes,
        })
}

fn fleet_strategy() -> impl Strategy<Value = Vec<GpuDevice>> {
    // The vendored proptest implements `Strategy` for tuples up to arity
    // 4, so the four device slots are nested in pairs.
    (
        1usize..FLEET_NAMES.len() + 1,
        (device_strategy(0), device_strategy(1)),
        (device_strategy(2), device_strategy(3)),
    )
        .prop_map(|(size, (a, b), (c, d))| {
            let mut fleet = vec![a, b, c, d];
            fleet.truncate(size);
            fleet
        })
}

proptest! {
    // Each case profiles the job once for the service plus once per
    // device for the independent sequential estimates, so the case count
    // is kept low; the job space is what varies cheaply.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random fleets × random jobs: every matrix cell equals an
    /// independent sequential estimate, and `best_device_for_job` picks a
    /// *fitting* device of minimal capacity — or `None` exactly when no
    /// cell fits.
    #[test]
    fn placement_always_fits_and_matrix_matches_independent_estimates(
        fleet in fleet_strategy(),
        batch in 1usize..5,
    ) {
        let registry = DeviceRegistry::empty();
        for device in &fleet {
            registry.register(device.name, *device);
        }
        let names: Vec<&str> = fleet.iter().map(|d| d.name).collect();
        let service = EstimationService::new(
            ServiceConfig::for_device(GpuDevice::rtx3060()).with_registry(registry),
        );
        let spec = TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, batch)
            .with_iterations(2);

        let matrix = service
            .estimate_matrix(std::slice::from_ref(&spec), &names)
            .expect("all fleet names are registered");
        prop_assert_eq!(service.profile_runs(), 1, "one analysis for the whole row");
        prop_assert_eq!(service.sim_runs(), fleet.len() as u64);

        let row = &matrix.rows[0];
        for device in &fleet {
            let independent = Estimator::new(EstimatorConfig::for_device(*device))
                .estimate_job(&spec)
                .expect("sequential estimate succeeds");
            let cell = row.cell(device.name).expect("cell per fleet device");
            prop_assert_eq!(
                cell.estimate.as_ref().expect("cell estimate succeeds"),
                &independent,
                "cell for {} diverged from the independent estimate",
                device.name
            );
        }

        let placement = service
            .best_device_for_job(&spec)
            .expect("estimation succeeds");
        let fitting: Vec<&GpuDevice> = fleet
            .iter()
            .filter(|d| row.cell(d.name).expect("cell").fits())
            .collect();
        match placement {
            Some(placement) => {
                let chosen = fleet
                    .iter()
                    .find(|d| d.name == placement.device)
                    .expect("placement names a fleet device");
                prop_assert!(
                    !placement.estimate.oom_predicted,
                    "placement must fit its device"
                );
                prop_assert!(
                    fitting.iter().all(|d| chosen.capacity <= d.capacity),
                    "best fit must be a minimal-capacity fitting device"
                );
            }
            None => prop_assert!(
                fitting.is_empty(),
                "placement may only pass when no device fits"
            ),
        }
    }
}

/// One real-pipeline anchor for the synthetic-peak modeling above: a key
/// whose stages are computed, evicted and recomputed yields identical
/// `peak_bytes` both times.
#[test]
fn eviction_and_recomputation_reproduce_identical_estimates() {
    use xmem_runtime::GpuDevice;
    use xmem_service::{EstimationService, ServiceConfig};

    // Capacity 1 over 1 shard with plain LRU (the adaptive admission
    // gate would deny the second key instead): the second spec always
    // evicts the first.
    let mut config = ServiceConfig::for_device(GpuDevice::rtx3060())
        .with_cache_capacity(1)
        .with_tiering(xmem_service::TieringMode::Off);
    config.shards = 1;
    let service = EstimationService::new(config);

    let a = TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 2).with_iterations(2);
    let b = TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 4).with_iterations(2);

    let first_a = service.estimate(&a).unwrap();
    let _ = service.estimate(&b).unwrap(); // evicts a
    let second_a = service.estimate(&a).unwrap(); // recomputed
    assert_eq!(first_a.peak_bytes, second_a.peak_bytes);
    assert_eq!(first_a, second_a);
    assert!(service.cache_stats().evictions >= 1);
}
