//! Concurrent, cache-backed estimation service.
//!
//! The xMem pipeline splits cleanly into a device-independent front half —
//! CPU profiling ([`xmem_runtime::profile_on_cpu`]) and trace analysis
//! ([`xmem_core::Analyzer`]) — and a cheap, device-dependent back half
//! (orchestration + allocator simulation). Scheduler workloads issue many
//! near-identical queries per second: batch-size planning probes one model
//! at many batch sizes, and admission control re-asks the same `(model,
//! optimizer, batch)` question for every queued job. This crate serves
//! that traffic shape:
//!
//! * [`EstimationService`] memoizes the expensive stages in a sharded
//!   (mutex-per-shard) LRU cache keyed by [`JobKey`] — model, optimizer,
//!   batch, iterations, `zero_grad` placement (plus sequence length and
//!   precision, which also shape the trace);
//! * [`EstimationService::sweep`] fans a batch-size grid out across
//!   `std::thread` workers, sharing per-model work through the cache;
//! * [`EstimationService::max_batch_for_device`] answers the
//!   admission-control question — the largest batch that fits a device —
//!   by bracketing with a parallel coarse sweep and bisecting the
//!   remainder over cached probes.
//!
//! Estimates are **bit-identical** to the sequential
//! [`Estimator`](xmem_core::Estimator) path: the memoized stages are pure
//! functions of the job key, and the simulation stages run unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod key;
mod service;

pub use cache::{CacheStats, ShardedLruCache};
pub use key::JobKey;
pub use service::{EstimationService, ProfiledStages, ServiceConfig};
