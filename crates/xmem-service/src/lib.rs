//! Concurrent, cache-backed estimation service.
//!
//! The xMem pipeline splits cleanly into a device-independent front half —
//! CPU profiling ([`xmem_runtime::profile_on_cpu`]) and trace analysis
//! ([`xmem_core::Analyzer`]) — and a cheap, device-dependent back half
//! (orchestration + allocator simulation). Scheduler workloads issue many
//! near-identical queries per second: batch-size planning probes one model
//! at many batch sizes, and admission control re-asks the same `(model,
//! optimizer, batch)` question for every queued job. This crate serves
//! that traffic shape:
//!
//! * [`EstimationService`] memoizes the expensive stages in a sharded
//!   (mutex-per-shard) LRU cache keyed by [`JobKey`] — model, optimizer,
//!   batch, iterations, `zero_grad` placement (plus sequence length and
//!   precision, which also shape the trace);
//! * [`EstimationService::sweep`] fans a batch-size grid out across
//!   `std::thread` workers, sharing per-model work through the cache;
//! * [`EstimationService::max_batch_for_device`] answers the
//!   admission-control question — the largest batch that fits a device —
//!   by bracketing with a parallel coarse sweep and bisecting the
//!   remainder over cached probes;
//! * [`AsyncEstimationService`] is the future-based front end for
//!   scheduler event loops: `submit` returns an [`EstimateFuture`]
//!   answered by a bounded, channel-fed worker pool, with cancellation,
//!   per-query deadlines, and [`SubmitError::Busy`] backpressure instead
//!   of unbounded queues. Concurrent identical queries **single-flight**
//!   onto one profile run ([`FlightStats`]), and Analyzer failures for
//!   degenerate jobs are remembered in a TTL'd negative cache
//!   ([`NegativeStats`]);
//! * the **multi-device sharded simulation layer** makes one service
//!   instance the per-cluster estimator: a [`DeviceRegistry`] of named
//!   [`GpuDevice`](xmem_runtime::GpuDevice) configs (loadable from a
//!   JSON fleet file), per-device simulation shards ([`SimStats`]), and
//!   batched replay — [`EstimationService::estimate_matrix`] /
//!   [`AsyncEstimationService::submit_matrix`] answer an M-jobs ×
//!   D-devices grid with exactly one profile/analyze per job fanned out
//!   to concurrent per-device simulations, and
//!   [`EstimationService::best_device_for_job`] turns the matrix into a
//!   best-fit placement decision.
//!
//! The async machinery is dependency-free (the build environment has no
//! crates.io): futures are hand-rolled shared-state promises, wakers come
//! from [`std::task::Wake`], and [`block_on`] / [`Executor`] /
//! [`join_all`] are the minimal executor surface a scheduler needs to
//! drive thousands of in-flight queries from a few threads.
//!
//! Estimates are **bit-identical** to the sequential
//! [`Estimator`](xmem_core::Estimator) path: the memoized stages are pure
//! functions of the job key, and the simulation stages run unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod executor;
mod future;
pub mod jobspec;
mod key;
mod negative;
mod persist;
pub mod placement;
mod registry;
mod service;
mod simcache;
mod singleflight;
pub mod telemetry;
mod tiering;
mod timer;

pub use cache::{CacheStats, ShardedLruCache};
pub use executor::{block_on, join_all, Executor, JoinAll, SubmitError, WorkerPool};
pub use future::{promise_pair, LateOutcome, PoolFuture, Promise};
pub use key::{JobKey, SweepKey};
pub use negative::{NegativeCache, NegativeStats};
pub use persist::{
    PersistStats, Snapshotter, JOURNAL_FILE, SNAPSHOT_FILE, SNAPSHOT_TMP_FILE, STATE_FORMAT_VERSION,
};
pub use placement::{hash_family, hash_job, HashRing};
pub use registry::{DeviceRegistry, RegistryParseError};
pub use service::{
    AsyncEstimationService, AsyncServiceConfig, EstimateFuture, EstimationService, MatrixFuture,
    PlacementFuture, PlanFuture, ProfiledStages, ServiceConfig, SweepFuture, SweepOutcome,
};
pub use simcache::{DeviceFingerprint, SimShards, SimStats};
pub use singleflight::{FlightStats, SingleFlight};
pub use telemetry::{
    CompletedTrace, LogLevel, Span, SpanRecord, Telemetry, TelemetryConfig, TraceContext,
    TRACE_HEADER,
};
pub use tiering::{TierStats, TieringMode};
