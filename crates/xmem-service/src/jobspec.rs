//! One job-spec grammar for every ingress surface.
//!
//! A training job reaches the estimator three ways — CLI flags
//! (`--model gpt2 --optimizer AdamW --batch 16`), batch-queue job lines
//! (`gpt2 AdamW 16 seq=128 iters=2 pos1`), and HTTP JSON bodies
//! (`{"model": "gpt2", "optimizer": "AdamW", "batch": 16}`). All three are
//! spellings of the same seven fields, so they share one validator:
//! [`JobDraft`] collects raw field values and [`JobDraft::build`] turns
//! them into a [`TrainJobSpec`] with one set of error messages. The CLI,
//! the HTTP server and the examples parse through this module — there is
//! exactly one place where "what is a valid job?" is answered.

use serde::{obj_get, Value};
use xmem_models::ModelId;
use xmem_optim::OptimizerKind;
use xmem_runtime::{Precision, TrainJobSpec, ZeroGradPos};

/// An unvalidated job description: raw field values as they arrived from
/// a flag map, a job line, or a JSON object. [`JobDraft::build`] validates
/// and assembles them.
#[derive(Debug, Clone, Default)]
pub struct JobDraft {
    model: Option<String>,
    optimizer: Option<String>,
    batch: Option<String>,
    seq: Option<String>,
    iterations: Option<String>,
    pos1: bool,
    fp16: bool,
}

impl JobDraft {
    /// A draft with no fields set.
    #[must_use]
    pub fn new() -> Self {
        JobDraft::default()
    }

    /// Sets one field by its grammar name: `model`, `optimizer`, `batch`,
    /// `seq`, `iterations` take a value; the flags `pos1` and `fp16` are
    /// enabled by any of `""`, `"true"`, or `"1"` (and refused otherwise,
    /// so a typo like `pos1=maybe` cannot silently pass).
    ///
    /// # Errors
    /// Unknown field names and malformed flag values.
    pub fn set(&mut self, field: &str, value: &str) -> Result<(), String> {
        match field {
            "model" => self.model = Some(value.to_string()),
            "optimizer" => self.optimizer = Some(value.to_string()),
            "batch" => self.batch = Some(value.to_string()),
            "seq" => self.seq = Some(value.to_string()),
            "iterations" => self.iterations = Some(value.to_string()),
            "pos1" | "fp16" => {
                let enabled = matches!(value, "" | "true" | "1");
                if !enabled {
                    return Err(format!("`{field}` is a flag; got value `{value}`"));
                }
                if field == "pos1" {
                    self.pos1 = true;
                } else {
                    self.fp16 = true;
                }
            }
            other => return Err(format!("unknown job field `{other}`")),
        }
        Ok(())
    }

    /// Validates the draft into a [`TrainJobSpec`]. `default_batch` backs
    /// grid-driven callers (`sweep`, `plan`) where the batch size comes
    /// from the grid, not the spec.
    ///
    /// # Errors
    /// Missing required fields, unknown model/optimizer names, and
    /// non-numeric numeric fields — with the same messages on every
    /// ingress surface.
    pub fn build(&self, default_batch: Option<usize>) -> Result<TrainJobSpec, String> {
        let model_name = self.model.as_deref().ok_or("`model` is required")?;
        let model = ModelId::by_name(model_name)
            .ok_or_else(|| format!("unknown model `{model_name}` (see `xmem-cli models`)"))?;
        let optimizer_name = self.optimizer.as_deref().ok_or("`optimizer` is required")?;
        let optimizer = OptimizerKind::parse(optimizer_name)
            .ok_or_else(|| format!("unknown optimizer `{optimizer_name}`"))?;
        let batch: usize = match (self.batch.as_deref(), default_batch) {
            (Some(raw), _) => raw
                .parse()
                .map_err(|_| "`batch` must be a number".to_string())?,
            (None, Some(default)) => default,
            (None, None) => return Err("`batch` is required".to_string()),
        };
        if batch == 0 {
            return Err("`batch` must be >= 1".to_string());
        }
        let mut spec = TrainJobSpec::new(model, optimizer, batch);
        if let Some(seq) = self.seq.as_deref() {
            spec.seq = seq.parse().map_err(|_| "`seq` must be a number")?;
        }
        if let Some(iterations) = self.iterations.as_deref() {
            spec.iterations = iterations
                .parse()
                .map_err(|_| "`iterations` must be a number")?;
        }
        if self.pos1 {
            spec = spec.with_zero_grad(ZeroGradPos::IterStart);
        }
        if self.fp16 {
            spec = spec.with_precision(Precision::F16);
        }
        Ok(spec)
    }
}

/// Parses one batch-queue job line:
/// `<model> <optimizer> <batch> [seq=N] [iters=N] [pos1] [fp16]`.
///
/// # Errors
/// Missing positionals, unknown tokens, and every [`JobDraft::build`]
/// failure.
///
/// # Example
/// ```
/// use xmem_service::jobspec::parse_job_line;
/// let spec = parse_job_line("distilgpt2 AdamW 4 iters=2 fp16").unwrap();
/// assert_eq!(spec.batch, 4);
/// assert_eq!(spec.iterations, 2);
/// ```
pub fn parse_job_line(line: &str) -> Result<TrainJobSpec, String> {
    let mut tokens = line.split_whitespace();
    let mut draft = JobDraft::new();
    for positional in ["model", "optimizer", "batch"] {
        let value = tokens
            .next()
            .ok_or_else(|| format!("missing {positional}"))?;
        draft.set(positional, value)?;
    }
    for token in tokens {
        if let Some(seq) = token.strip_prefix("seq=") {
            draft.set("seq", seq)?;
        } else if let Some(iters) = token.strip_prefix("iters=") {
            draft.set("iterations", iters)?;
        } else if token == "pos1" || token == "fp16" {
            draft.set(token, "true")?;
        } else {
            return Err(format!("unknown job token `{token}`"));
        }
    }
    draft.build(None)
}

/// Parses a whole job file — one job line each, `#` comments, blank lines
/// skipped — reporting failures with their 1-based line number.
///
/// # Errors
/// The first malformed line, as `line N: <reason>`.
pub fn parse_jobs_text(text: &str) -> Result<Vec<TrainJobSpec>, String> {
    let mut specs = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let spec = parse_job_line(line).map_err(|e| format!("line {}: {e}", number + 1))?;
        specs.push(spec);
    }
    Ok(specs)
}

/// Parses the JSON spelling of a job: an object with `model`, `optimizer`,
/// `batch` (required) and `seq`, `iterations`, `pos1`, `fp16` (optional).
/// Numeric fields accept JSON numbers or numeric strings; the flags accept
/// JSON booleans.
///
/// # Errors
/// Non-object values, unknown keys, and every [`JobDraft::build`] failure.
pub fn job_from_value(value: &Value) -> Result<TrainJobSpec, String> {
    job_from_value_with_batch(value, None)
}

/// [`job_from_value`] for grid-driven callers (`sweep`, `plan`), where the
/// batch size comes from the grid: `default_batch` backs an omitted
/// `batch` field instead of failing with `` `batch` is required``.
///
/// # Errors
/// The same failures as [`job_from_value`], minus a missing `batch` when
/// `default_batch` is given.
pub fn job_from_value_with_batch(
    value: &Value,
    default_batch: Option<usize>,
) -> Result<TrainJobSpec, String> {
    let entries = value.as_object().ok_or("job must be a JSON object")?;
    let mut draft = JobDraft::new();
    for (key, field_value) in entries {
        match (key.as_str(), field_value) {
            ("pos1" | "fp16", Value::Bool(enabled)) => {
                if *enabled {
                    draft.set(key, "true")?;
                }
            }
            (_, Value::Str(s)) => draft.set(key, s)?,
            (_, Value::U64(n)) => draft.set(key, &n.to_string())?,
            (_, Value::I64(n)) => draft.set(key, &n.to_string())?,
            (key, _) => return Err(format!("field `{key}` has an unsupported JSON type")),
        }
    }
    draft.build(default_batch)
}

/// Renders a spec into the JSON object [`job_from_value`] parses — the
/// canonical wire spelling HTTP clients send. Round-trips exactly for any
/// spec expressible in the grammar (model/optimizer by name, default
/// seed).
#[must_use]
pub fn job_to_value(spec: &TrainJobSpec) -> Value {
    let mut entries = vec![
        (
            "model".to_string(),
            Value::Str(spec.model.info().name.to_string()),
        ),
        (
            "optimizer".to_string(),
            Value::Str(spec.optimizer.name().to_string()),
        ),
        ("batch".to_string(), Value::U64(spec.batch as u64)),
    ];
    if spec.seq != 0 {
        entries.push(("seq".to_string(), Value::U64(spec.seq as u64)));
    }
    entries.push((
        "iterations".to_string(),
        Value::U64(u64::from(spec.iterations)),
    ));
    if spec.zero_grad_pos == ZeroGradPos::IterStart {
        entries.push(("pos1".to_string(), Value::Bool(true)));
    }
    if spec.precision == Precision::F16 {
        entries.push(("fp16".to_string(), Value::Bool(true)));
    }
    Value::Object(entries)
}

/// Reads an optional JSON field as a `usize`, accepting numbers or numeric
/// strings — the shared convention for auxiliary request fields (`min`,
/// `max`, `batches`) that ride alongside a job object.
///
/// # Errors
/// Present-but-non-numeric values, as `` `field` must be a number``.
pub fn usize_field(entries: &[(String, Value)], field: &str) -> Result<Option<usize>, String> {
    match obj_get(entries, field) {
        None | Some(Value::Null) => Ok(None),
        Some(value) => {
            let parsed = match value {
                Value::U64(n) => usize::try_from(*n).ok(),
                Value::I64(n) => usize::try_from(*n).ok(),
                Value::Str(s) => s.parse().ok(),
                _ => None,
            };
            parsed
                .map(Some)
                .ok_or_else(|| format!("`{field}` must be a number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_json_spellings_agree() {
        let from_line = parse_job_line("distilgpt2 AdamW 4 seq=64 iters=2 pos1 fp16").unwrap();
        let json: Value = serde_json::from_str(
            r#"{"model":"distilgpt2","optimizer":"AdamW","batch":4,
                "seq":64,"iterations":2,"pos1":true,"fp16":true}"#,
        )
        .unwrap();
        let from_json = job_from_value(&json).unwrap();
        assert_eq!(from_line, from_json);
        assert_eq!(from_line.seq, 64);
        assert_eq!(from_line.iterations, 2);
        assert_eq!(from_line.zero_grad_pos, ZeroGradPos::IterStart);
        assert_eq!(from_line.precision, Precision::F16);
    }

    #[test]
    fn job_to_value_round_trips() {
        let spec = parse_job_line("gpt2 Adam 2 seq=128 iters=2 fp16").unwrap();
        let round_tripped = job_from_value(&job_to_value(&spec)).unwrap();
        assert_eq!(spec, round_tripped);
        let plain = parse_job_line("MobeNetV3Small Adam 8").unwrap();
        assert_eq!(plain, job_from_value(&job_to_value(&plain)).unwrap());
    }

    #[test]
    fn errors_are_stable_across_spellings() {
        let line_err = parse_job_line("nonexistent Adam 8").unwrap_err();
        let json: Value =
            serde_json::from_str(r#"{"model":"nonexistent","optimizer":"Adam","batch":8}"#)
                .unwrap();
        let json_err = job_from_value(&json).unwrap_err();
        assert_eq!(line_err, json_err);
        assert!(line_err.contains("unknown model"));
    }

    #[test]
    fn flags_reject_values_and_unknown_fields_fail() {
        let mut draft = JobDraft::new();
        assert!(draft.set("pos1", "maybe").is_err());
        assert!(draft.set("color", "red").is_err());
        assert!(parse_job_line("gpt2 Adam 8 wat=1").is_err());
        assert!(parse_job_line("gpt2 Adam").is_err(), "missing batch");
        assert!(parse_job_line("gpt2 Adam notanumber").is_err());
    }

    #[test]
    fn jobs_text_skips_comments_and_numbers_errors() {
        let specs = parse_jobs_text(
            "# queue\n\nMobeNetV3Small Adam 8 iters=2\ndistilgpt2 AdamW 4 # trailing\n",
        )
        .unwrap();
        assert_eq!(specs.len(), 2);
        let err = parse_jobs_text("MobeNetV3Small Adam 8\n\nbad line here\n").unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
    }

    #[test]
    fn batch_zero_is_rejected_with_one_stable_error_on_every_surface() {
        let want = "`batch` must be >= 1";
        // Job-line spelling.
        assert_eq!(parse_job_line("gpt2 Adam 0").unwrap_err(), want);
        // Flag-map spelling (CLI `--batch 0`).
        let mut draft = JobDraft::new();
        draft.set("model", "gpt2").unwrap();
        draft.set("optimizer", "Adam").unwrap();
        draft.set("batch", "0").unwrap();
        assert_eq!(draft.build(None).unwrap_err(), want);
        // JSON spelling, number and string forms.
        let json: Value =
            serde_json::from_str(r#"{"model":"gpt2","optimizer":"Adam","batch":0}"#).unwrap();
        assert_eq!(job_from_value(&json).unwrap_err(), want);
        let json: Value =
            serde_json::from_str(r#"{"model":"gpt2","optimizer":"Adam","batch":"0"}"#).unwrap();
        assert_eq!(job_from_value(&json).unwrap_err(), want);
        // Grid-driven default batch (a zero sweep-grid point).
        let mut grid = JobDraft::new();
        grid.set("model", "gpt2").unwrap();
        grid.set("optimizer", "Adam").unwrap();
        assert_eq!(grid.build(Some(0)).unwrap_err(), want);
        // Negative numbers stay a parse error, not a range error.
        assert_eq!(
            parse_job_line("gpt2 Adam -3").unwrap_err(),
            "`batch` must be a number"
        );
    }

    #[test]
    fn default_batch_backs_grid_callers() {
        let mut draft = JobDraft::new();
        draft.set("model", "MobeNetV3Small").unwrap();
        draft.set("optimizer", "Adam").unwrap();
        assert_eq!(draft.build(Some(7)).unwrap().batch, 7);
        assert!(draft.build(None).unwrap_err().contains("`batch`"));
    }
}
