//! Consistent-hash placement for the cluster tier.
//!
//! A ring of N `xmem-server` nodes owns the [`JobKey`] space: every node
//! hashes an incoming job to the same owner, so each profile/analysis is
//! computed exactly once cluster-wide and forwarded everywhere else.
//! Placement must therefore be a pure function of the key and the peer
//! list — no process-local state, no randomness — and stable across
//! processes and restarts, which rules out [`std::hash::RandomState`].
//! The ring hashes with the same FNV-1a the persistence layer frames
//! with, over the key's canonical JSON spelling (serde field order is
//! fixed by declaration order, so the spelling is deterministic).
//!
//! Virtual nodes smooth the partition: each node contributes
//! [`VNODES_PER_NODE`] points, keeping the per-node share within a few
//! percent of `1/N` for small rings. Node identity is the listen address
//! string, sorted before ring construction so every peer builds an
//! identical ring regardless of the order `--peers` spelled it.

use serde::Serialize;

use crate::key::{JobKey, SweepKey};

/// Virtual-node multiplier: ring points contributed per node.
pub const VNODES_PER_NODE: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over `bytes` — the same constants as the persistence frames,
/// reimplemented here so placement stays independent of the persist
/// module's crate-private API.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn hash_serialized<T: Serialize>(value: &T) -> u64 {
    let json = serde_json::to_string(value).expect("keys serialize infallibly");
    fnv1a64(json.as_bytes())
}

/// The ring position of a job: per-batch routes (`estimate`,
/// `best-device`) place by the full [`JobKey`].
#[must_use]
pub fn hash_job(key: &JobKey) -> u64 {
    hash_serialized(key)
}

/// The ring position of a job *family*: grid routes (`sweep`, `plan`)
/// place by the batchless [`SweepKey`], so a whole sweep lands on one
/// owner and its incremental-fit cache is built exactly once.
#[must_use]
pub fn hash_family(key: &SweepKey) -> u64 {
    hash_serialized(key)
}

/// A consistent-hash ring over a static node list.
///
/// Construction sorts and dedupes the addresses, then scatters
/// [`VNODES_PER_NODE`] points per node (point `i` of node `a` hashes
/// `"{a}#{i}"`). Ownership of a key hash is the first ring point at or
/// clockwise-after it, wrapping at the top.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Node identities (listen addresses), sorted and deduped.
    nodes: Vec<String>,
    /// `(ring point, index into nodes)`, sorted by point.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Builds the ring over `nodes` (listen addresses; order-insensitive,
    /// duplicates collapse). An empty list yields an empty ring that owns
    /// nothing.
    #[must_use]
    pub fn new<S: AsRef<str>>(nodes: &[S]) -> Self {
        let mut sorted: Vec<String> = nodes.iter().map(|n| n.as_ref().to_string()).collect();
        sorted.sort();
        sorted.dedup();
        let mut points = Vec::with_capacity(sorted.len() * VNODES_PER_NODE);
        for (index, node) in sorted.iter().enumerate() {
            for vnode in 0..VNODES_PER_NODE {
                points.push((fnv1a64(format!("{node}#{vnode}").as_bytes()), index));
            }
        }
        points.sort_unstable();
        HashRing {
            nodes: sorted,
            points,
        }
    }

    /// Number of distinct nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The sorted node list.
    #[must_use]
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// The index of `addr` in the sorted node list.
    #[must_use]
    pub fn index_of(&self, addr: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n == addr)
    }

    /// The node address at `index`.
    #[must_use]
    pub fn node(&self, index: usize) -> &str {
        &self.nodes[index]
    }

    /// The owning node index for a key hash: the first ring point at or
    /// after `hash`, wrapping. `None` only on an empty ring.
    #[must_use]
    pub fn owner_index(&self, hash: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let at = self.points.partition_point(|&(point, _)| point < hash);
        let (_, index) = self.points[at % self.points.len()];
        Some(index)
    }

    /// Every distinct node in ring order starting at `hash`'s owner — the
    /// failover sequence a cluster client walks when the owner is down.
    /// Each node appears exactly once.
    #[must_use]
    pub fn successors(&self, hash: u64) -> Vec<usize> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let start = self.points.partition_point(|&(point, _)| point < hash);
        let mut seen = vec![false; self.nodes.len()];
        let mut order = Vec::with_capacity(self.nodes.len());
        for offset in 0..self.points.len() {
            let (_, index) = self.points[(start + offset) % self.points.len()];
            if !seen[index] {
                seen[index] = true;
                order.push(index);
                if order.len() == self.nodes.len() {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_models::ModelId;
    use xmem_optim::OptimizerKind;
    use xmem_runtime::TrainJobSpec;

    fn ring3() -> HashRing {
        HashRing::new(&["127.0.0.1:7501", "127.0.0.1:7502", "127.0.0.1:7503"])
    }

    fn key(batch: usize) -> JobKey {
        JobKey::of(&TrainJobSpec::new(
            ModelId::MobileNetV3Small,
            OptimizerKind::Adam,
            batch,
        ))
    }

    #[test]
    fn placement_is_deterministic_and_order_insensitive() {
        let a = ring3();
        let b = HashRing::new(&["127.0.0.1:7503", "127.0.0.1:7501", "127.0.0.1:7502"]);
        for batch in 1..=64 {
            let hash = hash_job(&key(batch));
            assert_eq!(a.owner_index(hash), b.owner_index(hash));
        }
    }

    #[test]
    fn every_node_owns_a_share() {
        let ring = ring3();
        let mut counts = [0usize; 3];
        for batch in 1..=256 {
            counts[ring.owner_index(hash_job(&key(batch))).unwrap()] += 1;
        }
        for (node, &count) in counts.iter().enumerate() {
            assert!(count > 0, "node {node} owns nothing: {counts:?}");
        }
    }

    #[test]
    fn successors_cover_all_nodes_starting_at_the_owner() {
        let ring = ring3();
        let hash = hash_job(&key(8));
        let order = ring.successors(hash);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], ring.owner_index(hash).unwrap());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn removing_a_node_only_moves_its_own_keys() {
        let full = ring3();
        let reduced = HashRing::new(&["127.0.0.1:7501", "127.0.0.1:7502"]);
        let mut moved = 0usize;
        let mut kept = 0usize;
        for batch in 1..=256 {
            let hash = hash_job(&key(batch));
            let before = full.node(full.owner_index(hash).unwrap());
            let after = reduced.node(reduced.owner_index(hash).unwrap());
            if before == "127.0.0.1:7503" {
                moved += 1;
            } else {
                assert_eq!(before, after, "surviving owner must not move");
                kept += 1;
            }
        }
        assert!(moved > 0 && kept > 0);
    }

    #[test]
    fn family_hash_ignores_batch() {
        let a = SweepKey::of(&TrainJobSpec::new(
            ModelId::MobileNetV3Small,
            OptimizerKind::Adam,
            4,
        ));
        let b = SweepKey::of(&TrainJobSpec::new(
            ModelId::MobileNetV3Small,
            OptimizerKind::Adam,
            32,
        ));
        assert_eq!(hash_family(&a), hash_family(&b));
    }

    #[test]
    fn empty_and_single_rings_degenerate_sanely() {
        let empty: HashRing = HashRing::new::<String>(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.owner_index(42), None);
        assert!(empty.successors(42).is_empty());
        let single = HashRing::new(&["127.0.0.1:7501"]);
        assert_eq!(single.owner_index(hash_job(&key(4))), Some(0));
    }
}
