//! The concurrent, cache-backed estimation front end — blocking
//! ([`EstimationService`]) and asynchronous ([`AsyncEstimationService`]).

use crate::cache::{CacheStats, ShardedLruCache};
use crate::executor::{SubmitError, WorkerPool};
use crate::future::{promise_pair, PoolFuture};
use crate::key::JobKey;
use crate::negative::{NegativeCache, NegativeStats};
use crate::singleflight::{FlightStats, SingleFlight};
use crate::timer::DeadlineTimer;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use xmem_core::{AnalyzedTrace, Analyzer, Estimate, EstimateError, Estimator, EstimatorConfig};
use xmem_runtime::{profile_on_cpu, GpuDevice, TrainJobSpec};
use xmem_trace::Trace;

/// The memoized (device-independent) front half of the pipeline: the CPU
/// profiler trace and its analysis. Orchestration + simulation are cheap
/// and device-dependent, so they re-run per query.
///
/// The raw trace is retained alongside the analysis so
/// [`EstimationService::stages`] callers can export or re-analyze a
/// profiled job without re-profiling it; estimation itself only reads
/// `analyzed`. Traces dominate an entry's footprint (hundreds of KB to
/// MBs for large models) — size `ServiceConfig::cache_capacity` to the
/// memory budget, not just the key population.
#[derive(Debug)]
pub struct ProfiledStages {
    /// The raw CPU profiler trace.
    pub trace: Trace,
    /// The Analyzer's output over that trace.
    pub analyzed: AnalyzedTrace,
}

/// Configuration of an [`EstimationService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Estimator settings (target device, allocator, orchestrator knobs).
    pub estimator: EstimatorConfig,
    /// Total cached `(job key → profiled stages)` entries.
    pub cache_capacity: usize,
    /// Lock shards in the cache.
    pub shards: usize,
    /// Worker threads for [`EstimationService::sweep`] (0 = all cores).
    pub threads: usize,
    /// How long an Analyzer failure for a degenerate job is remembered
    /// before the job is re-verified. `Duration::ZERO` disables negative
    /// caching.
    pub negative_ttl: Duration,
    /// Bound on remembered failures (oldest evicted beyond it).
    pub negative_capacity: usize,
}

impl ServiceConfig {
    /// Service defaults (16-way sharded 256-entry cache, all cores,
    /// 30-second negative TTL) for a target device.
    #[must_use]
    pub fn for_device(device: GpuDevice) -> Self {
        ServiceConfig {
            estimator: EstimatorConfig::for_device(device),
            cache_capacity: 256,
            shards: 16,
            threads: 0,
            negative_ttl: Duration::from_secs(30),
            negative_capacity: 256,
        }
    }

    /// Overrides the cache capacity.
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the negative-caching TTL (`Duration::ZERO` disables it).
    #[must_use]
    pub fn with_negative_ttl(mut self, ttl: Duration) -> Self {
        self.negative_ttl = ttl;
        self
    }
}

/// A shared, thread-safe estimation front end for scheduler-scale traffic.
///
/// The expensive, device-independent stages (CPU profiling and trace
/// analysis) are memoized in a sharded LRU cache keyed by [`JobKey`];
/// orchestration and allocator simulation re-run per query against the
/// configured device. All methods take `&self`, so one service instance
/// can serve many scheduler threads concurrently.
///
/// # Example
///
/// ```
/// use xmem_service::{EstimationService, ServiceConfig};
/// use xmem_runtime::{GpuDevice, TrainJobSpec};
/// use xmem_models::ModelId;
/// use xmem_optim::OptimizerKind;
///
/// let service = EstimationService::new(ServiceConfig::for_device(GpuDevice::rtx3060()));
/// let spec = TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8)
///     .with_iterations(2);
/// let first = service.estimate(&spec).unwrap();
/// let second = service.estimate(&spec).unwrap(); // served from cache
/// assert_eq!(first, second);
/// assert_eq!(service.cache_stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct EstimationService {
    config: ServiceConfig,
    estimator: Estimator,
    cache: ShardedLruCache<JobKey, Arc<ProfiledStages>>,
    /// In-flight dedup: concurrent misses for one key coalesce onto a
    /// single profile/analyze run.
    flights: SingleFlight<JobKey, Result<Arc<ProfiledStages>, EstimateError>>,
    /// TTL'd memory of Analyzer failures for degenerate jobs.
    negative: NegativeCache<JobKey, EstimateError>,
    /// Count of actual `profile_on_cpu` executions — the ground truth the
    /// single-flight and cache layers are judged against.
    profiles: AtomicU64,
}

impl EstimationService {
    /// Creates a service.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        let estimator = Estimator::new(config.estimator.clone());
        let cache = ShardedLruCache::new(config.cache_capacity, config.shards);
        let negative = NegativeCache::new(config.negative_ttl, config.negative_capacity);
        EstimationService {
            config,
            estimator,
            cache,
            flights: SingleFlight::new(),
            negative,
            profiles: AtomicU64::new(0),
        }
    }

    /// Convenience constructor with service defaults for a device.
    #[must_use]
    pub fn for_device(device: GpuDevice) -> Self {
        EstimationService::new(ServiceConfig::for_device(device))
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Cache hit/miss/insert/evict counters. A fully cached sweep performs
    /// zero re-profiling: its queries all land in `hits`.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Single-flight counters: leader executions vs coalesced followers.
    #[must_use]
    pub fn flight_stats(&self) -> FlightStats {
        self.flights.stats()
    }

    /// Negative-cache counters (hits/insertions/evictions), exposed
    /// alongside the positive [`cache_stats`](Self::cache_stats).
    #[must_use]
    pub fn negative_stats(&self) -> NegativeStats {
        self.negative.stats()
    }

    /// How many times `profile_on_cpu` actually ran. Under any mix of
    /// cache hits and coalesced concurrent queries, this is at most one
    /// per distinct [`JobKey`] still covered by the cache/flight layers.
    #[must_use]
    pub fn profile_runs(&self) -> u64 {
        self.profiles.load(Ordering::Relaxed)
    }

    /// The memoized profile+analysis stages for `spec`, computing them on
    /// a cache miss.
    ///
    /// Concurrent misses for the same key are **single-flighted**: one
    /// caller profiles, the rest block on its result. Analyzer failures
    /// land in a TTL'd negative cache so degenerate jobs are not
    /// re-profiled on every query.
    ///
    /// # Errors
    /// Propagates Analyzer failures for degenerate jobs (possibly from
    /// the negative cache).
    pub fn stages(&self, spec: &TrainJobSpec) -> Result<Arc<ProfiledStages>, EstimateError> {
        let key = JobKey::of(spec);
        if let Some(hit) = self.cache.get(&key) {
            return Ok(hit);
        }
        if let Some(error) = self.negative.get(&key) {
            return Err(error);
        }
        self.flights.run(&key, || {
            // Winning leadership races a just-retired flight for the same
            // key: its leader published before retiring, so re-check both
            // caches before paying for a profile run.
            if let Some(hit) = self.cache.peek(&key) {
                return Ok(hit);
            }
            if let Some(error) = self.negative.get(&key) {
                return Err(error);
            }
            self.profiles.fetch_add(1, Ordering::Relaxed);
            let trace = profile_on_cpu(spec);
            match Analyzer::new().analyze(&trace) {
                Ok(analyzed) => {
                    let stages = Arc::new(ProfiledStages { trace, analyzed });
                    self.cache.insert(key.clone(), Arc::clone(&stages));
                    Ok(stages)
                }
                Err(error) => {
                    self.negative.insert(key.clone(), error.clone());
                    Err(error)
                }
            }
        })
    }

    /// Estimates `spec`'s peak GPU memory on the service's device,
    /// reusing cached stages when available. Results are bit-identical to
    /// the sequential [`Estimator::estimate_job`] path: profiling and
    /// analysis are deterministic in the job key, and the simulation
    /// stages run identically on both paths.
    ///
    /// # Errors
    /// Propagates Analyzer failures for degenerate jobs.
    pub fn estimate(&self, spec: &TrainJobSpec) -> Result<Estimate, EstimateError> {
        let stages = self.stages(spec)?;
        Ok(self.estimator.estimate_analyzed(&stages.analyzed))
    }

    /// Like [`estimate`](Self::estimate) but against an alternative
    /// estimator configuration (e.g. another device), still sharing the
    /// stage cache — the cached stages are device-independent.
    ///
    /// # Errors
    /// Propagates Analyzer failures for degenerate jobs.
    pub fn estimate_with(
        &self,
        spec: &TrainJobSpec,
        config: &EstimatorConfig,
    ) -> Result<Estimate, EstimateError> {
        let stages = self.stages(spec)?;
        Ok(Estimator::new(config.clone()).estimate_analyzed(&stages.analyzed))
    }

    fn worker_count(&self, work_items: usize) -> usize {
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        } else {
            self.config.threads
        };
        threads.min(work_items).max(1)
    }

    /// Estimates `base` at every batch size in `batches`, fanning the grid
    /// out across worker threads. Per-model work (profile + analysis of
    /// each distinct batch) is shared through the cache, so concurrent and
    /// repeated sweeps reuse it. Results are in `batches` order.
    pub fn sweep(
        &self,
        base: &TrainJobSpec,
        batches: &[usize],
    ) -> Vec<(usize, Result<Estimate, EstimateError>)> {
        self.sweep_inner(base, batches, &self.estimator)
    }

    fn sweep_inner(
        &self,
        base: &TrainJobSpec,
        batches: &[usize],
        estimator: &Estimator,
    ) -> Vec<(usize, Result<Estimate, EstimateError>)> {
        let results: Vec<Mutex<Option<Result<Estimate, EstimateError>>>> =
            batches.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.worker_count(batches.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&batch) = batches.get(i) else {
                        break;
                    };
                    let spec = with_batch(base, batch);
                    let estimate = self
                        .stages(&spec)
                        .map(|stages| estimator.estimate_analyzed(&stages.analyzed));
                    *results[i].lock().expect("sweep slot poisoned") = Some(estimate);
                });
            }
        });
        batches
            .iter()
            .zip(results)
            .map(|(&batch, slot)| {
                let estimate = slot
                    .into_inner()
                    .expect("sweep slot poisoned")
                    .expect("every slot is filled");
                (batch, estimate)
            })
            .collect()
    }

    /// Admission control: the largest batch in `[lo, hi]` whose estimate
    /// fits `device` without a predicted OOM, or `Ok(None)` when even `lo`
    /// does not fit.
    ///
    /// A coarse parallel sweep first brackets the fit/OOM frontier (warming
    /// the cache), then bisection pins it down; probe batches hit the
    /// shared cache on repeat queries.
    ///
    /// # Errors
    /// Propagates the first Analyzer failure hit by a probe — an
    /// estimation error is an error, never a "does not fit" verdict.
    pub fn max_batch_for_device(
        &self,
        base: &TrainJobSpec,
        device: GpuDevice,
        lo: usize,
        hi: usize,
    ) -> Result<Option<usize>, EstimateError> {
        assert!(lo >= 1 && lo <= hi, "invalid batch range [{lo}, {hi}]");
        let estimator = Estimator::new(EstimatorConfig::for_device(device));

        // Coarse bracket: a parallel sweep over an evenly spaced grid
        // warms the cache and narrows the frontier. The grid is capped —
        // on many-core hosts an uncapped grid would degenerate into an
        // exhaustive profile of the whole range, where bracket + bisect
        // needs only a handful of probes.
        let points = self.worker_count(usize::MAX).min(MAX_BRACKET_POINTS);
        let grid = coarse_grid(lo, hi, points);
        let mut coarse = Vec::with_capacity(grid.len());
        for (batch, estimate) in self.sweep_inner(base, &grid, &estimator) {
            coarse.push((batch, !estimate?.oom_predicted));
        }
        if !coarse.first().map(|&(_, fits)| fits).unwrap_or(false) {
            return Ok(None);
        }
        let mut lo = coarse
            .iter()
            .rev()
            .find(|&&(_, fits)| fits)
            .map(|&(b, _)| b)
            .unwrap_or(lo);
        let mut hi = coarse
            .iter()
            .find(|&&(_, fits)| !fits)
            .map(|&(b, _)| b - 1)
            .unwrap_or(hi);

        // Bisect the remaining bracket; probes land in the shared cache.
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            let stages = self.stages(&with_batch(base, mid))?;
            if !estimator.estimate_analyzed(&stages.analyzed).oom_predicted {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        Ok(Some(lo))
    }
}

/// Future resolving to one estimate ([`AsyncEstimationService::submit`]).
pub type EstimateFuture = PoolFuture<Result<Estimate, EstimateError>>;

/// Future resolving to a whole batch-size sweep, in grid order
/// ([`AsyncEstimationService::sweep_async`]). The outer `Result` carries
/// only cancellation/deadline outcomes; per-batch estimation failures stay
/// inside the vector.
pub type SweepFuture = PoolFuture<SweepOutcome>;

/// Output of [`AsyncEstimationService::sweep_async`].
pub type SweepOutcome = Result<Vec<(usize, Result<Estimate, EstimateError>)>, EstimateError>;

/// Future resolving to an admission-control answer
/// ([`AsyncEstimationService::max_batch_for_device_async`]).
pub type PlanFuture = PoolFuture<Result<Option<usize>, EstimateError>>;

/// Configuration of an [`AsyncEstimationService`].
#[derive(Debug, Clone)]
pub struct AsyncServiceConfig {
    /// The underlying blocking service (cache, estimator, sweep threads).
    pub service: ServiceConfig,
    /// Worker threads answering submitted queries (0 = all cores).
    pub workers: usize,
    /// Bound on queued-but-unclaimed submissions; a full queue makes
    /// `submit` fail fast with [`SubmitError::Busy`].
    pub queue_depth: usize,
}

impl AsyncServiceConfig {
    /// Async defaults for a device: service defaults, all-core workers,
    /// a 1024-deep submission queue.
    #[must_use]
    pub fn for_device(device: GpuDevice) -> Self {
        AsyncServiceConfig {
            service: ServiceConfig::for_device(device),
            workers: 0,
            queue_depth: 1024,
        }
    }

    /// Overrides the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the submission-queue depth.
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }
}

/// The asynchronous estimation front end: a scheduler event loop submits
/// queries and receives [`PoolFuture`]s, instead of burning a blocked
/// thread per in-flight question.
///
/// Queries are answered by a fixed, channel-fed worker pool over a shared
/// [`EstimationService`], so everything the blocking service guarantees
/// carries over: estimates are bit-identical to the sequential
/// [`Estimator`](xmem_core::Estimator), concurrent identical queries
/// single-flight onto one profile run, and degenerate jobs are answered
/// from the negative cache.
///
/// Three controls make it safe under scheduler-scale load:
/// * **Backpressure** — the submission queue is bounded; a full queue
///   fails fast with [`SubmitError::Busy`] instead of queueing without
///   bound.
/// * **Cancellation** — [`EstimateFuture::cancel`](PoolFuture::cancel)
///   resolves the future to [`EstimateError::Cancelled`]; a job cancelled
///   before a worker claims it never runs at all.
/// * **Per-query deadlines** —
///   [`submit_with_deadline`](Self::submit_with_deadline) bounds each
///   query; an unclaimed job whose deadline passes resolves to
///   [`EstimateError::DeadlineExceeded`] without running.
///
/// # Example
///
/// ```
/// use xmem_service::{block_on, join_all, AsyncEstimationService};
/// use xmem_runtime::{GpuDevice, TrainJobSpec};
/// use xmem_models::ModelId;
/// use xmem_optim::OptimizerKind;
///
/// let service = AsyncEstimationService::for_device(GpuDevice::rtx3060());
/// let spec = TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8)
///     .with_iterations(2);
/// // Submit a herd of identical admission checks...
/// let futures: Vec<_> = (0..16)
///     .map(|_| service.submit(&spec).expect("queue has room"))
///     .collect();
/// // ...and drive them all from one thread.
/// let estimates = block_on(join_all(futures));
/// assert!(estimates.windows(2).all(|w| w[0] == w[1]));
/// // The herd coalesced onto a single CPU profile.
/// assert_eq!(service.service().profile_runs(), 1);
/// ```
#[derive(Debug)]
pub struct AsyncEstimationService {
    service: Arc<EstimationService>,
    pool: WorkerPool,
    /// Actively settles deadline-carrying futures at their due time, so
    /// `.await`-ing consumers are not at the mercy of the next pool
    /// completion.
    timer: DeadlineTimer,
}

impl AsyncEstimationService {
    /// Creates an async front end with its own underlying service.
    #[must_use]
    pub fn new(config: AsyncServiceConfig) -> Self {
        let workers = config.workers;
        let queue_depth = config.queue_depth;
        let service = Arc::new(EstimationService::new(config.service));
        AsyncEstimationService::from_service(service, workers, queue_depth)
    }

    /// Convenience constructor with async defaults for a device.
    #[must_use]
    pub fn for_device(device: GpuDevice) -> Self {
        AsyncEstimationService::new(AsyncServiceConfig::for_device(device))
    }

    /// Wraps an existing (possibly shared) blocking service — the async
    /// and blocking front ends then share one cache, single-flight table
    /// and negative cache. `workers` = 0 uses all cores.
    #[must_use]
    pub fn from_service(
        service: Arc<EstimationService>,
        workers: usize,
        queue_depth: usize,
    ) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        } else {
            workers
        };
        AsyncEstimationService {
            service,
            pool: WorkerPool::new(workers, queue_depth),
            timer: DeadlineTimer::new(),
        }
    }

    /// The underlying blocking service (shared cache and counters).
    #[must_use]
    pub fn service(&self) -> &EstimationService {
        &self.service
    }

    /// Worker threads answering queries.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.pool.threads()
    }

    /// Enqueues `work` against the shared service, returning the matching
    /// future. The closure must not panic: a panicking worker neither
    /// completes its promise nor returns to the pool.
    fn dispatch<T, F>(
        &self,
        deadline: Option<Instant>,
        work: F,
    ) -> Result<PoolFuture<T>, SubmitError>
    where
        T: crate::future::LateOutcome + 'static,
        F: FnOnce(&EstimationService) -> T + Send + 'static,
    {
        let (promise, future) = promise_pair(deadline);
        let service = Arc::clone(&self.service);
        self.pool.try_execute(Box::new(move || {
            // A cancelled or expired query is settled here without ever
            // touching the profiler.
            if !promise.claim() {
                return;
            }
            promise.complete(work(&service));
        }))?;
        // Only accepted, deadline-carrying submissions are watched.
        self.timer.watch(&future);
        Ok(future)
    }

    /// Submits one estimation query.
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full;
    /// resolve some in-flight futures and retry.
    pub fn submit(&self, spec: &TrainJobSpec) -> Result<EstimateFuture, SubmitError> {
        let spec = spec.clone();
        self.dispatch(None, move |service| service.estimate(&spec))
    }

    /// Submits one estimation query that must resolve by `deadline`. If
    /// the deadline passes first, a dedicated timer thread settles the
    /// future with [`EstimateError::DeadlineExceeded`] — `.await`-ing
    /// consumers are woken at the deadline, not at the next pool
    /// completion — and, when no worker had claimed the job yet, the
    /// profile run is skipped entirely.
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn submit_with_deadline(
        &self,
        spec: &TrainJobSpec,
        deadline: Instant,
    ) -> Result<EstimateFuture, SubmitError> {
        let spec = spec.clone();
        self.dispatch(Some(deadline), move |service| service.estimate(&spec))
    }

    /// Submits a whole batch-size sweep as one pooled query; the worker
    /// fans the grid out exactly like [`EstimationService::sweep`].
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn sweep_async(
        &self,
        base: &TrainJobSpec,
        batches: &[usize],
    ) -> Result<SweepFuture, SubmitError> {
        let base = base.clone();
        let batches = batches.to_vec();
        self.dispatch(None, move |service| Ok(service.sweep(&base, &batches)))
    }

    /// Submits an admission-control query: the largest batch in
    /// `[lo, hi]` fitting `device` (see
    /// [`EstimationService::max_batch_for_device`]).
    ///
    /// # Panics
    /// Panics (before dispatch) unless `1 <= lo <= hi`, matching the
    /// blocking API.
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn max_batch_for_device_async(
        &self,
        base: &TrainJobSpec,
        device: GpuDevice,
        lo: usize,
        hi: usize,
    ) -> Result<PlanFuture, SubmitError> {
        assert!(lo >= 1 && lo <= hi, "invalid batch range [{lo}, {hi}]");
        let base = base.clone();
        self.dispatch(None, move |service| {
            service.max_batch_for_device(&base, device, lo, hi)
        })
    }
}

/// Upper bound on coarse-bracket probes in
/// [`EstimationService::max_batch_for_device`].
const MAX_BRACKET_POINTS: usize = 16;

fn with_batch(base: &TrainJobSpec, batch: usize) -> TrainJobSpec {
    let mut spec = base.clone();
    spec.batch = batch;
    spec
}

/// An evenly spaced probe grid covering `[lo, hi]`, endpoints included.
fn coarse_grid(lo: usize, hi: usize, points: usize) -> Vec<usize> {
    if hi == lo {
        return vec![lo];
    }
    let points = points.clamp(2, hi - lo + 1);
    let mut grid: Vec<usize> = (0..points)
        .map(|i| lo + (hi - lo) * i / (points - 1))
        .collect();
    grid.dedup();
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_models::ModelId;
    use xmem_optim::OptimizerKind;

    fn small_spec(batch: usize) -> TrainJobSpec {
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, batch).with_iterations(2)
    }

    #[test]
    fn estimate_matches_sequential_path() {
        let device = GpuDevice::rtx3060();
        let service = EstimationService::for_device(device);
        let spec = small_spec(8);
        let from_service = service.estimate(&spec).unwrap();
        let sequential = Estimator::new(EstimatorConfig::for_device(device))
            .estimate_job(&spec)
            .unwrap();
        assert_eq!(from_service, sequential);
    }

    #[test]
    fn cached_estimate_is_identical_and_counts_a_hit() {
        let service = EstimationService::for_device(GpuDevice::rtx3060());
        let spec = small_spec(8);
        let cold = service.estimate(&spec).unwrap();
        let warm = service.estimate(&spec).unwrap();
        assert_eq!(cold, warm);
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.insertions, 1);
    }

    #[test]
    fn repeated_sweep_is_fully_cached() {
        let service = EstimationService::for_device(GpuDevice::rtx3060());
        let batches = [1, 2, 4, 8];
        let first = service.sweep(&small_spec(1), &batches);
        let insertions_after_first = service.cache_stats().insertions;
        assert_eq!(insertions_after_first, batches.len() as u64);

        let second = service.sweep(&small_spec(1), &batches);
        let stats = service.cache_stats();
        assert_eq!(
            stats.insertions, insertions_after_first,
            "a repeated sweep re-profiles nothing"
        );
        for ((b1, e1), (b2, e2)) in first.iter().zip(&second) {
            assert_eq!(b1, b2);
            assert_eq!(e1.as_ref().unwrap(), e2.as_ref().unwrap());
        }
    }

    #[test]
    fn sweep_preserves_input_order() {
        let service = EstimationService::for_device(GpuDevice::rtx3060());
        let batches = [8, 1, 4, 2];
        let results = service.sweep(&small_spec(1), &batches);
        let got: Vec<usize> = results.iter().map(|&(b, _)| b).collect();
        assert_eq!(got, batches);
    }

    #[test]
    fn max_batch_brackets_and_bisects_the_frontier() {
        let device = GpuDevice::rtx3060();
        let service = EstimationService::for_device(device);
        let base = small_spec(1);
        let max = service
            .max_batch_for_device(&base, device, 1, 16)
            .expect("estimation succeeds");
        // MobileNetV3-Small fits this device comfortably across the range.
        assert_eq!(max, Some(16));
        // The answer agrees with direct estimates at the frontier.
        let at_max = service.estimate(&with_batch(&base, 16)).unwrap();
        assert!(!at_max.oom_predicted);
    }

    #[test]
    fn coarse_grid_covers_endpoints() {
        assert_eq!(coarse_grid(1, 9, 3), vec![1, 5, 9]);
        assert_eq!(coarse_grid(4, 4, 8), vec![4]);
        let g = coarse_grid(1, 128, 6);
        assert_eq!(*g.first().unwrap(), 1);
        assert_eq!(*g.last().unwrap(), 128);
    }
}
