//! The concurrent, cache-backed estimation front end — blocking
//! ([`EstimationService`]) and asynchronous ([`AsyncEstimationService`]) —
//! including the multi-device sharded simulation layer (device matrices,
//! batched replay, placement).

use crate::cache::{CacheStats, ShardedLruCache};
use crate::executor::{SubmitError, WorkerPool};
use crate::future::{promise_pair, PoolFuture};
use crate::key::{JobKey, SweepKey};
use crate::negative::{NegativeCache, NegativeStats};
use crate::persist::{PersistStats, PersistedDevice, Persister, StateRecord};
use crate::registry::DeviceRegistry;
use crate::simcache::{DeviceFingerprint, SimShards, SimStats};
use crate::singleflight::{FlightStats, SingleFlight};
use crate::telemetry::TraceContext;
use crate::tiering::{TierStats, TieringMode};
use crate::timer::DeadlineTimer;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use xmem_core::{
    AnalyzedTrace, Analyzer, DeviceMatrix, DevicePlacement, Estimate, EstimateError, Estimator,
    EstimatorConfig, MatrixCell, MatrixRow, Orchestrator, ParamReplay, UnboundedReplay,
};
use xmem_runtime::{profile_on_cpu, GpuDevice, TrainJobSpec};
use xmem_trace::Trace;

/// Identity of one simulation cell: which analysis, replayed against
/// which device configuration.
type SimKey = (JobKey, DeviceFingerprint);

/// The memoized (device-independent) front half of the pipeline: the CPU
/// profiler trace and its analysis. Orchestration + simulation are cheap
/// and device-dependent, so they re-run per query.
///
/// The raw trace is retained alongside the analysis (unless
/// [`ServiceConfig::with_trace_retention`] opts out) so
/// [`EstimationService::stages`] callers can export or re-analyze a
/// profiled job without re-profiling it; estimation itself only reads
/// `analyzed`. Traces dominate an entry's footprint (hundreds of KB to
/// MBs for large models) — size `ServiceConfig::cache_capacity` to the
/// memory budget, pair it with
/// [`ServiceConfig::with_cache_bytes_budget`], or drop traces entirely
/// for estimate-only deployments.
#[derive(Debug)]
pub struct ProfiledStages {
    /// The raw CPU profiler trace, or `None` when the service was
    /// configured not to retain traces.
    pub trace: Option<Trace>,
    /// The Analyzer's output over that trace.
    pub analyzed: AnalyzedTrace,
}

impl ProfiledStages {
    /// Approximate resident bytes of this entry — what a bytes-budgeted
    /// stage cache charges for it.
    #[must_use]
    pub fn approx_bytes(&self) -> u64 {
        self.trace.as_ref().map_or(0, Trace::approx_bytes) + self.analyzed.approx_bytes()
    }
}

/// Weigher pricing stage-cache entries for the optional bytes budget.
fn stages_weight(stages: &Arc<ProfiledStages>) -> u64 {
    stages.approx_bytes()
}

/// The cached outcome of one parameterized-replay fit attempt over a
/// batch range: either the proven-exact fit or a remembered rejection
/// (so ineligible families do not re-pay three anchor profiles on every
/// sweep).
#[derive(Debug)]
struct ParamOutcome {
    batch_lo: usize,
    batch_hi: usize,
    fit: Option<Arc<ParamReplay>>,
}

/// Distinct batch points a sweep must span before the incremental path
/// pays the three-anchor fit. Below it the fit cannot win (three anchors
/// profile anyway) and the legacy per-batch path runs.
const MIN_INCREMENTAL_POINTS: usize = 4;

/// Job families whose fit (or rejection) stays cached; a fit is a few
/// hundred KiB, so a small LRU covers realistic scheduler workloads.
const PARAM_CACHE_CAPACITY: usize = 32;

/// Configuration of an [`EstimationService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Estimator settings (target device, allocator, orchestrator knobs).
    pub estimator: EstimatorConfig,
    /// Total cached `(job key → profiled stages)` entries.
    pub cache_capacity: usize,
    /// Lock shards in the cache.
    pub shards: usize,
    /// Worker threads for [`EstimationService::sweep`] (0 = all cores).
    pub threads: usize,
    /// How long an Analyzer failure for a degenerate job is remembered
    /// before the job is re-verified. `Duration::ZERO` disables negative
    /// caching.
    pub negative_ttl: Duration,
    /// Bound on remembered failures (oldest evicted beyond it).
    pub negative_capacity: usize,
    /// Named simulation targets for matrix / placement queries
    /// ([`EstimationService::estimate_matrix`],
    /// [`EstimationService::best_device_for_job`]).
    pub registry: DeviceRegistry,
    /// Optional bytes budget over the stage cache: entries are priced by
    /// [`ProfiledStages::approx_bytes`] and evicted LRU-first until the
    /// budget holds. `None` bounds the cache by entry count only.
    pub cache_bytes_budget: Option<u64>,
    /// Whether cached stages keep the raw profiler trace. Estimate-only
    /// deployments can drop it — traces dominate entry cost and only
    /// export/re-analysis paths read them.
    pub retain_traces: bool,
    /// Whether the pressure-aware replay fast path is enabled: roomy
    /// devices derive their cells from one cached unbounded replay per
    /// job instead of paying a full stateful replay each. Results are
    /// bit-identical either way (differentially tested); disabling is for
    /// benchmarking and defect isolation.
    pub fast_path: bool,
    /// Fleet cap on per-device simulation shards: past it, the
    /// least-recently-used device shard is retired (counter history
    /// preserved). Bounds memory for registries churned programmatically.
    pub max_device_shards: usize,
    /// Tiering policy applied to every cache tier the service owns
    /// (stage, replay, param, and per-device sim shards): adaptive
    /// self-tuning SLRU by default, a pinned static split via
    /// [`with_segmented_admission`](Self::with_segmented_admission), or
    /// [`TieringMode::Off`] for plain LRU (bit-compat baselines and
    /// defect isolation). See [`ShardedLruCache::with_tiering`].
    pub tiering: TieringMode,
    /// Optional state directory for crash-consistent persistence: cache
    /// inserts are journaled, snapshots compact the journal, and boot
    /// replays the on-disk state so restarts are warm (see the
    /// `persist` module docs for the on-disk format and recovery
    /// semantics). `None` (default) keeps the service purely in-memory.
    pub state_dir: Option<PathBuf>,
    /// Whether the incremental sweep path is enabled: a qualifying
    /// batch sweep fits **one** parameterized replay from three profiled
    /// anchor batches and materializes every other cell from it instead
    /// of profiling per batch. The fit is proven exact before use
    /// (non-affine segments, ablated orchestrators, gc, and timeline
    /// recording all fall back to full per-batch replays), so results
    /// are bit-identical either way; disabling is for benchmarking and
    /// defect isolation.
    pub incremental_sweep: bool,
}

impl ServiceConfig {
    /// Service defaults (16-way sharded 256-entry cache, all cores,
    /// 30-second negative TTL, built-in device registry) for a target
    /// device.
    #[must_use]
    pub fn for_device(device: GpuDevice) -> Self {
        ServiceConfig {
            estimator: EstimatorConfig::for_device(device),
            cache_capacity: 256,
            shards: 16,
            threads: 0,
            negative_ttl: Duration::from_secs(30),
            negative_capacity: 256,
            registry: DeviceRegistry::builtin(),
            cache_bytes_budget: None,
            retain_traces: true,
            fast_path: true,
            max_device_shards: 64,
            tiering: TieringMode::default(),
            state_dir: None,
            incremental_sweep: true,
        }
    }

    /// Pins a *static* segmented (probation/protected) split on every
    /// cache tier, disabling the online tuner (see
    /// [`tiering`](Self::tiering)).
    #[must_use]
    pub fn with_segmented_admission(mut self, protected_frac: f64) -> Self {
        self.tiering = TieringMode::Static(protected_frac);
        self
    }

    /// Overrides the tiering policy for every cache tier (see
    /// [`tiering`](Self::tiering)). `TieringMode::Off` restores plain
    /// LRU; `TieringMode::adaptive()` is the default.
    #[must_use]
    pub fn with_tiering(mut self, mode: TieringMode) -> Self {
        self.tiering = mode;
        self
    }

    /// Overrides the device registry (the cluster's fleet description).
    #[must_use]
    pub fn with_registry(mut self, registry: DeviceRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Overrides the cache capacity.
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the negative-caching TTL (`Duration::ZERO` disables it).
    #[must_use]
    pub fn with_negative_ttl(mut self, ttl: Duration) -> Self {
        self.negative_ttl = ttl;
        self
    }

    /// Caps the stage cache's resident bytes (see
    /// [`cache_bytes_budget`](Self::cache_bytes_budget)).
    #[must_use]
    pub fn with_cache_bytes_budget(mut self, bytes: u64) -> Self {
        self.cache_bytes_budget = Some(bytes);
        self
    }

    /// Controls raw-trace retention in the stage cache (see
    /// [`retain_traces`](Self::retain_traces)).
    #[must_use]
    pub fn with_trace_retention(mut self, retain: bool) -> Self {
        self.retain_traces = retain;
        self
    }

    /// Enables or disables the pressure-aware replay fast path (on by
    /// default; see [`fast_path`](Self::fast_path)).
    #[must_use]
    pub fn with_fast_path(mut self, enabled: bool) -> Self {
        self.fast_path = enabled;
        self
    }

    /// Overrides the fleet cap on per-device simulation shards (see
    /// [`max_device_shards`](Self::max_device_shards)).
    #[must_use]
    pub fn with_max_device_shards(mut self, max: usize) -> Self {
        self.max_device_shards = max;
        self
    }

    /// Enables crash-consistent persistence rooted at `dir` (see
    /// [`state_dir`](Self::state_dir)): the directory is created on
    /// service construction, existing state is recovered, and cache
    /// inserts are journaled from then on.
    #[must_use]
    pub fn with_state_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.state_dir = Some(dir.into());
        self
    }

    /// Enables or disables the incremental sweep path (on by default;
    /// see [`incremental_sweep`](Self::incremental_sweep)).
    #[must_use]
    pub fn with_incremental_sweep(mut self, enabled: bool) -> Self {
        self.incremental_sweep = enabled;
        self
    }
}

/// A shared, thread-safe estimation front end for scheduler-scale traffic.
///
/// The expensive, device-independent stages (CPU profiling and trace
/// analysis) are memoized in a sharded LRU cache keyed by [`JobKey`];
/// orchestration and allocator simulation re-run per query against the
/// configured device. All methods take `&self`, so one service instance
/// can serve many scheduler threads concurrently.
///
/// # Example
///
/// ```
/// use xmem_service::{EstimationService, ServiceConfig};
/// use xmem_runtime::{GpuDevice, TrainJobSpec};
/// use xmem_models::ModelId;
/// use xmem_optim::OptimizerKind;
///
/// let service = EstimationService::new(ServiceConfig::for_device(GpuDevice::rtx3060()));
/// let spec = TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8)
///     .with_iterations(2);
/// let first = service.estimate(&spec).unwrap();
/// let second = service.estimate(&spec).unwrap(); // served from cache
/// assert_eq!(first, second);
/// assert_eq!(service.cache_stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct EstimationService {
    config: ServiceConfig,
    estimator: Estimator,
    cache: ShardedLruCache<JobKey, Arc<ProfiledStages>>,
    /// In-flight dedup: concurrent misses for one key coalesce onto a
    /// single profile/analyze run.
    flights: SingleFlight<JobKey, Result<Arc<ProfiledStages>, EstimateError>>,
    /// TTL'd memory of Analyzer failures for degenerate jobs.
    negative: NegativeCache<JobKey, EstimateError>,
    /// Per-device simulation shards: one LRU of `(job key → estimate)`
    /// per device configuration, fed by the matrix / replay paths. The
    /// registry naming the devices lives in `config.registry` (there is
    /// exactly one copy: `registry()` and `config()` agree by
    /// construction).
    sims: SimShards,
    /// In-flight dedup of simulation cells, mirroring `flights` one level
    /// down: concurrent identical `(analysis, device)` replays coalesce
    /// onto one simulation.
    sim_flights: SingleFlight<SimKey, Estimate>,
    /// The pressure-aware fast path's seed cache: one device-independent
    /// unbounded replay per job key, from which every roomy device's cell
    /// is derived in O(1).
    replays: ShardedLruCache<JobKey, Arc<UnboundedReplay>>,
    /// In-flight dedup of unbounded replays (concurrent cells of one job
    /// on different devices coalesce onto a single replay).
    replay_flights: SingleFlight<JobKey, Arc<UnboundedReplay>>,
    /// The incremental sweep's fit cache: one parameterized replay (or a
    /// remembered rejection) per batch-invariant job family.
    params: ShardedLruCache<SweepKey, Arc<ParamOutcome>>,
    /// In-flight dedup of parameterized-replay fits (concurrent sweeps
    /// over one family coalesce onto one three-anchor fit).
    param_flights: SingleFlight<SweepKey, Option<Arc<ParamOutcome>>>,
    /// Count of actual `profile_on_cpu` executions — the ground truth the
    /// single-flight and cache layers are judged against.
    profiles: AtomicU64,
    /// Crash-consistent persistence engine, present when
    /// [`ServiceConfig::state_dir`] is set and the directory was usable.
    persist: Option<Persister>,
}

impl EstimationService {
    /// Creates a service.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        let estimator = Estimator::new(config.estimator.clone());
        let tiering = config.tiering;
        let mut cache =
            ShardedLruCache::new(config.cache_capacity, config.shards).with_tiering(tiering);
        if let Some(budget) = config.cache_bytes_budget {
            cache = cache.with_bytes_budget(budget, stages_weight);
        }
        let negative = NegativeCache::new(config.negative_ttl, config.negative_capacity);
        let sims = SimShards::new(config.cache_capacity, config.shards)
            .with_max_devices(config.max_device_shards)
            .with_tiering(tiering);
        let replays =
            ShardedLruCache::new(config.cache_capacity, config.shards).with_tiering(tiering);
        let mut service = EstimationService {
            config,
            estimator,
            cache,
            flights: SingleFlight::new(),
            negative,
            sims,
            sim_flights: SingleFlight::new(),
            replays,
            replay_flights: SingleFlight::new(),
            params: ShardedLruCache::new(PARAM_CACHE_CAPACITY, 4).with_tiering(tiering),
            param_flights: SingleFlight::new(),
            profiles: AtomicU64::new(0),
            persist: None,
        };
        if let Some(dir) = service.config.state_dir.clone() {
            match Persister::open(&dir) {
                Ok((persister, loaded)) => {
                    let (recovered, skipped) = service.import_records(loaded.records);
                    persister.add_recovered(recovered);
                    persister.add_skipped(skipped);
                    service.persist = Some(persister);
                    // Boot compaction: fold the replayed journal into a
                    // fresh snapshot so repeated crash/restart cycles
                    // cannot grow the journal without bound.
                    if let Err(e) = service.snapshot_now() {
                        eprintln!(
                            "xmem-service: boot snapshot in {} failed: {e}",
                            dir.display()
                        );
                    }
                }
                Err(e) => {
                    // A hard I/O failure on the directory itself: serve
                    // cold rather than refuse to start.
                    eprintln!(
                        "xmem-service: state dir {} unusable ({e}); persistence disabled",
                        dir.display()
                    );
                }
            }
        }
        service
    }

    /// Re-applies recovered records to the in-memory caches (without
    /// re-journaling them), returning `(imported, skipped)`. Sim cells
    /// are re-attached by matching their persisted device fingerprint
    /// field-for-field against the boot-time registry; cells for devices
    /// no longer registered are skipped.
    fn import_records(&self, records: Vec<StateRecord>) -> (u64, u64) {
        let mut devices: Vec<GpuDevice> = self
            .config
            .registry
            .snapshot()
            .into_iter()
            .map(|(_, device)| device)
            .collect();
        // The service's own target device simulates too (estimate /
        // estimate_for_device paths) even when unregistered.
        devices.push(self.config.estimator.device);
        let mut imported = 0u64;
        let mut skipped = 0u64;
        for record in records {
            match record {
                StateRecord::Stage { job, analyzed } => {
                    self.cache.insert(
                        job,
                        Arc::new(ProfiledStages {
                            trace: None,
                            analyzed,
                        }),
                    );
                    imported += 1;
                }
                StateRecord::Replay { job, replay } => {
                    self.replays.insert(job, Arc::new(replay));
                    imported += 1;
                }
                StateRecord::Sim {
                    device,
                    job,
                    estimate,
                } => {
                    let matched = devices.iter().find(|d| {
                        let fp = DeviceFingerprint::of(d);
                        fp.name == device.name
                            && fp.capacity == device.capacity
                            && fp.framework_bytes == device.framework_bytes
                            && fp.init_bytes == device.init_bytes
                    });
                    if let Some(d) = matched {
                        self.sims.shard(d).insert(job, estimate);
                        imported += 1;
                    } else {
                        skipped += 1;
                    }
                }
                StateRecord::Param { family, replay } => {
                    let (batch_lo, batch_hi) = replay.batch_range();
                    self.params.insert(
                        family,
                        Arc::new(ParamOutcome {
                            batch_lo,
                            batch_hi,
                            fit: Some(Arc::new(replay)),
                        }),
                    );
                    imported += 1;
                }
                StateRecord::Tuner {
                    cache,
                    frac_permille,
                    decay_epoch,
                } => match cache.as_str() {
                    "stage" => {
                        self.cache.restore_learned_state(frac_permille, decay_epoch);
                        imported += 1;
                    }
                    "replay" => {
                        self.replays
                            .restore_learned_state(frac_permille, decay_epoch);
                        imported += 1;
                    }
                    "param" => {
                        self.params
                            .restore_learned_state(frac_permille, decay_epoch);
                        imported += 1;
                    }
                    "sim" => {
                        self.sims.restore_learned_state(frac_permille, decay_epoch);
                        imported += 1;
                    }
                    // A tier this binary does not know about (or a name
                    // from a future version): ignore, don't refuse boot.
                    _ => skipped += 1,
                },
            }
        }
        (imported, skipped)
    }

    /// Every resident cache entry as persistence records, in snapshot
    /// order: stage entries, unbounded replays, sim cells,
    /// parameterized-replay fits, then learned tuner state (each cache
    /// layer LRU-first, so replaying the sequence restores recency).
    /// Newer record variants sort after older ones so binaries that
    /// predate them still recover the whole preceding prefix.
    fn export_records(&self) -> Vec<StateRecord> {
        let mut records = Vec::new();
        for (job, stages) in self.cache.export() {
            records.push(StateRecord::Stage {
                job,
                analyzed: stages.analyzed.clone(),
            });
        }
        for (job, replay) in self.replays.export() {
            records.push(StateRecord::Replay {
                job,
                replay: (*replay).clone(),
            });
        }
        for (fingerprint, cells) in self.sims.export() {
            let device = PersistedDevice {
                name: fingerprint.name.to_owned(),
                capacity: fingerprint.capacity,
                framework_bytes: fingerprint.framework_bytes,
                init_bytes: fingerprint.init_bytes,
            };
            for (job, estimate) in cells {
                records.push(StateRecord::Sim {
                    device: device.clone(),
                    job,
                    estimate,
                });
            }
        }
        for (family, outcome) in self.params.export() {
            // Remembered rejections are not persisted: they are cheap to
            // rediscover and a rejection for one range says nothing
            // about the ranges a restarted service will sweep.
            if let Some(fit) = &outcome.fit {
                records.push(StateRecord::Param {
                    family,
                    replay: (**fit).clone(),
                });
            }
        }
        // Tuner records come last — newest variant, same downgrade
        // convention as `Param` above: older binaries recover the whole
        // preceding prefix and only lose the learned splits.
        let tuners: [(&str, Option<(u32, u64)>); 4] = [
            ("stage", self.cache.learned_state()),
            ("replay", self.replays.learned_state()),
            ("param", self.params.learned_state()),
            ("sim", self.sims.learned_state()),
        ];
        for (cache, state) in tuners {
            if let Some((frac_permille, decay_epoch)) = state {
                records.push(StateRecord::Tuner {
                    cache: cache.to_owned(),
                    frac_permille,
                    decay_epoch,
                });
            }
        }
        records
    }

    /// Writes a snapshot of the current cache state and truncates the
    /// journal. Returns `Ok(false)` when persistence is not enabled.
    ///
    /// # Errors
    /// Propagates I/O failures from the snapshot write.
    pub fn snapshot_now(&self) -> std::io::Result<bool> {
        let Some(persister) = &self.persist else {
            return Ok(false);
        };
        persister.snapshot(&self.export_records())?;
        Ok(true)
    }

    /// Persistence counters and gauges; all-zero (with `enabled: false`)
    /// when no state directory is configured.
    #[must_use]
    pub fn persist_stats(&self) -> PersistStats {
        self.persist
            .as_ref()
            .map_or_else(PersistStats::default, Persister::stats)
    }

    /// Convenience constructor with service defaults for a device.
    #[must_use]
    pub fn for_device(device: GpuDevice) -> Self {
        EstimationService::new(ServiceConfig::for_device(device))
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Cache hit/miss/insert/evict counters. A fully cached sweep performs
    /// zero re-profiling: its queries all land in `hits`.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Counters of the unbounded-replay seed cache (the fast path's
    /// device-independent tier).
    #[must_use]
    pub fn replay_cache_stats(&self) -> CacheStats {
        self.replays.stats()
    }

    /// Counters of the parameterized-replay fit cache (the incremental
    /// sweep's tier).
    #[must_use]
    pub fn param_cache_stats(&self) -> CacheStats {
        self.params.stats()
    }

    /// Tier geometry and occupancy of the stage cache: segment
    /// occupancy, bytes in use vs budget, and the live learned
    /// protected fraction.
    #[must_use]
    pub fn stage_tier_stats(&self) -> TierStats {
        self.cache.tier_stats()
    }

    /// Tier geometry and occupancy of the unbounded-replay cache.
    #[must_use]
    pub fn replay_tier_stats(&self) -> TierStats {
        self.replays.tier_stats()
    }

    /// Tier geometry and occupancy of the parameterized-replay fit cache.
    #[must_use]
    pub fn param_tier_stats(&self) -> TierStats {
        self.params.tier_stats()
    }

    /// Tier geometry and occupancy aggregated across the live per-device
    /// simulation shards.
    #[must_use]
    pub fn sim_tier_stats(&self) -> TierStats {
        self.sims.tier_stats()
    }

    /// Single-flight counters: leader executions vs coalesced followers.
    #[must_use]
    pub fn flight_stats(&self) -> FlightStats {
        self.flights.stats()
    }

    /// Negative-cache counters (hits/insertions/evictions), exposed
    /// alongside the positive [`cache_stats`](Self::cache_stats).
    #[must_use]
    pub fn negative_stats(&self) -> NegativeStats {
        self.negative.stats()
    }

    /// How many times `profile_on_cpu` actually ran. Under any mix of
    /// cache hits and coalesced concurrent queries, this is at most one
    /// per distinct [`JobKey`] still covered by the cache/flight layers.
    #[must_use]
    pub fn profile_runs(&self) -> u64 {
        self.profiles.load(Ordering::Relaxed)
    }

    /// The device registry backing matrix / placement queries (the same
    /// instance [`config`](Self::config) carries).
    ///
    /// Read freely; to *replace* a device's configuration prefer
    /// [`register_device`](Self::register_device), which also retires the
    /// old configuration's cached simulation results.
    #[must_use]
    pub fn registry(&self) -> &DeviceRegistry {
        &self.config.registry
    }

    /// Registers (or reconfigures) a named simulation target. Replacing a
    /// device with a *different* configuration invalidates exactly that
    /// configuration's simulation shard — every other device keeps its
    /// warm entries, and the device-independent analysis cache is never
    /// touched. Returns the previous configuration for `name`, if any.
    ///
    /// Two names registered with an *identical* configuration share one
    /// simulation shard; the shard is only invalidated once no remaining
    /// name maps to the old configuration.
    pub fn register_device(&self, name: &str, device: GpuDevice) -> Option<GpuDevice> {
        let replaced = self.registry().register(name, device);
        if let Some(old) = replaced {
            let old_fingerprint = DeviceFingerprint::of(&old);
            // An alias registered with the same config still owns the
            // shard — dropping it would evict a live device's entries.
            let still_referenced = self
                .registry()
                .snapshot()
                .iter()
                .any(|(_, d)| DeviceFingerprint::of(d) == old_fingerprint);
            if old != device && !still_referenced {
                self.sims.invalidate(&old_fingerprint);
            }
        }
        replaced
    }

    /// Counters of the per-device simulation layer: aggregated shard
    /// hit/miss stats, executed simulations, live device shards, and
    /// entries dropped by device reconfiguration.
    ///
    /// Together with [`profile_runs`](Self::profile_runs) these prove the
    /// batched-replay contract: a cold M-jobs × D-devices matrix costs
    /// exactly M analyses and M × D simulations.
    #[must_use]
    pub fn sim_stats(&self) -> SimStats {
        self.sims.stats()
    }

    /// How many allocator simulations actually executed on the cached
    /// (matrix / placement / per-device) paths — shorthand for
    /// [`sim_stats`](Self::sim_stats)`.sim_runs`.
    #[must_use]
    pub fn sim_runs(&self) -> u64 {
        self.sims.stats().sim_runs
    }

    /// The memoized profile+analysis stages for `spec`, computing them on
    /// a cache miss.
    ///
    /// Concurrent misses for the same key are **single-flighted**: one
    /// caller profiles, the rest block on its result. Analyzer failures
    /// land in a TTL'd negative cache so degenerate jobs are not
    /// re-profiled on every query.
    ///
    /// # Errors
    /// Propagates Analyzer failures for degenerate jobs (possibly from
    /// the negative cache).
    pub fn stages(&self, spec: &TrainJobSpec) -> Result<Arc<ProfiledStages>, EstimateError> {
        self.stages_traced(spec, &TraceContext::disabled())
    }

    /// [`stages`](Self::stages) under a request trace: cache hits,
    /// single-flight coalescing, and the profile/analyze stages record
    /// spans into `ctx`. A disabled context makes this identical to the
    /// untraced path.
    ///
    /// # Errors
    /// Propagates Analyzer failures for degenerate jobs (possibly from
    /// the negative cache).
    pub fn stages_traced(
        &self,
        spec: &TrainJobSpec,
        ctx: &TraceContext,
    ) -> Result<Arc<ProfiledStages>, EstimateError> {
        let key = JobKey::of(spec);
        if let Some(hit) = self.cache.get(&key) {
            ctx.event("cache.stage", "hit");
            return Ok(hit);
        }
        if let Some(error) = self.negative.get(&key) {
            ctx.event("cache.negative", "hit");
            return Err(error);
        }
        ctx.event("cache.stage", "miss");
        let mut leader = false;
        let result = self.flights.run(&key, || {
            leader = true;
            // Winning leadership races a just-retired flight for the same
            // key: its leader published before retiring, so re-check both
            // caches before paying for a profile run.
            if let Some(hit) = self.cache.peek(&key) {
                return Ok(hit);
            }
            if let Some(error) = self.negative.get(&key) {
                return Err(error);
            }
            self.profiles.fetch_add(1, Ordering::Relaxed);
            let trace = {
                let _span = ctx.span("stage.profile");
                profile_on_cpu(spec)
            };
            let mut analyze = ctx.span("stage.analyze");
            match Analyzer::new().analyze(&trace) {
                Ok(analyzed) => {
                    analyze.set_outcome("ok");
                    drop(analyze);
                    let stages = Arc::new(ProfiledStages {
                        trace: self.config.retain_traces.then_some(trace),
                        analyzed,
                    });
                    self.cache.insert(key.clone(), Arc::clone(&stages));
                    if let Some(persister) = &self.persist {
                        persister.append(&StateRecord::Stage {
                            job: key.clone(),
                            analyzed: stages.analyzed.clone(),
                        });
                        ctx.event("persist.journal", "stage");
                    }
                    Ok(stages)
                }
                Err(error) => {
                    analyze.set_outcome("error");
                    drop(analyze);
                    self.negative.insert(key.clone(), error.clone());
                    Err(error)
                }
            }
        });
        if !leader {
            ctx.event("flight.stage", "coalesced");
        }
        result
    }

    /// Estimates `spec`'s peak GPU memory on the service's device,
    /// reusing cached stages when available. Results are bit-identical to
    /// the sequential [`Estimator::estimate_job`] path: profiling and
    /// analysis are deterministic in the job key, and the simulation
    /// stages run identically on both paths.
    ///
    /// # Errors
    /// Propagates Analyzer failures for degenerate jobs.
    pub fn estimate(&self, spec: &TrainJobSpec) -> Result<Estimate, EstimateError> {
        self.estimate_traced(spec, &TraceContext::disabled())
    }

    /// [`estimate`](Self::estimate) under a request trace.
    ///
    /// # Errors
    /// Propagates Analyzer failures for degenerate jobs.
    pub fn estimate_traced(
        &self,
        spec: &TrainJobSpec,
        ctx: &TraceContext,
    ) -> Result<Estimate, EstimateError> {
        let stages = self.stages_traced(spec, ctx)?;
        Ok(self.estimator.estimate_analyzed(&stages.analyzed))
    }

    /// Like [`estimate`](Self::estimate) but against an alternative
    /// estimator configuration (e.g. another device), still sharing the
    /// stage cache — the cached stages are device-independent.
    ///
    /// # Errors
    /// Propagates Analyzer failures for degenerate jobs.
    pub fn estimate_with(
        &self,
        spec: &TrainJobSpec,
        config: &EstimatorConfig,
    ) -> Result<Estimate, EstimateError> {
        let stages = self.stages(spec)?;
        Ok(Estimator::new(config.clone()).estimate_analyzed(&stages.analyzed))
    }

    /// Replays already-analyzed stages against one device, through the
    /// per-device simulation shard. The simulation uses the paper-default
    /// [`EstimatorConfig::for_device`] for `device` (custom estimator
    /// configurations go through the uncached
    /// [`estimate_with`](Self::estimate_with)), so results are
    /// bit-identical to a sequential `Estimator` built the same way.
    ///
    /// **Pressure-aware fast path** (unless
    /// [`ServiceConfig::fast_path`] is off): the job replays *once* on an
    /// unbounded simulator (cached per [`JobKey`]), and any device whose
    /// usable capacity covers that replay's segment peak derives its cell
    /// in O(1) — only capacity-pressured devices, where reclaim/OOM can
    /// diverge, pay a full stateful replay. Either way the cell is
    /// bit-identical (see [`SimStats::fast_path_hits`] /
    /// [`SimStats::full_replays`](crate::SimStats::full_replays) for the
    /// split).
    ///
    /// Concurrent identical cells single-flight onto one simulation;
    /// repeats hit the device's shard.
    fn simulate_on(
        &self,
        key: &JobKey,
        stages: &ProfiledStages,
        device: GpuDevice,
        ctx: &TraceContext,
    ) -> Estimate {
        self.simulate_on_with(key, stages, device, true, ctx)
    }

    /// [`simulate_on`](Self::simulate_on) with control over *seeding* the
    /// unbounded-replay cache. Single-device probe loops whose keys never
    /// repeat (admission-control bisection: every probe is a distinct
    /// batch) pass `seed = false` — paying an unbounded replay that only a
    /// pressured bounded replay would follow costs ~2× the pre-fast-path
    /// work, with no later cell to amortize it. A seed some *other* path
    /// already cached is still used (peeked, never created).
    fn simulate_on_with(
        &self,
        key: &JobKey,
        stages: &ProfiledStages,
        device: GpuDevice,
        seed: bool,
        ctx: &TraceContext,
    ) -> Estimate {
        if let Some(hit) = self.sims.shard(&device).get(key) {
            ctx.event("cache.sim", "hit");
            return hit;
        }
        let sim_key = (key.clone(), DeviceFingerprint::of(&device));
        let mut leader = false;
        let estimate = self.sim_flights.run(&sim_key, || {
            leader = true;
            // Re-fetch the shard inside the flight — same re-check as
            // `stages`: a just-retired flight for this cell published
            // before retiring.
            if let Some(hit) = self.sims.shard(&device).peek(key) {
                return hit;
            }
            let mut replay_span = ctx.span("sim.replay");
            let estimator = Estimator::new(EstimatorConfig::for_device(device));
            let derived = self
                .config
                .fast_path
                .then(|| {
                    let replay = if seed {
                        Some(self.unbounded_replay(key, stages, &estimator, ctx))
                    } else {
                        self.replays.peek(key)
                    };
                    replay.and_then(|replay| estimator.derive_from_replay(&replay))
                })
                .flatten();
            self.sims.count_run();
            let estimate = match derived {
                Some(estimate) => {
                    self.sims.count_fast_path();
                    replay_span.set_outcome("fast-path");
                    estimate
                }
                None => {
                    self.sims.count_full_replay();
                    replay_span.set_outcome("full-replay");
                    estimator.estimate_analyzed(&stages.analyzed)
                }
            };
            drop(replay_span);
            // Fetch the shard *after* the (possibly multi-ms) replay: a
            // concurrent `register_device` invalidation or fleet-cap
            // eviction during the replay would detach an earlier handle,
            // and inserting into a detached shard loses the entry and its
            // counter deltas. A detachment landing in the tiny window
            // between this fetch and the insert still only costs a
            // recomputation — stale entries are never *served*, because
            // lookups are fingerprint-keyed.
            self.sims
                .shard(&device)
                .insert(key.clone(), estimate.clone());
            self.journal_sim(&sim_key.1, key, &estimate);
            estimate
        });
        if !leader {
            ctx.event("cache.sim", "coalesced");
        }
        estimate
    }

    /// Journals one sim-shard insert when persistence is enabled.
    fn journal_sim(&self, fingerprint: &DeviceFingerprint, key: &JobKey, estimate: &Estimate) {
        if let Some(persister) = &self.persist {
            persister.append(&StateRecord::Sim {
                device: PersistedDevice {
                    name: fingerprint.name.to_owned(),
                    capacity: fingerprint.capacity,
                    framework_bytes: fingerprint.framework_bytes,
                    init_bytes: fingerprint.init_bytes,
                },
                job: key.clone(),
                estimate: estimate.clone(),
            });
        }
    }

    /// The cached unbounded replay for `key`, computed (and
    /// single-flighted) on first use. `estimator` only contributes its
    /// orchestrator/allocator configuration, which is identical for every
    /// named-device path ([`EstimatorConfig::for_device`]), so replays
    /// are shared across devices.
    fn unbounded_replay(
        &self,
        key: &JobKey,
        stages: &ProfiledStages,
        estimator: &Estimator,
        ctx: &TraceContext,
    ) -> Arc<UnboundedReplay> {
        if let Some(hit) = self.replays.get(key) {
            return hit;
        }
        self.replay_flights.run(key, || {
            if let Some(hit) = self.replays.peek(key) {
                return hit;
            }
            let _span = ctx.span("sim.unbounded");
            self.sims.count_unbounded();
            let replay = Arc::new(estimator.replay_unbounded(&stages.analyzed));
            self.replays.insert(key.clone(), Arc::clone(&replay));
            if let Some(persister) = &self.persist {
                persister.append(&StateRecord::Replay {
                    job: key.clone(),
                    replay: (*replay).clone(),
                });
                ctx.event("persist.journal", "replay");
            }
            replay
        })
    }

    /// Whether `estimator`'s configuration admits the provably-exact
    /// incremental sweep path. Beyond the core gate
    /// ([`Estimator::incremental_exact`]: gc off, no timeline), the
    /// orchestrator must be the default one — the fit cache is shared
    /// with the named-device paths, which always orchestrate under
    /// [`EstimatorConfig::for_device`] defaults.
    fn incremental_eligible(&self, estimator: &Estimator) -> bool {
        self.config.incremental_sweep
            && estimator.incremental_exact()
            && estimator.config().orchestrator == Orchestrator::default()
    }

    /// The parameterized replay proven over `[lo, hi]` for `base`'s job
    /// family, fitting (and caching) it on first use. `None` means the
    /// family is ineligible: the fit was rejected (the delta model could
    /// not be proven exact) or an anchor failed to profile — callers
    /// fall back to the full per-batch path, where errors surface
    /// per-cell.
    fn param_for(
        &self,
        base: &TrainJobSpec,
        lo: usize,
        hi: usize,
        ctx: &TraceContext,
    ) -> Option<Arc<ParamReplay>> {
        let family = SweepKey::of(base);
        let covering =
            |outcome: &Arc<ParamOutcome>| outcome.batch_lo <= lo && hi <= outcome.batch_hi;
        if let Some(hit) = self.params.get(&family) {
            if covering(&hit) {
                return hit.fit.clone();
            }
        }
        let outcome = self.param_flights.run(&family, || {
            if let Some(hit) = self.params.peek(&family) {
                if covering(&hit) {
                    return Some(hit);
                }
            }
            let mut fit_span = ctx.span("sweep.param_fit");
            fit_span.set_outcome("rejected");
            // Three anchors pin the affine size model: the endpoints fit
            // it, the midpoint validates it (plus full structural
            // identity across all three). Anchor profiles go through the
            // normal stage cache, so they are shared, journaled, and
            // counted like any other profile run — and they fan out
            // across the worker threads, so the fit costs one wall-clock
            // profile (the largest anchor), not three.
            let mid = lo + (hi - lo) / 2;
            let anchors: Vec<(usize, Arc<ProfiledStages>)> = self
                .parallel_fill(3, |i| {
                    let batch = [lo, mid, hi][i];
                    self.stages_traced(&with_batch(base, batch), ctx)
                        .ok()
                        .map(|stages| (batch, stages))
                })
                .into_iter()
                .collect::<Option<Vec<_>>>()?;
            let refs: Vec<(usize, &AnalyzedTrace)> = anchors
                .iter()
                .map(|(batch, stages)| (*batch, &stages.analyzed))
                .collect();
            let fit = self.estimator.fit_param_replay(&refs).ok().map(Arc::new);
            if fit.is_some() {
                self.sims.count_param_replay();
                fit_span.set_outcome("fit");
            }
            drop(fit_span);
            let outcome = Arc::new(ParamOutcome {
                batch_lo: lo,
                batch_hi: hi,
                fit,
            });
            self.params.insert(family.clone(), Arc::clone(&outcome));
            if let (Some(fit), Some(persister)) = (&outcome.fit, &self.persist) {
                persister.append(&StateRecord::Param {
                    family: family.clone(),
                    replay: (**fit).clone(),
                });
                ctx.event("persist.journal", "param");
            }
            Some(outcome)
        });
        outcome.and_then(|outcome| outcome.fit.clone())
    }

    /// The fit for a sweep over `batches`, when the sweep qualifies for
    /// the incremental path: enough distinct points to beat the
    /// three-anchor cost, valid batches, and an eligible `estimator`.
    fn sweep_param(
        &self,
        base: &TrainJobSpec,
        batches: &[usize],
        estimator: &Estimator,
        ctx: &TraceContext,
    ) -> Option<Arc<ParamReplay>> {
        if !self.incremental_eligible(estimator) {
            return None;
        }
        let mut distinct: Vec<usize> = batches.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() < MIN_INCREMENTAL_POINTS || distinct[0] == 0 {
            return None;
        }
        self.param_for(base, distinct[0], *distinct.last().expect("non-empty"), ctx)
    }

    /// One incremental sweep cell under the service's own estimator:
    /// materialize the fitted buffer at `batch` and replay it bounded.
    fn incremental_estimate(
        &self,
        param: &ParamReplay,
        batch: usize,
        ctx: &TraceContext,
    ) -> Estimate {
        self.sims.count_run();
        self.sims.count_incremental();
        ctx.event("sim.incremental", "cell");
        self.estimator
            .estimate_buffer(&param.materialize(batch), param.stats_for(batch))
    }

    /// Every device's cell for `base` at `batch`, served from the
    /// parameterized replay: shard hits first; one buffer
    /// materialization then backs every remaining device — roomy
    /// devices derive in O(1) from a single unbounded buffer replay,
    /// pressured ones replay the buffer against their bounded simulator.
    /// Cells land in the sim shards and the journal exactly like the
    /// full matrix path's.
    fn incremental_cells(
        &self,
        base: &TrainJobSpec,
        batch: usize,
        param: &ParamReplay,
        devices: &[GpuDevice],
        ctx: &TraceContext,
    ) -> Vec<Estimate> {
        let spec = with_batch(base, batch);
        let key = JobKey::of(&spec);
        let mut cells: Vec<Option<Estimate>> = devices
            .iter()
            .map(|device| self.sims.shard(device).get(&key))
            .collect();
        if cells.iter().all(Option::is_some) {
            return cells.into_iter().flatten().collect();
        }
        let buffer = param.materialize(batch);
        let stats = param.stats_for(batch);
        // One unbounded buffer replay backs the whole row's derivations
        // (it is not a replay-cache seed: probe batches rarely repeat,
        // and the buffer is cheaper to rebuild than to retain).
        let replay = self.config.fast_path.then(|| {
            Estimator::new(EstimatorConfig::for_device(devices[0]))
                .replay_buffer_unbounded(&buffer, stats.clone())
        });
        for (slot, device) in cells.iter_mut().zip(devices) {
            if slot.is_some() {
                continue;
            }
            let estimator = Estimator::new(EstimatorConfig::for_device(*device));
            self.sims.count_run();
            self.sims.count_incremental();
            ctx.event("sim.incremental", "cell");
            let estimate = replay
                .as_ref()
                .and_then(|replay| estimator.derive_from_replay(replay))
                .unwrap_or_else(|| estimator.estimate_buffer(&buffer, stats.clone()));
            self.sims
                .shard(device)
                .insert(key.clone(), estimate.clone());
            self.journal_sim(&DeviceFingerprint::of(device), &key, &estimate);
            *slot = Some(estimate);
        }
        cells.into_iter().flatten().collect()
    }

    /// One incremental admission probe on a single device. Probe batches
    /// never repeat within a bisection, so the unbounded derivation leg
    /// is skipped — one bounded buffer replay is the cheapest exact
    /// answer on any device, roomy or pressured.
    fn incremental_cell_on(
        &self,
        base: &TrainJobSpec,
        batch: usize,
        param: &ParamReplay,
        device: GpuDevice,
        ctx: &TraceContext,
    ) -> Estimate {
        let spec = with_batch(base, batch);
        let key = JobKey::of(&spec);
        if let Some(hit) = self.sims.shard(&device).get(&key) {
            ctx.event("cache.sim", "hit");
            return hit;
        }
        self.sims.count_run();
        self.sims.count_incremental();
        ctx.event("sim.incremental", "cell");
        let estimate = Estimator::new(EstimatorConfig::for_device(device))
            .estimate_buffer(&param.materialize(batch), param.stats_for(batch));
        self.sims
            .shard(&device)
            .insert(key.clone(), estimate.clone());
        self.journal_sim(&DeviceFingerprint::of(&device), &key, &estimate);
        estimate
    }

    /// Estimates `spec` on an explicit device configuration through the
    /// shared cache layers — the analysis cache, the unbounded-replay
    /// cache, and `device`'s simulation shard — without requiring the
    /// device to be registered by name. This is the entry point batch
    /// consumers (evaluation campaigns, benchmark harnesses) use to get
    /// the same "one analysis, one replay, N derivations" collapse the
    /// named matrix paths enjoy. Results are bit-identical to a
    /// sequential [`Estimator`] over [`EstimatorConfig::for_device`].
    ///
    /// # Errors
    /// Propagates Analyzer failures for degenerate jobs.
    pub fn estimate_for_device(
        &self,
        spec: &TrainJobSpec,
        device: GpuDevice,
    ) -> Result<Estimate, EstimateError> {
        let ctx = TraceContext::disabled();
        let stages = self.stages_traced(spec, &ctx)?;
        Ok(self.simulate_on(&JobKey::of(spec), &stages, device, &ctx))
    }

    /// Estimates `spec` on the registered device `device_name`, sharing
    /// both cache layers: the device-independent analysis cache and the
    /// per-device simulation shard. A query for a cell that an earlier
    /// [`estimate_matrix`](Self::estimate_matrix) call computed is a pure
    /// cache hit — no profiling, no simulation.
    ///
    /// Like every named-device path (the matrix and placement queries),
    /// the simulation uses the paper-default
    /// [`EstimatorConfig::for_device`] for the named device — a
    /// customized [`ServiceConfig::estimator`] (ablation knobs, timeline
    /// recording) applies only to [`estimate`](Self::estimate) /
    /// [`sweep`](Self::sweep); pair a custom configuration with
    /// [`estimate_with`](Self::estimate_with) instead.
    ///
    /// # Errors
    /// [`EstimateError::UnknownDevice`] for an unregistered name;
    /// Analyzer failures for degenerate jobs.
    pub fn estimate_on(
        &self,
        spec: &TrainJobSpec,
        device_name: &str,
    ) -> Result<Estimate, EstimateError> {
        self.estimate_on_traced(spec, device_name, &TraceContext::disabled())
    }

    /// [`estimate_on`](Self::estimate_on) under a request trace.
    ///
    /// # Errors
    /// [`EstimateError::UnknownDevice`] for an unregistered name;
    /// Analyzer failures for degenerate jobs.
    pub fn estimate_on_traced(
        &self,
        spec: &TrainJobSpec,
        device_name: &str,
        ctx: &TraceContext,
    ) -> Result<Estimate, EstimateError> {
        let device = self
            .registry()
            .get(device_name)
            .ok_or_else(|| EstimateError::UnknownDevice(device_name.to_string()))?;
        let stages = self.stages_traced(spec, ctx)?;
        Ok(self.simulate_on(&JobKey::of(spec), &stages, device, ctx))
    }

    /// The device a cluster sim-cell exchange resolves to: a registered
    /// name, or — for the plain-estimate route — the primary device
    /// *when* the service estimator is its paper-default configuration
    /// ([`EstimatorConfig::for_device`]). A customized primary estimator
    /// (ablation knobs, timeline recording) is not shard-representable:
    /// its estimates are not bit-identical to a paper-default cell, so
    /// the cell paths refuse rather than cache a lying entry.
    fn cell_device(&self, device_name: Option<&str>) -> Option<GpuDevice> {
        match device_name {
            Some(name) => self.registry().get(name),
            None => {
                let config = self.estimator.config();
                let default = EstimatorConfig::for_device(config.device);
                (!config.record_timeline
                    && config.orchestrator == default.orchestrator
                    && config.allocator == default.allocator
                    && config.context_allowance == default.context_allowance)
                    .then_some(config.device)
            }
        }
    }

    /// The locally cached simulation cell for `spec`, if present —
    /// `device_name = None` resolves to the primary device (only under a
    /// paper-default estimator, see the cell-device gate). Cluster nodes
    /// use this to serve a non-owned request locally when a forwarded
    /// result already filled the cell, without re-forwarding.
    #[must_use]
    pub fn cached_cell_estimate(
        &self,
        spec: &TrainJobSpec,
        device_name: Option<&str>,
    ) -> Option<Estimate> {
        let device = self.cell_device(device_name)?;
        self.sims.shard(&device).get(&JobKey::of(spec))
    }

    /// Fills the local simulation cell for `spec` with an estimate
    /// computed elsewhere (a forwarded cluster response), journaling it
    /// like any locally computed cell. Returns whether the cell was
    /// newly filled — `false` for unknown devices, a non-paper-default
    /// primary estimator, or an already-present cell (which is never
    /// overwritten: cells are deterministic, and the incumbent was
    /// journaled first).
    pub fn fill_sim_cell(
        &self,
        spec: &TrainJobSpec,
        device_name: Option<&str>,
        estimate: Estimate,
    ) -> bool {
        let Some(device) = self.cell_device(device_name) else {
            return false;
        };
        let key = JobKey::of(spec);
        let shard = self.sims.shard(&device);
        if shard.peek(&key).is_some() {
            return false;
        }
        shard.insert(key.clone(), estimate.clone());
        self.journal_sim(&DeviceFingerprint::of(&device), &key, &estimate);
        true
    }

    /// Batched replay: estimates every job in `specs` on every named
    /// device, running the expensive profile + analyze stages **once per
    /// distinct job** and fanning the cached analyses out to concurrent
    /// per-device allocator simulations ("1 analysis, N simulations" —
    /// provable via [`profile_runs`](Self::profile_runs) and
    /// [`sim_stats`](Self::sim_stats)).
    ///
    /// Cells land in the per-device simulation shards, so a later
    /// single-device query ([`estimate_on`](Self::estimate_on)) for any
    /// cell is a cache hit. Every cell is bit-identical to a sequential
    /// [`Estimator::estimate_job`] against
    /// [`EstimatorConfig::for_device`] of its device — a customized
    /// [`ServiceConfig::estimator`] does not apply here (see
    /// [`estimate_on`](Self::estimate_on)).
    ///
    /// Per-job analysis failures are carried in the affected cells;
    /// matrix-level failure is reserved for unresolvable device names.
    ///
    /// # Errors
    /// [`EstimateError::UnknownDevice`] naming the first unknown device.
    ///
    /// # Example
    ///
    /// ```
    /// use xmem_service::{EstimationService, ServiceConfig};
    /// use xmem_runtime::{GpuDevice, TrainJobSpec};
    /// use xmem_models::ModelId;
    /// use xmem_optim::OptimizerKind;
    ///
    /// let service = EstimationService::for_device(GpuDevice::rtx3060());
    /// let jobs = [TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8)
    ///     .with_iterations(2)];
    /// let matrix = service.estimate_matrix(&jobs, &["rtx3060", "rtx4060"]).unwrap();
    /// assert_eq!(matrix.num_cells(), 2);
    /// assert_eq!(service.profile_runs(), 1, "one analysis");
    /// assert_eq!(service.sim_runs(), 2, "two simulations");
    /// ```
    pub fn estimate_matrix(
        &self,
        specs: &[TrainJobSpec],
        devices: &[&str],
    ) -> Result<DeviceMatrix, EstimateError> {
        self.estimate_matrix_traced(specs, devices, &TraceContext::disabled())
    }

    /// [`estimate_matrix`](Self::estimate_matrix) under a request trace.
    ///
    /// # Errors
    /// [`EstimateError::UnknownDevice`] naming the first unknown device.
    pub fn estimate_matrix_traced(
        &self,
        specs: &[TrainJobSpec],
        devices: &[&str],
        ctx: &TraceContext,
    ) -> Result<DeviceMatrix, EstimateError> {
        let resolved = self.registry().resolve(devices)?;
        let jobs = specs.len();
        // Column-major issue order: the first `jobs` work items cover
        // every job once, so distinct analyses profile in parallel;
        // later columns replay them from cache.
        let mut columns: Vec<Option<Result<Estimate, EstimateError>>> = self
            .parallel_fill(jobs * resolved.len(), |c| {
                let (device_index, job_index) = (c / jobs.max(1), c % jobs.max(1));
                let spec = &specs[job_index];
                self.stages_traced(spec, ctx).map(|stages| {
                    self.simulate_on(&JobKey::of(spec), &stages, resolved[device_index], ctx)
                })
            })
            .into_iter()
            .map(Some)
            .collect();

        let device_names: Vec<String> = devices.iter().map(|&d| d.to_string()).collect();
        let rows = specs
            .iter()
            .enumerate()
            .map(|(job_index, spec)| MatrixRow {
                spec: spec.clone(),
                cells: device_names
                    .iter()
                    .enumerate()
                    .map(|(device_index, name)| MatrixCell {
                        device: name.clone(),
                        estimate: columns[device_index * jobs + job_index]
                            .take()
                            .expect("one output per cell"),
                    })
                    .collect(),
            })
            .collect();
        Ok(DeviceMatrix {
            devices: device_names,
            rows,
        })
    }

    /// Batch-size sweep across a device fleet: one matrix whose rows are
    /// `base` at each batch in `batches` (in `batches` order) and whose
    /// columns are the named devices.
    ///
    /// A qualifying sweep (see [`sweep`](Self::sweep)) profiles three
    /// anchor batches, fits one parameterized replay, and materializes
    /// every row from it — one unbounded buffer replay per row then
    /// derives each roomy device's cell in O(1), so the whole matrix
    /// costs 3 profiles + B replays instead of B profiles + B × D
    /// replays. Otherwise each distinct batch profiles once and its
    /// analysis replays against all devices. Cells are bit-identical
    /// either way and land in the same per-device shards.
    ///
    /// # Errors
    /// [`EstimateError::UnknownDevice`] naming the first unknown device.
    pub fn sweep_matrix(
        &self,
        base: &TrainJobSpec,
        batches: &[usize],
        devices: &[&str],
    ) -> Result<DeviceMatrix, EstimateError> {
        self.sweep_matrix_traced(base, batches, devices, &TraceContext::disabled())
    }

    /// [`sweep_matrix`](Self::sweep_matrix) under a request trace.
    ///
    /// # Errors
    /// [`EstimateError::UnknownDevice`] naming the first unknown device.
    pub fn sweep_matrix_traced(
        &self,
        base: &TrainJobSpec,
        batches: &[usize],
        devices: &[&str],
        ctx: &TraceContext,
    ) -> Result<DeviceMatrix, EstimateError> {
        // Named-device cells always simulate under the paper-default
        // `EstimatorConfig::for_device`, which is incremental-eligible by
        // construction; gate on the service knob and the sweep shape.
        let probe = Estimator::new(EstimatorConfig::for_device(self.config.estimator.device));
        if let Some(param) = self.sweep_param(base, batches, &probe, ctx) {
            let resolved = self.registry().resolve(devices)?;
            let rows_cells = self.parallel_fill(batches.len(), |i| {
                self.incremental_cells(base, batches[i], &param, &resolved, ctx)
            });
            let device_names: Vec<String> = devices.iter().map(|&d| d.to_string()).collect();
            let rows = batches
                .iter()
                .zip(rows_cells)
                .map(|(&batch, cells)| MatrixRow {
                    spec: with_batch(base, batch),
                    cells: device_names
                        .iter()
                        .zip(cells)
                        .map(|(name, estimate)| MatrixCell {
                            device: name.clone(),
                            estimate: Ok(estimate),
                        })
                        .collect(),
                })
                .collect();
            return Ok(DeviceMatrix {
                devices: device_names,
                rows,
            });
        }
        let specs: Vec<TrainJobSpec> = batches.iter().map(|&b| with_batch(base, b)).collect();
        self.estimate_matrix_traced(&specs, devices, ctx)
    }

    /// Placement: the best registered device for `spec` — the
    /// smallest-capacity device whose estimate predicts no OOM (best fit:
    /// big devices stay free for jobs that need them), with ties broken
    /// by registry name order. `Ok(None)` when no registered device fits
    /// (or the registry is empty).
    ///
    /// Runs one analysis and at most one simulation per device; all of it
    /// lands in the shared caches.
    ///
    /// # Errors
    /// Propagates Analyzer failures — an estimation error is an error,
    /// never a "does not fit" verdict.
    pub fn best_device_for_job(
        &self,
        spec: &TrainJobSpec,
    ) -> Result<Option<DevicePlacement>, EstimateError> {
        self.best_device_for_job_traced(spec, &TraceContext::disabled())
    }

    /// [`best_device_for_job`](Self::best_device_for_job) under a request
    /// trace.
    ///
    /// # Errors
    /// Propagates Analyzer failures — an estimation error is an error,
    /// never a "does not fit" verdict.
    pub fn best_device_for_job_traced(
        &self,
        spec: &TrainJobSpec,
        ctx: &TraceContext,
    ) -> Result<Option<DevicePlacement>, EstimateError> {
        let mut fleet = self.registry().snapshot();
        if fleet.is_empty() {
            return Ok(None);
        }
        let stages = self.stages_traced(spec, ctx)?;
        let key = JobKey::of(spec);
        // Smallest capacity first (the stable sort keeps the snapshot's
        // name order within equal capacities, preserving the tie-break),
        // so the first fit is the answer — a small job on a large fleet
        // costs one simulation, not one per device.
        fleet.sort_by_key(|&(_, device)| device.capacity);
        for (name, device) in fleet {
            let estimate = self.simulate_on(&key, &stages, device, ctx);
            if !estimate.oom_predicted {
                return Ok(Some(DevicePlacement {
                    device: name,
                    estimate,
                }));
            }
        }
        Ok(None)
    }

    fn worker_count(&self, work_items: usize) -> usize {
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        } else {
            self.config.threads
        };
        threads.min(work_items).max(1)
    }

    /// Fans `count` independent work items out across the service's
    /// worker threads (the shared scaffold under [`sweep`](Self::sweep)
    /// and [`estimate_matrix`](Self::estimate_matrix)): `work(i)` runs
    /// once per index, and outputs come back in index order.
    fn parallel_fill<T: Send>(&self, count: usize, work: impl Fn(usize) -> T + Sync) -> Vec<T> {
        let results: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.worker_count(count);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    *results[i].lock().expect("parallel slot poisoned") = Some(work(i));
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("parallel slot poisoned")
                    .expect("every slot is filled")
            })
            .collect()
    }

    /// Estimates `base` at every batch size in `batches`, fanning the grid
    /// out across worker threads. Results are in `batches` order.
    ///
    /// A qualifying sweep (≥ 4 distinct batches, eligible configuration —
    /// see [`ServiceConfig::incremental_sweep`]) takes the **incremental
    /// path**: three anchor batches profile and pin one parameterized
    /// replay, and every cell — anchors included — is materialized from
    /// it in ~O(events) with no further profiling. The fit is proven
    /// exact before use, so cells are bit-identical to the per-batch
    /// path, which everything else falls back to: per-model work
    /// (profile + analysis of each distinct batch) is then shared
    /// through the cache, so concurrent and repeated sweeps reuse it.
    pub fn sweep(
        &self,
        base: &TrainJobSpec,
        batches: &[usize],
    ) -> Vec<(usize, Result<Estimate, EstimateError>)> {
        self.sweep_traced(base, batches, &TraceContext::disabled())
    }

    /// [`sweep`](Self::sweep) under a request trace.
    pub fn sweep_traced(
        &self,
        base: &TrainJobSpec,
        batches: &[usize],
        ctx: &TraceContext,
    ) -> Vec<(usize, Result<Estimate, EstimateError>)> {
        if let Some(param) = self.sweep_param(base, batches, &self.estimator, ctx) {
            let estimates = self.parallel_fill(batches.len(), |i| {
                Ok(self.incremental_estimate(&param, batches[i], ctx))
            });
            return batches.iter().copied().zip(estimates).collect();
        }
        self.sweep_fill(base, batches, ctx, |_, stages| {
            self.estimator.estimate_analyzed(&stages.analyzed)
        })
    }

    fn sweep_fill(
        &self,
        base: &TrainJobSpec,
        batches: &[usize],
        ctx: &TraceContext,
        eval: impl Fn(&JobKey, &ProfiledStages) -> Estimate + Sync,
    ) -> Vec<(usize, Result<Estimate, EstimateError>)> {
        let estimates = self.parallel_fill(batches.len(), |i| {
            let spec = with_batch(base, batches[i]);
            self.stages_traced(&spec, ctx)
                .map(|stages| eval(&JobKey::of(&spec), &stages))
        });
        batches.iter().copied().zip(estimates).collect()
    }

    /// Admission control: the largest batch in `[lo, hi]` whose estimate
    /// fits `device` without a predicted OOM, or `Ok(None)` when even `lo`
    /// does not fit.
    ///
    /// A coarse parallel sweep first brackets the fit/OOM frontier (warming
    /// the cache), then bisection pins it down; probe batches hit both
    /// shared cache layers (the analysis cache and `device`'s simulation
    /// shard) on repeat queries — including repeats for *other* devices,
    /// which reuse the analyses and pay only for their own simulations.
    ///
    /// # Errors
    /// Propagates the first Analyzer failure hit by a probe — an
    /// estimation error is an error, never a "does not fit" verdict.
    pub fn max_batch_for_device(
        &self,
        base: &TrainJobSpec,
        device: GpuDevice,
        lo: usize,
        hi: usize,
    ) -> Result<Option<usize>, EstimateError> {
        self.max_batch_for_device_traced(base, device, lo, hi, &TraceContext::disabled())
    }

    /// [`max_batch_for_device`](Self::max_batch_for_device) under a
    /// request trace.
    ///
    /// # Panics
    /// Panics unless `1 <= lo <= hi`, matching the untraced API.
    ///
    /// # Errors
    /// Propagates the first Analyzer failure hit by a probe — an
    /// estimation error is an error, never a "does not fit" verdict.
    pub fn max_batch_for_device_traced(
        &self,
        base: &TrainJobSpec,
        device: GpuDevice,
        lo: usize,
        hi: usize,
        ctx: &TraceContext,
    ) -> Result<Option<usize>, EstimateError> {
        assert!(lo >= 1 && lo <= hi, "invalid batch range [{lo}, {hi}]");

        // A wide-enough eligible range rides one parameterized replay:
        // every probe — bracket and bisection alike — materializes from
        // it, so the whole admission query costs three anchor profiles.
        // Probes simulate under `EstimatorConfig::for_device(device)`
        // either way, so the bisection walks identical estimates and
        // lands on the identical answer.
        let param = if hi - lo + 1 >= MIN_INCREMENTAL_POINTS
            && self.incremental_eligible(&Estimator::new(EstimatorConfig::for_device(device)))
        {
            self.param_for(base, lo, hi, ctx)
        } else {
            None
        };

        // Coarse bracket: a parallel sweep over an evenly spaced grid
        // warms the cache and narrows the frontier. The grid is capped —
        // on many-core hosts an uncapped grid would degenerate into an
        // exhaustive profile of the whole range, where bracket + bisect
        // needs only a handful of probes.
        let points = self.worker_count(usize::MAX).min(MAX_BRACKET_POINTS);
        let grid = coarse_grid(lo, hi, points);
        let mut coarse = Vec::with_capacity(grid.len());
        // Probe batches are distinct keys on one device: never worth
        // seeding the unbounded-replay cache (see `simulate_on_with`).
        let probes = match &param {
            Some(param) => self.parallel_fill(grid.len(), |i| {
                (
                    grid[i],
                    Ok(self.incremental_cell_on(base, grid[i], param, device, ctx)),
                )
            }),
            None => self.sweep_fill(base, &grid, ctx, |key, stages| {
                self.simulate_on_with(key, stages, device, false, ctx)
            }),
        };
        for (batch, estimate) in probes {
            coarse.push((batch, !estimate?.oom_predicted));
        }
        if !coarse.first().map(|&(_, fits)| fits).unwrap_or(false) {
            return Ok(None);
        }
        let mut lo = coarse
            .iter()
            .rev()
            .find(|&&(_, fits)| fits)
            .map(|&(b, _)| b)
            .unwrap_or(lo);
        let mut hi = coarse
            .iter()
            .find(|&&(_, fits)| !fits)
            .map(|&(b, _)| b - 1)
            .unwrap_or(hi);

        // Bisect the remaining bracket; probes land in the shared caches.
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            let estimate = match &param {
                Some(param) => self.incremental_cell_on(base, mid, param, device, ctx),
                None => {
                    let spec = with_batch(base, mid);
                    let stages = self.stages_traced(&spec, ctx)?;
                    self.simulate_on_with(&JobKey::of(&spec), &stages, device, false, ctx)
                }
            };
            if !estimate.oom_predicted {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        Ok(Some(lo))
    }
}

/// Future resolving to one estimate ([`AsyncEstimationService::submit`]).
pub type EstimateFuture = PoolFuture<Result<Estimate, EstimateError>>;

/// Future resolving to a whole batch-size sweep, in grid order
/// ([`AsyncEstimationService::sweep_async`]). The outer `Result` carries
/// only cancellation/deadline outcomes; per-batch estimation failures stay
/// inside the vector.
pub type SweepFuture = PoolFuture<SweepOutcome>;

/// Output of [`AsyncEstimationService::sweep_async`].
pub type SweepOutcome = Result<Vec<(usize, Result<Estimate, EstimateError>)>, EstimateError>;

/// Future resolving to an admission-control answer
/// ([`AsyncEstimationService::max_batch_for_device_async`]).
pub type PlanFuture = PoolFuture<Result<Option<usize>, EstimateError>>;

/// Future resolving to a whole device matrix
/// ([`AsyncEstimationService::submit_matrix`]). The outer `Result`
/// carries unknown-device / cancellation / deadline outcomes; per-cell
/// estimation failures stay inside the matrix.
pub type MatrixFuture = PoolFuture<Result<DeviceMatrix, EstimateError>>;

/// Future resolving to a placement decision
/// ([`AsyncEstimationService::best_device_for_job_async`]).
pub type PlacementFuture = PoolFuture<Result<Option<DevicePlacement>, EstimateError>>;

/// Configuration of an [`AsyncEstimationService`].
#[derive(Debug, Clone)]
pub struct AsyncServiceConfig {
    /// The underlying blocking service (cache, estimator, sweep threads).
    pub service: ServiceConfig,
    /// Worker threads answering submitted queries (0 = all cores).
    pub workers: usize,
    /// Bound on queued-but-unclaimed submissions; a full queue makes
    /// `submit` fail fast with [`SubmitError::Busy`].
    pub queue_depth: usize,
}

impl AsyncServiceConfig {
    /// Async defaults for a device: service defaults, all-core workers,
    /// a 1024-deep submission queue.
    #[must_use]
    pub fn for_device(device: GpuDevice) -> Self {
        AsyncServiceConfig {
            service: ServiceConfig::for_device(device),
            workers: 0,
            queue_depth: 1024,
        }
    }

    /// Overrides the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the submission-queue depth.
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Overrides the underlying service's device registry (the cluster's
    /// fleet description).
    #[must_use]
    pub fn with_registry(mut self, registry: DeviceRegistry) -> Self {
        self.service = self.service.with_registry(registry);
        self
    }

    /// Enables crash-consistent persistence on the underlying service
    /// (see [`ServiceConfig::with_state_dir`]).
    #[must_use]
    pub fn with_state_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.service = self.service.with_state_dir(dir);
        self
    }
}

/// The asynchronous estimation front end: a scheduler event loop submits
/// queries and receives [`PoolFuture`]s, instead of burning a blocked
/// thread per in-flight question.
///
/// Queries are answered by a fixed, channel-fed worker pool over a shared
/// [`EstimationService`], so everything the blocking service guarantees
/// carries over: estimates are bit-identical to the sequential
/// [`Estimator`](xmem_core::Estimator), concurrent identical queries
/// single-flight onto one profile run, and degenerate jobs are answered
/// from the negative cache.
///
/// Three controls make it safe under scheduler-scale load:
/// * **Backpressure** — the submission queue is bounded; a full queue
///   fails fast with [`SubmitError::Busy`] instead of queueing without
///   bound.
/// * **Cancellation** — [`EstimateFuture::cancel`](PoolFuture::cancel)
///   resolves the future to [`EstimateError::Cancelled`]; a job cancelled
///   before a worker claims it never runs at all.
/// * **Per-query deadlines** —
///   [`submit_with_deadline`](Self::submit_with_deadline) bounds each
///   query; an unclaimed job whose deadline passes resolves to
///   [`EstimateError::DeadlineExceeded`] without running.
///
/// # Example
///
/// ```
/// use xmem_service::{block_on, join_all, AsyncEstimationService};
/// use xmem_runtime::{GpuDevice, TrainJobSpec};
/// use xmem_models::ModelId;
/// use xmem_optim::OptimizerKind;
///
/// let service = AsyncEstimationService::for_device(GpuDevice::rtx3060());
/// let spec = TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8)
///     .with_iterations(2);
/// // Submit a herd of identical admission checks...
/// let futures: Vec<_> = (0..16)
///     .map(|_| service.submit(&spec).expect("queue has room"))
///     .collect();
/// // ...and drive them all from one thread.
/// let estimates = block_on(join_all(futures));
/// assert!(estimates.windows(2).all(|w| w[0] == w[1]));
/// // The herd coalesced onto a single CPU profile.
/// assert_eq!(service.service().profile_runs(), 1);
/// ```
#[derive(Debug)]
pub struct AsyncEstimationService {
    service: Arc<EstimationService>,
    pool: WorkerPool,
    /// Actively settles deadline-carrying futures at their due time, so
    /// `.await`-ing consumers are not at the mercy of the next pool
    /// completion.
    timer: DeadlineTimer,
}

impl AsyncEstimationService {
    /// Creates an async front end with its own underlying service.
    #[must_use]
    pub fn new(config: AsyncServiceConfig) -> Self {
        let workers = config.workers;
        let queue_depth = config.queue_depth;
        let service = Arc::new(EstimationService::new(config.service));
        AsyncEstimationService::from_service(service, workers, queue_depth)
    }

    /// Convenience constructor with async defaults for a device.
    #[must_use]
    pub fn for_device(device: GpuDevice) -> Self {
        AsyncEstimationService::new(AsyncServiceConfig::for_device(device))
    }

    /// Wraps an existing (possibly shared) blocking service — the async
    /// and blocking front ends then share one cache, single-flight table
    /// and negative cache. `workers` = 0 uses all cores.
    #[must_use]
    pub fn from_service(
        service: Arc<EstimationService>,
        workers: usize,
        queue_depth: usize,
    ) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        } else {
            workers
        };
        AsyncEstimationService {
            service,
            pool: WorkerPool::new(workers, queue_depth),
            timer: DeadlineTimer::new(),
        }
    }

    /// The underlying blocking service (shared cache and counters).
    #[must_use]
    pub fn service(&self) -> &EstimationService {
        &self.service
    }

    /// Worker threads answering queries.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.pool.threads()
    }

    /// Enqueues `work` against the shared service, returning the matching
    /// future. The pool settles the promise even if `work` panics (the
    /// future resolves to [`EstimateError::Internal`]) and the worker
    /// thread survives, so the pool stays at full strength.
    fn dispatch<T, F>(
        &self,
        deadline: Option<Instant>,
        work: F,
    ) -> Result<PoolFuture<T>, SubmitError>
    where
        T: crate::future::LateOutcome + 'static,
        F: FnOnce(&EstimationService) -> T + Send + 'static,
    {
        let (promise, future) = promise_pair(deadline);
        let service = Arc::clone(&self.service);
        self.pool
            .try_execute_settling(promise, move || work(&service))?;
        // Only accepted, deadline-carrying submissions are watched.
        self.timer.watch(&future);
        Ok(future)
    }

    /// Submits one estimation query.
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full;
    /// resolve some in-flight futures and retry.
    pub fn submit(&self, spec: &TrainJobSpec) -> Result<EstimateFuture, SubmitError> {
        self.submit_traced(spec, None, None, &TraceContext::disabled())
    }

    /// Submits one estimation query under a request trace — against the
    /// primary device, or a *named* registered device when `device_name`
    /// is given. Queue wait records as a `pool.queue` span, worker
    /// execution as `service.call`, and every pipeline stage the query
    /// touches records under the same trace id. A disabled context makes
    /// this identical to the untraced submit paths.
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn submit_traced(
        &self,
        spec: &TrainJobSpec,
        device_name: Option<&str>,
        deadline: Option<Instant>,
        ctx: &TraceContext,
    ) -> Result<EstimateFuture, SubmitError> {
        let spec = spec.clone();
        let device_name = device_name.map(str::to_string);
        let ctx = ctx.clone();
        let queue = ctx.span("pool.queue");
        self.dispatch(deadline, move |service| {
            drop(queue);
            let mut call = ctx.span("service.call");
            let result = match &device_name {
                Some(name) => service.estimate_on_traced(&spec, name, &ctx),
                None => service.estimate_traced(&spec, &ctx),
            };
            call.set_outcome(if result.is_ok() { "ok" } else { "error" });
            result
        })
    }

    /// Submits one estimation query that must resolve by `deadline`. If
    /// the deadline passes first, a dedicated timer thread settles the
    /// future with [`EstimateError::DeadlineExceeded`] — `.await`-ing
    /// consumers are woken at the deadline, not at the next pool
    /// completion — and, when no worker had claimed the job yet, the
    /// profile run is skipped entirely.
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn submit_with_deadline(
        &self,
        spec: &TrainJobSpec,
        deadline: Instant,
    ) -> Result<EstimateFuture, SubmitError> {
        self.submit_traced(spec, None, Some(deadline), &TraceContext::disabled())
    }

    /// Submits a whole batch-size sweep as one pooled query; the worker
    /// fans the grid out exactly like [`EstimationService::sweep`].
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn sweep_async(
        &self,
        base: &TrainJobSpec,
        batches: &[usize],
    ) -> Result<SweepFuture, SubmitError> {
        self.sweep_inner(base, batches, None)
    }

    /// [`sweep_async`](Self::sweep_async) with a deadline on the whole
    /// sweep: past it the future resolves to
    /// [`EstimateError::DeadlineExceeded`].
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn sweep_async_with_deadline(
        &self,
        base: &TrainJobSpec,
        batches: &[usize],
        deadline: Instant,
    ) -> Result<SweepFuture, SubmitError> {
        self.sweep_inner(base, batches, Some(deadline))
    }

    fn sweep_inner(
        &self,
        base: &TrainJobSpec,
        batches: &[usize],
        deadline: Option<Instant>,
    ) -> Result<SweepFuture, SubmitError> {
        self.sweep_traced(base, batches, deadline, &TraceContext::disabled())
    }

    /// [`sweep_async`](Self::sweep_async) under a request trace (see
    /// [`submit_traced`](Self::submit_traced) for the span layout).
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn sweep_traced(
        &self,
        base: &TrainJobSpec,
        batches: &[usize],
        deadline: Option<Instant>,
        ctx: &TraceContext,
    ) -> Result<SweepFuture, SubmitError> {
        let base = base.clone();
        let batches = batches.to_vec();
        let ctx = ctx.clone();
        let queue = ctx.span("pool.queue");
        self.dispatch(deadline, move |service| {
            drop(queue);
            let mut call = ctx.span("service.call");
            let result = service.sweep_traced(&base, &batches, &ctx);
            call.set_outcome("ok");
            Ok(result)
        })
    }

    /// Submits an admission-control query: the largest batch in
    /// `[lo, hi]` fitting `device` (see
    /// [`EstimationService::max_batch_for_device`]).
    ///
    /// # Panics
    /// Panics (before dispatch) unless `1 <= lo <= hi`, matching the
    /// blocking API.
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn max_batch_for_device_async(
        &self,
        base: &TrainJobSpec,
        device: GpuDevice,
        lo: usize,
        hi: usize,
    ) -> Result<PlanFuture, SubmitError> {
        self.plan_inner(base, device, lo, hi, None)
    }

    /// [`max_batch_for_device_async`](Self::max_batch_for_device_async)
    /// with a deadline: past it the future resolves to
    /// [`EstimateError::DeadlineExceeded`].
    ///
    /// # Panics
    /// Panics (before dispatch) unless `1 <= lo <= hi`.
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn max_batch_for_device_async_with_deadline(
        &self,
        base: &TrainJobSpec,
        device: GpuDevice,
        lo: usize,
        hi: usize,
        deadline: Instant,
    ) -> Result<PlanFuture, SubmitError> {
        self.plan_inner(base, device, lo, hi, Some(deadline))
    }

    fn plan_inner(
        &self,
        base: &TrainJobSpec,
        device: GpuDevice,
        lo: usize,
        hi: usize,
        deadline: Option<Instant>,
    ) -> Result<PlanFuture, SubmitError> {
        self.plan_traced(base, device, lo, hi, deadline, &TraceContext::disabled())
    }

    /// [`max_batch_for_device_async`](Self::max_batch_for_device_async)
    /// under a request trace.
    ///
    /// # Panics
    /// Panics (before dispatch) unless `1 <= lo <= hi`.
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn plan_traced(
        &self,
        base: &TrainJobSpec,
        device: GpuDevice,
        lo: usize,
        hi: usize,
        deadline: Option<Instant>,
        ctx: &TraceContext,
    ) -> Result<PlanFuture, SubmitError> {
        assert!(lo >= 1 && lo <= hi, "invalid batch range [{lo}, {hi}]");
        let base = base.clone();
        let ctx = ctx.clone();
        let queue = ctx.span("pool.queue");
        self.dispatch(deadline, move |service| {
            drop(queue);
            let mut call = ctx.span("service.call");
            let result = service.max_batch_for_device_traced(&base, device, lo, hi, &ctx);
            call.set_outcome(if result.is_ok() { "ok" } else { "error" });
            result
        })
    }

    /// Submits one estimation query against a *named* registered device
    /// (see [`EstimationService::estimate_on`]); the answer shares the
    /// analysis cache and the device's simulation shard with every matrix
    /// query in flight.
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn submit_on(
        &self,
        spec: &TrainJobSpec,
        device_name: &str,
    ) -> Result<EstimateFuture, SubmitError> {
        self.submit_on_inner(spec, device_name, None)
    }

    /// [`submit_on`](Self::submit_on) with a deadline: past it the future
    /// resolves to [`EstimateError::DeadlineExceeded`], and an unclaimed
    /// job never runs.
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn submit_on_with_deadline(
        &self,
        spec: &TrainJobSpec,
        device_name: &str,
        deadline: Instant,
    ) -> Result<EstimateFuture, SubmitError> {
        self.submit_on_inner(spec, device_name, Some(deadline))
    }

    fn submit_on_inner(
        &self,
        spec: &TrainJobSpec,
        device_name: &str,
        deadline: Option<Instant>,
    ) -> Result<EstimateFuture, SubmitError> {
        self.submit_traced(spec, Some(device_name), deadline, &TraceContext::disabled())
    }

    /// Submits a whole device matrix as one pooled query: every job in
    /// `specs` × every named device, with one analysis per distinct job
    /// fanned out to per-device simulations (see
    /// [`EstimationService::estimate_matrix`]).
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn submit_matrix(
        &self,
        specs: &[TrainJobSpec],
        devices: &[&str],
    ) -> Result<MatrixFuture, SubmitError> {
        self.matrix_inner(specs, devices, None)
    }

    /// [`submit_matrix`](Self::submit_matrix) with a deadline on the whole
    /// matrix: past it the future resolves to
    /// [`EstimateError::DeadlineExceeded`].
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn submit_matrix_with_deadline(
        &self,
        specs: &[TrainJobSpec],
        devices: &[&str],
        deadline: Instant,
    ) -> Result<MatrixFuture, SubmitError> {
        self.matrix_inner(specs, devices, Some(deadline))
    }

    fn matrix_inner(
        &self,
        specs: &[TrainJobSpec],
        devices: &[&str],
        deadline: Option<Instant>,
    ) -> Result<MatrixFuture, SubmitError> {
        self.matrix_traced(specs, devices, deadline, &TraceContext::disabled())
    }

    /// [`submit_matrix`](Self::submit_matrix) under a request trace.
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn matrix_traced(
        &self,
        specs: &[TrainJobSpec],
        devices: &[&str],
        deadline: Option<Instant>,
        ctx: &TraceContext,
    ) -> Result<MatrixFuture, SubmitError> {
        let specs = specs.to_vec();
        let devices: Vec<String> = devices.iter().map(|&d| d.to_string()).collect();
        let ctx = ctx.clone();
        let queue = ctx.span("pool.queue");
        self.dispatch(deadline, move |service| {
            drop(queue);
            let mut call = ctx.span("service.call");
            let names: Vec<&str> = devices.iter().map(String::as_str).collect();
            let result = service.estimate_matrix_traced(&specs, &names, &ctx);
            call.set_outcome(if result.is_ok() { "ok" } else { "error" });
            result
        })
    }

    /// Submits a placement query: the best registered device for `spec`
    /// (see [`EstimationService::best_device_for_job`]).
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn best_device_for_job_async(
        &self,
        spec: &TrainJobSpec,
    ) -> Result<PlacementFuture, SubmitError> {
        self.placement_inner(spec, None)
    }

    /// [`best_device_for_job_async`](Self::best_device_for_job_async)
    /// with a deadline: past it the future resolves to
    /// [`EstimateError::DeadlineExceeded`].
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn best_device_for_job_async_with_deadline(
        &self,
        spec: &TrainJobSpec,
        deadline: Instant,
    ) -> Result<PlacementFuture, SubmitError> {
        self.placement_inner(spec, Some(deadline))
    }

    fn placement_inner(
        &self,
        spec: &TrainJobSpec,
        deadline: Option<Instant>,
    ) -> Result<PlacementFuture, SubmitError> {
        self.placement_traced(spec, deadline, &TraceContext::disabled())
    }

    /// [`best_device_for_job_async`](Self::best_device_for_job_async)
    /// under a request trace.
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the bounded submission queue is full.
    pub fn placement_traced(
        &self,
        spec: &TrainJobSpec,
        deadline: Option<Instant>,
        ctx: &TraceContext,
    ) -> Result<PlacementFuture, SubmitError> {
        let spec = spec.clone();
        let ctx = ctx.clone();
        let queue = ctx.span("pool.queue");
        self.dispatch(deadline, move |service| {
            drop(queue);
            let mut call = ctx.span("service.call");
            let result = service.best_device_for_job_traced(&spec, &ctx);
            call.set_outcome(if result.is_ok() { "ok" } else { "error" });
            result
        })
    }

    /// Panics that escaped a raw pool job and were caught by the worker
    /// loop (see [`WorkerPool::panics`]). Queries submitted through this
    /// front end convert panics into [`EstimateError::Internal`] results
    /// instead, so they never appear here.
    #[must_use]
    pub fn pool_panics(&self) -> u64 {
        self.pool.panics()
    }
}

/// Upper bound on coarse-bracket probes in
/// [`EstimationService::max_batch_for_device`].
const MAX_BRACKET_POINTS: usize = 16;

fn with_batch(base: &TrainJobSpec, batch: usize) -> TrainJobSpec {
    let mut spec = base.clone();
    spec.batch = batch;
    spec
}

/// An evenly spaced probe grid covering `[lo, hi]`, endpoints included.
fn coarse_grid(lo: usize, hi: usize, points: usize) -> Vec<usize> {
    if hi == lo {
        return vec![lo];
    }
    let points = points.clamp(2, hi - lo + 1);
    let mut grid: Vec<usize> = (0..points)
        .map(|i| lo + (hi - lo) * i / (points - 1))
        .collect();
    grid.dedup();
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_models::ModelId;
    use xmem_optim::OptimizerKind;

    fn small_spec(batch: usize) -> TrainJobSpec {
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, batch).with_iterations(2)
    }

    #[test]
    fn estimate_matches_sequential_path() {
        let device = GpuDevice::rtx3060();
        let service = EstimationService::for_device(device);
        let spec = small_spec(8);
        let from_service = service.estimate(&spec).unwrap();
        let sequential = Estimator::new(EstimatorConfig::for_device(device))
            .estimate_job(&spec)
            .unwrap();
        assert_eq!(from_service, sequential);
    }

    #[test]
    fn cached_estimate_is_identical_and_counts_a_hit() {
        let service = EstimationService::for_device(GpuDevice::rtx3060());
        let spec = small_spec(8);
        let cold = service.estimate(&spec).unwrap();
        let warm = service.estimate(&spec).unwrap();
        assert_eq!(cold, warm);
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.insertions, 1);
    }

    #[test]
    fn repeated_sweep_is_fully_cached() {
        let service = EstimationService::for_device(GpuDevice::rtx3060());
        let batches = [1, 2, 4, 8];
        let first = service.sweep(&small_spec(1), &batches);
        // The incremental path profiles only its three anchors.
        let insertions_after_first = service.cache_stats().insertions;
        assert_eq!(insertions_after_first, 3);
        assert_eq!(service.sim_stats().param_replays, 1);

        let second = service.sweep(&small_spec(1), &batches);
        let stats = service.cache_stats();
        assert_eq!(
            stats.insertions, insertions_after_first,
            "a repeated sweep re-profiles nothing"
        );
        assert_eq!(
            service.sim_stats().param_replays,
            1,
            "a repeated sweep reuses the cached fit"
        );
        for ((b1, e1), (b2, e2)) in first.iter().zip(&second) {
            assert_eq!(b1, b2);
            assert_eq!(e1.as_ref().unwrap(), e2.as_ref().unwrap());
        }
    }

    #[test]
    fn short_sweeps_stay_on_the_per_batch_path() {
        let service = EstimationService::for_device(GpuDevice::rtx3060());
        let batches = [1, 2, 4];
        service.sweep(&small_spec(1), &batches);
        let stats = service.sim_stats();
        assert_eq!(
            stats.param_replays, 0,
            "three points cannot beat three anchors"
        );
        assert_eq!(stats.incremental_cells, 0);
        assert_eq!(service.profile_runs(), batches.len() as u64);
    }

    #[test]
    fn incremental_sweep_counts_cells_and_keeps_the_invariant() {
        let service = EstimationService::for_device(GpuDevice::rtx3060());
        let batches = [1, 2, 4, 8, 12, 16];
        let swept = service.sweep(&small_spec(1), &batches);
        assert!(swept.iter().all(|(_, e)| e.is_ok()));
        let stats = service.sim_stats();
        assert_eq!(stats.param_replays, 1, "one fit per family");
        assert_eq!(stats.incremental_cells, batches.len() as u64);
        assert_eq!(
            stats.fast_path_hits + stats.full_replays + stats.incremental_cells,
            stats.sim_runs
        );
        assert_eq!(service.profile_runs(), 3, "anchors only");
    }

    #[test]
    fn disabled_incremental_sweep_is_bit_identical() {
        let incremental = EstimationService::for_device(GpuDevice::rtx3060());
        let legacy = EstimationService::new(
            ServiceConfig::for_device(GpuDevice::rtx3060()).with_incremental_sweep(false),
        );
        let batches = [1, 2, 4, 8, 12];
        let a = incremental.sweep(&small_spec(1), &batches);
        let b = legacy.sweep(&small_spec(1), &batches);
        for ((b1, e1), (b2, e2)) in a.iter().zip(&b) {
            assert_eq!(b1, b2);
            assert_eq!(e1.as_ref().unwrap(), e2.as_ref().unwrap());
        }
        assert_eq!(legacy.sim_stats().param_replays, 0);
        assert_eq!(legacy.profile_runs(), batches.len() as u64);
    }

    #[test]
    fn ineligible_configs_fall_back_to_full_sweeps() {
        // Timeline recording reads the clock: the delta model cannot be
        // proven exact, so the gate must refuse the incremental path.
        let mut config = ServiceConfig::for_device(GpuDevice::rtx3060());
        config.estimator.record_timeline = true;
        let service = EstimationService::new(config);
        let batches = [1, 2, 4, 8];
        let swept = service.sweep(&small_spec(1), &batches);
        assert!(swept.iter().all(|(_, e)| e.is_ok()));
        let stats = service.sim_stats();
        assert_eq!(stats.param_replays, 0);
        assert_eq!(stats.incremental_cells, 0);
        assert_eq!(service.profile_runs(), batches.len() as u64);
    }

    #[test]
    fn sweep_preserves_input_order() {
        let service = EstimationService::for_device(GpuDevice::rtx3060());
        let batches = [8, 1, 4, 2];
        let results = service.sweep(&small_spec(1), &batches);
        let got: Vec<usize> = results.iter().map(|&(b, _)| b).collect();
        assert_eq!(got, batches);
    }

    #[test]
    fn max_batch_brackets_and_bisects_the_frontier() {
        let device = GpuDevice::rtx3060();
        let service = EstimationService::for_device(device);
        let base = small_spec(1);
        let max = service
            .max_batch_for_device(&base, device, 1, 16)
            .expect("estimation succeeds");
        // MobileNetV3-Small fits this device comfortably across the range.
        assert_eq!(max, Some(16));
        // The answer agrees with direct estimates at the frontier.
        let at_max = service.estimate(&with_batch(&base, 16)).unwrap();
        assert!(!at_max.oom_predicted);
    }

    #[test]
    fn roomy_fleet_serves_every_cell_from_one_unbounded_replay() {
        let service = EstimationService::for_device(GpuDevice::rtx3060());
        let jobs = [small_spec(4), small_spec(8)];
        let devices = ["rtx3060", "rtx4060", "a100"];
        let matrix = service.estimate_matrix(&jobs, &devices).unwrap();
        assert!(matrix
            .rows
            .iter()
            .all(|r| r.cells.iter().all(MatrixCell::fits)));
        let sims = service.sim_stats();
        assert_eq!(sims.sim_runs, (jobs.len() * devices.len()) as u64);
        assert_eq!(
            sims.full_replays, 0,
            "an all-roomy fleet must not pay a single bounded replay"
        );
        assert_eq!(sims.fast_path_hits, sims.sim_runs);
        assert_eq!(
            sims.unbounded_replays,
            jobs.len() as u64,
            "one seed replay per job"
        );
    }

    #[test]
    fn disabled_fast_path_pays_full_replays_and_stays_identical() {
        let jobs = [small_spec(4), small_spec(8)];
        let devices = ["rtx3060", "rtx4060"];
        let fast = EstimationService::for_device(GpuDevice::rtx3060());
        let full = EstimationService::new(
            ServiceConfig::for_device(GpuDevice::rtx3060()).with_fast_path(false),
        );
        let fast_matrix = fast.estimate_matrix(&jobs, &devices).unwrap();
        let full_matrix = full.estimate_matrix(&jobs, &devices).unwrap();
        assert_eq!(fast_matrix, full_matrix, "fast path must be bit-identical");
        let stats = full.sim_stats();
        assert_eq!(stats.fast_path_hits, 0);
        assert_eq!(stats.unbounded_replays, 0);
        assert_eq!(stats.full_replays, stats.sim_runs);
        let stats = fast.sim_stats();
        assert_eq!(stats.fast_path_hits, stats.sim_runs);
        assert_eq!(stats.fast_path_hits + stats.full_replays, stats.sim_runs);
    }

    #[test]
    fn admission_probes_use_but_never_seed_the_replay_cache() {
        let device = GpuDevice::rtx3060();
        let service = EstimationService::for_device(device);
        let base = small_spec(1);
        service
            .max_batch_for_device(&base, device, 1, 16)
            .expect("estimation succeeds");
        let stats = service.sim_stats();
        assert_eq!(
            stats.unbounded_replays, 0,
            "probe keys never repeat, so seeding would be pure overhead"
        );
        // The whole admission query rides one parameterized replay:
        // every probe is an incremental cell, none pays a full replay.
        assert_eq!(stats.param_replays, 1);
        assert_eq!(stats.incremental_cells, stats.sim_runs);
        assert_eq!(stats.full_replays, 0);
        assert_eq!(service.profile_runs(), 3, "three anchors");

        // Matrix cells (a batch no probe touched) still seed as before.
        service
            .estimate_matrix(&[small_spec(24)], &["rtx4060"])
            .expect("devices resolve");
        assert_eq!(service.sim_stats().unbounded_replays, 1);
    }

    #[test]
    fn narrow_admission_ranges_keep_the_legacy_probe_path() {
        let device = GpuDevice::rtx3060();
        let service = EstimationService::for_device(device);
        let max = service
            .max_batch_for_device(&small_spec(1), device, 2, 4)
            .expect("estimation succeeds");
        assert_eq!(max, Some(4));
        let stats = service.sim_stats();
        assert_eq!(stats.param_replays, 0, "range too narrow for a fit");
        assert_eq!(stats.full_replays, stats.sim_runs);
    }

    #[test]
    fn trace_retention_opt_out_drops_traces_but_not_accuracy() {
        let retaining = EstimationService::for_device(GpuDevice::rtx3060());
        let dropping = EstimationService::new(
            ServiceConfig::for_device(GpuDevice::rtx3060()).with_trace_retention(false),
        );
        let spec = small_spec(8);
        let with_trace = retaining.stages(&spec).unwrap();
        let without_trace = dropping.stages(&spec).unwrap();
        assert!(with_trace.trace.is_some());
        assert!(without_trace.trace.is_none());
        assert!(
            without_trace.approx_bytes() < with_trace.approx_bytes(),
            "dropping the trace must shrink the entry's cache cost"
        );
        assert_eq!(
            retaining.estimate(&spec).unwrap(),
            dropping.estimate(&spec).unwrap()
        );
    }

    #[test]
    fn cache_bytes_budget_is_wired_through() {
        // A 1-byte budget rejects every (large) stage entry: queries still
        // succeed, but nothing is retained and repeats re-profile.
        let service = EstimationService::new(
            ServiceConfig::for_device(GpuDevice::rtx3060()).with_cache_bytes_budget(1),
        );
        let spec = small_spec(4);
        let first = service.estimate(&spec).unwrap();
        let second = service.estimate(&spec).unwrap();
        assert_eq!(first, second);
        assert_eq!(service.profile_runs(), 2, "nothing could be cached");
        assert!(service.cache_stats().rejected >= 2);
    }

    #[test]
    fn coarse_grid_covers_endpoints() {
        assert_eq!(coarse_grid(1, 9, 3), vec![1, 5, 9]);
        assert_eq!(coarse_grid(4, 4, 8), vec![4]);
        let g = coarse_grid(1, 128, 6);
        assert_eq!(*g.first().unwrap(), 1);
        assert_eq!(*g.last().unwrap(), 128);
    }
}
