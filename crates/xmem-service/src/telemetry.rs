//! Request-scoped tracing and structured logging — the observability
//! subsystem attributing per-request latency to pipeline stages, cache
//! tiers, and cluster hops.
//!
//! The design is dependency-free and cheap enough to leave on in
//! production:
//!
//! * [`TraceContext`] is a request-scoped handle carrying a 128-bit
//!   trace id. It is generated at ingress, or **adopted** from an
//!   [`TRACE_HEADER`] (`x-xmem-trace-id`) header so a request forwarded
//!   across the cluster wire stitches into one trace: both hops record
//!   spans under the same id. A disabled context
//!   ([`TraceContext::disabled`]) makes every recording call a single
//!   branch, so untraced paths (library callers, benchmarks with
//!   telemetry off) pay nothing.
//! * [`Span`] is an RAII guard: [`TraceContext::span`] starts it,
//!   dropping it records `(name, start, duration, outcome)` into the
//!   trace. Zero-duration markers ([`TraceContext::event`]) tag cache
//!   hits and other instantaneous outcomes.
//! * [`Telemetry`] owns the completed-trace ring buffer (bounded,
//!   lock-sharded), per-stage latency histograms (rendered into
//!   `/metrics` as `xmem_stage_duration_seconds{stage=...}`), and the
//!   leveled JSON request log on stderr. [`Telemetry::finish`] closes a
//!   context: the span timeline lands in the ring (served by
//!   `GET /v1/debug/traces`), the histograms absorb each span, and one
//!   structured log line is emitted when the level and the slow-request
//!   threshold say so.
//!
//! Span names come from a fixed registry ([`STAGE_NAMES`]) so the
//! histogram label set is bounded no matter what traffic arrives.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime};

/// The header carrying a trace id across the cluster wire (and in from
/// tracing-aware clients): 32 lowercase hex characters (128 bits).
pub const TRACE_HEADER: &str = "x-xmem-trace-id";

/// Every span name the service records. Fixed so the `stage` label set
/// on the Prometheus histograms is bounded; unknown names (from future
/// callers) collapse into `"other"`.
pub const STAGE_NAMES: [&str; 15] = [
    "pool.queue",
    "service.call",
    "cache.stage",
    "cache.sim",
    "cache.negative",
    "flight.stage",
    "stage.profile",
    "stage.analyze",
    "sim.replay",
    "sim.unbounded",
    "sim.incremental",
    "sweep.param_fit",
    "persist.journal",
    "cluster.forward",
    "other",
];

/// One recorded span: a named slice of a request's timeline with an
/// outcome tag (`hit`, `miss`, `fast-path`, `full-replay`, `forwarded`,
/// `fallback`, ...). Offsets are nanoseconds from the trace's start.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span id, unique within the trace (1-based, in start order).
    pub id: u64,
    /// Registered span name (see [`STAGE_NAMES`]).
    pub name: &'static str,
    /// Start offset from the trace's first instant, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instantaneous events).
    pub duration_ns: u64,
    /// Outcome tag; empty when the span had nothing to report.
    pub outcome: &'static str,
}

#[derive(Debug)]
struct TraceInner {
    trace_id: u128,
    started: Instant,
    start_unix_ms: u64,
    next_span: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A request-scoped tracing handle: clone-cheap (one `Arc`), `Sync` so
/// one request's context can cross the service's scoped worker threads,
/// and inert when disabled.
#[derive(Debug, Clone)]
pub struct TraceContext {
    inner: Option<Arc<TraceInner>>,
}

impl TraceContext {
    /// A context that records nothing; every operation is one branch.
    #[must_use]
    pub fn disabled() -> Self {
        TraceContext { inner: None }
    }

    /// A fresh recording context with a newly generated trace id.
    #[must_use]
    pub fn new() -> Self {
        TraceContext::with_trace_id(fresh_trace_id())
    }

    /// A recording context under an existing trace id (a forwarded hop
    /// adopting the ingress node's id).
    #[must_use]
    pub fn with_trace_id(trace_id: u128) -> Self {
        TraceContext {
            inner: Some(Arc::new(TraceInner {
                trace_id,
                started: Instant::now(),
                start_unix_ms: unix_ms(),
                next_span: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this context records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace id, or `None` when disabled.
    #[must_use]
    pub fn trace_id(&self) -> Option<u128> {
        self.inner.as_ref().map(|inner| inner.trace_id)
    }

    /// The trace id as the 32-hex-char wire form, or `None` when
    /// disabled.
    #[must_use]
    pub fn trace_id_hex(&self) -> Option<String> {
        self.trace_id().map(trace_id_hex)
    }

    /// Starts a named span; dropping the returned guard records it.
    #[must_use]
    pub fn span(&self, name: &'static str) -> Span {
        let start_ns = self
            .inner
            .as_ref()
            .map(|inner| inner.started.elapsed().as_nanos() as u64);
        Span {
            ctx: self.clone(),
            name,
            start_ns,
            started: Instant::now(),
            // A span that never tags itself completed normally.
            outcome: "ok",
        }
    }

    /// Records an instantaneous event (a cache hit, a journal append):
    /// a zero-duration span.
    pub fn event(&self, name: &'static str, outcome: &'static str) {
        if let Some(inner) = &self.inner {
            let start_ns = inner.started.elapsed().as_nanos() as u64;
            inner.record(name, start_ns, 0, outcome);
        }
    }

    /// Elapsed time since the trace began (zero when disabled).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.inner
            .as_ref()
            .map(|inner| inner.started.elapsed())
            .unwrap_or_default()
    }

    fn snapshot(&self) -> Option<(u128, u64, u64, Vec<SpanRecord>)> {
        let inner = self.inner.as_ref()?;
        let duration_ns = inner.started.elapsed().as_nanos() as u64;
        let spans = std::mem::take(&mut *inner.spans.lock().expect("trace spans poisoned"));
        Some((inner.trace_id, inner.start_unix_ms, duration_ns, spans))
    }
}

impl Default for TraceContext {
    fn default() -> Self {
        TraceContext::disabled()
    }
}

impl TraceInner {
    fn record(&self, name: &'static str, start_ns: u64, duration_ns: u64, outcome: &'static str) {
        let id = self.next_span.fetch_add(1, Ordering::Relaxed);
        let mut spans = self.spans.lock().expect("trace spans poisoned");
        // A runaway caller cannot grow one trace without bound.
        if spans.len() < MAX_SPANS_PER_TRACE {
            spans.push(SpanRecord {
                id,
                name,
                start_ns,
                duration_ns,
                outcome,
            });
        }
    }
}

/// Hard cap on spans per trace — a single pathological request (a huge
/// matrix) cannot balloon the ring buffer's memory.
const MAX_SPANS_PER_TRACE: usize = 256;

/// RAII span guard (see [`TraceContext::span`]): records on drop. Owned
/// (`Send`), so a span can travel into a worker-pool closure and close
/// there — that is exactly how queue-wait time is measured.
#[derive(Debug)]
pub struct Span {
    ctx: TraceContext,
    name: &'static str,
    /// Start offset, `None` when the context is disabled.
    start_ns: Option<u64>,
    started: Instant,
    outcome: &'static str,
}

impl Span {
    /// Tags the span's outcome (recorded at drop).
    pub fn set_outcome(&mut self, outcome: &'static str) {
        self.outcome = outcome;
    }

    /// Ends the span now (sugar for dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(inner), Some(start_ns)) = (&self.ctx.inner, self.start_ns) {
            let duration_ns = self.started.elapsed().as_nanos() as u64;
            inner.record(self.name, start_ns, duration_ns, self.outcome);
        }
    }
}

/// One completed request trace, as served by `GET /v1/debug/traces`.
#[derive(Debug, Clone)]
pub struct CompletedTrace {
    /// The 128-bit trace id (shared across cluster hops).
    pub trace_id: u128,
    /// Request method (`GET`, `POST`).
    pub method: String,
    /// Request path (query string stripped).
    pub path: String,
    /// Response status code.
    pub status: u16,
    /// Wall-clock start, milliseconds since the Unix epoch.
    pub start_unix_ms: u64,
    /// End-to-end duration in nanoseconds.
    pub duration_ns: u64,
    /// Whether this hop served a cluster-forwarded request (the remote
    /// side of a stitched trace).
    pub forwarded: bool,
    /// The span timeline, in recording order.
    pub spans: Vec<SpanRecord>,
}

/// Log verbosity of the per-request JSON log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// No request logging (traces and histograms still record).
    Off,
    /// Only 5xx responses.
    Error,
    /// 5xx, 4xx, and slow requests (past the slow threshold).
    Warn,
    /// Every request.
    Info,
}

impl LogLevel {
    /// Parses a CLI-style level name.
    ///
    /// # Errors
    /// Returns the unrecognized input.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(LogLevel::Off),
            "error" => Ok(LogLevel::Error),
            "warn" => Ok(LogLevel::Warn),
            "info" => Ok(LogLevel::Info),
            other => Err(format!(
                "unknown log level `{other}` (expected off|error|warn|info)"
            )),
        }
    }
}

/// Configuration of a [`Telemetry`] instance.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Completed traces retained across the ring's shards.
    pub capacity: usize,
    /// Lock shards in the trace ring.
    pub shards: usize,
    /// Request-log verbosity (stderr). [`LogLevel::Off`] by default:
    /// embedded and test servers stay silent; `xmem-cli listen` turns
    /// it on.
    pub log_level: LogLevel,
    /// Requests slower than this log at `warn` and are marked
    /// `"slow":true`. `0` disables slow marking.
    pub slow_ms: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            capacity: 256,
            shards: 8,
            log_level: LogLevel::Off,
            slow_ms: 0,
        }
    }
}

impl TelemetryConfig {
    /// Overrides the retained-trace capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Overrides the request-log level.
    #[must_use]
    pub fn with_log_level(mut self, level: LogLevel) -> Self {
        self.log_level = level;
        self
    }

    /// Overrides the slow-request threshold (milliseconds).
    #[must_use]
    pub fn with_slow_ms(mut self, slow_ms: u64) -> Self {
        self.slow_ms = slow_ms;
        self
    }
}

/// Histogram bounds for per-stage durations: 1µs to 10s. Stage work
/// spans sub-µs cache hits to multi-second cold sweeps, so the grid is
/// finer at the bottom than the HTTP request histogram's.
const STAGE_BUCKET_BOUNDS_NS: [u64; 12] = [
    1_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
];

#[derive(Debug)]
struct StageHistogram {
    buckets: [AtomicU64; STAGE_BUCKET_BOUNDS_NS.len()],
    over: AtomicU64,
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl StageHistogram {
    fn new() -> Self {
        StageHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            over: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe_ns(&self, ns: u64) {
        match STAGE_BUCKET_BOUNDS_NS.iter().position(|&bound| ns <= bound) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.over.fetch_add(1, Ordering::Relaxed),
        };
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct TelemetryInner {
    shards: Vec<Mutex<VecDeque<CompletedTrace>>>,
    per_shard_cap: usize,
    next_shard: AtomicUsize,
    histograms: Vec<StageHistogram>,
    log_level: LogLevel,
    slow_ms: u64,
}

/// The telemetry sink: trace ring, stage histograms, request log.
/// Clone-cheap; a disabled instance ([`Telemetry::disabled`]) records
/// nothing and serves empty surfaces.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl Telemetry {
    /// Creates an enabled telemetry sink.
    #[must_use]
    pub fn new(config: TelemetryConfig) -> Self {
        let shards = config.shards.max(1);
        let per_shard_cap = config.capacity.div_ceil(shards).max(1);
        Telemetry {
            inner: Some(Arc::new(TelemetryInner {
                shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
                per_shard_cap,
                next_shard: AtomicUsize::new(0),
                histograms: STAGE_NAMES.iter().map(|_| StageHistogram::new()).collect(),
                log_level: config.log_level,
                slow_ms: config.slow_ms,
            })),
        }
    }

    /// A sink that records nothing; [`begin_trace`](Self::begin_trace)
    /// hands out disabled contexts.
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this sink records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a trace for one request: adopts the trace id from a valid
    /// `x-xmem-trace-id` header value (a forwarded hop, or a
    /// tracing-aware client), otherwise generates a fresh one. Disabled
    /// sinks hand out disabled contexts.
    #[must_use]
    pub fn begin_trace(&self, header: Option<&str>) -> TraceContext {
        if self.inner.is_none() {
            return TraceContext::disabled();
        }
        match header.and_then(parse_trace_id) {
            Some(id) => TraceContext::with_trace_id(id),
            None => TraceContext::new(),
        }
    }

    /// Closes a trace: the span timeline lands in the ring buffer, the
    /// per-stage histograms absorb every span, and (level permitting)
    /// one JSON log line goes to stderr. A disabled context is a no-op.
    pub fn finish(
        &self,
        ctx: &TraceContext,
        method: &str,
        path: &str,
        status: u16,
        forwarded: bool,
    ) {
        let Some(inner) = &self.inner else { return };
        let Some((trace_id, start_unix_ms, duration_ns, spans)) = ctx.snapshot() else {
            return;
        };
        for span in &spans {
            let index = STAGE_NAMES
                .iter()
                .position(|&name| name == span.name)
                .unwrap_or(STAGE_NAMES.len() - 1);
            inner.histograms[index].observe_ns(span.duration_ns);
        }
        let trace = CompletedTrace {
            trace_id,
            method: method.to_string(),
            path: path.to_string(),
            status,
            start_unix_ms,
            duration_ns,
            forwarded,
            spans,
        };
        inner.log(&trace);
        let shard = inner.next_shard.fetch_add(1, Ordering::Relaxed) % inner.shards.len();
        let mut ring = inner.shards[shard].lock().expect("trace ring poisoned");
        if ring.len() >= inner.per_shard_cap {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// The most recent completed traces, newest first: at most `n`,
    /// filtered to those slower than `slow_ms` when given.
    #[must_use]
    pub fn recent_traces(&self, n: usize, slow_ms: Option<u64>) -> Vec<CompletedTrace> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut traces: Vec<CompletedTrace> = Vec::new();
        for shard in &inner.shards {
            let ring = shard.lock().expect("trace ring poisoned");
            traces.extend(ring.iter().cloned());
        }
        if let Some(slow_ms) = slow_ms {
            traces.retain(|t| t.duration_ns >= slow_ms.saturating_mul(1_000_000));
        }
        // Newest first; `start_unix_ms` ties broken by trace id so the
        // order is stable.
        traces.sort_by(|a, b| {
            b.start_unix_ms
                .cmp(&a.start_unix_ms)
                .then(b.trace_id.cmp(&a.trace_id))
        });
        traces.truncate(n);
        traces
    }

    /// Renders [`recent_traces`](Self::recent_traces) as the
    /// `/v1/debug/traces` JSON body.
    #[must_use]
    pub fn traces_json(&self, n: usize, slow_ms: Option<u64>) -> String {
        use serde::Value;
        let traces: Vec<Value> = self
            .recent_traces(n, slow_ms)
            .into_iter()
            .map(|trace| {
                let spans: Vec<Value> = trace
                    .spans
                    .iter()
                    .map(|span| {
                        Value::Object(vec![
                            ("id".to_string(), Value::U64(span.id)),
                            ("name".to_string(), Value::Str(span.name.to_string())),
                            ("start_ns".to_string(), Value::U64(span.start_ns)),
                            ("duration_ns".to_string(), Value::U64(span.duration_ns)),
                            ("outcome".to_string(), Value::Str(span.outcome.to_string())),
                        ])
                    })
                    .collect();
                Value::Object(vec![
                    (
                        "trace_id".to_string(),
                        Value::Str(trace_id_hex(trace.trace_id)),
                    ),
                    ("method".to_string(), Value::Str(trace.method)),
                    ("path".to_string(), Value::Str(trace.path)),
                    ("status".to_string(), Value::U64(u64::from(trace.status))),
                    ("start_unix_ms".to_string(), Value::U64(trace.start_unix_ms)),
                    ("duration_ns".to_string(), Value::U64(trace.duration_ns)),
                    ("forwarded".to_string(), Value::Bool(trace.forwarded)),
                    ("spans".to_string(), Value::Array(spans)),
                ])
            })
            .collect();
        let body = Value::Object(vec![("traces".to_string(), Value::Array(traces))]);
        serde_json::to_string(&body).expect("trace JSON renders")
    }

    /// Appends the `xmem_stage_duration_seconds` histogram family to a
    /// Prometheus exposition. Only stages that have recorded at least
    /// one span emit series; the HELP/TYPE header is emitted once.
    pub fn render_prometheus(&self, out: &mut String) {
        let Some(inner) = &self.inner else { return };
        out.push_str(
            "# HELP xmem_stage_duration_seconds Per-stage span durations from request traces.\n",
        );
        out.push_str("# TYPE xmem_stage_duration_seconds histogram\n");
        for (name, histogram) in STAGE_NAMES.iter().zip(&inner.histograms) {
            let count = histogram.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let mut cumulative = 0u64;
            for (&bound, bucket) in STAGE_BUCKET_BOUNDS_NS.iter().zip(&histogram.buckets) {
                cumulative += bucket.load(Ordering::Relaxed);
                out.push_str(&format!(
                    "xmem_stage_duration_seconds_bucket{{stage=\"{name}\",le=\"{}\"}} {cumulative}\n",
                    bound as f64 / 1e9
                ));
            }
            cumulative += histogram.over.load(Ordering::Relaxed);
            out.push_str(&format!(
                "xmem_stage_duration_seconds_bucket{{stage=\"{name}\",le=\"+Inf\"}} {cumulative}\n"
            ));
            out.push_str(&format!(
                "xmem_stage_duration_seconds_sum{{stage=\"{name}\"}} {}\n",
                histogram.sum_ns.load(Ordering::Relaxed) as f64 / 1e9
            ));
            out.push_str(&format!(
                "xmem_stage_duration_seconds_count{{stage=\"{name}\"}} {count}\n"
            ));
        }
    }
}

impl TelemetryInner {
    /// Emits the per-request JSON log line when the level says so.
    fn log(&self, trace: &CompletedTrace) {
        let duration_ms = trace.duration_ns as f64 / 1e6;
        let slow = self.slow_ms > 0 && trace.duration_ns >= self.slow_ms.saturating_mul(1_000_000);
        let level = if trace.status >= 500 {
            "error"
        } else if slow || trace.status >= 400 {
            "warn"
        } else {
            "info"
        };
        let emit = match self.log_level {
            LogLevel::Off => false,
            LogLevel::Error => level == "error",
            LogLevel::Warn => level != "info",
            LogLevel::Info => true,
        };
        if !emit {
            return;
        }
        use serde::Value;
        let mut entries = vec![
            ("ts_ms".to_string(), Value::U64(unix_ms())),
            ("level".to_string(), Value::Str(level.to_string())),
            (
                "trace_id".to_string(),
                Value::Str(trace_id_hex(trace.trace_id)),
            ),
            ("method".to_string(), Value::Str(trace.method.clone())),
            ("path".to_string(), Value::Str(trace.path.clone())),
            ("status".to_string(), Value::U64(u64::from(trace.status))),
            ("duration_ms".to_string(), Value::F64(duration_ms)),
            ("spans".to_string(), Value::U64(trace.spans.len() as u64)),
            ("forwarded".to_string(), Value::Bool(trace.forwarded)),
        ];
        if slow {
            entries.push(("slow".to_string(), Value::Bool(true)));
        }
        // One write call per line: concurrent workers' lines interleave
        // whole, never mid-record.
        eprintln!(
            "{}",
            serde_json::to_string(&Value::Object(entries)).expect("log line renders")
        );
    }
}

/// The wire form of a trace id: 32 lowercase hex chars.
#[must_use]
pub fn trace_id_hex(id: u128) -> String {
    format!("{id:032x}")
}

/// Parses the wire form back; `None` for anything malformed (wrong
/// length, non-hex, or the reserved all-zero id).
#[must_use]
pub fn parse_trace_id(s: &str) -> Option<u128> {
    if s.len() != 32 {
        return None;
    }
    let id = u128::from_str_radix(s, 16).ok()?;
    (id != 0).then_some(id)
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Generates a process-unique 128-bit trace id without a PRNG
/// dependency: a per-process random seed (`RandomState`) hashed over a
/// monotone counter and the wall clock.
fn fresh_trace_id() -> u128 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    static SEED: OnceLock<RandomState> = OnceLock::new();
    let seed = SEED.get_or_init(RandomState::new);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let clock = unix_ms();
    let mut high = seed.build_hasher();
    high.write_u64(n);
    high.write_u64(clock);
    high.write_u64(0x9e37_79b9_7f4a_7c15);
    let mut low = seed.build_hasher();
    low.write_u64(!n);
    low.write_u64(clock.rotate_left(17));
    low.write_u64(0xc2b2_ae3d_27d4_eb4f);
    let id = (u128::from(high.finish()) << 64) | u128::from(low.finish());
    if id == 0 {
        // The reserved id; vanishingly unlikely, but stay correct.
        1
    } else {
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_context_records_nothing_and_is_cheap() {
        let ctx = TraceContext::disabled();
        assert!(!ctx.is_enabled());
        assert!(ctx.trace_id().is_none());
        let mut span = ctx.span("stage.profile");
        span.set_outcome("hit");
        drop(span);
        ctx.event("cache.stage", "hit");
        // Nothing to snapshot.
        assert!(ctx.snapshot().is_none());
    }

    #[test]
    fn spans_and_events_land_in_the_completed_trace() {
        let telemetry = Telemetry::new(TelemetryConfig::default());
        let ctx = telemetry.begin_trace(None);
        ctx.event("cache.stage", "miss");
        {
            let mut span = ctx.span("stage.profile");
            std::thread::sleep(Duration::from_millis(2));
            span.set_outcome("ok");
        }
        telemetry.finish(&ctx, "POST", "/v1/estimate", 200, false);

        let traces = telemetry.recent_traces(10, None);
        assert_eq!(traces.len(), 1);
        let trace = &traces[0];
        assert_eq!(trace.method, "POST");
        assert_eq!(trace.path, "/v1/estimate");
        assert_eq!(trace.status, 200);
        assert!(!trace.forwarded);
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[0].name, "cache.stage");
        assert_eq!(trace.spans[0].outcome, "miss");
        assert_eq!(trace.spans[0].duration_ns, 0);
        assert_eq!(trace.spans[1].name, "stage.profile");
        assert!(trace.spans[1].duration_ns >= 2_000_000);
        assert!(trace.duration_ns >= trace.spans[1].duration_ns);
    }

    #[test]
    fn trace_ids_are_adopted_from_the_header_and_round_trip() {
        let telemetry = Telemetry::new(TelemetryConfig::default());
        let fresh = telemetry.begin_trace(None);
        let hex = fresh.trace_id_hex().expect("enabled context has an id");
        assert_eq!(hex.len(), 32);
        let adopted = telemetry.begin_trace(Some(&hex));
        assert_eq!(adopted.trace_id(), fresh.trace_id());
        // Malformed headers fall back to a fresh id.
        for bad in ["", "xyz", "1234", &"g".repeat(32)] {
            let ctx = telemetry.begin_trace(Some(bad));
            assert!(ctx.trace_id().is_some());
            assert_ne!(ctx.trace_id_hex().as_deref(), Some(bad));
        }
        assert_eq!(parse_trace_id(&trace_id_hex(42)), Some(42));
        assert_eq!(parse_trace_id(&"0".repeat(32)), None, "zero id reserved");
    }

    #[test]
    fn fresh_ids_are_distinct() {
        let a = TraceContext::new();
        let b = TraceContext::new();
        assert_ne!(a.trace_id(), b.trace_id());
    }

    #[test]
    fn ring_buffer_is_bounded_and_slow_filter_applies() {
        let telemetry = Telemetry::new(TelemetryConfig::default().with_capacity(8));
        for i in 0..50u16 {
            let ctx = telemetry.begin_trace(None);
            ctx.event("cache.stage", "hit");
            telemetry.finish(&ctx, "GET", "/healthz", 200 + i % 2, false);
        }
        let traces = telemetry.recent_traces(100, None);
        assert!(
            traces.len() <= 8,
            "ring must stay bounded: {}",
            traces.len()
        );
        // Everything here completed in well under a minute.
        assert!(telemetry.recent_traces(100, Some(60_000)).is_empty());
        assert_eq!(telemetry.recent_traces(2, None).len(), 2, "last-N caps");
    }

    #[test]
    fn traces_json_shape_is_stable() {
        let telemetry = Telemetry::new(TelemetryConfig::default());
        let ctx = telemetry.begin_trace(None);
        ctx.event("cache.sim", "hit");
        telemetry.finish(&ctx, "POST", "/v1/estimate", 200, true);
        let json = telemetry.traces_json(10, None);
        for needle in [
            "\"traces\":[",
            "\"trace_id\":\"",
            "\"method\":\"POST\"",
            "\"path\":\"/v1/estimate\"",
            "\"status\":200",
            "\"forwarded\":true",
            "\"spans\":[",
            "\"name\":\"cache.sim\"",
            "\"outcome\":\"hit\"",
        ] {
            assert!(json.contains(needle), "missing `{needle}` in {json}");
        }
    }

    #[test]
    fn stage_histograms_render_only_recorded_stages() {
        let telemetry = Telemetry::new(TelemetryConfig::default());
        let ctx = telemetry.begin_trace(None);
        ctx.span("stage.profile").finish();
        telemetry.finish(&ctx, "POST", "/v1/estimate", 200, false);
        let mut out = String::new();
        telemetry.render_prometheus(&mut out);
        assert_eq!(
            out.matches("# TYPE xmem_stage_duration_seconds histogram")
                .count(),
            1
        );
        assert!(out.contains("xmem_stage_duration_seconds_count{stage=\"stage.profile\"} 1"));
        assert!(out.contains("le=\"+Inf\"}"));
        assert!(
            !out.contains("stage=\"sim.replay\""),
            "unrecorded stages must not emit series"
        );
    }

    #[test]
    fn span_cap_bounds_a_pathological_trace() {
        let ctx = TraceContext::new();
        for _ in 0..(MAX_SPANS_PER_TRACE + 50) {
            ctx.event("cache.stage", "hit");
        }
        let (_, _, _, spans) = ctx.snapshot().expect("enabled context snapshots");
        assert_eq!(spans.len(), MAX_SPANS_PER_TRACE);
    }

    #[test]
    fn disabled_telemetry_serves_empty_surfaces() {
        let telemetry = Telemetry::disabled();
        let ctx = telemetry.begin_trace(Some(&trace_id_hex(7)));
        assert!(!ctx.is_enabled());
        telemetry.finish(&ctx, "GET", "/healthz", 200, false);
        assert!(telemetry.recent_traces(10, None).is_empty());
        assert_eq!(telemetry.traces_json(10, None), "{\"traces\":[]}");
        let mut out = String::new();
        telemetry.render_prometheus(&mut out);
        assert!(out.is_empty());
    }
}
