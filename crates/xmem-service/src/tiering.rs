//! Adaptive tiering machinery for [`ShardedLruCache`]: a TinyLFU-style
//! frequency sketch, bounded ghost lists, and a hill-climbing tuner that
//! learns the probation/protected split online.
//!
//! [`ShardedLruCache`]: crate::ShardedLruCache
//!
//! Production estimator traffic is skewed and shifting — schedulers
//! re-ask about the same few model/optimizer families far more often
//! than the long tail. A hand-picked `protected_frac` serves one shape
//! of that skew; this module makes every cache tier learn it instead:
//!
//! - [`FrequencySketch`] — a 4-bit count-min sketch (a few KiB per
//!   shard) estimating per-key access frequency, halved periodically so
//!   stale popularity decays. On a full shard, a new key is admitted
//!   only when its estimated frequency **strictly exceeds** the eviction
//!   victim's, so one-shot scan keys can no longer displace residents.
//! - [`GhostList`] — a bounded, key-hash-only history of recent
//!   evictions, one per segment. A miss that hits a ghost means the
//!   entry would have survived had its segment been bigger; the two
//!   lists' hit counters tell the tuner which segment is undersized.
//! - [`TierTuner`] — shifts the protected fraction in small
//!   hill-climbing steps (integer permille, hard floor/ceiling) once
//!   per fixed-size access window, driven by the ghost-hit imbalance.
//!   All state is integral and updated only by cache operations, so the
//!   learned split is **deterministic given the access sequence**.
//!
//! The cache applies the learned fraction with smoothed transitions —
//! at most one protected→probation demotion per operation — so a tuner
//! step never causes a demotion storm.

use std::collections::HashMap;

/// Hard floor on the learned protected fraction (permille): the tuner
/// never starves probation below 12.5% of a shard.
pub(crate) const FRAC_FLOOR_PERMILLE: u32 = 125;
/// Hard ceiling on the learned protected fraction (permille).
pub(crate) const FRAC_CEIL_PERMILLE: u32 = 875;
/// How far one tuner step moves the protected fraction (permille).
pub(crate) const TUNER_STEP_PERMILLE: u32 = 25;
/// Accesses per tuner decision window (per shard).
pub(crate) const TUNER_WINDOW: u32 = 64;
/// Sketch estimate at or above which a re-surfacing probation evictee
/// counts as *hot* — evidence the protected share (not probation) was
/// too small to keep it. Three observations within one decay epoch
/// separates repeat customers from tail keys that merely came back once
/// (whose estimate is at most 2: the original access plus the
/// ghost-hitting miss itself).
pub(crate) const HOT_GHOST_ESTIMATE: u32 = 3;

/// How a [`ShardedLruCache`](crate::ShardedLruCache) manages its
/// probation/protected split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TieringMode {
    /// Plain LRU: no segments, no admission gate, no tuner.
    Off,
    /// Classic SLRU at a pinned protected fraction (clamped to
    /// `[0.0, 1.0]`), exactly the PR 5 opt-in behavior.
    Static(f64),
    /// Self-tuning SLRU: frequency-sketch admission, ghost lists, and a
    /// hill-climbing tuner that learns the split online, starting from
    /// `initial_frac`. The service default.
    Adaptive {
        /// Protected fraction the tuner starts from (clamped to the
        /// tuner's floor/ceiling).
        initial_frac: f64,
    },
}

impl TieringMode {
    /// The default adaptive mode: tuning enabled, starting half/half.
    #[must_use]
    pub const fn adaptive() -> Self {
        TieringMode::Adaptive { initial_frac: 0.5 }
    }
}

impl Default for TieringMode {
    fn default() -> Self {
        TieringMode::adaptive()
    }
}

/// Converts a protected fraction to integer permille. When `clamp_to_band`
/// is set (live tuning) the result is confined to the tuner's operating
/// band; otherwise only to `[0, 1000]` (frozen tiering must reproduce any
/// pinned fraction exactly).
pub(crate) fn permille_from_frac(frac: f64, clamp_to_band: bool) -> u32 {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let permille = (frac.clamp(0.0, 1.0) * 1000.0).round() as u32;
    if clamp_to_band {
        permille.clamp(FRAC_FLOOR_PERMILLE, FRAC_CEIL_PERMILLE)
    } else {
        permille
    }
}

/// The protected-entry cap a permille fraction yields for a shard
/// `capacity`. Integer round-half-up — identical to
/// `(capacity as f64 * frac).round()` whenever `frac` is an exact
/// permille, which keeps frozen-adaptive shards bit-compatible with the
/// float-configured static path.
pub(crate) fn cap_from_permille(capacity: usize, permille: u32) -> usize {
    let cap = (capacity as u64 * u64::from(permille) + 500) / 1000;
    #[allow(clippy::cast_possible_truncation)]
    (cap as usize).min(capacity)
}

/// Finalizer-quality 64→64 bit mixer (splitmix64's), used to derive the
/// sketch's four row hashes from one key hash.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A TinyLFU-style 4-bit count-min sketch with periodic halving decay.
///
/// Sixteen 4-bit counters pack into each `u64` word; every recorded
/// access bumps four counters (one per derived hash), and an estimate is
/// the minimum of the four. Once the number of recorded accesses reaches
/// the sample size (~8× the shard's entry capacity), every counter is
/// halved — recent popularity dominates, stale popularity decays. A few
/// KiB per shard at the default capacities.
#[derive(Debug)]
pub(crate) struct FrequencySketch {
    table: Vec<u64>,
    /// `table.len() - 1`; the table length is a power of two.
    mask: u64,
    /// Accesses recorded since the last halving.
    additions: u32,
    /// Halving threshold.
    sample: u32,
    /// Completed halvings (the decay epoch; persisted).
    resets: u64,
}

impl FrequencySketch {
    /// A sketch sized for a shard holding `capacity` entries.
    pub(crate) fn new(capacity: usize) -> Self {
        // ~8 counters per cacheable entry, at least 512, power of two.
        let counters = (capacity.max(64) * 8).next_power_of_two();
        let words = (counters / 16).max(1);
        // Halve every ~16 accesses per cacheable entry. Shards here are
        // small (tens of entries), so a literature-typical 8-10× sample
        // would decay faster than skewed traffic re-references its warm
        // keys — evicted-but-warm keys would read cold by the time they
        // ghost-hit, and the tuner would learn from inverted signals.
        #[allow(clippy::cast_possible_truncation)]
        let sample = (capacity.max(64) * 16) as u32;
        FrequencySketch {
            table: vec![0; words],
            mask: (words - 1) as u64,
            additions: 0,
            sample,
            resets: 0,
        }
    }

    /// The four (word, nibble-shift) counter slots for `hash`.
    fn slots(&self, hash: u64) -> [(usize, u32); 4] {
        let mut out = [(0usize, 0u32); 4];
        let mut h = hash;
        for slot in &mut out {
            h = mix64(h.wrapping_add(0x9e37_79b9_7f4a_7c15));
            #[allow(clippy::cast_possible_truncation)]
            let word = (h & self.mask) as usize;
            let nibble = ((h >> 32) & 15) as u32;
            *slot = (word, nibble * 4);
        }
        out
    }

    /// Records one access to `hash`. Returns `true` when the addition
    /// triggered a halving decay (a sketch reset).
    pub(crate) fn increment(&mut self, hash: u64) -> bool {
        for (word, shift) in self.slots(hash) {
            let counter = (self.table[word] >> shift) & 15;
            if counter < 15 {
                self.table[word] += 1u64 << shift;
            }
        }
        self.additions += 1;
        if self.additions >= self.sample {
            self.halve();
            return true;
        }
        false
    }

    /// Estimated access frequency of `hash` (saturates at 15).
    pub(crate) fn estimate(&self, hash: u64) -> u8 {
        let mut min = 15u64;
        for (word, shift) in self.slots(hash) {
            min = min.min((self.table[word] >> shift) & 15);
        }
        #[allow(clippy::cast_possible_truncation)]
        {
            min as u8
        }
    }

    /// Halves every counter (the periodic decay) and advances the epoch.
    fn halve(&mut self) {
        for word in &mut self.table {
            *word = (*word >> 1) & 0x7777_7777_7777_7777;
        }
        self.additions /= 2;
        self.resets += 1;
    }

    /// Completed halvings since creation (monotonic; persisted so warm
    /// boots do not restart the decay clock from zero).
    pub(crate) fn epoch(&self) -> u64 {
        self.resets
    }

    /// Restores the decay epoch from a persisted snapshot (kept
    /// monotonic: an older record never rolls the epoch back).
    pub(crate) fn restore_epoch(&mut self, epoch: u64) {
        self.resets = self.resets.max(epoch);
    }
}

/// Sentinel index terminating a ghost list's intrusive links.
const GHOST_NIL: u32 = u32::MAX;

/// A bounded, key-hash-only LRU history of recent evictions — the same
/// slab/index-linked discipline as the cache's recency lists, so every
/// operation is O(1). Stores no keys or values: 16 bytes per remembered
/// eviction.
#[derive(Debug, Default)]
pub(crate) struct GhostList {
    map: HashMap<u64, u32>,
    /// `(key hash, prev, next)` slots; freed slots are recycled.
    slots: Vec<(u64, u32, u32)>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    cap: usize,
}

impl GhostList {
    pub(crate) fn new(cap: usize) -> Self {
        GhostList {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: GHOST_NIL,
            tail: GHOST_NIL,
            cap: cap.max(8),
        }
    }

    fn unlink(&mut self, index: u32) {
        let (_, prev, next) = self.slots[index as usize];
        if prev == GHOST_NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].2 = next;
        }
        if next == GHOST_NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].1 = prev;
        }
    }

    fn push_front(&mut self, index: u32) {
        let old_head = self.head;
        {
            let slot = &mut self.slots[index as usize];
            slot.1 = GHOST_NIL;
            slot.2 = old_head;
        }
        if old_head != GHOST_NIL {
            self.slots[old_head as usize].1 = index;
        }
        self.head = index;
        if self.tail == GHOST_NIL {
            self.tail = index;
        }
    }

    /// Remembers an evicted key hash (refreshing it if already present),
    /// forgetting the oldest ghost beyond the bound.
    pub(crate) fn record(&mut self, hash: u64) {
        if let Some(&index) = self.map.get(&hash) {
            if self.head != index {
                self.unlink(index);
                self.push_front(index);
            }
            return;
        }
        let index = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = (hash, GHOST_NIL, GHOST_NIL);
                slot
            }
            None => {
                self.slots.push((hash, GHOST_NIL, GHOST_NIL));
                #[allow(clippy::cast_possible_truncation)]
                {
                    (self.slots.len() - 1) as u32
                }
            }
        };
        self.map.insert(hash, index);
        self.push_front(index);
        if self.map.len() > self.cap {
            let victim = self.tail;
            self.unlink(victim);
            let hash = self.slots[victim as usize].0;
            self.map.remove(&hash);
            self.free.push(victim);
        }
    }

    /// Consumes a ghost hit: removes `hash` from the history and reports
    /// whether it was remembered.
    pub(crate) fn take(&mut self, hash: u64) -> bool {
        let Some(index) = self.map.remove(&hash) else {
            return false;
        };
        self.unlink(index);
        self.free.push(index);
        true
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }
}

/// The hill-climbing tuner: one decision per [`TUNER_WINDOW`] accesses,
/// moving the protected fraction one [`TUNER_STEP_PERMILLE`] toward the
/// segment whose ghosts were hit *more valuably* this window. Each ghost
/// hit is weighted by the key's frequency-sketch estimate: losing a key
/// the sketch still rates hot costs many future hits, while one-hit tail
/// churn re-surfacing in the probation history is worth a single hit —
/// raw counts would let that churn (which every skewed workload produces
/// in bulk) out-vote the few, far more valuable, evicted-hot-key
/// signals. Integral state only — deterministic given the access
/// sequence.
#[derive(Debug)]
pub(crate) struct TierTuner {
    permille: u32,
    window_len: u32,
    probation_ghost_hits: u32,
    protected_ghost_hits: u32,
}

impl TierTuner {
    pub(crate) fn new(permille: u32) -> Self {
        TierTuner {
            permille,
            window_len: 0,
            probation_ghost_hits: 0,
            protected_ghost_hits: 0,
        }
    }

    /// The current learned protected fraction in permille.
    pub(crate) fn permille(&self) -> u32 {
        self.permille
    }

    /// Overwrites the learned fraction (persistence restore). The band
    /// clamp applies so a restored value can never escape the operating
    /// floor/ceiling.
    pub(crate) fn restore_permille(&mut self, permille: u32) {
        self.permille = permille.clamp(FRAC_FLOOR_PERMILLE, FRAC_CEIL_PERMILLE);
    }

    /// Records a ghost hit on the protected (`true`) or probation
    /// (`false`) history for this window, weighted by the key's
    /// frequency-sketch estimate (callers pass at least 1).
    pub(crate) fn note_ghost(&mut self, protected: bool, weight: u32) {
        if protected {
            self.protected_ghost_hits += weight;
        } else {
            self.probation_ghost_hits += weight;
        }
    }

    /// Ticks the access window; at each boundary, steps the fraction
    /// toward the needier segment (ties, including the quiet 0/0 window,
    /// hold position). Returns whether a step was taken.
    pub(crate) fn on_access(&mut self) -> bool {
        self.window_len += 1;
        if self.window_len < TUNER_WINDOW {
            return false;
        }
        self.window_len = 0;
        let (protected, probation) = (self.protected_ghost_hits, self.probation_ghost_hits);
        self.protected_ghost_hits = 0;
        self.probation_ghost_hits = 0;
        if protected > probation {
            // Re-referenced protected evictees: protected is undersized.
            let next = (self.permille + TUNER_STEP_PERMILLE).min(FRAC_CEIL_PERMILLE);
            if next != self.permille {
                self.permille = next;
                return true;
            }
        } else if probation > protected {
            let next = self
                .permille
                .saturating_sub(TUNER_STEP_PERMILLE)
                .max(FRAC_FLOOR_PERMILLE);
            if next != self.permille {
                self.permille = next;
                return true;
            }
        }
        false
    }
}

/// Per-shard adaptive state, boxed into the shard behind its mutex.
/// `active == false` is the frozen (tuning-disabled) flavor used by
/// bit-compat tests: segment caps come from the permille machinery but
/// the sketch gate, ghosts, tuner, and byte split are all inert.
#[derive(Debug)]
pub(crate) struct TierState {
    pub(crate) sketch: FrequencySketch,
    /// Eviction histories, indexed like the segments: `[probation,
    /// protected]`. Victims file under the segment that *shaped* them —
    /// an entry that was ever promoted records as a protected ghost even
    /// if it was demoted before eviction, since its re-reference means
    /// the protected share was too small to keep it.
    pub(crate) ghosts: [GhostList; 2],
    pub(crate) tuner: TierTuner,
    /// Entry cap on the protected segment (derived from the permille).
    pub(crate) protected_cap: usize,
    /// Sum of protected residents' costs (mirrors the shard's byte
    /// gauge, restricted to the protected list).
    pub(crate) protected_bytes: u64,
    /// The shard's entry-capacity slice.
    capacity: usize,
    /// The shard's bytes-budget slice, when one is configured.
    budget: Option<u64>,
    /// Whether tuning (sketch gate, ghosts, tuner, byte split) is live.
    pub(crate) active: bool,
}

impl TierState {
    pub(crate) fn new(capacity: usize, budget: Option<u64>, permille: u32, active: bool) -> Self {
        TierState {
            sketch: FrequencySketch::new(capacity),
            ghosts: [GhostList::new(capacity), GhostList::new(capacity)],
            tuner: TierTuner::new(permille),
            protected_cap: cap_from_permille(capacity, permille),
            protected_bytes: 0,
            capacity,
            budget,
            active,
        }
    }

    /// Installs (or re-slices) the shard's bytes-budget share.
    pub(crate) fn set_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
    }

    /// Re-derives the protected entry cap after a permille change.
    pub(crate) fn recompute_cap(&mut self) {
        self.protected_cap = cap_from_permille(self.capacity, self.tuner.permille());
    }

    /// The protected segment's byte share under the learned fraction,
    /// when a bytes budget is configured.
    pub(crate) fn protected_byte_share(&self) -> Option<u64> {
        self.budget.map(|b| {
            b / 1000 * u64::from(self.tuner.permille())
                + b % 1000 * u64::from(self.tuner.permille()) / 1000
        })
    }

    /// Consumes a ghost hit for `hash` on a miss and votes for the
    /// segment whose growth would have kept the key. Returns whether a
    /// ghost was hit.
    ///
    /// The vote routes by *evidence*, not only by which history matched:
    /// a protected evictee always argues for more protected space, but a
    /// probation evictee the sketch still rates hot (estimate ≥
    /// [`HOT_GHOST_ESTIMATE`]) does too — it was on its way to promotion
    /// and churned out of probation before earning it, so growing
    /// probation at protected's expense would not have saved it. Only
    /// cold re-references vote for more recency (probation) room. This
    /// matters because SLRU promotion dynamics invert the classic ARC
    /// reading of a probation ghost under frequency-skewed traffic:
    /// the keys a bigger protected segment would serve are exactly the
    /// hot ones that keep dying in probation.
    pub(crate) fn ghost_hit(&mut self, hash: u64) -> bool {
        let estimate = u32::from(self.sketch.estimate(hash));
        let weight = estimate.max(1);
        if self.ghosts[1].take(hash) {
            self.tuner.note_ghost(true, weight);
            true
        } else if self.ghosts[0].take(hash) {
            self.tuner
                .note_ghost(estimate >= HOT_GHOST_ESTIMATE, weight);
            true
        } else {
            false
        }
    }

    /// Restores persisted learned state: the fraction (band-clamped) and
    /// the sketch decay epoch.
    pub(crate) fn restore(&mut self, frac_permille: u32, decay_epoch: u64) {
        self.tuner.restore_permille(frac_permille);
        self.recompute_cap();
        self.sketch.restore_epoch(decay_epoch);
    }
}

/// A point-in-time gauge snapshot of one cache's tier geometry and
/// occupancy, aggregated over its shards — the `/metrics`
/// `xmem_cache_*` gauge source.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Whether any probation/protected split is configured (static or
    /// adaptive).
    pub segmented: bool,
    /// Whether the split is adaptively tuned.
    pub adaptive: bool,
    /// Resident entries.
    pub entries: u64,
    /// Resident entries in the probation segment (all of them for a
    /// plain LRU).
    pub probation_entries: u64,
    /// Resident entries in the protected segment.
    pub protected_entries: u64,
    /// Configured entry capacity.
    pub capacity: u64,
    /// Entry cap on the protected segment (summed over shards; live
    /// learned value under adaptive tiering).
    pub protected_cap: u64,
    /// Sum of resident entry costs, as priced by the weigher.
    pub bytes_in_use: u64,
    /// Configured bytes budget; 0 means unbudgeted.
    pub bytes_budget: u64,
    /// The protected fraction in permille — live learned value under
    /// adaptive tiering, the configured ratio under static segmentation,
    /// 0 when tiering is off.
    pub protected_frac_permille: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_counts_and_estimates() {
        let mut sketch = FrequencySketch::new(64);
        assert_eq!(sketch.estimate(42), 0);
        for _ in 0..5 {
            sketch.increment(42);
        }
        assert_eq!(sketch.estimate(42), 5);
        // Saturates at 15.
        for _ in 0..100 {
            sketch.increment(42);
        }
        assert_eq!(sketch.estimate(42), 15);
    }

    #[test]
    fn sketch_halving_decays_counters_and_advances_epoch() {
        let mut sketch = FrequencySketch::new(64);
        let sample = sketch.sample;
        let mut resets = 0;
        for _ in 0..sample {
            if sketch.increment(7) {
                resets += 1;
            }
        }
        assert_eq!(resets, 1, "one decay per sample period");
        assert_eq!(sketch.epoch(), 1);
        assert_eq!(sketch.estimate(7), 7, "15 halves to 7");
    }

    #[test]
    fn sketch_epoch_restore_is_monotonic() {
        let mut sketch = FrequencySketch::new(64);
        sketch.restore_epoch(5);
        assert_eq!(sketch.epoch(), 5);
        sketch.restore_epoch(3);
        assert_eq!(sketch.epoch(), 5, "restore never rolls back");
    }

    #[test]
    fn ghost_list_remembers_bounded_history_in_order() {
        let mut ghosts = GhostList::new(8);
        for hash in 0..20u64 {
            ghosts.record(hash);
        }
        assert_eq!(ghosts.len(), 8);
        assert!(!ghosts.take(0), "oldest ghosts forgotten");
        assert!(ghosts.take(19));
        assert!(!ghosts.take(19), "a ghost hit is consumed");
        assert_eq!(ghosts.len(), 7);
    }

    #[test]
    fn ghost_list_refreshes_duplicates_instead_of_double_counting() {
        let mut ghosts = GhostList::new(8); // 8 is also the floored minimum
        ghosts.record(1);
        ghosts.record(2);
        ghosts.record(1); // refresh: 1 is now MRU
        for key in 3..=9 {
            ghosts.record(key); // the 9th distinct key evicts 2 (the LRU), not 1
        }
        assert!(ghosts.take(1));
        assert!(!ghosts.take(2));
    }

    #[test]
    fn tuner_steps_toward_the_needier_segment_and_respects_the_band() {
        let mut tuner = TierTuner::new(500);
        // Protected ghosts dominate: fraction climbs one step per window.
        tuner.note_ghost(true, 1);
        for _ in 0..TUNER_WINDOW - 1 {
            assert!(!tuner.on_access());
        }
        assert!(tuner.on_access(), "window boundary steps");
        assert_eq!(tuner.permille(), 500 + TUNER_STEP_PERMILLE);
        // Quiet windows hold position.
        for _ in 0..TUNER_WINDOW {
            tuner.on_access();
        }
        assert_eq!(tuner.permille(), 500 + TUNER_STEP_PERMILLE);
        // Probation ghosts walk it down to the floor, never past it.
        for _ in 0..200 {
            tuner.note_ghost(false, 1);
            for _ in 0..TUNER_WINDOW {
                tuner.on_access();
            }
        }
        assert_eq!(tuner.permille(), FRAC_FLOOR_PERMILLE);
        // And the ceiling caps the climb.
        for _ in 0..200 {
            tuner.note_ghost(true, 1);
            for _ in 0..TUNER_WINDOW {
                tuner.on_access();
            }
        }
        assert_eq!(tuner.permille(), FRAC_CEIL_PERMILLE);
    }

    #[test]
    fn cap_from_permille_matches_float_rounding_on_eighths() {
        for capacity in [1usize, 2, 3, 4, 7, 16, 100, 257] {
            for eighths in 0..=8u32 {
                let frac = f64::from(eighths) / 8.0;
                let permille = permille_from_frac(frac, false);
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                #[allow(clippy::cast_precision_loss)]
                let float_cap = ((capacity as f64 * frac).round() as usize).min(capacity);
                assert_eq!(
                    cap_from_permille(capacity, permille),
                    float_cap,
                    "capacity {capacity} frac {frac}"
                );
            }
        }
    }

    #[test]
    fn byte_share_is_exact_for_round_budgets_and_never_overflows() {
        let state = TierState::new(16, Some(1000), 500, true);
        assert_eq!(state.protected_byte_share(), Some(500));
        let state = TierState::new(16, Some(12_345), 250, true);
        assert_eq!(state.protected_byte_share(), Some(12_345 * 250 / 1000));
        // Huge budgets must not overflow the share computation.
        let state = TierState::new(16, Some(u64::MAX / 2), 875, true);
        assert!(state.protected_byte_share().unwrap() < u64::MAX / 2);
    }
}
