//! Named device configurations for the multi-device front end.
//!
//! A per-cluster estimation service answers matrix and placement queries
//! over *named* simulation targets: the scheduler asks about `"rtx3060"`
//! or `"a100"`, not about raw capacity numbers. The [`DeviceRegistry`]
//! owns that name → [`GpuDevice`] mapping. It is thread-safe (`&self`
//! registration) so a running service can learn about new device types
//! without restarting, and it can be populated from a JSON file — the
//! deployment shape of one service instance per cluster, configured with
//! that cluster's device fleet.

use serde::Deserialize;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::RwLock;
use xmem_core::EstimateError;
use xmem_runtime::GpuDevice;

const MIB: u64 = 1 << 20;

/// A thread-safe, name-keyed registry of simulation target devices.
///
/// Names are registry keys (`"rtx3060"`), distinct from the device's
/// marketing name (`"GeForce RTX 3060"`). Iteration orders are
/// deterministic (sorted by name), so placement tie-breaks and matrix
/// column orders are stable.
///
/// # Example
///
/// ```
/// use xmem_service::DeviceRegistry;
/// use xmem_runtime::GpuDevice;
///
/// let registry = DeviceRegistry::builtin();
/// assert!(registry.get("rtx3060").is_some());
/// registry.register("lab-a100", GpuDevice::a100_40g());
/// assert_eq!(registry.len(), 4);
/// ```
#[derive(Debug)]
pub struct DeviceRegistry {
    devices: RwLock<BTreeMap<String, GpuDevice>>,
}

impl Clone for DeviceRegistry {
    fn clone(&self) -> Self {
        DeviceRegistry {
            devices: RwLock::new(self.read().clone()),
        }
    }
}

impl Default for DeviceRegistry {
    /// The built-in evaluation devices ([`DeviceRegistry::builtin`]).
    fn default() -> Self {
        DeviceRegistry::builtin()
    }
}

impl DeviceRegistry {
    /// An empty registry.
    #[must_use]
    pub fn empty() -> Self {
        DeviceRegistry {
            devices: RwLock::new(BTreeMap::new()),
        }
    }

    /// The paper's evaluation devices under their CLI names:
    /// `rtx3060`, `rtx4060`, `a100`.
    #[must_use]
    pub fn builtin() -> Self {
        let registry = DeviceRegistry::empty();
        registry.register("rtx3060", GpuDevice::rtx3060());
        registry.register("rtx4060", GpuDevice::rtx4060());
        registry.register("a100", GpuDevice::a100_40g());
        registry
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, GpuDevice>> {
        self.devices.read().expect("device registry poisoned")
    }

    /// Registers (or replaces) `device` under `name`, returning the
    /// previous configuration for that name, if any.
    ///
    /// When replacing a device that an [`EstimationService`] simulates
    /// against, prefer [`EstimationService::register_device`] — it also
    /// retires the old configuration's cached simulation results.
    ///
    /// [`EstimationService`]: crate::EstimationService
    /// [`EstimationService::register_device`]: crate::EstimationService::register_device
    pub fn register(&self, name: impl Into<String>, device: GpuDevice) -> Option<GpuDevice> {
        self.devices
            .write()
            .expect("device registry poisoned")
            .insert(name.into(), device)
    }

    /// The device registered under `name`.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<GpuDevice> {
        self.read().get(name).copied()
    }

    /// Resolves every name in `names` to its device, in input order.
    ///
    /// # Errors
    /// [`EstimateError::UnknownDevice`] naming the first unresolvable
    /// entry.
    pub fn resolve(&self, names: &[&str]) -> Result<Vec<GpuDevice>, EstimateError> {
        let devices = self.read();
        names
            .iter()
            .map(|&name| {
                devices
                    .get(name)
                    .copied()
                    .ok_or_else(|| EstimateError::UnknownDevice(name.to_string()))
            })
            .collect()
    }

    /// All registered names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.read().keys().cloned().collect()
    }

    /// All `(name, device)` pairs, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, GpuDevice)> {
        self.read().iter().map(|(n, d)| (n.clone(), *d)).collect()
    }

    /// Number of registered devices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// Whether the registry has no devices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// Parses a registry file and registers every device in it on top of
    /// the current contents (same-name entries are replaced). Returns the
    /// number of devices read.
    ///
    /// The format is a JSON object with a `devices` array; sizes are in
    /// MiB, `framework_mib` defaults to 512 and `init_mib` to 0:
    ///
    /// ```json
    /// {
    ///   "devices": [
    ///     {"name": "tiny-l4", "capacity_mib": 6144, "framework_mib": 540},
    ///     {"name": "rtx3060", "capacity_mib": 12288, "framework_mib": 529}
    ///   ]
    /// }
    /// ```
    ///
    /// # Errors
    /// [`RegistryParseError`] for malformed JSON, a missing/empty
    /// `devices` array, or a device whose capacity does not exceed its
    /// framework + tenant overheads.
    pub fn extend_from_json_str(&self, json: &str) -> Result<usize, RegistryParseError> {
        let raw: RawRegistry = serde_json::from_str(json)
            .map_err(|e| RegistryParseError(format!("invalid registry json: {e}")))?;
        if raw.devices.is_empty() {
            return Err(RegistryParseError(
                "registry file lists no devices".to_string(),
            ));
        }
        let parsed: Vec<(String, GpuDevice)> = raw
            .devices
            .into_iter()
            .map(RawDevice::into_device)
            .collect::<Result<_, _>>()?;
        let count = parsed.len();
        for (name, device) in parsed {
            self.register(name, device);
        }
        Ok(count)
    }

    /// A fresh registry parsed from a registry file (see
    /// [`extend_from_json_str`](Self::extend_from_json_str) for the
    /// format).
    ///
    /// # Errors
    /// [`RegistryParseError`] as for `extend_from_json_str`.
    pub fn from_json_str(json: &str) -> Result<Self, RegistryParseError> {
        let registry = DeviceRegistry::empty();
        registry.extend_from_json_str(json)?;
        Ok(registry)
    }
}

/// Failure to parse a device-registry file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryParseError(String);

impl fmt::Display for RegistryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for RegistryParseError {}

#[derive(Deserialize)]
struct RawRegistry {
    devices: Vec<RawDevice>,
}

#[derive(Deserialize)]
struct RawDevice {
    name: String,
    capacity_mib: u64,
    #[serde(default)]
    framework_mib: Option<u64>,
    #[serde(default)]
    init_mib: Option<u64>,
}

impl RawDevice {
    fn into_device(self) -> Result<(String, GpuDevice), RegistryParseError> {
        let framework_mib = self.framework_mib.unwrap_or(512);
        let init_mib = self.init_mib.unwrap_or(0);
        // Checked arithmetic end to end: registry files are untrusted
        // input, and a wrapped multiplication would silently register a
        // device with the wrong capacity.
        let oversized = |field: &str| {
            RegistryParseError(format!(
                "device `{}`: {field} does not fit in bytes (u64 overflow)",
                self.name
            ))
        };
        let capacity = self
            .capacity_mib
            .checked_mul(MIB)
            .ok_or_else(|| oversized("capacity_mib"))?;
        let framework_bytes = framework_mib
            .checked_mul(MIB)
            .ok_or_else(|| oversized("framework_mib"))?;
        let init_bytes = init_mib
            .checked_mul(MIB)
            .ok_or_else(|| oversized("init_mib"))?;
        let overhead = framework_bytes
            .checked_add(init_bytes)
            .ok_or_else(|| oversized("framework_mib + init_mib"))?;
        if capacity <= overhead {
            return Err(RegistryParseError(format!(
                "device `{}`: capacity_mib ({}) must exceed framework_mib + init_mib ({})",
                self.name,
                self.capacity_mib,
                framework_mib + init_mib
            )));
        }
        // `GpuDevice::name` is a `&'static str` (the builtin devices carry
        // literal marketing names); registry-file names are interned, so
        // the footprint is bounded by the set of *distinct* names ever
        // loaded — a service re-reading its fleet file on a timer does
        // not grow it, and runaway name churn hits the interner's cap
        // instead of leaking without bound.
        let name = intern_name(&self.name).ok_or_else(|| {
            RegistryParseError(format!(
                "device `{}`: too many distinct device names loaded this \
                 process (cap {MAX_INTERNED_NAMES}); registry names are \
                 expected to be a stable fleet vocabulary, not churned ids",
                self.name
            ))
        })?;
        let device = GpuDevice {
            name,
            capacity,
            framework_bytes,
            init_bytes,
        };
        Ok((self.name, device))
    }
}

/// Bound on distinct registry-file device names interned per process.
/// Names back `GpuDevice::name: &'static str`, so each distinct one is
/// leaked exactly once; the cap turns pathological name churn
/// (timestamped ids fed through a reload loop) into a load error instead
/// of unbounded memory growth. Real fleet vocabularies are tiny.
const MAX_INTERNED_NAMES: usize = 4096;

/// Process-wide name interner: each distinct device name is leaked
/// exactly once and reused on every later load. Returns `None` once
/// [`MAX_INTERNED_NAMES`] distinct names have been interned.
fn intern_name(name: &str) -> Option<&'static str> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static INTERNED: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let mut table = INTERNED
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("name intern table poisoned");
    if let Some(&interned) = table.get(name) {
        return Some(interned);
    }
    if table.len() >= MAX_INTERNED_NAMES {
        return None;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    table.insert(name.to_string(), leaked);
    Some(leaked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_devices_resolve_by_cli_name() {
        let registry = DeviceRegistry::builtin();
        assert_eq!(registry.len(), 3);
        assert_eq!(registry.get("rtx3060"), Some(GpuDevice::rtx3060()));
        assert_eq!(registry.get("a100"), Some(GpuDevice::a100_40g()));
        assert_eq!(registry.names(), vec!["a100", "rtx3060", "rtx4060"]);
    }

    #[test]
    fn resolve_reports_the_unknown_name() {
        let registry = DeviceRegistry::builtin();
        let resolved = registry.resolve(&["rtx3060", "nope"]);
        assert_eq!(
            resolved,
            Err(EstimateError::UnknownDevice("nope".to_string()))
        );
        let ok = registry.resolve(&["rtx4060", "rtx3060"]).unwrap();
        assert_eq!(ok[0], GpuDevice::rtx4060());
        assert_eq!(ok[1], GpuDevice::rtx3060());
    }

    #[test]
    fn register_replaces_and_returns_the_old_config() {
        let registry = DeviceRegistry::builtin();
        let replaced = registry.register("rtx3060", GpuDevice::a100_40g());
        assert_eq!(replaced, Some(GpuDevice::rtx3060()));
        assert_eq!(registry.get("rtx3060"), Some(GpuDevice::a100_40g()));
    }

    #[test]
    fn registry_file_parses_with_defaults() {
        let json = r#"{
            "devices": [
                {"name": "tiny-l4", "capacity_mib": 6144, "framework_mib": 540},
                {"name": "shared-a10", "capacity_mib": 24576, "init_mib": 2048}
            ]
        }"#;
        let registry = DeviceRegistry::from_json_str(json).unwrap();
        assert_eq!(registry.len(), 2);
        let l4 = registry.get("tiny-l4").unwrap();
        assert_eq!(l4.capacity, 6144 * MIB);
        assert_eq!(l4.framework_bytes, 540 * MIB);
        assert_eq!(l4.init_bytes, 0);
        assert_eq!(l4.name, "tiny-l4");
        let a10 = registry.get("shared-a10").unwrap();
        assert_eq!(a10.framework_bytes, 512 * MIB, "framework defaults");
        assert_eq!(a10.init_bytes, 2048 * MIB);
    }

    #[test]
    fn registry_file_rejects_impossible_capacity() {
        let json = r#"{"devices": [{"name": "bad", "capacity_mib": 100}]}"#;
        let err = DeviceRegistry::from_json_str(json).unwrap_err();
        assert!(err.to_string().contains("bad"), "{err}");
        assert!(DeviceRegistry::from_json_str("{}").is_err());
        assert!(DeviceRegistry::from_json_str(r#"{"devices": []}"#).is_err());
    }

    #[test]
    fn registry_file_rejects_byte_overflow_instead_of_wrapping() {
        // 2^44 + 6144 MiB wraps modulo 2^64 when multiplied by MiB; it
        // must be rejected, not registered as a ~6 GiB card.
        let json = r#"{"devices": [{"name": "huge", "capacity_mib": 17592186050688}]}"#;
        let err = DeviceRegistry::from_json_str(json).unwrap_err();
        assert!(err.to_string().contains("overflow"), "{err}");
        let json = r#"{"devices": [{"name": "huge", "capacity_mib": 4096, "framework_mib": 18446744073709551615}]}"#;
        assert!(DeviceRegistry::from_json_str(json).is_err());
    }

    #[test]
    fn extend_merges_over_builtins() {
        let registry = DeviceRegistry::builtin();
        let json = r#"{"devices": [{"name": "rtx3060", "capacity_mib": 24576}]}"#;
        assert_eq!(registry.extend_from_json_str(json).unwrap(), 1);
        assert_eq!(registry.len(), 3, "replaced, not appended");
        assert_eq!(registry.get("rtx3060").unwrap().capacity, 24576 * MIB);
    }

    #[test]
    fn reloading_a_fleet_file_reuses_interned_names() {
        let json = r#"{"devices": [{"name": "reload-me", "capacity_mib": 8192}]}"#;
        let registry = DeviceRegistry::empty();
        registry.extend_from_json_str(json).unwrap();
        let first = registry.get("reload-me").unwrap().name;
        registry.extend_from_json_str(json).unwrap();
        let second = registry.get("reload-me").unwrap().name;
        assert!(
            std::ptr::eq(first, second),
            "repeated loads must reuse the interned name, not leak a new one"
        );
    }

    #[test]
    fn clones_are_independent_snapshots() {
        let registry = DeviceRegistry::builtin();
        let cloned = registry.clone();
        registry.register("extra", GpuDevice::a100_40g());
        assert_eq!(registry.len(), 4);
        assert_eq!(cloned.len(), 3);
    }
}
