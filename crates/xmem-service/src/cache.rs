//! Sharded, mutex-per-shard LRU cache with O(1) eviction, an optional
//! bytes budget, and segmented (probation/protected) admission that can
//! be pinned statically or tuned adaptively online.
//!
//! Keys are spread across `shards` independent maps by hash, so concurrent
//! estimation threads contend only when they touch the same shard. Each
//! shard enforces its own capacity slice (and, when configured, its slice
//! of the bytes budget) with least-recently-used eviction.
//!
//! Recency is an **intrusive, index-linked list** over a slab of nodes:
//! every get/insert/evict is a constant number of index rewrites — no
//! allocation per operation and, critically, no scan over the shard to
//! find the eviction victim (the list tail *is* the victim). Entry costs
//! vary wildly in this workload (profiler traces differ ~100× in size
//! between MobileNet and Qwen3-4B), so a pure entry-count capacity is a
//! poor memory bound; [`ShardedLruCache::with_bytes_budget`] adds
//! per-entry cost accounting and evicts until both the entry and the byte
//! limits hold. Entries costlier than their whole shard slice are not
//! cached at all (counted in [`CacheStats::rejected`]) — callers still get
//! their computed value, it just will not be retained.
//!
//! **Segmented admission**
//! ([`ShardedLruCache::with_segmented_admission`]): plain LRU is
//! scan-vulnerable — a one-shot batch-size sweep or admission-control
//! probe storm inserts a run of never-again-touched keys that flush the
//! genuinely hot entries. In segmented mode each shard runs the classic
//! SLRU discipline: new entries land in a **probation** segment, a hit on
//! a probation entry **promotes** it to the **protected** segment
//! (counted in [`CacheStats::promoted`]), the protected segment is capped
//! at a configured fraction of the shard (its LRU demotes back to
//! probation's MRU when over), and eviction victims come from probation
//! first. One-shot keys then die in probation without ever displacing a
//! re-referenced entry. Both recency segments are threaded through the
//! same slab, so every operation stays O(1).
//!
//! **Adaptive tiering** ([`ShardedLruCache::with_adaptive_tiering`], the
//! service default via [`TieringMode::Adaptive`]): the segmented
//! discipline, self-tuned. Each shard additionally keeps a TinyLFU-style
//! frequency sketch, two bounded ghost lists (recent probation/protected
//! evictions, key hashes only), and a hill-climbing tuner — see the
//! [`tiering`](crate::tiering) module docs. Three behaviors ride on it:
//!
//! 1. **Sketch-gated admission**: a *new* key that would force an
//!    eviction is admitted only when its estimated frequency strictly
//!    exceeds the would-be victim's; otherwise the insert is dropped
//!    (counted in [`CacheStats::admission_denied`]; the caller keeps its
//!    computed value). One-shot scans no longer displace anything.
//! 2. **Ghost feedback**: a miss that matches a remembered eviction
//!    counts a [`CacheStats::ghost_hits`] and tells the tuner which
//!    segment was undersized.
//! 3. **Learned split with smoothed transitions**: the tuner's fraction
//!    (hard floor/ceiling, integer permille) re-caps the protected
//!    segment — and its share of the bytes budget — with at most one
//!    protected→probation demotion per operation, so a tuner step never
//!    causes a demotion storm. All tier state is integral and advanced
//!    only by cache operations: behavior is deterministic given the
//!    access sequence.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::tiering::{permille_from_frac, TierState, TierStats, TieringMode};

/// Monotonic hit/miss/insert/evict counters for a [`ShardedLruCache`].
///
/// `hits + misses` equals the number of `get_or_insert_with`/`get` calls;
/// a miss that populates the cache also counts one insertion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries evicted to respect the capacity or the bytes budget.
    pub evictions: u64,
    /// Entries refused because their cost alone exceeded the shard's
    /// bytes-budget slice (the value was still returned to the caller).
    pub rejected: u64,
    /// Probation entries promoted to the protected segment on a hit
    /// (always 0 unless segmented admission is configured).
    pub promoted: u64,
    /// Misses that matched a remembered eviction in a ghost list
    /// (always 0 unless adaptive tiering is live).
    pub ghost_hits: u64,
    /// Hill-climbing steps the tier tuner took (always 0 unless adaptive
    /// tiering is live).
    pub tuner_steps: u64,
    /// Halving decays of the per-shard frequency sketches (always 0
    /// unless adaptive tiering is live).
    pub sketch_resets: u64,
    /// New entries the frequency-sketch admission gate refused because
    /// the eviction victim was at least as hot (the value was still
    /// returned to the caller).
    pub admission_denied: u64,
}

impl CacheStats {
    /// Folds another counter snapshot into this one (used by layers that
    /// retire caches but must keep reporting monotonic totals).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.rejected += other.rejected;
        self.promoted += other.promoted;
        self.ghost_hits += other.ghost_hits;
        self.tuner_steps += other.tuner_steps;
        self.sketch_resets += other.sketch_resets;
        self.admission_denied += other.admission_denied;
    }
}

/// Per-operation tier event deltas a shard reports back to the cache's
/// atomic counters.
#[derive(Debug, Clone, Copy, Default)]
struct TierEvents {
    ghost_hits: u64,
    tuner_steps: u64,
    sketch_resets: u64,
    admission_denied: u64,
}

/// What one shard-level insert did.
#[derive(Debug, Clone, Copy, Default)]
struct InsertOutcome {
    evicted: u64,
    rejected: bool,
    denied: bool,
    events: TierEvents,
}

/// Sentinel index terminating the intrusive list.
const NIL: u32 = u32::MAX;

/// Which recency list a node is threaded through. Plain (non-segmented)
/// shards keep everything in `Probation`.
const PROBATION: usize = 0;
/// The re-referenced segment of a segmented shard.
const PROTECTED: usize = 1;

/// The cache's key hash — shard selection, the frequency sketch, and the
/// ghost lists all derive from this one hash, computed once per
/// operation. `DefaultHasher::new()` uses fixed keys, so the hash (and
/// with it every tiering decision) is deterministic across runs.
fn key_hash<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    /// Bytes this entry counts against the shard's budget slice.
    cost: u64,
    prev: u32,
    next: u32,
    /// Which recency list ([`PROBATION`] or [`PROTECTED`]) threads this
    /// node.
    segment: usize,
    /// Whether this entry was ever promoted. Eviction files the ghost
    /// under the segment that shaped the entry: a demoted-then-evicted
    /// entry still signals an undersized protected segment when it is
    /// re-referenced.
    hot: bool,
}

/// Head/tail indices of one intrusive recency list (head = MRU,
/// tail = LRU).
#[derive(Debug, Clone, Copy)]
struct ListEnds {
    head: u32,
    tail: u32,
}

impl Default for ListEnds {
    fn default() -> Self {
        ListEnds {
            head: NIL,
            tail: NIL,
        }
    }
}

/// One lock's worth of the cache: a key → slab-index map plus the
/// intrusive recency lists threaded through the slab. All list surgery is
/// O(1). Non-segmented shards use only the probation list.
#[derive(Debug)]
struct Shard<K, V> {
    map: HashMap<K, u32>,
    nodes: Vec<Option<Node<K, V>>>,
    free: Vec<u32>,
    lists: [ListEnds; 2],
    /// Entries currently in the protected list.
    protected_len: usize,
    /// Sum of live entry costs.
    bytes: u64,
    /// Adaptive tiering state (sketch, ghosts, tuner), when configured.
    tier: Option<Box<TierState>>,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            lists: [ListEnds::default(); 2],
            protected_len: 0,
            bytes: 0,
            tier: None,
        }
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn node(&self, index: u32) -> &Node<K, V> {
        self.nodes[index as usize]
            .as_ref()
            .expect("vacant lru slot")
    }

    fn node_mut(&mut self, index: u32) -> &mut Node<K, V> {
        self.nodes[index as usize]
            .as_mut()
            .expect("vacant lru slot")
    }

    /// Detaches `index` from its recency list (it stays in the slab/map).
    fn unlink(&mut self, index: u32) {
        let (prev, next, segment, cost) = {
            let n = self.node(index);
            (n.prev, n.next, n.segment, n.cost)
        };
        if prev == NIL {
            self.lists[segment].head = next;
        } else {
            self.node_mut(prev).next = next;
        }
        if next == NIL {
            self.lists[segment].tail = prev;
        } else {
            self.node_mut(next).prev = prev;
        }
        if segment == PROTECTED {
            self.protected_len -= 1;
            if let Some(tier) = &mut self.tier {
                tier.protected_bytes -= cost;
            }
        }
    }

    /// Links `index` at the MRU end of `segment`.
    fn push_front(&mut self, index: u32, segment: usize) {
        let cost = self.node(index).cost;
        let old_head = self.lists[segment].head;
        {
            let n = self.node_mut(index);
            n.prev = NIL;
            n.next = old_head;
            n.segment = segment;
        }
        if old_head != NIL {
            self.node_mut(old_head).prev = index;
        }
        self.lists[segment].head = index;
        if self.lists[segment].tail == NIL {
            self.lists[segment].tail = index;
        }
        if segment == PROTECTED {
            self.protected_len += 1;
            if let Some(tier) = &mut self.tier {
                tier.protected_bytes += cost;
            }
        }
    }

    /// Feeds one access into the live tier machinery: the frequency
    /// sketch counts it, the tuner's window ticks (re-capping the
    /// protected segment on a step), and one smoothed rebalance demotion
    /// runs. A no-op for static/frozen shards.
    fn tier_access(&mut self, hash: u64, events: &mut TierEvents) {
        {
            let Some(tier) = &mut self.tier else {
                return;
            };
            if !tier.active {
                return;
            }
            if tier.sketch.increment(hash) {
                events.sketch_resets += 1;
            }
            if tier.tuner.on_access() {
                events.tuner_steps += 1;
                tier.recompute_cap();
            }
        }
        self.rebalance_one();
    }

    /// Smoothed transition toward a shrunk learned split: when protected
    /// occupancy exceeds the live entry cap or byte share, demote at most
    /// **one** protected LRU back to probation's MRU. Called once per
    /// operation on live adaptive shards, so a tuner step drains overflow
    /// gradually instead of in a demotion storm.
    fn rebalance_one(&mut self) {
        let Some(tier) = &self.tier else {
            return;
        };
        if !tier.active {
            return;
        }
        let over_entries = self.protected_len > tier.protected_cap;
        let over_bytes = tier
            .protected_byte_share()
            .is_some_and(|share| tier.protected_bytes > share);
        if (over_entries || over_bytes) && self.lists[PROTECTED].tail != NIL {
            let demoted = self.lists[PROTECTED].tail;
            self.unlink(demoted);
            self.push_front(demoted, PROBATION);
        }
    }

    /// The byte-split guarantee behind a promotion: if the newly promoted
    /// entry pushed the protected segment over its byte share, demote
    /// from the protected LRU until the share holds — possibly demoting
    /// the just-promoted entry itself when its cost alone exceeds the
    /// share. Bytes accounting is never stranded in an over-share
    /// protected segment.
    fn enforce_protected_byte_share(&mut self) {
        loop {
            let Some(tier) = &self.tier else {
                return;
            };
            if !tier.active {
                return;
            }
            let Some(share) = tier.protected_byte_share() else {
                return;
            };
            if tier.protected_bytes <= share || self.lists[PROTECTED].tail == NIL {
                return;
            }
            let demoted = self.lists[PROTECTED].tail;
            self.unlink(demoted);
            self.push_front(demoted, PROBATION);
        }
    }

    /// Refreshes `key`'s recency. In segmented mode (a positive protected
    /// cap) a probation hit promotes the entry into the protected
    /// segment, demoting that segment's LRU back to probation's MRU when
    /// it overflows. On adaptive shards the access also feeds the sketch
    /// and tuner, and a miss consults the ghost lists. Returns the value,
    /// whether a promotion happened, and the tier event deltas.
    fn touch(
        &mut self,
        key: &K,
        static_protected_cap: usize,
        hash: u64,
    ) -> (Option<V>, bool, TierEvents) {
        let mut events = TierEvents::default();
        self.tier_access(hash, &mut events);
        let Some(&index) = self.map.get(key) else {
            if let Some(tier) = &mut self.tier {
                if tier.active && tier.ghost_hit(hash) {
                    events.ghost_hits += 1;
                }
            }
            return (None, false, events);
        };
        let protected_cap = self
            .tier
            .as_ref()
            .map_or(static_protected_cap, |t| t.protected_cap);
        let segment = self.node(index).segment;
        let mut promoted = false;
        if protected_cap > 0 && segment == PROBATION {
            self.unlink(index);
            self.node_mut(index).hot = true;
            self.push_front(index, PROTECTED);
            promoted = true;
            // At most one entry over the cap: demote the protected LRU.
            if self.protected_len > protected_cap {
                let demoted = self.lists[PROTECTED].tail;
                self.unlink(demoted);
                self.push_front(demoted, PROBATION);
            }
            self.enforce_protected_byte_share();
        } else if self.lists[segment].head != index {
            self.unlink(index);
            self.push_front(index, segment);
        }
        (Some(self.node(index).value.clone()), promoted, events)
    }

    fn peek(&self, key: &K) -> Option<V> {
        self.map.get(key).map(|&i| self.node(i).value.clone())
    }

    /// Removes the node at `index` entirely: list, slab, map and byte
    /// gauge. The single removal path, shared by eviction and rejection.
    fn remove_index(&mut self, index: u32) {
        self.unlink(index);
        let node = self.nodes[index as usize].take().expect("vacant lru slot");
        self.free.push(index);
        self.map.remove(&node.key);
        self.bytes -= node.cost;
    }

    /// Removes the LRU entry — probation's tail when probation is
    /// non-empty (one-shot keys die first), otherwise protected's. On
    /// live adaptive shards the victim's key hash is remembered in the
    /// ghost list of the segment that shaped it. Must not be called on an
    /// empty shard.
    fn evict_tail(&mut self) {
        let victim = if self.lists[PROBATION].tail != NIL {
            self.lists[PROBATION].tail
        } else {
            self.lists[PROTECTED].tail
        };
        debug_assert_ne!(victim, NIL, "evict on empty shard");
        if let Some(tier) = &mut self.tier {
            if tier.active {
                let node = self.nodes[victim as usize]
                    .as_ref()
                    .expect("vacant lru slot");
                tier.ghosts[usize::from(node.hot)].record(key_hash(&node.key));
            }
        }
        self.remove_index(victim);
    }

    /// The LRU entry a capacity/budget-pressed insert would evict first.
    fn eviction_victim(&self) -> u32 {
        if self.lists[PROBATION].tail != NIL {
            self.lists[PROBATION].tail
        } else {
            self.lists[PROTECTED].tail
        }
    }

    /// Inserts (or replaces) `key → value` with `cost` bytes, then evicts
    /// LRU entries until both `capacity` and `budget` hold. On live
    /// adaptive shards, a **new** key that needs an eviction must beat
    /// the would-be victim's sketched frequency to be admitted at all.
    fn insert(
        &mut self,
        key: K,
        value: V,
        cost: u64,
        capacity: usize,
        budget: Option<u64>,
        hash: u64,
    ) -> InsertOutcome {
        let mut outcome = InsertOutcome::default();
        self.tier_access(hash, &mut outcome.events);
        if let Some(budget) = budget {
            if cost > budget {
                // Not cacheable at any occupancy: drop a stale entry under
                // the same key (it would otherwise keep serving the old
                // value) and refuse.
                if let Some(&index) = self.map.get(&key) {
                    self.remove_index(index);
                }
                outcome.rejected = true;
                return outcome;
            }
        }
        if let Some(&index) = self.map.get(&key) {
            // Replacement: refresh value, cost and recency in place. The
            // entry keeps its segment — a write is not the re-reference
            // that earns promotion.
            let old_cost = self.node(index).cost;
            self.bytes -= old_cost;
            self.bytes += cost;
            let segment = {
                let n = self.node_mut(index);
                n.value = value;
                n.cost = cost;
                n.segment
            };
            if segment == PROTECTED {
                // Keep the protected byte gauge in step with the cost
                // change (the unlink/relink below nets to zero).
                if let Some(tier) = &mut self.tier {
                    tier.protected_bytes = tier.protected_bytes - old_cost + cost;
                }
            }
            if self.lists[segment].head != index {
                self.unlink(index);
                self.push_front(index, segment);
            }
        } else {
            if let Some(tier) = &self.tier {
                if tier.active {
                    let needs_eviction =
                        self.map.len() >= capacity || budget.is_some_and(|b| self.bytes + cost > b);
                    if needs_eviction {
                        // A pressed shard is never empty (capacity >= 1
                        // and the oversize check already passed), so the
                        // victim index is live.
                        let victim = self.eviction_victim();
                        let victim_hash = key_hash(
                            &self.nodes[victim as usize]
                                .as_ref()
                                .expect("vacant lru slot")
                                .key,
                        );
                        if tier.sketch.estimate(hash) <= tier.sketch.estimate(victim_hash) {
                            outcome.events.admission_denied += 1;
                            outcome.denied = true;
                            return outcome;
                        }
                    }
                }
            }
            let node = Node {
                key: key.clone(),
                value,
                cost,
                prev: NIL,
                next: NIL,
                segment: PROBATION,
                hot: false,
            };
            let index = match self.free.pop() {
                Some(slot) => {
                    self.nodes[slot as usize] = Some(node);
                    slot
                }
                None => {
                    self.nodes.push(Some(node));
                    (self.nodes.len() - 1) as u32
                }
            };
            self.map.insert(key, index);
            self.bytes += cost;
            self.push_front(index, PROBATION);
        }
        while self.map.len() > capacity || budget.is_some_and(|b| self.bytes > b) {
            self.evict_tail();
            outcome.evicted += 1;
        }
        outcome
    }
}

/// A concurrent LRU cache split into independently locked shards, with
/// O(1) eviction, an optional bytes budget, and optional (static or
/// adaptive) segmented admission.
#[derive(Debug)]
pub struct ShardedLruCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    /// Per-shard capacity slices; they sum to exactly the configured total.
    capacities: Vec<usize>,
    /// Per-shard bytes-budget slices (summing to the configured total), or
    /// `None` for an entry-count-only cache.
    budgets: Option<Vec<u64>>,
    /// Per-shard caps on the protected segment; 0 everywhere (the
    /// default) disables segmented admission and the shard behaves as a
    /// plain LRU. Unused (the tier state's live cap rules) when
    /// `adaptive` is set.
    protected_caps: Vec<usize>,
    /// Whether shards carry adaptive tier state.
    adaptive: bool,
    /// Whether that tier state is live (tuner, sketch gate, ghosts, byte
    /// split) or frozen for bit-compat testing.
    tuning: bool,
    /// Computes an entry's budget cost. The default weigher costs
    /// everything 0, so a budget only binds when a real weigher is set.
    weigher: fn(&V) -> u64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
    promoted: AtomicU64,
    ghost_hits: AtomicU64,
    tuner_steps: AtomicU64,
    sketch_resets: AtomicU64,
    admission_denied: AtomicU64,
}

fn zero_weight<V>(_: &V) -> u64 {
    0
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLruCache<K, V> {
    /// A cache holding at most `capacity` entries overall, spread over at
    /// most `shards` locks. Capacity is clamped to at least 1, the shard
    /// count to `1..=capacity`, and the per-shard slices partition the
    /// total exactly — occupancy never exceeds `capacity`.
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        let base = capacity / shards;
        let extra = capacity % shards;
        ShardedLruCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacities: (0..shards).map(|i| base + usize::from(i < extra)).collect(),
            budgets: None,
            protected_caps: vec![0; shards],
            adaptive: false,
            tuning: false,
            weigher: zero_weight::<V>,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            promoted: AtomicU64::new(0),
            ghost_hits: AtomicU64::new(0),
            tuner_steps: AtomicU64::new(0),
            sketch_resets: AtomicU64::new(0),
            admission_denied: AtomicU64::new(0),
        }
    }

    /// Applies a [`TieringMode`]: [`TieringMode::Off`] clears any
    /// segmentation, [`TieringMode::Static`] pins a fraction (exactly
    /// [`with_segmented_admission`](Self::with_segmented_admission)), and
    /// [`TieringMode::Adaptive`] installs the self-tuning machinery
    /// ([`with_adaptive_tiering`](Self::with_adaptive_tiering)).
    #[must_use]
    pub fn with_tiering(self, mode: TieringMode) -> Self {
        match mode {
            TieringMode::Off => self.clear_tiering(),
            TieringMode::Static(frac) => self.with_segmented_admission(frac),
            TieringMode::Adaptive { initial_frac } => self.with_adaptive_tiering(initial_frac),
        }
    }

    /// Enables segmented (probation/protected) admission at a pinned
    /// fraction: each shard reserves `protected_frac` of its capacity
    /// slice for entries that were hit at least once after insertion. New
    /// entries start in probation, a hit promotes
    /// ([`CacheStats::promoted`]), the protected segment's LRU demotes
    /// back to probation when the segment overflows, and eviction victims
    /// come from probation first — so a scan of one-shot keys (a
    /// batch-size sweep, an admission-probe storm) cannot flush
    /// re-referenced entries.
    ///
    /// `protected_frac` is clamped to `[0.0, 1.0]`; a fraction that
    /// rounds to a zero-entry protected segment for some shard leaves
    /// that shard in plain LRU mode. Pinning a static fraction clears any
    /// previously installed adaptive state.
    #[must_use]
    pub fn with_segmented_admission(mut self, protected_frac: f64) -> Self {
        let frac = protected_frac.clamp(0.0, 1.0);
        self = self.clear_tiering();
        self.protected_caps = self
            .capacities
            .iter()
            .map(|&cap| {
                #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
                #[allow(clippy::cast_sign_loss)]
                let protected = (cap as f64 * frac).round() as usize;
                protected.min(cap)
            })
            .collect();
        self
    }

    /// Enables self-tuning segmented admission starting from
    /// `initial_frac` (see the module docs and [`TieringMode::Adaptive`]):
    /// sketch-gated admission, ghost-list feedback, and a hill-climbing
    /// tuner over the protected fraction and bytes-budget split.
    #[must_use]
    pub fn with_adaptive_tiering(self, initial_frac: f64) -> Self {
        self.install_adaptive(initial_frac, true)
    }

    /// Adaptive tiering with the tuning loop **frozen**: segment caps
    /// come from the same integer-permille machinery, but the sketch
    /// gate, ghost lists, tuner, and byte split are all inert — the cache
    /// is operation-for-operation identical to
    /// [`with_segmented_admission`](Self::with_segmented_admission) at
    /// the same fraction. For bit-compat tests.
    #[must_use]
    pub fn with_adaptive_tuning_disabled(self, protected_frac: f64) -> Self {
        self.install_adaptive(protected_frac, false)
    }

    fn install_adaptive(mut self, frac: f64, tuning: bool) -> Self {
        self.adaptive = true;
        self.tuning = tuning;
        self.protected_caps = vec![0; self.shards.len()];
        let permille = permille_from_frac(frac, tuning);
        for (i, shard) in self.shards.iter().enumerate() {
            let budget = self.budgets.as_ref().map(|b| b[i]);
            shard.lock().expect("cache shard poisoned").tier = Some(Box::new(TierState::new(
                self.capacities[i],
                budget,
                permille,
                tuning,
            )));
        }
        self
    }

    /// Removes any segmentation (static or adaptive); shards behave as
    /// plain LRUs.
    #[must_use]
    fn clear_tiering(mut self) -> Self {
        self.adaptive = false;
        self.tuning = false;
        self.protected_caps = vec![0; self.shards.len()];
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").tier = None;
        }
        self
    }

    /// Adds a bytes budget: `weigher` prices every inserted value, and
    /// each shard evicts LRU entries until its slice of `total_bytes`
    /// holds (the slices partition the total exactly, so resident cost
    /// never exceeds the budget). An entry costlier than its whole shard
    /// slice is refused outright and counted in [`CacheStats::rejected`] —
    /// size the budget well above the largest single entry (and far above
    /// the shard count).
    #[must_use]
    pub fn with_bytes_budget(mut self, total_bytes: u64, weigher: fn(&V) -> u64) -> Self {
        let shards = self.shards.len() as u64;
        let base = total_bytes / shards;
        let extra = total_bytes % shards;
        let slices: Vec<u64> = (0..shards).map(|i| base + u64::from(i < extra)).collect();
        // Re-slice any already-installed tier state so builder order
        // does not matter.
        for (shard, &slice) in self.shards.iter().zip(&slices) {
            if let Some(tier) = shard.lock().expect("cache shard poisoned").tier.as_mut() {
                tier.set_budget(Some(slice));
            }
        }
        self.budgets = Some(slices);
        self.weigher = weigher;
        self
    }

    fn shard_index_of(&self, hash: u64) -> usize {
        #[allow(clippy::cast_possible_truncation)]
        {
            (hash % self.shards.len() as u64) as usize
        }
    }

    /// The total configured capacity (sum of the per-shard slices).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacities.iter().sum()
    }

    /// The total configured bytes budget, when one is set.
    #[must_use]
    pub fn bytes_budget(&self) -> Option<u64> {
        self.budgets.as_ref().map(|b| b.iter().sum())
    }

    /// Total cost of resident entries, as priced by the weigher.
    #[must_use]
    pub fn bytes_in_use(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").bytes)
            .sum()
    }

    /// The number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total entries currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key` without refreshing recency or touching the hit/miss
    /// counters. Used by single-flight leaders re-checking for a value a
    /// just-retired flight published, so stats keep their "one hit or
    /// miss per query" invariant.
    #[must_use]
    pub fn peek(&self, key: &K) -> Option<V> {
        let hash = key_hash(key);
        self.shards[self.shard_index_of(hash)]
            .lock()
            .expect("cache shard poisoned")
            .peek(key)
    }

    /// Clones every resident entry, least- to most-recently-used within
    /// each shard (probation before protected, each walked LRU → MRU),
    /// so re-inserting the sequence into an empty cache approximately
    /// restores recency order: the hottest entries land last and become
    /// the new MRUs. Used by the persistence snapshot.
    #[must_use]
    pub fn export(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            for segment in [PROBATION, PROTECTED] {
                let mut cursor = shard.lists[segment].tail;
                while cursor != NIL {
                    let node = shard.node(cursor);
                    out.push((node.key.clone(), node.value.clone()));
                    cursor = node.prev;
                }
            }
        }
        out
    }

    /// Folds one operation's tier event deltas into the atomic counters.
    fn fold_events(&self, events: TierEvents) {
        if events.ghost_hits != 0 {
            self.ghost_hits
                .fetch_add(events.ghost_hits, Ordering::Relaxed);
        }
        if events.tuner_steps != 0 {
            self.tuner_steps
                .fetch_add(events.tuner_steps, Ordering::Relaxed);
        }
        if events.sketch_resets != 0 {
            self.sketch_resets
                .fetch_add(events.sketch_resets, Ordering::Relaxed);
        }
        if events.admission_denied != 0 {
            self.admission_denied
                .fetch_add(events.admission_denied, Ordering::Relaxed);
        }
    }

    /// Looks up `key`, refreshing its recency (and, in segmented mode,
    /// promoting a probation entry to the protected segment).
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        let hash = key_hash(key);
        let index = self.shard_index_of(hash);
        let (found, promoted, events) = self.shards[index]
            .lock()
            .expect("cache shard poisoned")
            .touch(key, self.protected_caps[index], hash);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        if promoted {
            self.promoted.fetch_add(1, Ordering::Relaxed);
        }
        self.fold_events(events);
        found
    }

    /// Inserts `key → value`, evicting within the shard if needed. On an
    /// adaptive cache under pressure the frequency-sketch gate may refuse
    /// a cold new key outright ([`CacheStats::admission_denied`]).
    pub fn insert(&self, key: K, value: V) {
        let hash = key_hash(&key);
        let index = self.shard_index_of(hash);
        let cost = (self.weigher)(&value);
        let budget = self.budgets.as_ref().map(|b| b[index]);
        let outcome = self.shards[index]
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value, cost, self.capacities[index], budget, hash);
        if outcome.rejected {
            self.rejected.fetch_add(1, Ordering::Relaxed);
        } else if !outcome.denied {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
        self.evictions.fetch_add(outcome.evicted, Ordering::Relaxed);
        self.fold_events(outcome.events);
    }

    /// Returns the cached value for `key`, or computes, caches and returns
    /// it. The shard lock is *not* held while `compute` runs, so concurrent
    /// missing threads may compute the value redundantly (last write wins);
    /// the estimation pipeline is deterministic, so duplicates are
    /// identical.
    pub fn get_or_insert_with<E>(
        &self,
        key: &K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        if let Some(v) = self.get(key) {
            return Ok(v);
        }
        let value = compute()?;
        self.insert(key.clone(), value.clone());
        Ok(value)
    }

    /// A snapshot of the hit/miss/insert/evict counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            promoted: self.promoted.load(Ordering::Relaxed),
            ghost_hits: self.ghost_hits.load(Ordering::Relaxed),
            tuner_steps: self.tuner_steps.load(Ordering::Relaxed),
            sketch_resets: self.sketch_resets.load(Ordering::Relaxed),
            admission_denied: self.admission_denied.load(Ordering::Relaxed),
        }
    }

    /// A gauge snapshot of the cache's tier geometry and occupancy —
    /// segment entry counts, entry/byte capacities, and the live
    /// protected fraction — aggregated over the shards. Fuels the
    /// `/metrics` `xmem_cache_*` gauges.
    #[must_use]
    pub fn tier_stats(&self) -> TierStats {
        let mut stats = TierStats {
            segmented: self.adaptive || self.protected_caps.iter().any(|&c| c > 0),
            adaptive: self.adaptive,
            capacity: self.capacity() as u64,
            bytes_budget: self.bytes_budget().unwrap_or(0),
            ..TierStats::default()
        };
        let mut permille_sum: u64 = 0;
        for (i, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock().expect("cache shard poisoned");
            stats.entries += shard.map.len() as u64;
            stats.protected_entries += shard.protected_len as u64;
            stats.bytes_in_use += shard.bytes;
            if let Some(tier) = &shard.tier {
                stats.protected_cap += tier.protected_cap as u64;
                permille_sum += u64::from(tier.tuner.permille());
            } else {
                stats.protected_cap += self.protected_caps[i] as u64;
            }
        }
        stats.probation_entries = stats.entries - stats.protected_entries;
        stats.protected_frac_permille = if self.adaptive {
            #[allow(clippy::cast_possible_truncation)]
            {
                (permille_sum / self.shards.len() as u64) as u32
            }
        } else if stats.segmented && stats.capacity > 0 {
            #[allow(clippy::cast_possible_truncation)]
            {
                (stats.protected_cap * 1000 / stats.capacity) as u32
            }
        } else {
            0
        };
        stats
    }

    /// The learned tuner state — the mean protected fraction (permille)
    /// across shards and the maximum sketch decay epoch — or `None` when
    /// the cache is not adaptive. Persisted so warm boots resume the
    /// learned split instead of re-learning from the initial fraction.
    #[must_use]
    pub fn learned_state(&self) -> Option<(u32, u64)> {
        if !self.adaptive {
            return None;
        }
        let mut permille_sum: u64 = 0;
        let mut epoch: u64 = 0;
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            let tier = shard.tier.as_ref()?;
            permille_sum += u64::from(tier.tuner.permille());
            epoch = epoch.max(tier.sketch.epoch());
        }
        #[allow(clippy::cast_possible_truncation)]
        Some(((permille_sum / self.shards.len() as u64) as u32, epoch))
    }

    /// Seeds every shard's tuner with a persisted learned fraction
    /// (band-clamped) and sketch decay epoch. A no-op on non-adaptive
    /// caches; on a live adaptive cache the new split takes effect with
    /// the usual smoothed transitions.
    pub fn restore_learned_state(&self, frac_permille: u32, decay_epoch: u64) {
        if !self.adaptive {
            return;
        }
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            if let Some(tier) = shard.tier.as_mut() {
                tier.restore(frac_permille, decay_epoch);
            }
        }
    }

    /// Exhaustive structural self-check of every shard, used by tests: the
    /// recency list must thread exactly the mapped nodes, the byte gauge
    /// must equal the sum of live costs, and on adaptive shards the
    /// protected byte gauge must equal the protected list's cost sum.
    ///
    /// # Panics
    /// Panics on any violated invariant.
    pub fn check_invariants(&self) {
        for (i, (shard, &capacity)) in self.shards.iter().zip(&self.capacities).enumerate() {
            let shard = shard.lock().expect("cache shard poisoned");
            assert!(shard.map.len() <= capacity, "shard over capacity");
            let mut seen = 0usize;
            let mut bytes = 0u64;
            let mut protected_bytes = 0u64;
            for segment in [PROBATION, PROTECTED] {
                let mut segment_len = 0usize;
                let mut prev = NIL;
                let mut cursor = shard.lists[segment].head;
                while cursor != NIL {
                    let node = shard.node(cursor);
                    assert_eq!(node.prev, prev, "broken prev link");
                    assert_eq!(node.segment, segment, "node in the wrong list");
                    assert_eq!(
                        shard.map.get(&node.key),
                        Some(&cursor),
                        "listed node missing from map"
                    );
                    seen += 1;
                    segment_len += 1;
                    bytes += node.cost;
                    if segment == PROTECTED {
                        protected_bytes += node.cost;
                    }
                    prev = cursor;
                    cursor = node.next;
                }
                assert_eq!(shard.lists[segment].tail, prev, "tail must end the list");
                if segment == PROTECTED {
                    assert_eq!(segment_len, shard.protected_len, "protected gauge drift");
                    match &shard.tier {
                        // A live tuner shrinks caps with smoothed (one
                        // per op) demotions, so occupancy may transiently
                        // exceed a fresh cap; only the shard bound is hard.
                        Some(tier) if tier.active => {
                            assert!(segment_len <= capacity, "protected over the shard");
                        }
                        Some(tier) => assert!(
                            segment_len <= tier.protected_cap,
                            "protected segment over its frozen cap"
                        ),
                        None => assert!(
                            segment_len <= self.protected_caps[i],
                            "protected segment over its cap"
                        ),
                    }
                }
            }
            assert_eq!(seen, shard.map.len(), "list/map size mismatch");
            assert_eq!(bytes, shard.bytes, "byte gauge drift");
            if let Some(tier) = &shard.tier {
                assert_eq!(
                    protected_bytes, tier.protected_bytes,
                    "protected byte gauge drift"
                );
            }
            assert_eq!(shard.free.len() + seen, shard.nodes.len(), "slab slot leak");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(8, 2);
        assert_eq!(cache.get(&1), None);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), Some(10));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.evictions, 0);
        cache.check_invariants();
    }

    #[test]
    fn single_shard_evicts_least_recently_used() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(2, 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(&1), Some(10)); // refresh 1; 2 becomes LRU
        cache.insert(3, 30);
        assert_eq!(cache.get(&2), None, "LRU entry 2 was evicted");
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.stats().evictions, 1);
        cache.check_invariants();
    }

    #[test]
    fn total_capacity_is_never_exceeded() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(16, 4);
        assert_eq!(cache.capacity(), 16);
        for k in 0..1000 {
            cache.insert(k, k);
        }
        assert!(cache.len() <= cache.capacity());
        cache.check_invariants();
    }

    #[test]
    fn capacity_partition_is_exact_even_when_unaligned() {
        // 20 entries over 16 requested shards: slices must sum to 20, not
        // round up to 32.
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(20, 16);
        assert_eq!(cache.capacity(), 20);
        assert_eq!(cache.capacities.iter().sum::<usize>(), 20);
        // Fewer requested entries than shards: shard count shrinks instead
        // of inflating capacity.
        let small: ShardedLruCache<u32, u32> = ShardedLruCache::new(4, 16);
        assert_eq!(small.shard_count(), 4);
        assert_eq!(small.capacity(), 4);
        for k in 0..100 {
            small.insert(k, k);
        }
        assert!(small.len() <= 4);
        small.check_invariants();
    }

    #[test]
    fn get_or_insert_computes_once_per_key() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(8, 2);
        let mut calls = 0;
        for _ in 0..3 {
            let v: Result<u32, ()> = cache.get_or_insert_with(&7, || {
                calls += 1;
                Ok(70)
            });
            assert_eq!(v, Ok(70));
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn compute_errors_are_not_cached() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(8, 2);
        let r: Result<u32, &str> = cache.get_or_insert_with(&7, || Err("boom"));
        assert_eq!(r, Err("boom"));
        assert!(cache.is_empty());
        let r: Result<u32, &str> = cache.get_or_insert_with(&7, || Ok(70));
        assert_eq!(r, Ok(70));
    }

    #[test]
    fn replacing_a_key_updates_value_and_recency_in_place() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(2, 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(1, 11); // replace: 2 is now LRU
        assert_eq!(cache.len(), 2);
        cache.insert(3, 30);
        assert_eq!(cache.peek(&2), None, "2 was the LRU victim");
        assert_eq!(cache.peek(&1), Some(11));
        cache.check_invariants();
    }

    /// The value doubles as its byte cost.
    fn identity_cost(v: &u64) -> u64 {
        *v
    }

    #[test]
    fn bytes_budget_evicts_down_to_the_limit() {
        let cache: ShardedLruCache<u32, u64> =
            ShardedLruCache::new(100, 1).with_bytes_budget(100, identity_cost);
        assert_eq!(cache.bytes_budget(), Some(100));
        cache.insert(1, 40);
        cache.insert(2, 40);
        assert_eq!(cache.bytes_in_use(), 80);
        // 50 more bytes exceed the budget: the LRU entry (1) must go.
        cache.insert(3, 50);
        assert_eq!(cache.peek(&1), None);
        assert_eq!(cache.bytes_in_use(), 90);
        assert_eq!(cache.stats().evictions, 1);
        cache.check_invariants();
    }

    #[test]
    fn bytes_budget_can_evict_several_entries_for_one_insert() {
        let cache: ShardedLruCache<u32, u64> =
            ShardedLruCache::new(100, 1).with_bytes_budget(100, identity_cost);
        for k in 0..10 {
            cache.insert(k, 10);
        }
        assert_eq!(cache.len(), 10);
        cache.insert(99, 95); // 95 + any resident's 10 > 100: all must go
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes_in_use(), 95);
        assert_eq!(cache.stats().evictions, 10);
        cache.check_invariants();
    }

    #[test]
    fn oversized_entries_are_rejected_not_cached() {
        let cache: ShardedLruCache<u32, u64> =
            ShardedLruCache::new(100, 1).with_bytes_budget(100, identity_cost);
        cache.insert(1, 40);
        cache.insert(2, 101); // costlier than the whole budget
        assert_eq!(cache.peek(&2), None);
        assert_eq!(cache.peek(&1), Some(40), "residents are not disturbed");
        let stats = cache.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.insertions, 1);
        // A rejected replacement must also drop the stale resident.
        cache.insert(1, 200);
        assert_eq!(cache.peek(&1), None, "stale value must not survive");
        assert_eq!(cache.stats().rejected, 2);
        cache.check_invariants();
    }

    #[test]
    fn cost_replacement_adjusts_the_gauge() {
        let cache: ShardedLruCache<u32, u64> =
            ShardedLruCache::new(10, 1).with_bytes_budget(100, identity_cost);
        cache.insert(1, 60);
        cache.insert(1, 20);
        assert_eq!(cache.bytes_in_use(), 20);
        cache.insert(1, 90);
        assert_eq!(cache.bytes_in_use(), 90);
        assert_eq!(cache.len(), 1);
        cache.check_invariants();
    }

    #[test]
    fn budget_slices_partition_the_total() {
        let cache: ShardedLruCache<u32, u64> =
            ShardedLruCache::new(64, 16).with_bytes_budget(1000, identity_cost);
        assert_eq!(cache.bytes_budget(), Some(1000));
        for k in 0..500 {
            cache.insert(k, 7);
        }
        assert!(cache.bytes_in_use() <= 1000);
        cache.check_invariants();
    }

    #[test]
    fn segmented_admission_resists_a_one_shot_scan() {
        // Capacity 4, half protected. Two hot keys are hit once each
        // (promoted), then a scan of 8 one-shot keys rolls through: the
        // hot keys must survive in the protected segment.
        let cache: ShardedLruCache<u32, u32> =
            ShardedLruCache::new(4, 1).with_segmented_admission(0.5);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&2), Some(20));
        assert_eq!(cache.stats().promoted, 2);
        for k in 100..108 {
            cache.insert(k, k);
            cache.check_invariants();
        }
        assert_eq!(cache.peek(&1), Some(10), "hot key flushed by scan");
        assert_eq!(cache.peek(&2), Some(20), "hot key flushed by scan");
        // The same scan against a plain LRU flushes both hot keys.
        let plain: ShardedLruCache<u32, u32> = ShardedLruCache::new(4, 1);
        plain.insert(1, 10);
        plain.insert(2, 20);
        assert_eq!(plain.get(&1), Some(10));
        assert_eq!(plain.get(&2), Some(20));
        for k in 100..108 {
            plain.insert(k, k);
        }
        assert_eq!(plain.peek(&1), None);
        assert_eq!(plain.peek(&2), None);
        assert_eq!(plain.stats().promoted, 0, "plain mode never promotes");
    }

    #[test]
    fn protected_overflow_demotes_its_lru_back_to_probation() {
        // Protected cap 1: promoting a second key demotes the first back
        // to probation (as its MRU), where an eviction can reach it.
        let cache: ShardedLruCache<u32, u32> =
            ShardedLruCache::new(4, 1).with_segmented_admission(0.25);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(&1), Some(10)); // 1 → protected
        assert_eq!(cache.get(&2), Some(20)); // 2 → protected, 1 demoted
        assert_eq!(cache.stats().promoted, 2);
        cache.check_invariants();
        // Fill with one-shot keys: 2 (protected) survives every eviction;
        // demoted 1 is probation's MRU, so it outlives the older scan keys
        // but eventually falls to the scan itself.
        cache.insert(3, 30);
        cache.insert(4, 40);
        cache.insert(5, 50);
        assert_eq!(cache.peek(&2), Some(20), "protected key evicted");
        cache.check_invariants();
    }

    #[test]
    fn a_rehit_in_probation_promotes_again_after_demotion() {
        let cache: ShardedLruCache<u32, u32> =
            ShardedLruCache::new(4, 1).with_segmented_admission(0.25);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), Some(10)); // promote
        cache.insert(2, 20);
        assert_eq!(cache.get(&2), Some(20)); // promote 2, demote 1
        assert_eq!(cache.get(&1), Some(10)); // re-promote 1, demote 2
        assert_eq!(cache.stats().promoted, 3);
        cache.check_invariants();
    }

    #[test]
    fn unbudgeted_cache_ignores_costs() {
        let cache: ShardedLruCache<u32, u64> = ShardedLruCache::new(4, 1);
        cache.insert(1, u64::MAX / 2);
        cache.insert(2, u64::MAX / 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes_budget(), None);
        assert_eq!(cache.bytes_in_use(), 0, "default weigher prices 0");
        cache.check_invariants();
    }

    #[test]
    fn adaptive_admission_gate_denies_cold_keys_under_pressure() {
        let cache: ShardedLruCache<u32, u32> =
            ShardedLruCache::new(4, 1).with_adaptive_tiering(0.5);
        for k in 0..4 {
            cache.insert(k, k);
        }
        // Heat the residents: their sketched frequency rises above any
        // unseen key's.
        for _ in 0..3 {
            for k in 0..4 {
                assert_eq!(cache.get(&k), Some(k));
            }
        }
        // A one-shot scan now bounces off the admission gate entirely.
        for k in 100..120 {
            cache.insert(k, k);
            cache.check_invariants();
        }
        for k in 0..4 {
            assert_eq!(cache.peek(&k), Some(k), "hot resident displaced by scan");
        }
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0, "denied inserts must not evict");
        assert_eq!(stats.admission_denied, 20);
        assert_eq!(
            stats.insertions, 4,
            "denied inserts are not counted as insertions"
        );
    }

    #[test]
    fn adaptive_admission_admits_keys_hotter_than_the_victim() {
        let cache: ShardedLruCache<u32, u32> =
            ShardedLruCache::new(2, 1).with_adaptive_tiering(0.5);
        cache.insert(1, 10);
        cache.insert(2, 20);
        // Key 3 gets hotter than resident LRU 1 (misses still count
        // accesses in the sketch), so its insert is admitted.
        for _ in 0..3 {
            assert_eq!(cache.get(&3), None);
        }
        cache.insert(3, 30);
        assert_eq!(cache.peek(&3), Some(30), "hot key must be admitted");
        assert_eq!(cache.stats().evictions, 1);
        cache.check_invariants();
    }

    #[test]
    fn ghost_hits_are_counted_and_consumed() {
        let cache: ShardedLruCache<u32, u32> =
            ShardedLruCache::new(2, 1).with_adaptive_tiering(0.5);
        cache.insert(1, 10);
        cache.insert(2, 20);
        // Make key 3 hot enough to displace, evicting the probation LRU.
        for _ in 0..3 {
            assert_eq!(cache.get(&3), None);
        }
        cache.insert(3, 30);
        assert_eq!(cache.stats().evictions, 1);
        let ghost_hits_before = cache.stats().ghost_hits;
        // The evicted key's next miss is a ghost hit; the one after is not
        // (the hit consumed the ghost).
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.stats().ghost_hits, ghost_hits_before + 1);
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.stats().ghost_hits, ghost_hits_before + 1);
        cache.check_invariants();
    }

    #[test]
    fn tuner_steps_move_the_learned_fraction() {
        let cache: ShardedLruCache<u32, u32> =
            ShardedLruCache::new(8, 1).with_adaptive_tiering(0.5);
        assert_eq!(cache.tier_stats().protected_frac_permille, 500);
        // Resident hot set, all promoted at least once (hot).
        for k in 0..8 {
            cache.insert(k, k);
        }
        for k in 0..8 {
            assert_eq!(cache.get(&k), Some(k));
        }
        // Challenger waves: heat a fresh key past the residents so the
        // gate admits it (evicting a once-promoted resident), then
        // re-miss the whole original set — evicted members land ghost
        // hits on the protected history, and the windowed tuner steps
        // the learned fraction up.
        for wave in 0..40u32 {
            let key = 100 + wave;
            for _ in 0..5 {
                let _ = cache.get(&key);
            }
            cache.insert(key, key);
            for k in 0..8 {
                let _ = cache.get(&k);
            }
            cache.check_invariants();
        }
        let stats = cache.stats();
        assert!(stats.ghost_hits > 0, "no ghost feedback: {stats:?}");
        assert!(stats.tuner_steps > 0, "tuner never stepped: {stats:?}");
        assert!(
            cache.tier_stats().protected_frac_permille > 500,
            "protected ghost pressure must raise the learned fraction"
        );
        cache.check_invariants();
    }

    #[test]
    fn frozen_adaptive_matches_static_slru_operation_for_operation() {
        let frozen: ShardedLruCache<u32, u32> =
            ShardedLruCache::new(8, 1).with_adaptive_tuning_disabled(0.5);
        let pinned: ShardedLruCache<u32, u32> =
            ShardedLruCache::new(8, 1).with_segmented_admission(0.5);
        for op in 0u32..2000 {
            let key = (op * 7 + op / 3) % 24;
            if op % 3 == 0 {
                frozen.insert(key, op);
                pinned.insert(key, op);
            } else {
                assert_eq!(frozen.get(&key), pinned.get(&key), "op {op} diverged");
            }
        }
        let (f, p) = (frozen.stats(), pinned.stats());
        assert_eq!(f, p, "frozen-adaptive counters diverged from static");
        assert_eq!(f.ghost_hits, 0);
        assert_eq!(f.admission_denied, 0);
        assert_eq!(f.tuner_steps, 0);
        frozen.check_invariants();
        pinned.check_invariants();
    }

    #[test]
    fn promotion_over_the_protected_byte_share_demotes_cleanly() {
        // Budget 100, fraction 0.5 → protected byte share 50. Promoting
        // an 80-cost entry overflows the share: it must demote back in
        // the same operation, with both byte gauges intact (satellite
        // regression for the bytes-budget × segmented-admission audit).
        let cache: ShardedLruCache<u32, u64> = ShardedLruCache::new(10, 1)
            .with_bytes_budget(100, identity_cost)
            .with_adaptive_tiering(0.5);
        cache.insert(1, 80);
        assert_eq!(cache.get(&1), Some(80)); // promote: cost 80 > share 50
        let tier = cache.tier_stats();
        assert_eq!(
            tier.protected_entries, 0,
            "over-share promotion must demote back to probation"
        );
        assert_eq!(tier.entries, 1, "the entry itself must survive");
        assert_eq!(tier.bytes_in_use, 80);
        assert_eq!(cache.stats().promoted, 1, "the promotion still counted");
        cache.check_invariants();
        // A small entry promotes and stays; the big one keeps demoting.
        cache.insert(2, 10);
        assert_eq!(cache.get(&2), Some(10));
        let tier = cache.tier_stats();
        assert_eq!(tier.protected_entries, 1, "within-share promotion sticks");
        cache.check_invariants();
    }

    #[test]
    fn byte_share_rebalances_after_cost_growth_without_stranding() {
        // A protected resident's cost grows past the share via a
        // replacement: the smoothed rebalance demotes it on a later
        // operation and accounting never drifts.
        let cache: ShardedLruCache<u32, u64> = ShardedLruCache::new(10, 1)
            .with_bytes_budget(100, identity_cost)
            .with_adaptive_tiering(0.5);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), Some(10)); // promote (within share)
        assert_eq!(cache.tier_stats().protected_entries, 1);
        cache.insert(1, 80); // replacement: now over the 50-byte share
        cache.check_invariants();
        let _ = cache.get(&1); // next op rebalances (demotes at most one)
        cache.check_invariants();
        assert_eq!(
            cache.tier_stats().protected_entries,
            0,
            "over-share resident must eventually demote"
        );
        assert_eq!(cache.peek(&1), Some(80), "the entry itself survives");
    }

    #[test]
    fn learned_state_round_trips_through_restore() {
        let cache: ShardedLruCache<u32, u32> =
            ShardedLruCache::new(16, 2).with_adaptive_tiering(0.5);
        assert_eq!(cache.learned_state(), Some((500, 0)));
        cache.restore_learned_state(250, 7);
        assert_eq!(cache.learned_state(), Some((250, 7)));
        // Out-of-band fractions clamp into the tuner band.
        cache.restore_learned_state(0, 7);
        assert_eq!(cache.learned_state(), Some((125, 7)));
        // Non-adaptive caches have no learned state and ignore restores.
        let plain: ShardedLruCache<u32, u32> = ShardedLruCache::new(16, 2);
        assert_eq!(plain.learned_state(), None);
        plain.restore_learned_state(250, 7);
        assert_eq!(plain.learned_state(), None);
    }

    #[test]
    fn tier_stats_report_geometry_for_every_mode() {
        let off: ShardedLruCache<u32, u32> = ShardedLruCache::new(8, 2);
        let stats = off.tier_stats();
        assert!(!stats.segmented);
        assert_eq!(stats.protected_frac_permille, 0);
        assert_eq!(stats.capacity, 8);

        let pinned: ShardedLruCache<u32, u32> =
            ShardedLruCache::new(8, 2).with_segmented_admission(0.5);
        let stats = pinned.tier_stats();
        assert!(stats.segmented && !stats.adaptive);
        assert_eq!(stats.protected_cap, 4);
        assert_eq!(stats.protected_frac_permille, 500);

        let adaptive: ShardedLruCache<u32, u64> = ShardedLruCache::new(8, 2)
            .with_bytes_budget(1000, identity_cost)
            .with_adaptive_tiering(0.5);
        adaptive.insert(1, 30);
        let _ = adaptive.get(&1);
        let stats = adaptive.tier_stats();
        assert!(stats.segmented && stats.adaptive);
        assert_eq!(stats.bytes_budget, 1000);
        assert_eq!(stats.bytes_in_use, 30);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.protected_entries, 1, "promoted on the hit");
        assert_eq!(stats.probation_entries, 0);
        assert_eq!(stats.protected_frac_permille, 500);
    }

    #[test]
    fn budget_builder_order_does_not_matter_for_adaptive_byte_split() {
        // Tiering installed before the budget must still learn the
        // budget's shard slices.
        let cache: ShardedLruCache<u32, u64> = ShardedLruCache::new(10, 1)
            .with_adaptive_tiering(0.5)
            .with_bytes_budget(100, identity_cost);
        cache.insert(1, 80);
        assert_eq!(cache.get(&1), Some(80));
        assert_eq!(
            cache.tier_stats().protected_entries,
            0,
            "byte share must bind regardless of builder order"
        );
        cache.check_invariants();
    }
}
