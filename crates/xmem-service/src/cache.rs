//! Sharded, mutex-per-shard LRU cache with O(1) eviction, an optional
//! bytes budget, and an optional segmented (probation/protected)
//! admission policy.
//!
//! Keys are spread across `shards` independent maps by hash, so concurrent
//! estimation threads contend only when they touch the same shard. Each
//! shard enforces its own capacity slice (and, when configured, its slice
//! of the bytes budget) with least-recently-used eviction.
//!
//! Recency is an **intrusive, index-linked list** over a slab of nodes:
//! every get/insert/evict is a constant number of index rewrites — no
//! allocation per operation and, critically, no scan over the shard to
//! find the eviction victim (the list tail *is* the victim). Entry costs
//! vary wildly in this workload (profiler traces differ ~100× in size
//! between MobileNet and Qwen3-4B), so a pure entry-count capacity is a
//! poor memory bound; [`ShardedLruCache::with_bytes_budget`] adds
//! per-entry cost accounting and evicts until both the entry and the byte
//! limits hold. Entries costlier than their whole shard slice are not
//! cached at all (counted in [`CacheStats::rejected`]) — callers still get
//! their computed value, it just will not be retained.
//!
//! **Segmented admission**
//! ([`ShardedLruCache::with_segmented_admission`]): plain LRU is
//! scan-vulnerable — a one-shot batch-size sweep or admission-control
//! probe storm inserts a run of never-again-touched keys that flush the
//! genuinely hot entries. In segmented mode each shard runs the classic
//! SLRU discipline: new entries land in a **probation** segment, a hit on
//! a probation entry **promotes** it to the **protected** segment
//! (counted in [`CacheStats::promoted`]), the protected segment is capped
//! at a configured fraction of the shard (its LRU demotes back to
//! probation's MRU when over), and eviction victims come from probation
//! first. One-shot keys then die in probation without ever displacing a
//! re-referenced entry. Both recency segments are threaded through the
//! same slab, so every operation stays O(1).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Monotonic hit/miss/insert/evict counters for a [`ShardedLruCache`].
///
/// `hits + misses` equals the number of `get_or_insert_with`/`get` calls;
/// a miss that populates the cache also counts one insertion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries evicted to respect the capacity or the bytes budget.
    pub evictions: u64,
    /// Entries refused because their cost alone exceeded the shard's
    /// bytes-budget slice (the value was still returned to the caller).
    pub rejected: u64,
    /// Probation entries promoted to the protected segment on a hit
    /// (always 0 unless segmented admission is configured).
    pub promoted: u64,
}

impl CacheStats {
    /// Folds another counter snapshot into this one (used by layers that
    /// retire caches but must keep reporting monotonic totals).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.rejected += other.rejected;
        self.promoted += other.promoted;
    }
}

/// Sentinel index terminating the intrusive list.
const NIL: u32 = u32::MAX;

/// Which recency list a node is threaded through. Plain (non-segmented)
/// shards keep everything in `Probation`.
const PROBATION: usize = 0;
/// The re-referenced segment of a segmented shard.
const PROTECTED: usize = 1;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    /// Bytes this entry counts against the shard's budget slice.
    cost: u64,
    prev: u32,
    next: u32,
    /// Which recency list ([`PROBATION`] or [`PROTECTED`]) threads this
    /// node.
    segment: usize,
}

/// Head/tail indices of one intrusive recency list (head = MRU,
/// tail = LRU).
#[derive(Debug, Clone, Copy)]
struct ListEnds {
    head: u32,
    tail: u32,
}

impl Default for ListEnds {
    fn default() -> Self {
        ListEnds {
            head: NIL,
            tail: NIL,
        }
    }
}

/// One lock's worth of the cache: a key → slab-index map plus the
/// intrusive recency lists threaded through the slab. All list surgery is
/// O(1). Non-segmented shards use only the probation list.
#[derive(Debug)]
struct Shard<K, V> {
    map: HashMap<K, u32>,
    nodes: Vec<Option<Node<K, V>>>,
    free: Vec<u32>,
    lists: [ListEnds; 2],
    /// Entries currently in the protected list.
    protected_len: usize,
    /// Sum of live entry costs.
    bytes: u64,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            lists: [ListEnds::default(); 2],
            protected_len: 0,
            bytes: 0,
        }
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn node(&self, index: u32) -> &Node<K, V> {
        self.nodes[index as usize]
            .as_ref()
            .expect("vacant lru slot")
    }

    fn node_mut(&mut self, index: u32) -> &mut Node<K, V> {
        self.nodes[index as usize]
            .as_mut()
            .expect("vacant lru slot")
    }

    /// Detaches `index` from its recency list (it stays in the slab/map).
    fn unlink(&mut self, index: u32) {
        let (prev, next, segment) = {
            let n = self.node(index);
            (n.prev, n.next, n.segment)
        };
        if prev == NIL {
            self.lists[segment].head = next;
        } else {
            self.node_mut(prev).next = next;
        }
        if next == NIL {
            self.lists[segment].tail = prev;
        } else {
            self.node_mut(next).prev = prev;
        }
        if segment == PROTECTED {
            self.protected_len -= 1;
        }
    }

    /// Links `index` at the MRU end of `segment`.
    fn push_front(&mut self, index: u32, segment: usize) {
        let old_head = self.lists[segment].head;
        {
            let n = self.node_mut(index);
            n.prev = NIL;
            n.next = old_head;
            n.segment = segment;
        }
        if old_head != NIL {
            self.node_mut(old_head).prev = index;
        }
        self.lists[segment].head = index;
        if self.lists[segment].tail == NIL {
            self.lists[segment].tail = index;
        }
        if segment == PROTECTED {
            self.protected_len += 1;
        }
    }

    /// Refreshes `key`'s recency. In segmented mode (`protected_cap > 0`)
    /// a probation hit promotes the entry into the protected segment,
    /// demoting that segment's LRU back to probation's MRU when it
    /// overflows. Returns the value and whether a promotion happened.
    fn touch(&mut self, key: &K, protected_cap: usize) -> (Option<V>, bool) {
        let Some(&index) = self.map.get(key) else {
            return (None, false);
        };
        let segment = self.node(index).segment;
        let mut promoted = false;
        if protected_cap > 0 && segment == PROBATION {
            self.unlink(index);
            self.push_front(index, PROTECTED);
            promoted = true;
            // At most one entry over the cap: demote the protected LRU.
            if self.protected_len > protected_cap {
                let demoted = self.lists[PROTECTED].tail;
                self.unlink(demoted);
                self.push_front(demoted, PROBATION);
            }
        } else if self.lists[segment].head != index {
            self.unlink(index);
            self.push_front(index, segment);
        }
        (Some(self.node(index).value.clone()), promoted)
    }

    fn peek(&self, key: &K) -> Option<V> {
        self.map.get(key).map(|&i| self.node(i).value.clone())
    }

    /// Removes the node at `index` entirely: list, slab, map and byte
    /// gauge. The single removal path, shared by eviction and rejection.
    fn remove_index(&mut self, index: u32) {
        self.unlink(index);
        let node = self.nodes[index as usize].take().expect("vacant lru slot");
        self.free.push(index);
        self.map.remove(&node.key);
        self.bytes -= node.cost;
    }

    /// Removes the LRU entry — probation's tail when probation is
    /// non-empty (one-shot keys die first), otherwise protected's. Must
    /// not be called on an empty shard.
    fn evict_tail(&mut self) {
        let victim = if self.lists[PROBATION].tail != NIL {
            self.lists[PROBATION].tail
        } else {
            self.lists[PROTECTED].tail
        };
        debug_assert_ne!(victim, NIL, "evict on empty shard");
        self.remove_index(victim);
    }

    /// Inserts (or replaces) `key → value` with `cost` bytes, then evicts
    /// LRU entries until both `capacity` and `budget` hold. Returns
    /// `(evictions, rejected)`.
    fn insert(
        &mut self,
        key: K,
        value: V,
        cost: u64,
        capacity: usize,
        budget: Option<u64>,
    ) -> (u64, bool) {
        if let Some(budget) = budget {
            if cost > budget {
                // Not cacheable at any occupancy: drop a stale entry under
                // the same key (it would otherwise keep serving the old
                // value) and refuse.
                if let Some(&index) = self.map.get(&key) {
                    self.remove_index(index);
                }
                return (0, true);
            }
        }
        if let Some(&index) = self.map.get(&key) {
            // Replacement: refresh value, cost and recency in place. The
            // entry keeps its segment — a write is not the re-reference
            // that earns promotion.
            self.bytes -= self.node(index).cost;
            self.bytes += cost;
            let segment = {
                let n = self.node_mut(index);
                n.value = value;
                n.cost = cost;
                n.segment
            };
            if self.lists[segment].head != index {
                self.unlink(index);
                self.push_front(index, segment);
            }
        } else {
            let node = Node {
                key: key.clone(),
                value,
                cost,
                prev: NIL,
                next: NIL,
                segment: PROBATION,
            };
            let index = match self.free.pop() {
                Some(slot) => {
                    self.nodes[slot as usize] = Some(node);
                    slot
                }
                None => {
                    self.nodes.push(Some(node));
                    (self.nodes.len() - 1) as u32
                }
            };
            self.map.insert(key, index);
            self.bytes += cost;
            self.push_front(index, PROBATION);
        }
        let mut evicted = 0;
        while self.map.len() > capacity || budget.is_some_and(|b| self.bytes > b) {
            self.evict_tail();
            evicted += 1;
        }
        (evicted, false)
    }
}

/// A concurrent LRU cache split into independently locked shards, with
/// O(1) eviction and an optional bytes budget.
#[derive(Debug)]
pub struct ShardedLruCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    /// Per-shard capacity slices; they sum to exactly the configured total.
    capacities: Vec<usize>,
    /// Per-shard bytes-budget slices (summing to the configured total), or
    /// `None` for an entry-count-only cache.
    budgets: Option<Vec<u64>>,
    /// Per-shard caps on the protected segment; 0 everywhere (the
    /// default) disables segmented admission and the shard behaves as a
    /// plain LRU.
    protected_caps: Vec<usize>,
    /// Computes an entry's budget cost. The default weigher costs
    /// everything 0, so a budget only binds when a real weigher is set.
    weigher: fn(&V) -> u64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
    promoted: AtomicU64,
}

fn zero_weight<V>(_: &V) -> u64 {
    0
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLruCache<K, V> {
    /// A cache holding at most `capacity` entries overall, spread over at
    /// most `shards` locks. Capacity is clamped to at least 1, the shard
    /// count to `1..=capacity`, and the per-shard slices partition the
    /// total exactly — occupancy never exceeds `capacity`.
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        let base = capacity / shards;
        let extra = capacity % shards;
        ShardedLruCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacities: (0..shards).map(|i| base + usize::from(i < extra)).collect(),
            budgets: None,
            protected_caps: vec![0; shards],
            weigher: zero_weight::<V>,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            promoted: AtomicU64::new(0),
        }
    }

    /// Enables segmented (probation/protected) admission: each shard
    /// reserves `protected_frac` of its capacity slice for entries that
    /// were hit at least once after insertion. New entries start in
    /// probation, a hit promotes ([`CacheStats::promoted`]), the protected
    /// segment's LRU demotes back to probation when the segment overflows,
    /// and eviction victims come from probation first — so a scan of
    /// one-shot keys (a batch-size sweep, an admission-probe storm) cannot
    /// flush re-referenced entries.
    ///
    /// `protected_frac` is clamped to `[0.0, 1.0]`; a fraction that
    /// rounds to a zero-entry protected segment for some shard leaves
    /// that shard in plain LRU mode.
    #[must_use]
    pub fn with_segmented_admission(mut self, protected_frac: f64) -> Self {
        let frac = protected_frac.clamp(0.0, 1.0);
        self.protected_caps = self
            .capacities
            .iter()
            .map(|&cap| {
                #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
                #[allow(clippy::cast_sign_loss)]
                let protected = (cap as f64 * frac).round() as usize;
                protected.min(cap)
            })
            .collect();
        self
    }

    /// Adds a bytes budget: `weigher` prices every inserted value, and
    /// each shard evicts LRU entries until its slice of `total_bytes`
    /// holds (the slices partition the total exactly, so resident cost
    /// never exceeds the budget). An entry costlier than its whole shard
    /// slice is refused outright and counted in [`CacheStats::rejected`] —
    /// size the budget well above the largest single entry (and far above
    /// the shard count).
    #[must_use]
    pub fn with_bytes_budget(mut self, total_bytes: u64, weigher: fn(&V) -> u64) -> Self {
        let shards = self.shards.len() as u64;
        let base = total_bytes / shards;
        let extra = total_bytes % shards;
        self.budgets = Some((0..shards).map(|i| base + u64::from(i < extra)).collect());
        self.weigher = weigher;
        self
    }

    fn shard_index(&self, key: &K) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// The total configured capacity (sum of the per-shard slices).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacities.iter().sum()
    }

    /// The total configured bytes budget, when one is set.
    #[must_use]
    pub fn bytes_budget(&self) -> Option<u64> {
        self.budgets.as_ref().map(|b| b.iter().sum())
    }

    /// Total cost of resident entries, as priced by the weigher.
    #[must_use]
    pub fn bytes_in_use(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").bytes)
            .sum()
    }

    /// The number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total entries currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key` without refreshing recency or touching the hit/miss
    /// counters. Used by single-flight leaders re-checking for a value a
    /// just-retired flight published, so stats keep their "one hit or
    /// miss per query" invariant.
    #[must_use]
    pub fn peek(&self, key: &K) -> Option<V> {
        self.shards[self.shard_index(key)]
            .lock()
            .expect("cache shard poisoned")
            .peek(key)
    }

    /// Clones every resident entry, least- to most-recently-used within
    /// each shard (probation before protected, each walked LRU → MRU),
    /// so re-inserting the sequence into an empty cache approximately
    /// restores recency order: the hottest entries land last and become
    /// the new MRUs. Used by the persistence snapshot.
    #[must_use]
    pub fn export(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            for segment in [PROBATION, PROTECTED] {
                let mut cursor = shard.lists[segment].tail;
                while cursor != NIL {
                    let node = shard.node(cursor);
                    out.push((node.key.clone(), node.value.clone()));
                    cursor = node.prev;
                }
            }
        }
        out
    }

    /// Looks up `key`, refreshing its recency (and, in segmented mode,
    /// promoting a probation entry to the protected segment).
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        let index = self.shard_index(key);
        let (found, promoted) = self.shards[index]
            .lock()
            .expect("cache shard poisoned")
            .touch(key, self.protected_caps[index]);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        if promoted {
            self.promoted.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Inserts `key → value`, evicting within the shard if needed.
    pub fn insert(&self, key: K, value: V) {
        let index = self.shard_index(&key);
        let cost = (self.weigher)(&value);
        let budget = self.budgets.as_ref().map(|b| b[index]);
        let (evicted, rejected) = self.shards[index]
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value, cost, self.capacities[index], budget);
        if rejected {
            self.rejected.fetch_add(1, Ordering::Relaxed);
        } else {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Returns the cached value for `key`, or computes, caches and returns
    /// it. The shard lock is *not* held while `compute` runs, so concurrent
    /// missing threads may compute the value redundantly (last write wins);
    /// the estimation pipeline is deterministic, so duplicates are
    /// identical.
    pub fn get_or_insert_with<E>(
        &self,
        key: &K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        if let Some(v) = self.get(key) {
            return Ok(v);
        }
        let value = compute()?;
        self.insert(key.clone(), value.clone());
        Ok(value)
    }

    /// A snapshot of the hit/miss/insert/evict counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            promoted: self.promoted.load(Ordering::Relaxed),
        }
    }

    /// Exhaustive structural self-check of every shard, used by tests: the
    /// recency list must thread exactly the mapped nodes, and the byte
    /// gauge must equal the sum of live costs.
    ///
    /// # Panics
    /// Panics on any violated invariant.
    pub fn check_invariants(&self) {
        for (i, (shard, &capacity)) in self.shards.iter().zip(&self.capacities).enumerate() {
            let shard = shard.lock().expect("cache shard poisoned");
            assert!(shard.map.len() <= capacity, "shard over capacity");
            let mut seen = 0usize;
            let mut bytes = 0u64;
            for segment in [PROBATION, PROTECTED] {
                let mut segment_len = 0usize;
                let mut prev = NIL;
                let mut cursor = shard.lists[segment].head;
                while cursor != NIL {
                    let node = shard.node(cursor);
                    assert_eq!(node.prev, prev, "broken prev link");
                    assert_eq!(node.segment, segment, "node in the wrong list");
                    assert_eq!(
                        shard.map.get(&node.key),
                        Some(&cursor),
                        "listed node missing from map"
                    );
                    seen += 1;
                    segment_len += 1;
                    bytes += node.cost;
                    prev = cursor;
                    cursor = node.next;
                }
                assert_eq!(shard.lists[segment].tail, prev, "tail must end the list");
                if segment == PROTECTED {
                    assert_eq!(segment_len, shard.protected_len, "protected gauge drift");
                    assert!(
                        segment_len <= self.protected_caps[i],
                        "protected segment over its cap"
                    );
                }
            }
            assert_eq!(seen, shard.map.len(), "list/map size mismatch");
            assert_eq!(bytes, shard.bytes, "byte gauge drift");
            assert_eq!(shard.free.len() + seen, shard.nodes.len(), "slab slot leak");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(8, 2);
        assert_eq!(cache.get(&1), None);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), Some(10));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.evictions, 0);
        cache.check_invariants();
    }

    #[test]
    fn single_shard_evicts_least_recently_used() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(2, 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(&1), Some(10)); // refresh 1; 2 becomes LRU
        cache.insert(3, 30);
        assert_eq!(cache.get(&2), None, "LRU entry 2 was evicted");
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.stats().evictions, 1);
        cache.check_invariants();
    }

    #[test]
    fn total_capacity_is_never_exceeded() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(16, 4);
        assert_eq!(cache.capacity(), 16);
        for k in 0..1000 {
            cache.insert(k, k);
        }
        assert!(cache.len() <= cache.capacity());
        cache.check_invariants();
    }

    #[test]
    fn capacity_partition_is_exact_even_when_unaligned() {
        // 20 entries over 16 requested shards: slices must sum to 20, not
        // round up to 32.
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(20, 16);
        assert_eq!(cache.capacity(), 20);
        assert_eq!(cache.capacities.iter().sum::<usize>(), 20);
        // Fewer requested entries than shards: shard count shrinks instead
        // of inflating capacity.
        let small: ShardedLruCache<u32, u32> = ShardedLruCache::new(4, 16);
        assert_eq!(small.shard_count(), 4);
        assert_eq!(small.capacity(), 4);
        for k in 0..100 {
            small.insert(k, k);
        }
        assert!(small.len() <= 4);
        small.check_invariants();
    }

    #[test]
    fn get_or_insert_computes_once_per_key() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(8, 2);
        let mut calls = 0;
        for _ in 0..3 {
            let v: Result<u32, ()> = cache.get_or_insert_with(&7, || {
                calls += 1;
                Ok(70)
            });
            assert_eq!(v, Ok(70));
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn compute_errors_are_not_cached() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(8, 2);
        let r: Result<u32, &str> = cache.get_or_insert_with(&7, || Err("boom"));
        assert_eq!(r, Err("boom"));
        assert!(cache.is_empty());
        let r: Result<u32, &str> = cache.get_or_insert_with(&7, || Ok(70));
        assert_eq!(r, Ok(70));
    }

    #[test]
    fn replacing_a_key_updates_value_and_recency_in_place() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(2, 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(1, 11); // replace: 2 is now LRU
        assert_eq!(cache.len(), 2);
        cache.insert(3, 30);
        assert_eq!(cache.peek(&2), None, "2 was the LRU victim");
        assert_eq!(cache.peek(&1), Some(11));
        cache.check_invariants();
    }

    /// The value doubles as its byte cost.
    fn identity_cost(v: &u64) -> u64 {
        *v
    }

    #[test]
    fn bytes_budget_evicts_down_to_the_limit() {
        let cache: ShardedLruCache<u32, u64> =
            ShardedLruCache::new(100, 1).with_bytes_budget(100, identity_cost);
        assert_eq!(cache.bytes_budget(), Some(100));
        cache.insert(1, 40);
        cache.insert(2, 40);
        assert_eq!(cache.bytes_in_use(), 80);
        // 50 more bytes exceed the budget: the LRU entry (1) must go.
        cache.insert(3, 50);
        assert_eq!(cache.peek(&1), None);
        assert_eq!(cache.bytes_in_use(), 90);
        assert_eq!(cache.stats().evictions, 1);
        cache.check_invariants();
    }

    #[test]
    fn bytes_budget_can_evict_several_entries_for_one_insert() {
        let cache: ShardedLruCache<u32, u64> =
            ShardedLruCache::new(100, 1).with_bytes_budget(100, identity_cost);
        for k in 0..10 {
            cache.insert(k, 10);
        }
        assert_eq!(cache.len(), 10);
        cache.insert(99, 95); // 95 + any resident's 10 > 100: all must go
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes_in_use(), 95);
        assert_eq!(cache.stats().evictions, 10);
        cache.check_invariants();
    }

    #[test]
    fn oversized_entries_are_rejected_not_cached() {
        let cache: ShardedLruCache<u32, u64> =
            ShardedLruCache::new(100, 1).with_bytes_budget(100, identity_cost);
        cache.insert(1, 40);
        cache.insert(2, 101); // costlier than the whole budget
        assert_eq!(cache.peek(&2), None);
        assert_eq!(cache.peek(&1), Some(40), "residents are not disturbed");
        let stats = cache.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.insertions, 1);
        // A rejected replacement must also drop the stale resident.
        cache.insert(1, 200);
        assert_eq!(cache.peek(&1), None, "stale value must not survive");
        assert_eq!(cache.stats().rejected, 2);
        cache.check_invariants();
    }

    #[test]
    fn cost_replacement_adjusts_the_gauge() {
        let cache: ShardedLruCache<u32, u64> =
            ShardedLruCache::new(10, 1).with_bytes_budget(100, identity_cost);
        cache.insert(1, 60);
        cache.insert(1, 20);
        assert_eq!(cache.bytes_in_use(), 20);
        cache.insert(1, 90);
        assert_eq!(cache.bytes_in_use(), 90);
        assert_eq!(cache.len(), 1);
        cache.check_invariants();
    }

    #[test]
    fn budget_slices_partition_the_total() {
        let cache: ShardedLruCache<u32, u64> =
            ShardedLruCache::new(64, 16).with_bytes_budget(1000, identity_cost);
        assert_eq!(cache.bytes_budget(), Some(1000));
        for k in 0..500 {
            cache.insert(k, 7);
        }
        assert!(cache.bytes_in_use() <= 1000);
        cache.check_invariants();
    }

    #[test]
    fn segmented_admission_resists_a_one_shot_scan() {
        // Capacity 4, half protected. Two hot keys are hit once each
        // (promoted), then a scan of 8 one-shot keys rolls through: the
        // hot keys must survive in the protected segment.
        let cache: ShardedLruCache<u32, u32> =
            ShardedLruCache::new(4, 1).with_segmented_admission(0.5);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&2), Some(20));
        assert_eq!(cache.stats().promoted, 2);
        for k in 100..108 {
            cache.insert(k, k);
            cache.check_invariants();
        }
        assert_eq!(cache.peek(&1), Some(10), "hot key flushed by scan");
        assert_eq!(cache.peek(&2), Some(20), "hot key flushed by scan");
        // The same scan against a plain LRU flushes both hot keys.
        let plain: ShardedLruCache<u32, u32> = ShardedLruCache::new(4, 1);
        plain.insert(1, 10);
        plain.insert(2, 20);
        assert_eq!(plain.get(&1), Some(10));
        assert_eq!(plain.get(&2), Some(20));
        for k in 100..108 {
            plain.insert(k, k);
        }
        assert_eq!(plain.peek(&1), None);
        assert_eq!(plain.peek(&2), None);
        assert_eq!(plain.stats().promoted, 0, "plain mode never promotes");
    }

    #[test]
    fn protected_overflow_demotes_its_lru_back_to_probation() {
        // Protected cap 1: promoting a second key demotes the first back
        // to probation (as its MRU), where an eviction can reach it.
        let cache: ShardedLruCache<u32, u32> =
            ShardedLruCache::new(4, 1).with_segmented_admission(0.25);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(&1), Some(10)); // 1 → protected
        assert_eq!(cache.get(&2), Some(20)); // 2 → protected, 1 demoted
        assert_eq!(cache.stats().promoted, 2);
        cache.check_invariants();
        // Fill with one-shot keys: 2 (protected) survives every eviction;
        // demoted 1 is probation's MRU, so it outlives the older scan keys
        // but eventually falls to the scan itself.
        cache.insert(3, 30);
        cache.insert(4, 40);
        cache.insert(5, 50);
        assert_eq!(cache.peek(&2), Some(20), "protected key evicted");
        cache.check_invariants();
    }

    #[test]
    fn a_rehit_in_probation_promotes_again_after_demotion() {
        let cache: ShardedLruCache<u32, u32> =
            ShardedLruCache::new(4, 1).with_segmented_admission(0.25);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), Some(10)); // promote
        cache.insert(2, 20);
        assert_eq!(cache.get(&2), Some(20)); // promote 2, demote 1
        assert_eq!(cache.get(&1), Some(10)); // re-promote 1, demote 2
        assert_eq!(cache.stats().promoted, 3);
        cache.check_invariants();
    }

    #[test]
    fn unbudgeted_cache_ignores_costs() {
        let cache: ShardedLruCache<u32, u64> = ShardedLruCache::new(4, 1);
        cache.insert(1, u64::MAX / 2);
        cache.insert(2, u64::MAX / 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes_budget(), None);
        assert_eq!(cache.bytes_in_use(), 0, "default weigher prices 0");
        cache.check_invariants();
    }
}
