//! Sharded, mutex-per-shard LRU cache.
//!
//! Keys are spread across `shards` independent maps by hash, so concurrent
//! estimation threads contend only when they touch the same shard. Each
//! shard enforces its own capacity slice with least-recently-used
//! eviction; recency is a per-shard logical tick bumped on every hit and
//! insert.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Monotonic hit/miss/insert/evict counters for a [`ShardedLruCache`].
///
/// `hits + misses` equals the number of `get_or_insert_with`/`get` calls;
/// a miss that populates the cache also counts one insertion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries evicted to respect capacity.
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    tick: u64,
}

#[derive(Debug)]
struct Shard<K, V> {
    map: HashMap<K, Entry<V>>,
    clock: u64,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            clock: 0,
        }
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn touch(&mut self, key: &K) -> Option<V> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|e| {
            e.tick = clock;
            e.value.clone()
        })
    }

    /// Inserts, evicting the least-recently-used entry if the shard is at
    /// capacity. Returns the number of evictions (0 or 1).
    fn insert(&mut self, key: K, value: V, capacity: usize) -> u64 {
        self.clock += 1;
        let mut evicted = 0;
        if !self.map.contains_key(&key) && self.map.len() >= capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                evicted = 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                tick: self.clock,
            },
        );
        evicted
    }
}

/// A concurrent LRU cache split into independently locked shards.
#[derive(Debug)]
pub struct ShardedLruCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    /// Per-shard capacity slices; they sum to exactly the configured total.
    capacities: Vec<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLruCache<K, V> {
    /// A cache holding at most `capacity` entries overall, spread over at
    /// most `shards` locks. Capacity is clamped to at least 1, the shard
    /// count to `1..=capacity`, and the per-shard slices partition the
    /// total exactly — occupancy never exceeds `capacity`.
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        let base = capacity / shards;
        let extra = capacity % shards;
        ShardedLruCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacities: (0..shards).map(|i| base + usize::from(i < extra)).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_index(&self, key: &K) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// The total configured capacity (sum of the per-shard slices).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacities.iter().sum()
    }

    /// The number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total entries currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key` without refreshing recency or touching the hit/miss
    /// counters. Used by single-flight leaders re-checking for a value a
    /// just-retired flight published, so stats keep their "one hit or
    /// miss per query" invariant.
    #[must_use]
    pub fn peek(&self, key: &K) -> Option<V> {
        self.shards[self.shard_index(key)]
            .lock()
            .expect("cache shard poisoned")
            .map
            .get(key)
            .map(|e| e.value.clone())
    }

    /// Looks up `key`, refreshing its recency.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        let found = self.shards[self.shard_index(key)]
            .lock()
            .expect("cache shard poisoned")
            .touch(key);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Inserts `key → value`, evicting within the shard if needed.
    pub fn insert(&self, key: K, value: V) {
        let index = self.shard_index(&key);
        let evicted = self.shards[index]
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value, self.capacities[index]);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Returns the cached value for `key`, or computes, caches and returns
    /// it. The shard lock is *not* held while `compute` runs, so concurrent
    /// missing threads may compute the value redundantly (last write wins);
    /// the estimation pipeline is deterministic, so duplicates are
    /// identical.
    pub fn get_or_insert_with<E>(
        &self,
        key: &K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        if let Some(v) = self.get(key) {
            return Ok(v);
        }
        let value = compute()?;
        self.insert(key.clone(), value.clone());
        Ok(value)
    }

    /// A snapshot of the hit/miss/insert/evict counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(8, 2);
        assert_eq!(cache.get(&1), None);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), Some(10));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn single_shard_evicts_least_recently_used() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(2, 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(&1), Some(10)); // refresh 1; 2 becomes LRU
        cache.insert(3, 30);
        assert_eq!(cache.get(&2), None, "LRU entry 2 was evicted");
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn total_capacity_is_never_exceeded() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(16, 4);
        assert_eq!(cache.capacity(), 16);
        for k in 0..1000 {
            cache.insert(k, k);
        }
        assert!(cache.len() <= cache.capacity());
        for (shard, &capacity) in cache.shards.iter().zip(&cache.capacities) {
            assert!(shard.lock().unwrap().map.len() <= capacity);
        }
    }

    #[test]
    fn capacity_partition_is_exact_even_when_unaligned() {
        // 20 entries over 16 requested shards: slices must sum to 20, not
        // round up to 32.
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(20, 16);
        assert_eq!(cache.capacity(), 20);
        assert_eq!(cache.capacities.iter().sum::<usize>(), 20);
        // Fewer requested entries than shards: shard count shrinks instead
        // of inflating capacity.
        let small: ShardedLruCache<u32, u32> = ShardedLruCache::new(4, 16);
        assert_eq!(small.shard_count(), 4);
        assert_eq!(small.capacity(), 4);
        for k in 0..100 {
            small.insert(k, k);
        }
        assert!(small.len() <= 4);
    }

    #[test]
    fn get_or_insert_computes_once_per_key() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(8, 2);
        let mut calls = 0;
        for _ in 0..3 {
            let v: Result<u32, ()> = cache.get_or_insert_with(&7, || {
                calls += 1;
                Ok(70)
            });
            assert_eq!(v, Ok(70));
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn compute_errors_are_not_cached() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(8, 2);
        let r: Result<u32, &str> = cache.get_or_insert_with(&7, || Err("boom"));
        assert_eq!(r, Err("boom"));
        assert!(cache.is_empty());
        let r: Result<u32, &str> = cache.get_or_insert_with(&7, || Ok(70));
        assert_eq!(r, Ok(70));
    }
}
