//! Cache key for memoized estimation stages.

use serde::{Deserialize, Serialize};
use xmem_models::ModelId;
use xmem_optim::OptimizerKind;
use xmem_runtime::{Precision, TrainJobSpec, ZeroGradPos};

/// Identity of a profiling computation.
///
/// `profile_on_cpu` (and therefore the analyzed trace derived from it) is a
/// pure function of these fields — notably *not* of `TrainJobSpec::seed`,
/// which only jitters the simulated-GPU ground truth. Two specs with equal
/// keys share cached stages.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JobKey {
    /// Model under training.
    pub model: ModelId,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Batch size.
    pub batch: usize,
    /// Profiled iterations.
    pub iterations: u32,
    /// `zero_grad` placement.
    pub zero_grad: ZeroGradPos,
    /// Sequence length (0 = model default).
    pub seq: usize,
    /// Numeric precision.
    pub precision: Precision,
}

impl JobKey {
    /// The key identifying `spec`'s profiling computation.
    #[must_use]
    pub fn of(spec: &TrainJobSpec) -> Self {
        JobKey {
            model: spec.model,
            optimizer: spec.optimizer,
            batch: spec.batch,
            iterations: spec.iterations,
            zero_grad: spec.zero_grad_pos,
            seq: spec.seq,
            precision: spec.precision,
        }
    }
}

/// Batch-invariant identity of a **job family** — a [`JobKey`] with the
/// batch dimension removed.
///
/// The incremental sweep caches one parameterized replay per family: any
/// sweep over the same model/optimizer/shape at different batch sizes
/// reuses the same fit (within its proven batch range).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SweepKey {
    /// Model under training.
    pub model: ModelId,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Profiled iterations.
    pub iterations: u32,
    /// `zero_grad` placement.
    pub zero_grad: ZeroGradPos,
    /// Sequence length (0 = model default).
    pub seq: usize,
    /// Numeric precision.
    pub precision: Precision,
}

impl SweepKey {
    /// The family key of `spec` (its batch size is ignored).
    #[must_use]
    pub fn of(spec: &TrainJobSpec) -> Self {
        SweepKey {
            model: spec.model,
            optimizer: spec.optimizer,
            iterations: spec.iterations,
            zero_grad: spec.zero_grad_pos,
            seq: spec.seq,
            precision: spec.precision,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_does_not_affect_the_sweep_key() {
        let a = TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8);
        let b = TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 32);
        assert_eq!(SweepKey::of(&a), SweepKey::of(&b));
        let other_pos = a.clone().with_zero_grad(ZeroGradPos::IterStart);
        assert_ne!(SweepKey::of(&a), SweepKey::of(&other_pos));
    }

    #[test]
    fn seed_does_not_affect_the_key() {
        let a = TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8);
        let b = a.clone().with_seed(12345);
        assert_eq!(JobKey::of(&a), JobKey::of(&b));
    }

    #[test]
    fn profiling_inputs_affect_the_key() {
        let base = TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8);
        let other_batch = TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 16);
        let other_pos = base.clone().with_zero_grad(ZeroGradPos::IterStart);
        assert_ne!(JobKey::of(&base), JobKey::of(&other_batch));
        assert_ne!(JobKey::of(&base), JobKey::of(&other_pos));
    }
}
